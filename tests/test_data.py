"""Synthetic datasets, corruptions, OOD sources, loaders."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    CORRUPTIONS,
    batches,
    blob_dataset,
    corrupt,
    forecast_dataset,
    multisine_series,
    ood,
    synth_digits,
    synth_letters,
    texture_dataset,
    train_test_split,
    windowed_forecast,
)


class TestSynthDigits:
    def test_shapes_flat(self):
        x, y = synth_digits(50, size=16, seed=0)
        assert x.shape == (50, 256) and y.shape == (50,)

    def test_shapes_nchw(self):
        x, y = synth_digits(50, size=16, seed=0, flat=False)
        assert x.shape == (50, 1, 16, 16)

    def test_value_range(self):
        x, _ = synth_digits(100, seed=0)
        assert x.min() >= -1.0 and x.max() <= 1.0

    def test_all_classes_present(self):
        _, y = synth_digits(500, seed=0)
        assert set(y) == set(range(10))

    def test_deterministic_with_seed(self):
        a, ya = synth_digits(20, seed=42)
        b, yb = synth_digits(20, seed=42)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(ya, yb)

    def test_zero_jitter_is_clean(self):
        """Same class, zero jitter -> identical renders."""
        x, y = synth_digits(100, jitter=0.0, seed=0)
        for digit in range(10):
            members = x[y == digit]
            if len(members) > 1:
                np.testing.assert_array_equal(members[0], members[1])

    def test_classes_distinguishable(self):
        """Nearest-centroid classification works on clean digits."""
        x, y = synth_digits(500, jitter=0.15, seed=0)
        centroids = np.stack([x[y == d].mean(axis=0) for d in range(10)])
        pred = np.argmin(
            ((x[:, None, :] - centroids[None]) ** 2).sum(-1), axis=1)
        assert (pred == y).mean() > 0.9

    def test_letters_differ_from_digits(self):
        xd, yd = synth_digits(300, jitter=0.0, seed=0)
        xl, yl = synth_letters(300, jitter=0.0, seed=0)
        centroids = np.stack([xd[yd == d].mean(axis=0) for d in range(10)])
        # Letter glyphs should sit measurably away from digit centroids.
        dists = np.min(((xl[:, None] - centroids[None]) ** 2).sum(-1),
                       axis=1)
        assert dists.min() > 0.0


class TestOtherDatasets:
    def test_blob_quadrants(self):
        x, y = blob_dataset(200, seed=0)
        assert set(y) <= {0, 1, 2, 3}
        assert x.shape == (200, 256)

    def test_blob_classes_validation(self):
        with pytest.raises(ValueError):
            blob_dataset(10, n_classes=3)

    def test_texture_default_nchw(self):
        x, y = texture_dataset(50, seed=0)
        assert x.shape == (50, 1, 16, 16)


class TestCorruptions:
    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_preserves_shape_and_range_flat(self, name):
        x, _ = synth_digits(10, seed=0)
        out = corrupt(x, name, severity=3, rng=np.random.default_rng(0))
        assert out.shape == x.shape
        assert out.min() >= -1.0 and out.max() <= 1.0

    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_preserves_shape_nchw(self, name):
        x, _ = synth_digits(6, seed=0, flat=False)
        out = corrupt(x, name, severity=2, rng=np.random.default_rng(0))
        assert out.shape == x.shape

    def test_severity_increases_distortion(self):
        x, _ = synth_digits(30, seed=0)
        d1 = np.abs(corrupt(x, "gaussian_noise", 1,
                            np.random.default_rng(0)) - x).mean()
        d5 = np.abs(corrupt(x, "gaussian_noise", 5,
                            np.random.default_rng(0)) - x).mean()
        assert d5 > d1

    def test_unknown_name(self):
        x, _ = synth_digits(2, seed=0)
        with pytest.raises(KeyError):
            corrupt(x, "plague")

    def test_invalid_severity(self):
        x, _ = synth_digits(2, seed=0)
        with pytest.raises(ValueError):
            corrupt(x, "gaussian_noise", severity=6)

    @given(st.sampled_from(sorted(CORRUPTIONS)),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_property_bounded_output(self, name, severity):
        x, _ = synth_digits(4, seed=1)
        out = corrupt(x, name, severity, np.random.default_rng(2))
        assert np.isfinite(out).all()
        assert out.min() >= -1.0 - 1e-12
        assert out.max() <= 1.0 + 1e-12


class TestOodSources:
    def test_uniform_noise_range(self):
        x = ood.uniform_noise(100, 256, seed=0)
        assert x.shape == (100, 256)
        assert x.min() >= -1.0 and x.max() <= 1.0

    def test_rotation_changes_images(self):
        x, _ = synth_digits(20, seed=0)
        rotated = ood.random_rotation(x, seed=1)
        assert rotated.shape == x.shape
        assert np.abs(rotated - x).mean() > 0.05

    def test_letters_shape(self):
        x = ood.letters(30, seed=0)
        assert x.shape == (30, 256)

    def test_amplitude_shift_compresses(self):
        x, _ = synth_digits(20, seed=0)
        shifted = ood.amplitude_shift(x)
        assert shifted.std() < x.std()


class TestTimeSeries:
    def test_series_normalized(self):
        s = multisine_series(500, seed=0)
        assert np.abs(s).max() <= 1.0 + 1e-12

    def test_windowing_shapes(self):
        s = multisine_series(100, seed=0)
        x, y = windowed_forecast(s, history=10)
        assert x.shape == (90, 10, 1) and y.shape == (90, 1)

    def test_windowing_alignment(self):
        s = np.arange(20, dtype=float)
        x, y = windowed_forecast(s, history=5)
        np.testing.assert_allclose(x[0, :, 0], [0, 1, 2, 3, 4])
        assert y[0, 0] == 5.0

    def test_too_short_series(self):
        with pytest.raises(ValueError):
            windowed_forecast(np.zeros(5), history=10)

    def test_chronological_split(self):
        (xtr, ytr), (xte, yte) = forecast_dataset(300, history=10,
                                                  train_frac=0.8, seed=0)
        assert len(xtr) + len(xte) == 290
        assert len(xtr) == int(290 * 0.8)


class TestLoaders:
    def test_split_sizes(self):
        x = np.arange(100).reshape(100, 1).astype(float)
        y = np.arange(100)
        (xtr, ytr), (xte, yte) = train_test_split(x, y, 0.25, seed=0)
        assert len(xtr) == 75 and len(xte) == 25

    def test_split_disjoint(self):
        x = np.arange(50).reshape(50, 1).astype(float)
        y = np.arange(50)
        (xtr, _), (xte, _) = train_test_split(x, y, 0.2, seed=1)
        assert not set(xtr.reshape(-1)) & set(xte.reshape(-1))

    def test_split_validation(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(3))
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), test_frac=1.5)

    def test_batches_cover_everything(self):
        x = np.arange(10).reshape(10, 1).astype(float)
        y = np.arange(10)
        seen = []
        for xb, yb in batches(x, y, batch_size=3, seed=0):
            seen.extend(yb.tolist())
        assert sorted(seen) == list(range(10))

    def test_drop_last(self):
        x = np.zeros((10, 1))
        y = np.zeros(10)
        counts = [len(xb) for xb, _ in batches(x, y, 3, drop_last=True)]
        assert counts == [3, 3, 3]

    def test_no_shuffle_preserves_order(self):
        x = np.arange(6).reshape(6, 1).astype(float)
        y = np.arange(6)
        first_batch = next(iter(batches(x, y, 3, shuffle=False)))
        np.testing.assert_array_equal(first_batch[1], [0, 1, 2])
