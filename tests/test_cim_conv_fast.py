"""Deployed CIM conv fast path: exact-integer route, plans, groups.

The contract of the PR-5 kernel work: :class:`CimConv2d`'s
exact-integer float32 route must be *bit-for-bit* identical to the
analog simulation it replaces (outputs and ledger totals), warm
engines must perform zero im2col index-plan rebuilds, and the
grouped/dilated deployments must match the software conv they were
compiled from.
"""

import numpy as np
import pytest

from repro import nn
from repro.bayesian import BayesianCim, SpatialSpinDropout
from repro.cim import (
    CimConfig,
    CimConv2d,
    ConvShape,
    MappingStrategy,
    OpLedger,
    compile_to_cim,
    plan_conv_mapping,
)
from repro.devices import DeviceVariability, VariabilityParams
from repro.tensor import Tensor, no_grad
from repro.tensor import functional as F
from repro.tensor.functional import conv_plan_cache_stats

RNG = np.random.default_rng(55)


def _binary(shape):
    w = np.sign(RNG.standard_normal(shape))
    w[w == 0] = 1.0
    return w


def _masked_sign_input(shape, p_drop=0.25):
    x = np.sign(RNG.standard_normal(shape))
    x[RNG.random(shape) < p_drop] = 0.0
    return x


CONFIGS = [
    # (c_out, c_in_per_group, k, groups, dilation, strategy)
    (8, 1, 3, 1, 1, MappingStrategy.UNFOLDED_COLUMN),
    (16, 8, 3, 1, 1, MappingStrategy.UNFOLDED_COLUMN),
    (16, 8, 3, 1, 2, MappingStrategy.UNFOLDED_COLUMN),
    (8, 2, 3, 4, 1, MappingStrategy.UNFOLDED_COLUMN),
    (12, 3, 3, 2, 2, MappingStrategy.TILED_KXK),
    (16, 8, 3, 1, 1, MappingStrategy.TILED_KXK),
]


class TestExactRoute:
    @pytest.mark.parametrize("c_out,c_in_pg,k,groups,dilation,strategy",
                             CONFIGS)
    def test_bit_identical_to_analog_route(self, c_out, c_in_pg, k,
                                           groups, dilation, strategy):
        w = _binary((c_out, c_in_pg, k, k))
        x = RNG.standard_normal((3, c_in_pg * groups, 12, 12))
        mask = (RNG.random(c_in_pg * groups) > 0.3).astype(np.float64)
        ledger_fast, ledger_slow = OpLedger(), OpLedger()
        fast = CimConv2d(w, None, None, 1, 1,
                         CimConfig(seed=0, mapping_strategy=strategy),
                         ledger_fast, dilation=dilation, groups=groups)
        slow = CimConv2d(w, None, None, 1, 1,
                         CimConfig(seed=0, mapping_strategy=strategy),
                         ledger_slow, dilation=dilation, groups=groups)
        assert fast._exact_ok
        slow.exact_route = False
        fast.channel_mask = mask
        slow.channel_mask = mask
        np.testing.assert_array_equal(fast.forward(x), slow.forward(x))
        assert ledger_fast.as_dict() == ledger_slow.as_dict()

    def test_disabled_on_variability(self):
        var = DeviceVariability(VariabilityParams(sigma_r=0.05),
                                rng=np.random.default_rng(3))
        layer = CimConv2d(_binary((4, 2, 3, 3)), None, None, 1, 1,
                          CimConfig(seed=0, variability=var), OpLedger())
        assert not layer._exact_ok

    def test_disabled_on_wire_resistance(self):
        layer = CimConv2d(_binary((4, 2, 3, 3)), None, None, 1, 1,
                          CimConfig(seed=0, wire_resistance=50.0),
                          OpLedger())
        assert not layer._exact_ok

    def test_disabled_on_even_adc_step(self):
        # 45 unfolded rows at 6 ADC bits -> step ceil(90/63) = 2: an
        # odd integer MAC / 2 ties exactly at .5, where the analog
        # decode's ~1e-13 float noise decides the rounding — the exact
        # route must refuse such layers.
        layer = CimConv2d(_binary((4, 5, 3, 3)), None, None, 1, 0,
                          CimConfig(seed=0, adc_bits=6), OpLedger())
        assert any(adc.step % 2 == 0 for adc in layer.adcs)
        assert not layer._exact_ok

    def test_matches_software_conv_grouped_dilated(self):
        w = _binary((6, 2, 3, 3))
        layer = CimConv2d(w, None, None, 1, 2,
                          CimConfig(adc_bits=12, seed=0), OpLedger(),
                          dilation=2, groups=3)
        x = _masked_sign_input((2, 6, 11, 11))
        with no_grad():
            expected = F.conv2d(Tensor(x), Tensor(w), padding=2,
                                dilation=2, groups=3).data
        np.testing.assert_allclose(layer.forward(x), expected, atol=1e-6)

    def test_sample_axis_stacking(self):
        """A stacked (T, N, C, H, W) tensor equals per-pass calls."""
        w = _binary((4, 2, 3, 3))
        layer = CimConv2d(w, None, None, 1, 1,
                          CimConfig(adc_bits=12, seed=0), OpLedger())
        x = _masked_sign_input((5, 2, 2, 8, 8))
        stacked = layer.forward(x)
        assert stacked.shape[:2] == (5, 2)
        for t in range(5):
            np.testing.assert_array_equal(stacked[t], layer.forward(x[t]))


class TestPlanReuse:
    def test_warm_layer_zero_plan_rebuilds(self):
        layer = CimConv2d(_binary((16, 8, 3, 3)), None, None, 1, 1,
                          CimConfig(seed=0), OpLedger())
        x = RNG.standard_normal((4, 8, 16, 16))
        layer.forward(x)
        before = conv_plan_cache_stats()["builds"]
        layer.forward(x)
        layer.forward(x)
        assert conv_plan_cache_stats()["builds"] == before

    def test_warm_deployed_engine_zero_plan_rebuilds(self):
        model = nn.Sequential(
            nn.BinaryConv2d(1, 4, 3, padding=1, binarize_input=True,
                            rng=np.random.default_rng(0)),
            nn.SignActivation(),
            SpatialSpinDropout(4, p=0.3, ideal=True,
                               rng=np.random.default_rng(1)),
            nn.BinaryConv2d(4, 4, 3, padding=1,
                            rng=np.random.default_rng(2)),
            nn.MaxPool2d(2),
            nn.Flatten(),
            nn.BinaryLinear(4 * 6 * 6, 3, rng=np.random.default_rng(3)),
        )
        engine = BayesianCim(model, CimConfig(seed=0), seed=0)
        x = RNG.standard_normal((2, 1, 12, 12))
        engine.mc_forward_batched(x, n_samples=3)
        before = conv_plan_cache_stats()["builds"]
        engine.mc_forward_batched(x, n_samples=3)
        assert conv_plan_cache_stats()["builds"] == before


class TestDeployedEquivalence:
    def _model(self):
        rng = np.random.default_rng(8)
        return nn.Sequential(
            nn.BinaryConv2d(2, 4, 3, padding=2, dilation=2, groups=2,
                            binarize_input=True, rng=rng),
            nn.SignActivation(),
            SpatialSpinDropout(4, p=0.3, ideal=True, rng=rng),
            nn.BinaryConv2d(4, 4, 3, padding=1, groups=2, rng=rng),
            nn.MaxPool2d(2),
            nn.Flatten(),
            nn.BinaryLinear(4 * 5 * 5, 3, rng=rng),
        )

    def test_batched_equals_sequential_grouped_dilated(self):
        x = RNG.standard_normal((3, 2, 10, 10))
        a = BayesianCim(self._model(), CimConfig(seed=6), seed=33)
        b = BayesianCim(self._model(), CimConfig(seed=6), seed=33)
        a.ledger.reset()
        b.ledger.reset()
        seq = a.mc_forward(x, n_samples=5, batched=False)
        bat = b.mc_forward_batched(x, n_samples=5)
        np.testing.assert_array_equal(seq.samples, bat.samples)
        np.testing.assert_array_equal(seq.probs, bat.probs)
        assert a.ledger.as_dict() == b.ledger.as_dict()

    def test_compiled_grouped_dilated_matches_software_eval(self):
        rng = np.random.default_rng(4)
        model = nn.Sequential(
            nn.BinaryConv2d(2, 4, 3, padding=2, dilation=2, groups=2,
                            binarize_input=True, rng=rng),
            nn.SignActivation(),
            nn.Flatten(),
            nn.BinaryLinear(4 * 10 * 10, 3, rng=rng),
        )
        model.eval()
        net = compile_to_cim(model, CimConfig(adc_bits=12, seed=0))
        x = RNG.standard_normal((4, 2, 10, 10))
        with no_grad():
            expected = model(Tensor(x)).data
        np.testing.assert_allclose(net.forward(x), expected, atol=1e-5)


class TestGroupedMapping:
    def test_plan_scales_crossbars_by_groups(self):
        plain = plan_conv_mapping(ConvShape(8, 16, 3),
                                  MappingStrategy.UNFOLDED_COLUMN)
        grouped = plan_conv_mapping(ConvShape(8, 16, 3, groups=4),
                                    MappingStrategy.UNFOLDED_COLUMN)
        # Each group's unfolded matrix is 4x smaller but the grid is
        # replicated per group.
        assert grouped.n_crossbars == 4 * len(grouped.row_chunks) \
            * len(grouped.col_chunks)
        assert grouped.row_chunks[-1][1] == plain.row_chunks[-1][1] // 4
        assert grouped.dropout_modules == plain.dropout_modules == 8

    def test_conv_layer_exposes_grouped_plan(self):
        layer = CimConv2d(_binary((8, 2, 3, 3)), None, None, 1, 1,
                          CimConfig(seed=0), OpLedger(), groups=4)
        assert layer.plan.groups == 4
        assert len(layer.crossbars) == 4 * len(layer.plan.row_chunks)

    def test_invalid_groups_rejected(self):
        with pytest.raises(ValueError):
            CimConv2d(_binary((9, 2, 3, 3)), None, None, 1, 0,
                      CimConfig(seed=0), OpLedger(), groups=2)
        with pytest.raises(ValueError):
            ConvShape(8, 9, 3, groups=2)
