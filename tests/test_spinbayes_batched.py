"""SpinBayes batched MC engine ≡ sequential loop, bit-for-bit.

Same acceptance contract as the BayesianCim engine
(tests/test_batched_equivalence.py): under a fixed seed the batched
path must reproduce the sequential T-pass loop exactly — same
predictive means, same per-pass samples, same :class:`OpLedger`
totals (crossbar accesses, ADC conversions, arbiter RNG cycles) —
including the arbiter's component selections, with and without
cycle-to-cycle read noise, chunked or not, for power-of-two component
counts (vectorized selection draw) and odd ones (per-select replay).
"""

import numpy as np
import pytest

from repro.bayesian import (
    SpinBayesNetwork,
    make_subset_vi_mlp,
    mc_predict_fn,
)
from repro.cim import CimConfig
from repro.devices import DeviceVariability, VariabilityParams

RNG = np.random.default_rng(42)
X = RNG.standard_normal((9, 20))


def _network(n_components=8, read_noise=False, seed=33):
    teacher = make_subset_vi_mlp(20, (16, 8), 4, seed=3)
    variability = None
    if read_noise:
        variability = DeviceVariability(
            VariabilityParams(sigma_r=0.03, sigma_delta=0.03,
                              sigma_read=0.01),
            rng=np.random.default_rng(77))
    net = SpinBayesNetwork.from_subset_vi(
        teacher, n_components=n_components, n_levels=16,
        config=CimConfig(seed=6, variability=variability), seed=seed)
    net.ledger.reset()
    return net


class TestBitExactEquivalence:
    @pytest.mark.parametrize("n_components", [8, 5, 1])
    def test_samples_probs_and_ledger_match(self, n_components):
        a = _network(n_components)
        b = _network(n_components)
        seq = a.mc_forward(X, n_samples=6, batched=False)
        bat = b.mc_forward(X, n_samples=6, batched=True)
        np.testing.assert_array_equal(seq.samples, bat.samples)
        np.testing.assert_array_equal(seq.probs, bat.probs)
        assert a.ledger.as_dict() == b.ledger.as_dict()

    def test_sequential_reference_is_the_plain_mc_loop(self):
        a = _network()
        b = _network()
        seq = mc_predict_fn(a.forward, X, n_samples=5)
        bat = b.mc_forward_batched(X, n_samples=5)
        np.testing.assert_array_equal(seq.samples, bat.samples)
        assert a.ledger.as_dict() == b.ledger.as_dict()

    def test_chunked_matches_unchunked(self):
        a = _network()
        b = _network()
        full = a.mc_forward_batched(X, n_samples=5)
        chunked = b.mc_forward_batched(X, n_samples=5, chunk_passes=2)
        np.testing.assert_array_equal(full.samples, chunked.samples)
        assert a.ledger.as_dict() == b.ledger.as_dict()

    @pytest.mark.parametrize("n_components", [8, 5])
    def test_read_noise_still_bit_exact(self, n_components):
        # Read noise forces one pass per stacked call; the noise
        # stream is then consumed draw-for-draw in sequential order.
        a = _network(n_components, read_noise=True)
        b = _network(n_components, read_noise=True)
        seq = a.mc_forward(X, n_samples=4, batched=False)
        bat = b.mc_forward(X, n_samples=4, batched=True)
        np.testing.assert_array_equal(seq.samples, bat.samples)
        assert a.ledger.as_dict() == b.ledger.as_dict()

    def test_arbiter_state_matches_sequential(self):
        a = _network()
        b = _network()
        a.mc_forward(X, n_samples=5, batched=False)
        b.mc_forward_batched(X, n_samples=5)
        for la, lb in zip(a.mvm_layers(), b.mvm_layers()):
            assert la.last_selected == lb.last_selected
            if la.arbiter is not None:
                assert la.arbiter.selections == lb.arbiter.selections
                assert la.arbiter._stage_rng.total_ops \
                    == lb.arbiter._stage_rng.total_ops

    def test_rng_cycle_totals(self):
        # Three arbiters (two hidden blocks + head) x ceil(log2 8)
        # stages x 5 passes.
        net = _network()
        assert len(net.mvm_layers()) == 3
        net.mc_forward_batched(X, n_samples=5)
        assert net.ledger["rng_cycle"] == 3 * 3 * 5

    def test_batched_passes_differ_from_each_other(self):
        net = _network()
        result = net.mc_forward_batched(X, n_samples=8)
        assert result.samples.std(axis=0).sum() > 0.0


class TestBatchedApiContracts:
    def test_forward_batched_shape(self):
        logits = _network().forward_batched(X, n_samples=7)
        assert logits.shape == (7, len(X), 4)

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            _network().forward_batched(X, n_samples=0)

    def test_flattens_multi_dim_input_like_forward(self):
        net = _network()
        x_img = X.reshape(9, 4, 5)
        flat = net.forward_batched(X, n_samples=3)
        net2 = _network()
        img = net2.forward_batched(x_img, n_samples=3)
        np.testing.assert_array_equal(flat, img)

    def test_mc_forward_returns_predictive_result(self):
        result = _network().mc_forward(X, n_samples=4)
        assert result.samples.shape == (4, 9, 4)
        np.testing.assert_allclose(result.probs.sum(axis=-1), 1.0,
                                   rtol=1e-9)
        assert result.mutual_information.shape == (9,)

    def test_quantization_error_unaffected_by_batched_run(self):
        net = _network()
        before = net.quantization_error()
        net.mc_forward_batched(X, n_samples=3)
        assert net.quantization_error() == before
