"""Scenario-sweep engine: matrix expansion, determinism, results store."""

import json

import pytest

from repro.experiments.report import (
    format_metrics_markdown,
    format_metrics_report,
    summaries_from_metrics,
)
from repro.experiments.results_store import ResultsStore, load_results
from repro.experiments.sweeps import (
    MATRICES,
    PRESETS,
    MatrixBlock,
    MatrixSpec,
    ModelCache,
    Scenario,
    expand_matrix,
    run_scenario,
    run_sweep,
)


class TestScenario:
    def test_name_is_canonical(self):
        s = Scenario(family="spindrop", corruption="gaussian_noise",
                     severity=3, defect_rate=0.02, variability=0.05,
                     ood="letters")
        assert s.name == "spindrop/gaussian_noise@3/d0.02/v0.05/letters"

    def test_clean_name_has_no_severity(self):
        s = Scenario(family="spindrop")
        assert s.name == "spindrop/clean/d0/v0/none"

    def test_seed_is_stable_and_distinct(self):
        a = Scenario(family="spindrop")
        b = Scenario(family="spindrop")
        c = Scenario(family="scaledrop")
        # Stable across instances (hashlib, not salted hash()) and
        # distinct across scenario keys.
        assert a.seed == b.seed
        assert a.seed != c.seed
        assert 0 <= a.seed < 2 ** 32

    def test_markers_not_part_of_identity(self):
        a = Scenario(family="spindrop", markers=("smoke",))
        b = Scenario(family="spindrop", markers=("full",))
        assert a.name == b.name
        assert a.seed == b.seed


class TestExpandMatrix:
    def test_product_expansion_counts(self):
        spec = MatrixSpec(preset="tiny", blocks=(
            MatrixBlock(families=("spindrop", "scaledrop"),
                        corruptions=(None, ("gaussian_noise", 3)),
                        defect_rates=(0.0, 0.02)),
        ))
        assert len(expand_matrix(spec)) == 2 * 2 * 2

    def test_dedup_merges_markers(self):
        spec = MatrixSpec(preset="tiny", blocks=(
            MatrixBlock(families=("spindrop",), markers=("smoke",)),
            MatrixBlock(families=("spindrop",), markers=("full",)),
        ))
        scenarios = expand_matrix(spec)
        assert len(scenarios) == 1
        assert scenarios[0].markers == ("full", "smoke")

    def test_severity_collapses_without_corruption(self):
        spec = MatrixSpec(preset="tiny", blocks=(
            MatrixBlock(families=("spindrop",), corruptions=(None,)),
        ))
        (s,) = expand_matrix(spec)
        assert s.severity == 0

    def test_segmenter_collapses_device_axes(self):
        # The software segmenter has no CIM deployment: defect and
        # variability values dedup to a single scenario.
        spec = MatrixSpec(preset="tiny", blocks=(
            MatrixBlock(families=("segmenter",),
                        defect_rates=(0.0, 0.02, 0.05),
                        variabilities=(0.0, 0.05)),
        ))
        scenarios = expand_matrix(spec)
        assert len(scenarios) == 1
        assert scenarios[0].defect_rate == 0.0
        assert scenarios[0].variability == 0.0

    def test_marker_filtering(self):
        spec = MatrixSpec(preset="tiny", blocks=(
            MatrixBlock(families=("spindrop",), markers=("smoke",)),
            MatrixBlock(families=("scaledrop",), markers=("full",)),
        ))
        kept = expand_matrix(spec, markers=["smoke"])
        assert [s.family for s in kept] == ["spindrop"]

    def test_unknown_family_rejected(self):
        spec = MatrixSpec(preset="tiny", blocks=(
            MatrixBlock(families=("resnet",)),
        ))
        with pytest.raises(ValueError, match="unknown model family"):
            expand_matrix(spec)

    def test_ood_objects_is_segmentation_only(self):
        spec = MatrixSpec(preset="tiny", blocks=(
            MatrixBlock(families=("spindrop",), ood_sets=("ood_objects",)),
        ))
        with pytest.raises(ValueError, match="segmentation-only"):
            expand_matrix(spec)

    def test_named_matrices_expand_and_are_unique(self):
        for name, spec in MATRICES.items():
            scenarios = expand_matrix(spec)
            assert scenarios, name
            names = [s.name for s in scenarios]
            assert len(names) == len(set(names)), name
            assert spec.preset in PRESETS


class TestRunScenario:
    def test_scenario_metrics_are_deterministic(self):
        preset = PRESETS["tiny"]
        scenario = Scenario(family="spindrop", defect_rate=0.02,
                            ood="letters")
        cache = ModelCache()
        first = run_scenario(scenario, preset, cache)
        second = run_scenario(scenario, preset, cache)
        assert first == second
        m = first["metrics"]
        assert 0.0 <= m["accuracy"] <= 1.0
        assert 0.0 <= m["ece"] <= 1.0
        assert 0.0 <= m["ood_auroc"] <= 1.0
        assert m["energy_j_per_image"] > 0.0

    def test_scenario_independent_of_sweep_order(self):
        # Determinism contract: a scenario's record does not depend on
        # which other scenarios ran before it in the same process.
        preset = PRESETS["tiny"]
        scenario = Scenario(family="spindrop", corruption="gaussian_noise",
                            severity=3, ood="letters")
        cache = ModelCache()
        run_scenario(Scenario(family="spindrop"), preset, cache)
        with_warmup = run_scenario(scenario, preset, cache)
        alone = run_scenario(scenario, preset, ModelCache())
        assert with_warmup == alone


class TestRunSweep:
    def test_tiny_sweep_persists_and_reproduces(self, tmp_path):
        store_a = ResultsStore(tmp_path / "a")
        store_b = ResultsStore(tmp_path / "b")
        records_a = run_sweep("tiny", store=store_a)
        records_b = run_sweep("tiny", store=store_b)
        assert records_a == records_b
        # Byte-identical runs.jsonl is what the CI quality gate leans on.
        assert (store_a.runs_path.read_bytes()
                == store_b.runs_path.read_bytes())
        # Wall-clock noise is segregated into the meta sidecar.
        assert store_a.meta_path.exists()
        summary = json.loads(store_a.summary_path.read_text())
        assert summary["matrix"] == "tiny"
        assert set(summary["scenarios"]) == {r["scenario"]["name"]
                                             for r in records_a}

    def test_unknown_matrix_rejected(self):
        with pytest.raises(KeyError, match="unknown matrix"):
            run_sweep("nope")


class TestModelCache:
    def test_disk_cached_rerun_is_bit_identical(self, tmp_path):
        cache_dir = str(tmp_path / "models")
        cold = ModelCache(cache_dir=cache_dir)
        records_a = run_sweep("tiny", cache=cold)
        assert cold.hits == 0 and cold.misses > 0
        warm = ModelCache(cache_dir=cache_dir)
        records_b = run_sweep("tiny", cache=warm)
        assert warm.misses == 0
        assert warm.hits == cold.misses
        assert records_a == records_b    # restored weights ≡ retrained

    def test_memory_memoization_within_one_cache(self):
        cache = ModelCache()
        preset = PRESETS["tiny"]
        a = cache.get("spindrop", preset)
        b = cache.get("spindrop", preset)
        assert a is b
        assert cache.misses == 1

    def test_preset_change_invalidates_with_log_line(self, tmp_path):
        import dataclasses

        cache_dir = str(tmp_path / "models")
        ModelCache(cache_dir=cache_dir).get("spindrop", PRESETS["tiny"])
        lines = []
        cache = ModelCache(cache_dir=cache_dir, log=lines.append)
        changed = dataclasses.replace(PRESETS["tiny"], epochs=3)
        cache.get("spindrop", changed)
        assert cache.invalidations == 1 and cache.misses == 1
        assert any("cache-invalidate spindrop/tiny" in line
                   and "preset hash changed" in line
                   and "retraining" in line for line in lines)

    def test_corrupted_entry_invalidates_not_crashes(self, tmp_path):
        import os

        cache_dir = str(tmp_path / "models")
        ModelCache(cache_dir=cache_dir).get("spindrop", PRESETS["tiny"])
        entry = os.path.join(cache_dir, "spindrop-tiny", "arrays.bin")
        with open(entry, "wb") as fh:
            fh.write(b"garbage")
        lines = []
        cache = ModelCache(cache_dir=cache_dir, log=lines.append)
        model = cache.get("spindrop", PRESETS["tiny"])
        assert model is not None
        assert cache.invalidations == 1
        assert any("unreadable entry" in line for line in lines)

    def test_stats_reach_store_meta_and_progress(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        lines = []
        run_sweep("tiny", store=store,
                  cache_dir=str(tmp_path / "models"), progress=lines.append)
        assert any("model cache:" in line for line in lines)
        meta = [json.loads(line)
                for line in store.meta_path.read_text().splitlines()]
        assert any("model_cache" in entry for entry in meta)


class TestResultsStore:
    RECORD = {"scenario": {"name": "spindrop/clean/d0/v0/none",
                           "family": "spindrop"},
              "preset": "tiny",
              "metrics": {"accuracy": 0.9, "ece": 0.05,
                          "ood_auroc": None}}

    def test_round_trip(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        store.append(self.RECORD)
        assert load_results(tmp_path / "store") == [self.RECORD]

    def test_append_requires_scenario_and_metrics(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        with pytest.raises(ValueError):
            store.append({"metrics": {}})

    def test_summarize_keeps_latest_and_counts_history(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        store.append(self.RECORD)
        newer = json.loads(json.dumps(self.RECORD))
        newer["metrics"]["accuracy"] = 0.95
        store.append(newer)
        (summary,) = store.summarize()
        assert summary.n_runs == 2
        assert summary.metrics["accuracy"] == 0.95
        assert summary.family == "spindrop"
        assert store.scenario_metrics() == {
            "spindrop/clean/d0/v0/none": newer["metrics"]}

    def test_write_summary_document(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        store.append(self.RECORD)
        document = store.write_summary(matrix="tiny")
        assert document["n_runs"] == 1
        on_disk = json.loads(store.summary_path.read_text())
        assert on_disk == document

    def test_empty_store_reads_cleanly(self, tmp_path):
        store = ResultsStore(tmp_path / "store")
        assert store.runs() == []
        assert store.summarize() == []


class TestReport:
    METRICS = {"spindrop/clean/d0/v0/letters": {
        "accuracy": 0.9, "nll": 0.4, "ece": 0.05, "brier": 0.2,
        "ood_auroc": 0.8, "energy_j_per_image": 1.5e-9}}

    def test_text_report_contains_scenario_and_values(self):
        summaries = summaries_from_metrics(self.METRICS)
        text = format_metrics_report(summaries, title="Sweep")
        assert "spindrop/clean/d0/v0/letters" in text
        assert "90.0%" in text
        assert "0.800" in text

    def test_missing_metrics_render_as_dash(self):
        summaries = summaries_from_metrics(
            {"segmenter/clean/d0/v0/none": {"accuracy": 0.9}})
        text = format_metrics_report(summaries)
        assert "-" in text

    def test_markdown_report_is_a_table(self):
        markdown = format_metrics_markdown(
            summaries_from_metrics(self.METRICS), title="Sweep")
        assert markdown.startswith("### Sweep")
        assert "| spindrop/clean/d0/v0/letters |" in markdown

    def test_empty_inputs(self):
        assert "no runs" in format_metrics_report([])
        assert "no runs" in format_metrics_markdown([])
