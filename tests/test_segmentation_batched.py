"""Pass-stacked segmentation engine ≡ sequential loop, bit-for-bit.

The acceptance contract of PR 3: `mc_segment_batched` must reproduce
the sequential per-pass loop exactly (probs and per-pass samples) for
every T/width/p; the im2col plan cache must serve warm engines with
zero index-plan rebuilds and never serve stale plans after a shape
change; the inference fast paths (conv, pooling, upsampling, sign,
batch-norm) must match the gradient path's forward bit-for-bit; the
schedulers must hand per-pixel results back per request; and
DropConnect — the last sequential-only stochastic layer — must now
run stacked, bit-identically.
"""

import numpy as np
import pytest

from repro import nn
from repro.bayesian import (
    SegmenterEngine,
    make_bayesian_segmenter,
    make_dropconnect_mlp,
    mc_predict,
    mc_segment,
    mc_segment_batched,
    pixel_maps,
)
from repro.bayesian.spatial import SpatialSpinDropout
from repro.serving import BatchScheduler, ShardedScheduler
from repro.tensor import Tensor, functional as F, no_grad
from repro.tensor.functional import (
    clear_conv_plan_cache,
    conv_plan_cache_stats,
)

RNG = np.random.default_rng(31)


def _pair(width=8, p=0.15, seed=5):
    """Two independently built but identically seeded segmenters."""
    return (make_bayesian_segmenter(width=width, p=p, seed=seed),
            make_bayesian_segmenter(width=width, p=p, seed=seed))


class TestBitExactEquivalence:
    @pytest.mark.parametrize("n_samples", [1, 4, 7])
    @pytest.mark.parametrize("width,p", [(4, 0.15), (8, 0.15), (8, 0.5)])
    def test_batched_matches_sequential(self, n_samples, width, p):
        a, b = _pair(width=width, p=p)
        x = RNG.standard_normal((2, 1, 16, 16))
        seq = mc_segment(a, x, n_samples=n_samples, batched=False)
        bat = mc_segment_batched(b, x, n_samples=n_samples)
        np.testing.assert_array_equal(seq.samples, bat.samples)
        np.testing.assert_array_equal(seq.probs, bat.probs)

    @pytest.mark.parametrize("batch", [1, 3])
    def test_batch_sizes(self, batch):
        a, b = _pair()
        x = RNG.standard_normal((batch, 1, 16, 16))
        seq = mc_segment(a, x, n_samples=5, batched=False)
        bat = mc_segment_batched(b, x, n_samples=5)
        np.testing.assert_array_equal(seq.samples, bat.samples)

    def test_chunked_matches_unchunked(self):
        a, b = _pair()
        x = RNG.standard_normal((2, 1, 16, 16))
        full = mc_segment_batched(a, x, n_samples=6)
        chunked = mc_segment_batched(b, x, n_samples=6, chunk_passes=2)
        np.testing.assert_array_equal(full.samples, chunked.samples)

    def test_passes_vary(self):
        model = make_bayesian_segmenter(width=4, p=0.5, seed=0)
        x = RNG.standard_normal((2, 1, 16, 16))
        result = mc_segment_batched(model, x, n_samples=6)
        assert result.samples.std(axis=0).max() > 0

    def test_vectorized_mask_draw_matches_sequential_stream(self):
        rng_a = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)
        a = SpatialSpinDropout(8, p=0.3, ideal=True, rng=rng_a)
        b = SpatialSpinDropout(8, p=0.3, ideal=True, rng=rng_b)
        loop = np.stack([a.mc_draw_pass(3) for _ in range(5)])
        vec = b.mc_draw_passes(3, 5)
        np.testing.assert_array_equal(loop, vec)

    def test_vectorized_mask_draw_hardware_bank(self):
        a = SpatialSpinDropout(4, p=0.3, ideal=False,
                               rng=np.random.default_rng(9))
        b = SpatialSpinDropout(4, p=0.3, ideal=False,
                               rng=np.random.default_rng(9))
        loop = np.stack([a.mc_draw_pass(2) for _ in range(4)])
        vec = b.mc_draw_passes(2, 4)
        np.testing.assert_array_equal(loop, vec)
        assert a.modules_bank.total_ops == b.modules_bank.total_ops


class TestModeRestore:
    def test_mc_segment_restores_train_mode(self):
        model = make_bayesian_segmenter(width=4, seed=0)
        x = RNG.standard_normal((1, 1, 16, 16))
        model.train()
        mc_segment(model, x, n_samples=2)
        assert model.training and all(m.training for m in model.modules())
        model.eval()
        mc_segment(model, x, n_samples=2, batched=False)
        assert not model.training
        assert not any(m.training for m in model.modules())

    def test_mc_segment_leaves_mc_mode_off(self):
        model = make_bayesian_segmenter(width=4, seed=0)
        x = RNG.standard_normal((1, 1, 16, 16))
        mc_segment(model, x, n_samples=2)
        drop = [m for m in model.modules()
                if isinstance(m, SpatialSpinDropout)][0]
        assert not drop.mc_mode and drop._mc_bank is None

    def test_mc_predict_restores_train_mode(self):
        model = make_dropconnect_mlp(12, (8,), 3, seed=1)
        model.train()
        mc_predict(model, RNG.standard_normal((2, 12)), n_samples=2)
        assert model.training

    def test_restore_preserves_heterogeneous_modes(self):
        # A submodule deliberately pinned to eval (frozen BatchNorm
        # during fine-tuning) must come back frozen, not inherit the
        # root's training flag.
        model = make_bayesian_segmenter(width=4, seed=0)
        model.train()
        model[1].eval()                      # freeze first BatchNorm
        mc_segment(model, RNG.standard_normal((1, 1, 16, 16)),
                   n_samples=2)
        assert model.training
        assert not model[1].training


class TestPlanCache:
    def test_warm_engine_performs_zero_rebuilds(self):
        model = make_bayesian_segmenter(width=4, seed=0)
        x = RNG.standard_normal((2, 1, 16, 16))
        mc_segment_batched(model, x, n_samples=3)     # warm
        before = conv_plan_cache_stats()["builds"]
        mc_segment_batched(model, x, n_samples=3)
        stats = conv_plan_cache_stats()
        assert stats["builds"] == before
        assert stats["hits"] > 0

    def test_new_shape_builds_new_plan_and_stays_correct(self):
        clear_conv_plan_cache()
        w = Tensor(np.sign(RNG.standard_normal((3, 2, 3, 3))))
        x_small = Tensor(RNG.standard_normal((1, 2, 8, 8)))
        x_large = Tensor(RNG.standard_normal((1, 2, 12, 12)))
        with no_grad():
            out_small = F.conv2d(x_small, w, padding=1).data
            builds_after_small = conv_plan_cache_stats()["builds"]
            out_large = F.conv2d(x_large, w, padding=1).data
            assert conv_plan_cache_stats()["builds"] > builds_after_small
            # No stale plans: recompute both against a cold cache.
            clear_conv_plan_cache()
            np.testing.assert_array_equal(
                F.conv2d(x_small, w, padding=1).data, out_small)
            np.testing.assert_array_equal(
                F.conv2d(x_large, w, padding=1).data, out_large)

    def test_cache_is_bounded(self):
        clear_conv_plan_cache()
        from repro.tensor.functional import _conv_plans
        with no_grad():
            for size in range(6, 6 + _conv_plans.max_plans + 8):
                x = Tensor(np.ones((1, 1, size, size)))
                F.max_pool2d(x, 2)
        assert conv_plan_cache_stats()["plans"] <= _conv_plans.max_plans
        assert conv_plan_cache_stats()["evictions"] > 0


class TestInferenceFastPaths:
    """no_grad fast paths must match the gradient path bit-for-bit."""

    def _grad_forward(self, fn, x):
        xt = Tensor(x, requires_grad=True)
        return fn(xt).data

    def test_max_pool_matches(self):
        x = RNG.standard_normal((2, 3, 8, 8))
        with no_grad():
            fast = F.max_pool2d(Tensor(x), 2).data
        np.testing.assert_array_equal(
            fast, self._grad_forward(lambda t: F.max_pool2d(t, 2), x))

    def test_max_pool_matches_on_sign_values(self):
        x = np.sign(RNG.standard_normal((2, 3, 8, 8)))
        with no_grad():
            fast = F.max_pool2d(Tensor(x), 2).data
        np.testing.assert_array_equal(
            fast, self._grad_forward(lambda t: F.max_pool2d(t, 2), x))

    def test_upsample_matches(self):
        x = RNG.standard_normal((2, 3, 5, 5))
        with no_grad():
            fast = F.upsample2d(Tensor(x), 2).data
        np.testing.assert_array_equal(
            fast, self._grad_forward(lambda t: F.upsample2d(t, 2), x))

    def test_conv_binary_route_is_bit_exact(self):
        # ±1 kernel on {−1, 0, 1} activations: integer-exact sums, so
        # the float32 inference route matches the training path
        # bit-for-bit.
        x = np.sign(RNG.standard_normal((2, 3, 9, 9)))
        x[0, 0, 0, 0] = 0.0
        w = np.sign(RNG.standard_normal((4, 3, 3, 3)))
        with no_grad():
            fast = F.conv2d(Tensor(x), Tensor(w), padding=1).data
        ref = self._grad_forward(
            lambda t: F.conv2d(t, Tensor(w, requires_grad=True),
                               padding=1), x)
        np.testing.assert_array_equal(fast, ref)

    def test_conv_float_route_matches_to_rounding(self):
        # Real-valued data keeps float64 GEMMs; the single-GEMM
        # inference layout may regroup the reduction, so agreement
        # with the einsum training path is to rounding (1–2 ulp), not
        # bitwise.  Sequential-vs-batched MC parity is unaffected:
        # both run this same kernel.
        x = RNG.standard_normal((2, 3, 9, 9))
        w = RNG.standard_normal((4, 3, 3, 3))
        with no_grad():
            fast = F.conv2d(Tensor(x), Tensor(w), padding=1).data
        ref = self._grad_forward(
            lambda t: F.conv2d(t, Tensor(w, requires_grad=True),
                               padding=1), x)
        np.testing.assert_allclose(fast, ref, rtol=1e-12, atol=1e-12)

    def test_conv_strided_no_padding(self):
        x = np.sign(RNG.standard_normal((2, 2, 10, 10)))
        w = np.sign(RNG.standard_normal((3, 2, 3, 3)))
        with no_grad():
            fast = F.conv2d(Tensor(x), Tensor(w), stride=2).data
        ref = self._grad_forward(
            lambda t: F.conv2d(t, Tensor(w, requires_grad=True), stride=2),
            x)
        np.testing.assert_array_equal(fast, ref)

    def test_batchnorm_eval_matches(self):
        bn = nn.BatchNorm2d(3)
        bn.update_buffer("running_mean", RNG.standard_normal(3))
        bn.update_buffer("running_var", RNG.random(3) + 0.5)
        bn.gamma.data = RNG.standard_normal(3)
        bn.beta.data = RNG.standard_normal(3)
        bn.eval()
        x = RNG.standard_normal((2, 3, 4, 4))
        with no_grad():
            fast = bn(Tensor(x)).data
        ref = bn(Tensor(x, requires_grad=True)).data
        np.testing.assert_array_equal(fast, ref)

    def test_sign_matches(self):
        x = RNG.standard_normal((5, 7))
        with no_grad():
            fast = F.sign_ste(Tensor(x)).data
        np.testing.assert_array_equal(
            fast, self._grad_forward(F.sign_ste, x))

    def test_binary_conv_layer_matches(self):
        conv = nn.BinaryConv2d(3, 4, 3, padding=1,
                               rng=np.random.default_rng(2))
        conv.eval()
        x = RNG.standard_normal((2, 3, 8, 8))
        with no_grad():
            fast = conv(Tensor(x)).data
        ref = conv(Tensor(x, requires_grad=True)).data
        np.testing.assert_array_equal(fast, ref)

    def test_gradients_still_flow(self):
        conv = nn.BinaryConv2d(2, 3, 3, padding=1,
                               rng=np.random.default_rng(3))
        out = conv(Tensor(RNG.standard_normal((1, 2, 6, 6)),
                          requires_grad=True))
        out.sum().backward()
        assert conv.weight.grad is not None


class TestPerPixelServing:
    def _engine(self, seed=7):
        return SegmenterEngine(make_bayesian_segmenter(width=4, seed=seed))

    def test_round_trip_shapes(self):
        scheduler = BatchScheduler(self._engine(), n_samples=4,
                                   feature_shape=(1, 16, 16))
        ticket = scheduler.submit(RNG.standard_normal((2, 1, 16, 16)))
        result = ticket.result()
        assert result.samples.shape == (4, 2 * 256, 3)
        assert result.probs.shape == (2 * 256, 3)
        pred, entropy = pixel_maps(result, (2, 16, 16))
        assert pred.shape == entropy.shape == (2, 16, 16)

    def test_coalesced_equals_direct_slices(self):
        x1 = RNG.standard_normal((2, 1, 16, 16))
        x2 = RNG.standard_normal((3, 1, 16, 16))
        scheduler = BatchScheduler(self._engine(seed=9), n_samples=4,
                                   feature_shape=(1, 16, 16))
        t1, t2 = scheduler.submit(x1), scheduler.submit(x2)
        scheduler.flush()
        direct = self._engine(seed=9).mc_forward_batched(
            np.concatenate([x1, x2]), n_samples=4)
        np.testing.assert_array_equal(t1.result().samples,
                                      direct.samples[:, :2 * 256])
        np.testing.assert_array_equal(t2.result().samples,
                                      direct.samples[:, 2 * 256:])

    def test_single_unbatched_image(self):
        scheduler = BatchScheduler(self._engine(), n_samples=3,
                                   feature_shape=(1, 16, 16))
        ticket = scheduler.submit(RNG.standard_normal((1, 16, 16)))
        assert ticket.result().probs.shape == (256, 3)

    def test_sharded_per_pixel(self):
        engines = [self._engine(seed=s) for s in (1, 2)]
        scheduler = ShardedScheduler(engines, parallel=False, n_samples=3,
                                     feature_shape=(1, 16, 16))
        a = scheduler.submit(RNG.standard_normal((2, 1, 16, 16)))
        b = scheduler.submit(RNG.standard_normal((1, 1, 16, 16)))
        scheduler.flush()
        assert a.result().probs.shape == (2 * 256, 3)
        assert b.result().probs.shape == (256, 3)
        assert scheduler.stats.shard_calls == 2

    def test_no_grad_is_thread_local(self):
        # A serving thread inside no_grad must not disable (or
        # re-enable) gradient tracking for a concurrently training
        # thread — the flag is per-thread.
        import threading
        from repro.tensor import is_grad_enabled

        seen = {}
        release = threading.Event()

        def worker():
            with no_grad():
                seen["worker"] = is_grad_enabled()
                release.wait(timeout=5)

        thread = threading.Thread(target=worker)
        thread.start()
        try:
            while "worker" not in seen:
                pass
            assert is_grad_enabled()          # main thread unaffected
            out = F.mul(Tensor(np.ones(3), requires_grad=True), 2.0)
            assert out.requires_grad
        finally:
            release.set()
            thread.join()
        assert seen["worker"] is False

    def test_sharded_parallel_threads(self):
        # Replica calls run on a thread pool; the conv scratch arenas
        # are thread-local, so concurrent stacked forwards never share
        # a buffer.
        engines = [self._engine(seed=s) for s in (1, 2, 3)]
        with ShardedScheduler(engines, parallel=True, n_samples=3,
                              feature_shape=(1, 16, 16)) as scheduler:
            tickets = [scheduler.submit(RNG.standard_normal((2, 1, 16, 16)))
                       for _ in range(3)]
            scheduler.flush()
            for ticket in tickets:
                result = ticket.result()
                assert result.probs.shape == (2 * 256, 3)
                np.testing.assert_allclose(
                    result.probs.sum(axis=-1), 1.0, rtol=1e-9)


class TestDropConnectStacked:
    @pytest.mark.parametrize("ideal", [True, False])
    def test_batched_matches_sequential(self, ideal):
        x = RNG.standard_normal((4, 12))
        a = make_dropconnect_mlp(12, (8, 6), 3, p=0.2, ideal_rng=ideal,
                                 seed=4)
        b = make_dropconnect_mlp(12, (8, 6), 3, p=0.2, ideal_rng=ideal,
                                 seed=4)
        seq = mc_predict(a, x, n_samples=5, batched=False)
        bat = mc_predict(b, x, n_samples=5, batched=True)
        np.testing.assert_array_equal(seq.samples, bat.samples)

    def test_chunked(self):
        x = RNG.standard_normal((3, 12))
        a = make_dropconnect_mlp(12, (8,), 3, seed=2)
        b = make_dropconnect_mlp(12, (8,), 3, seed=2)
        full = mc_predict(a, x, n_samples=6, chunk_passes=None)
        chunked = mc_predict(b, x, n_samples=6, chunk_passes=2)
        np.testing.assert_array_equal(full.samples, chunked.samples)

    def test_banks_cleared_after_run(self):
        from repro.bayesian.dropconnect import DropConnectLinear
        model = make_dropconnect_mlp(12, (8,), 3, seed=2)
        mc_predict(model, RNG.standard_normal((2, 12)), n_samples=3)
        for layer in model.modules():
            if isinstance(layer, DropConnectLinear):
                assert layer._mc_bank is None

    def test_bank_row_mismatch_raises(self):
        from repro.bayesian.dropconnect import DropConnectLinear
        layer = DropConnectLinear(4, 3, p=0.2,
                                  rng=np.random.default_rng(0))
        layer.eval()
        layer.enable_mc(True)
        layer.mc_install_bank(np.ones((2, 3, 4)), rows_per_pass=2)
        with pytest.raises(ValueError):
            with no_grad():
                layer(Tensor(RNG.standard_normal((3, 4))))
        layer.mc_clear_bank()


class TestGroupedDropoutConvFusion:
    """The dropout→conv partial-sum fusion generalized to groups > 1."""

    @staticmethod
    def _grouped_pair(groups, width=8, n_classes=3, p=0.2, seed=7):
        from repro.bayesian import Upsample2d

        def make():
            rng = np.random.default_rng(seed)
            return nn.Sequential(
                nn.BinaryConv2d(1, width, 3, padding=1, rng=rng,
                                binarize_input=True),
                nn.BatchNorm2d(width),
                nn.SignActivation(),
                nn.MaxPool2d(2),
                SpatialSpinDropout(width, p=p, ideal=True, rng=rng),
                nn.BinaryConv2d(width, 2 * width, 3, padding=1, rng=rng,
                                groups=groups),
                nn.BatchNorm2d(2 * width),
                nn.SignActivation(),
                Upsample2d(2),
                nn.BinaryConv2d(2 * width, n_classes, 3, padding=1,
                                rng=rng),
            )

        a, b = make(), make()
        a.eval()
        b.eval()
        return a, b

    @pytest.mark.parametrize("groups", [1, 2, 4])
    def test_grouped_fusion_is_bit_exact(self, groups):
        a, b = self._grouped_pair(groups)
        x = np.random.default_rng(0).standard_normal((3, 1, 16, 16))
        bat = mc_segment(a, x, n_samples=6, batched=True)
        seq = mc_segment(b, x, n_samples=6, batched=False)
        np.testing.assert_array_equal(bat.samples, seq.samples)
        np.testing.assert_array_equal(bat.probs, seq.probs)

    def test_grouped_plan_engages(self, monkeypatch):
        # The grouped model must take the fused mask×partials route,
        # not silently fall back to per-pass convolution.
        from repro.bayesian import segmentation as seg

        calls = []
        orig = seg._channel_gated_conv_apply

        def counting(plan, bank_slice):
            calls.append(bank_slice.shape)
            return orig(plan, bank_slice)

        monkeypatch.setattr(seg, "_channel_gated_conv_apply", counting)
        a, _ = self._grouped_pair(groups=4)
        mc_segment(a, np.random.default_rng(1).standard_normal(
            (2, 1, 16, 16)), n_samples=4, batched=True)
        assert calls

    def test_grouped_plan_holds_per_group_partials(self):
        from repro.bayesian.segmentation import _channel_gated_conv_plan

        a, _ = self._grouped_pair(groups=4, width=8)
        modules = list(a.modules())
        drop_idx = next(i for i, m in enumerate(modules)
                        if isinstance(m, SpatialSpinDropout))
        base = np.sign(np.random.default_rng(2).standard_normal(
            (2, 8, 8, 8))).astype(np.float64)
        plan = _channel_gated_conv_plan(modules[drop_idx:], modules, base)
        assert plan is not None
        _, conv, partials, _ = plan
        assert conv.groups == 4
        assert len(partials) == 4
        for slab in partials:
            assert slab.shape[1] == 8 // 4      # C/G input maps
            assert slab.shape[2] == 16 // 4     # O/G output maps


class TestSegmenterEngineApi:
    def test_engine_exposes_both_paths(self):
        engine = SegmenterEngine(make_bayesian_segmenter(width=4, seed=3))
        x = RNG.standard_normal((1, 1, 16, 16))
        bat = engine.mc_forward_batched(x, n_samples=3)
        assert bat.samples.shape == (3, 256, 3)
        engine2 = SegmenterEngine(make_bayesian_segmenter(width=4, seed=3))
        seq = engine2.mc_forward(x, n_samples=3, batched=False)
        np.testing.assert_array_equal(seq.samples, bat.samples)

    def test_rejects_non_image_input(self):
        engine = SegmenterEngine(make_bayesian_segmenter(width=4, seed=3))
        with pytest.raises(ValueError):
            engine.mc_forward_batched(RNG.standard_normal((2, 16)),
                                      n_samples=2)
