"""SLO control plane: quarantine, admission, adaptive-T, soak."""

import numpy as np
import pytest

from repro.bayesian import BayesianCim, make_spindrop_mlp
from repro.cim import CimConfig
from repro.serving import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionRejected,
    Autoscaler,
    BatchScheduler,
    ControlPlane,
    HealthPolicy,
    LoadMetrics,
    ShardedScheduler,
    SloPolicy,
)
from repro.serving.controlplane import HEALTHY, PROBATION, QUARANTINED
from repro.serving.faults import (
    FailureSchedule,
    FlakyEngine,
    InjectedFault,
    PoisonEngine,
    SlowEngine,
)

RNG = np.random.default_rng(41)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _engine(seed=9):
    model = make_spindrop_mlp(12, (8,), 3, p=0.3, seed=2)
    return BayesianCim(model, CimConfig(seed=4), seed=seed)


class TestFaultInjection:
    def test_schedule_is_deterministic_and_order_independent(self):
        a = FailureSchedule.from_rate(0.3, seed=11)
        b = FailureSchedule.from_rate(0.3, seed=11)
        # Querying out of order must not change any answer.
        forward = [a.should_fail(i) for i in range(50)]
        backward = [b.should_fail(i) for i in reversed(range(50))]
        assert forward == list(reversed(backward))
        assert any(forward) and not all(forward)

    def test_explicit_fail_calls_take_precedence(self):
        schedule = FailureSchedule(fail_calls=(0, 3), rate=0.0)
        assert [schedule.should_fail(i) for i in range(5)] == \
            [True, False, False, True, False]

    def test_flaky_engine_raises_without_advancing_rng(self):
        x = RNG.standard_normal((2, 12))
        flaky = FlakyEngine(_engine(seed=5),
                            FailureSchedule(fail_calls=(0,)))
        with pytest.raises(InjectedFault):
            flaky.mc_forward_batched(x, n_samples=3)
        # The wrapped engine was never touched: its next successful
        # call matches a fresh engine's first call bit-for-bit.
        got = flaky.mc_forward_batched(x, n_samples=3)
        want = _engine(seed=5).mc_forward_batched(x, n_samples=3)
        np.testing.assert_array_equal(got.samples, want.samples)
        assert flaky.calls == 2 and flaky.failures == 1

    def test_slow_engine_delays_then_delegates(self):
        naps = []
        slow = SlowEngine(_engine(seed=5), delay_s=0.25,
                          sleep=naps.append)
        result = slow.mc_forward_batched(RNG.standard_normal((1, 12)),
                                         n_samples=2)
        assert naps == [0.25]
        assert result.probs.shape == (1, 3)

    def test_wrappers_forward_other_attributes(self):
        engine = _engine(seed=5)
        assert FlakyEngine(engine, 0.0).config is engine.config

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureSchedule(rate=1.5)
        with pytest.raises(ValueError):
            FailureSchedule(fail_calls=(-1,))
        with pytest.raises(ValueError):
            FailureSchedule().should_fail(-1)


class TestAdmission:
    def test_hard_bound_rejects_with_queue_full(self):
        controller = AdmissionController(AdmissionPolicy(max_queue_rows=8))
        controller.admit(4, 0)
        with pytest.raises(AdmissionRejected) as excinfo:
            controller.admit(5, 4)
        assert excinfo.value.reason == "queue_full"
        assert controller.admitted_requests == 1
        assert controller.rejected_requests == 1

    def test_soft_watermark_sheds_only_when_p95_breached(self):
        controller = AdmissionController(AdmissionPolicy(
            max_queue_rows=100, shed_queue_rows=8, shed_p95_s=0.050))
        # Past the watermark with a healthy p95: still admitted.
        controller.admit(4, 6, p95_supplier=lambda: 0.010)
        with pytest.raises(AdmissionRejected) as excinfo:
            controller.admit(4, 6, p95_supplier=lambda: 0.500)
        assert excinfo.value.reason == "overload"
        assert controller.shed_requests == 1

    def test_p95_supplier_only_called_past_the_watermark(self):
        calls = []

        def supplier():
            calls.append(1)
            return 0.0

        controller = AdmissionController(AdmissionPolicy(
            max_queue_rows=100, shed_queue_rows=50, shed_p95_s=0.05))
        controller.admit(1, 0, p95_supplier=supplier)
        assert calls == []                   # cheap path stayed cheap

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_queue_rows=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(max_queue_rows=10, shed_queue_rows=20)
        with pytest.raises(ValueError):
            AdmissionPolicy(shed_p95_s=0.0)

    def test_scheduler_submit_rejects_past_bound(self):
        scheduler = BatchScheduler(
            _engine(), n_samples=2, max_batch=1024,
            admission=AdmissionPolicy(max_queue_rows=8))
        scheduler.submit(RNG.standard_normal((6, 12)))
        with pytest.raises(AdmissionRejected, match="queue full"):
            scheduler.submit(RNG.standard_normal((3, 12)))
        # The rejected request was never enqueued.
        assert scheduler.pending_rows == 6
        assert scheduler.stats.requests == 1
        # Draining the queue restores admission.
        scheduler.flush()
        ticket = scheduler.submit(RNG.standard_normal((3, 12)))
        scheduler.flush()
        assert ticket.result().probs.shape == (3, 3)

    def test_async_submit_rejects_past_bound(self):
        import asyncio

        from repro.serving import AsyncBatchScheduler

        async def go():
            inner = BatchScheduler(
                _engine(), n_samples=2, max_batch=1024,
                admission=AdmissionPolicy(max_queue_rows=8))
            async with AsyncBatchScheduler(
                    inner, flush_interval=30.0,
                    max_pending_rows=1024) as frontend:
                ok = await frontend.submit(RNG.standard_normal((6, 12)))
                with pytest.raises(AdmissionRejected):
                    await frontend.submit(RNG.standard_normal((3, 12)))
                await frontend.flush()
                return await ok

        assert asyncio.run(go()).probs.shape == (6, 3)


class TestSloPolicy:
    def test_multiplier_is_identity_under_target(self):
        slo = SloPolicy(target_p95_s=0.100)
        assert slo.multiplier(0.050) == 1.0
        assert slo.multiplier(0.100) == 1.0
        assert slo.multiplier(0.200) == pytest.approx(0.5)

    def test_served_t_floors_and_ceilings(self):
        slo = SloPolicy(target_p95_s=0.100, t_min=4)
        assert slo.served_t(20, 0.050) == 20       # under target: full T
        assert slo.served_t(20, 0.200) == 10       # 2x breach: half T
        assert slo.served_t(20, 10.0) == 4         # floored at t_min
        assert slo.served_t(2, 10.0) == 2          # never above requested
        assert slo.degraded_groups == 2
        assert slo.shed_passes == (20 - 10) + (20 - 4)

    def test_max_degradation_floors_the_multiplier(self):
        slo = SloPolicy(target_p95_s=0.100, t_min=1, max_degradation=0.5)
        assert slo.served_t(20, 10.0) == 10        # never below half

    def test_validation(self):
        with pytest.raises(ValueError):
            SloPolicy(target_p95_s=0.0)
        with pytest.raises(ValueError):
            SloPolicy(target_p95_s=0.1, t_min=0)
        with pytest.raises(ValueError):
            SloPolicy(target_p95_s=0.1, max_degradation=1.5)


class TestHealthStateMachine:
    def _plane(self, clock=None, **policy):
        policy.setdefault("quarantine_after", 3)
        policy.setdefault("probe_backoff_s", 1.0)
        return ControlPlane(health=HealthPolicy(**policy),
                            clock=clock or FakeClock())

    def test_quarantines_after_consecutive_failures_only(self):
        plane = self._plane()
        engine = object()
        boom = RuntimeError("boom")
        for _ in range(2):
            plane.record_outcome(engine, ok=False, error=boom)
        plane.record_outcome(engine, ok=True, latency_s=0.01, rows=4)
        assert plane.health_of(engine).state == HEALTHY
        for _ in range(3):                  # success reset the streak
            plane.record_outcome(engine, ok=False, error=boom)
        record = plane.health_of(engine)
        assert record.state == QUARANTINED
        assert record.failures == 5
        assert record.last_error is boom
        assert plane.quarantines == 1

    def test_quarantined_replica_gets_no_shards_until_backoff(self):
        clock = FakeClock()
        plane = self._plane(clock=clock, probe_backoff_s=2.0)
        good, bad = object(), object()
        for _ in range(3):
            plane.record_outcome(bad, ok=False, error=RuntimeError())
        assert plane.eligible_engines([good, bad]) == [good]
        clock.advance(1.0)
        assert plane.eligible_engines([good, bad]) == [good]
        clock.advance(1.5)                  # backoff elapsed: probe time
        assert plane.eligible_engines([good, bad]) == [good, bad]
        record = plane.health_of(bad)
        assert record.state == PROBATION
        assert record.probes == 1

    def test_probation_success_streak_readmits(self):
        clock = FakeClock()
        plane = self._plane(clock=clock, probation_successes=2)
        engine = object()
        for _ in range(3):
            plane.record_outcome(engine, ok=False, error=RuntimeError())
        clock.advance(10.0)
        plane.eligible_engines([engine])    # -> probation
        plane.record_outcome(engine, ok=True, latency_s=0.01)
        assert plane.health_of(engine).state == PROBATION
        plane.record_outcome(engine, ok=True, latency_s=0.01)
        record = plane.health_of(engine)
        assert record.state == HEALTHY
        assert record.readmissions == 1
        # Backoff reset: a fresh quarantine starts from the base delay.
        assert record.backoff_s == plane.health_policy.probe_backoff_s

    def test_failed_probe_doubles_backoff_up_to_cap(self):
        clock = FakeClock()
        plane = self._plane(clock=clock, probe_backoff_s=1.0,
                            backoff_factor=2.0, max_backoff_s=3.0)
        engine = object()
        for _ in range(3):
            plane.record_outcome(engine, ok=False, error=RuntimeError())
        assert plane.health_of(engine).backoff_s == 1.0
        clock.advance(1.5)
        plane.eligible_engines([engine])              # probe...
        plane.record_outcome(engine, ok=False, error=RuntimeError())
        record = plane.health_of(engine)              # ...fails
        assert record.state == QUARANTINED
        assert record.backoff_s == 2.0
        clock.advance(2.5)
        plane.eligible_engines([engine])
        plane.record_outcome(engine, ok=False, error=RuntimeError())
        assert plane.health_of(engine).backoff_s == 3.0   # capped
        assert plane.health_of(engine).quarantines == 3

    def test_single_failure_on_probation_requarantines(self):
        clock = FakeClock()
        plane = self._plane(clock=clock, quarantine_after=3)
        engine = object()
        for _ in range(3):
            plane.record_outcome(engine, ok=False, error=RuntimeError())
        clock.advance(2.0)
        plane.eligible_engines([engine])
        # One failure is enough on probation — no fresh streak of 3.
        plane.record_outcome(engine, ok=False, error=RuntimeError())
        assert plane.health_of(engine).state == QUARANTINED

    def test_all_quarantined_falls_back_to_full_set(self):
        plane = self._plane()
        a, b = object(), object()
        for engine in (a, b):
            for _ in range(3):
                plane.record_outcome(engine, ok=False,
                                     error=RuntimeError())
        # Availability beats hygiene: a fully-quarantined fleet still
        # serves rather than dropping every request.
        assert plane.eligible_engines([a, b]) == [a, b]

    def test_states_and_as_dict_telemetry(self):
        plane = self._plane()
        engine = object()
        plane.record_outcome(engine, ok=True, latency_s=0.02, rows=8)
        assert plane.states() == {"replica-0": HEALTHY}
        view = plane.health_of(engine).as_dict()
        assert view["successes"] == 1 and view["rows"] == 8
        assert view["p95_latency_s"] == pytest.approx(0.02)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            HealthPolicy(quarantine_after=0)
        with pytest.raises(ValueError):
            HealthPolicy(probe_backoff_s=0.0)
        with pytest.raises(ValueError):
            HealthPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            HealthPolicy(probe_backoff_s=2.0, max_backoff_s=1.0)
        with pytest.raises(ValueError):
            HealthPolicy(probation_successes=0)


class TestShardedQuarantine:
    """End-to-end: the sharded scheduler drives the health loop."""

    def _fleet(self, bad_engine, clock=None, autoscaler_factory=None,
               **policy):
        policy.setdefault("quarantine_after", 2)
        policy.setdefault("probe_backoff_s", 1.0)
        plane = ControlPlane(health=HealthPolicy(**policy),
                             clock=clock or FakeClock())
        sharded = ShardedScheduler(
            [_engine(seed=5), bad_engine], n_samples=2, parallel=False,
            max_batch=1024, controlplane=plane)
        return plane, sharded

    def _two_request_flush(self, sharded):
        """Two requests -> one shard per replica (greedy balance)."""
        tickets = [sharded.submit(RNG.standard_normal((2, 12)))
                   for _ in range(2)]
        sharded.flush()
        return tickets

    def test_failing_replica_is_quarantined_and_unscheduled(self):
        bad = PoisonEngine()
        plane, sharded = self._fleet(bad, quarantine_after=2)
        for _ in range(2):                  # two failing flushes
            self._two_request_flush(sharded)
        assert plane.health_of(bad).state == QUARANTINED
        assert plane.quarantined_engines() == [bad]
        calls_when_quarantined = bad.calls
        # Subsequent flushes route everything to the healthy replica.
        tickets = self._two_request_flush(sharded)
        for ticket in tickets:
            assert ticket.result().probs.shape == (2, 3)
        assert bad.calls == calls_when_quarantined

    def test_quarantine_promotes_a_warm_spare(self):
        bad = PoisonEngine()
        plane, sharded = self._fleet(bad, quarantine_after=2)
        scaler = Autoscaler(sharded, lambda: _engine(seed=11),
                            max_replicas=2, warm_spares=1,
                            cooldown_s=1000.0)
        plane.autoscaler = scaler
        for _ in range(2):
            self._two_request_flush(sharded)
        # The quarantined replica's capacity was replaced in the same
        # flush that quarantined it — despite cooldown and the clamp.
        assert plane.health_of(bad).state == QUARANTINED
        assert scaler.promotions == 1
        assert plane.promotions == 1
        assert sharded.n_replicas == 3      # bad (parked) + 2 serving
        assert scaler.spare_count == 0

    def test_flaky_replica_requarantines_then_readmits(self):
        # Fails calls 0-1 (quarantine), fails its first probe (call 2,
        # re-quarantine with doubled backoff), then stays clean.
        flaky = FlakyEngine(_engine(seed=6),
                            FailureSchedule(fail_calls=(0, 1, 2)))
        clock = FakeClock()
        plane, sharded = self._fleet(
            flaky, clock=clock, quarantine_after=2, probe_backoff_s=1.0,
            backoff_factor=2.0, probation_successes=2)
        for _ in range(2):
            self._two_request_flush(sharded)
        assert plane.health_of(flaky).state == QUARANTINED

        clock.advance(1.5)                  # first probe: fails
        self._two_request_flush(sharded)
        record = plane.health_of(flaky)
        assert record.state == QUARANTINED
        assert record.backoff_s == 2.0

        clock.advance(1.5)                  # still inside the backoff
        self._two_request_flush(sharded)
        assert plane.health_of(flaky).state == QUARANTINED

        clock.advance(1.0)                  # second probe: succeeds
        self._two_request_flush(sharded)
        assert plane.health_of(flaky).state == PROBATION
        self._two_request_flush(sharded)    # second clean flush
        record = plane.health_of(flaky)
        assert record.state == HEALTHY
        assert record.readmissions == 1

    def test_remove_quarantined_evicts_from_the_scheduler(self):
        bad = PoisonEngine()
        plane, sharded = self._fleet(bad, quarantine_after=2)
        for _ in range(2):
            self._two_request_flush(sharded)
        removed = plane.remove_quarantined()
        assert removed == [bad]
        assert sharded.n_replicas == 1
        assert plane.health_of(bad) is None     # tracking dropped
        # The shrunk fleet keeps serving.
        ticket = sharded.submit(RNG.standard_normal((2, 12)))
        sharded.flush()
        assert ticket.result().probs.shape == (2, 3)

    def test_remove_quarantined_never_takes_the_last_replica(self):
        bad = PoisonEngine()
        plane = ControlPlane(health=HealthPolicy(quarantine_after=1,
                                                 probe_backoff_s=1.0),
                             clock=FakeClock())
        sharded = ShardedScheduler([bad], n_samples=2, parallel=False,
                                   controlplane=plane)
        ticket = sharded.submit(RNG.standard_normal((2, 12)))
        sharded.flush()
        with pytest.raises(InjectedFault):
            ticket.result()
        assert plane.health_of(bad).state == QUARANTINED
        assert plane.remove_quarantined() == []
        assert sharded.n_replicas == 1


class TestAdaptiveT:
    def _primed_plane(self, target_p95_s, observed_p95, **slo_kwargs):
        """A plane whose metrics window already reads ``observed_p95``."""
        metrics = LoadMetrics()
        for _ in range(4):
            metrics.record_flush(rows=4, n_requests=1,
                                 latency_s=observed_p95)
        return ControlPlane(
            slo=SloPolicy(target_p95_s, **slo_kwargs), metrics=metrics,
            clock=FakeClock())

    def test_breached_p95_degrades_served_t(self):
        plane = self._primed_plane(target_p95_s=0.050, observed_p95=0.200,
                                   t_min=2)
        scheduler = BatchScheduler(_engine(), n_samples=8, max_batch=1024,
                                   controlplane=plane)
        ticket = scheduler.submit(RNG.standard_normal((3, 12)))
        scheduler.flush()
        result = ticket.result()
        # 4x breach: a quarter of the requested passes (8 -> 2).
        assert result.samples.shape[0] == 2
        assert result.served_samples == 2
        assert result.degraded is True
        assert scheduler.stats.degraded_flushes == 1
        assert plane.slo.degraded_groups == 1
        assert plane.slo.shed_passes == 6

    def test_requested_t_is_the_ceiling_per_group(self):
        plane = self._primed_plane(target_p95_s=0.050, observed_p95=0.100,
                                   t_min=1)
        scheduler = BatchScheduler(_engine(), n_samples=8, max_batch=1024,
                                   controlplane=plane)
        big = scheduler.submit(RNG.standard_normal((2, 12)), n_samples=8)
        small = scheduler.submit(RNG.standard_normal((2, 12)), n_samples=2)
        scheduler.flush()
        assert big.result().samples.shape[0] == 4      # halved
        assert small.result().samples.shape[0] == 1    # halved, not raised
        assert scheduler.stats.degraded_flushes == 2

    def test_recovery_restores_full_t(self):
        metrics = LoadMetrics(window=4)
        for _ in range(4):
            metrics.record_flush(rows=4, n_requests=1, latency_s=0.200)
        plane = ControlPlane(slo=SloPolicy(0.050), metrics=metrics,
                             clock=FakeClock())
        scheduler = BatchScheduler(_engine(), n_samples=8, max_batch=1024,
                                   controlplane=plane)
        degraded = scheduler.submit(RNG.standard_normal((2, 12)))
        scheduler.flush()
        assert degraded.result().degraded is True
        # The latency window turns over with fast flushes (the real
        # flushes above are micro-seconds); p95 drops under target.
        for _ in range(4):
            metrics.record_flush(rows=4, n_requests=1, latency_s=0.001)
        recovered = scheduler.submit(RNG.standard_normal((2, 12)))
        scheduler.flush()
        result = recovered.result()
        assert result.degraded is False
        assert result.samples.shape[0] == 8
        assert result.served_samples == 8

    def test_undegraded_trace_is_bit_identical_to_plain_scheduler(self):
        """With the p95 under target the control plane must be
        invisible: same seed, same submissions, identical samples."""
        xs = [RNG.standard_normal((n, 12)) for n in (3, 1, 2)]
        plain = BatchScheduler(_engine(seed=5), n_samples=4,
                               max_batch=1024)
        plain_tickets = [plain.submit(x) for x in xs]
        plain.flush()

        plane = ControlPlane(slo=SloPolicy(target_p95_s=1000.0),
                             admission=AdmissionPolicy(max_queue_rows=4096))
        governed = BatchScheduler(_engine(seed=5), n_samples=4,
                                  max_batch=1024, controlplane=plane)
        governed_tickets = [governed.submit(x) for x in xs]
        governed.flush()

        for want, got in zip(plain_tickets, governed_tickets):
            want_r, got_r = want.result(), got.result()
            np.testing.assert_array_equal(want_r.samples, got_r.samples)
            assert got_r.degraded is False
        assert governed.stats.degraded_flushes == 0

    def test_scheduler_adopts_plane_collector_and_admission(self):
        plane = ControlPlane(admission=AdmissionPolicy(max_queue_rows=64))
        scheduler = BatchScheduler(_engine(), n_samples=2,
                                   controlplane=plane)
        assert scheduler.metrics is plane.metrics
        assert scheduler.admission is plane.admission
        assert plane.scheduler is scheduler
        ticket = scheduler.submit(RNG.standard_normal((2, 12)))
        scheduler.flush()
        ticket.result()
        # Flush latencies flowed into the plane's own collector.
        assert plane.metrics.snapshot().flushes == 1


class TestSoak:
    def test_flaky_overloaded_fleet_recovers(self):
        """The acceptance scenario: a seeded flaky replica under an
        overload burst.  No request wedges, the flaky replica is
        quarantined and later re-admitted, adaptive-T keeps serving
        (degraded results say so), and after the burst full-T service
        resumes."""
        clock = FakeClock()
        # Seeded failure plan with a failure *streak* early on (i.i.d.
        # 10% almost never produces K consecutive failures in a short
        # soak; the explicit indices make the quarantine deterministic
        # while rate-draws keep the schedule honest afterwards).
        flaky = FlakyEngine(_engine(seed=6),
                            FailureSchedule(fail_calls=(0, 1), rate=0.0))
        metrics = LoadMetrics(window=8)
        plane = ControlPlane(
            health=HealthPolicy(quarantine_after=2, probe_backoff_s=5.0,
                                probation_successes=2),
            admission=AdmissionPolicy(max_queue_rows=256),
            slo=SloPolicy(target_p95_s=0.050, t_min=2),
            metrics=metrics, clock=clock)
        sharded = ShardedScheduler(
            [_engine(seed=5), flaky], n_samples=8, parallel=False,
            max_batch=1024, controlplane=plane)
        scaler = Autoscaler(sharded, lambda: _engine(seed=21),
                            max_replicas=2, warm_spares=1,
                            cooldown_s=1000.0)
        plane.autoscaler = scaler

        rng = np.random.default_rng(77)
        outcomes = {"ok": 0, "failed": 0, "rejected": 0}
        degraded_seen = 0

        def drive(n_flushes, arrivals_lam):
            nonlocal degraded_seen
            for _ in range(n_flushes):
                tickets = []
                for _ in range(max(1, rng.poisson(arrivals_lam))):
                    try:
                        tickets.append(sharded.submit(
                            rng.standard_normal((2, 12))))
                    except AdmissionRejected:
                        outcomes["rejected"] += 1
                sharded.flush()
                clock.advance(0.1)
                for ticket in tickets:
                    try:
                        result = ticket.result()
                    except InjectedFault:
                        outcomes["failed"] += 1
                        continue
                    outcomes["ok"] += 1
                    assert result.served_samples == \
                        result.samples.shape[0]
                    if result.degraded:
                        degraded_seen += 1
                        assert result.samples.shape[0] < 8

        # Phase 1 — the flaky replica fails its first flushes and is
        # quarantined; its capacity is replaced by the warm spare.
        drive(3, arrivals_lam=2)
        assert plane.health_of(flaky).state == QUARANTINED
        assert scaler.promotions == 1

        # Phase 2 — overload burst: prime the latency window over
        # target; adaptive-T must degrade instead of refusing traffic.
        for _ in range(8):
            metrics.record_flush(rows=8, n_requests=2, latency_s=0.400)
        drive(4, arrivals_lam=6)
        assert degraded_seen > 0
        assert sharded.stats.degraded_flushes > 0

        # Phase 3 — burst over: the window refills with real (fast)
        # flush latencies, p95 recovers under target, T returns to
        # full, and the flaky replica re-admits after its backoff.
        clock.advance(10.0)                 # backoff elapsed
        drive(8, arrivals_lam=2)
        assert plane.observed_p95() < 0.050
        assert plane.health_of(flaky).state == HEALTHY
        assert plane.health_of(flaky).readmissions == 1

        final = sharded.submit(rng.standard_normal((2, 12)))
        sharded.flush()
        result = final.result()
        assert result.degraded is False
        assert result.samples.shape[0] == 8

        # Nothing wedged: every submitted request resolved one way or
        # another, and both failure modes actually occurred.
        assert outcomes["failed"] >= 2      # the injected faults
        assert outcomes["ok"] > 10
        # (the final request above is the one not in `outcomes`)
        assert outcomes["ok"] + outcomes["failed"] == \
            sharded.stats.requests - 1
