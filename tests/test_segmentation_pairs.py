"""Segmentation pipeline, 100-class dataset, upsampling, IoU."""

import numpy as np
import pytest

from repro import nn
from repro.bayesian import (
    Upsample2d,
    make_bayesian_segmenter,
    mc_segment,
    pixel_maps,
    segmentation_loss,
)
from repro.data import (
    class_frequencies,
    segmentation_scenes,
    synth_pairs,
)
from repro.tensor import Tensor, functional as F, gradcheck
from repro.uncertainty import mean_iou

RNG = np.random.default_rng(29)


class TestUpsample:
    def test_shape(self):
        out = F.upsample2d(Tensor(RNG.standard_normal((2, 3, 4, 4))), 2)
        assert out.shape == (2, 3, 8, 8)

    def test_values_repeat(self):
        x = np.arange(4, dtype=float).reshape(1, 1, 2, 2)
        out = F.upsample2d(Tensor(x), 2).data
        np.testing.assert_array_equal(
            out[0, 0], [[0, 0, 1, 1], [0, 0, 1, 1],
                        [2, 2, 3, 3], [2, 2, 3, 3]])

    def test_gradient(self):
        x = Tensor(RNG.standard_normal((1, 2, 3, 3)), requires_grad=True)
        assert gradcheck(lambda x: F.upsample2d(x, 2), [x], atol=1e-4)

    def test_factor_one_identity(self):
        x = RNG.standard_normal((1, 1, 3, 3))
        np.testing.assert_array_equal(
            F.upsample2d(Tensor(x), 1).data, x)

    def test_requires_nchw(self):
        with pytest.raises(ValueError):
            F.upsample2d(Tensor(np.zeros((2, 3))), 2)

    def test_module_wrapper(self):
        out = Upsample2d(2)(Tensor(RNG.standard_normal((1, 2, 4, 4))))
        assert out.shape == (1, 2, 8, 8)


class TestSegmentationData:
    def test_shapes_and_ranges(self):
        x, m = segmentation_scenes(20, size=16, seed=0)
        assert x.shape == (20, 1, 16, 16)
        assert m.shape == (20, 16, 16)
        assert x.min() >= -1.0 and x.max() <= 1.0
        assert set(np.unique(m)) <= {0, 1, 2}

    def test_all_classes_appear(self):
        _, m = segmentation_scenes(100, seed=0)
        assert set(np.unique(m)) == {0, 1, 2}

    def test_background_dominates(self):
        _, m = segmentation_scenes(50, seed=0)
        freqs = class_frequencies(m)
        assert freqs[0] > 0.5
        np.testing.assert_allclose(freqs.sum(), 1.0)

    def test_ood_scenes_lack_bars(self):
        _, m = segmentation_scenes(50, seed=0, ood_objects=True)
        assert 2 not in np.unique(m)  # triangles labelled as class 1

    def test_deterministic(self):
        a, ma = segmentation_scenes(5, seed=3)
        b, mb = segmentation_scenes(5, seed=3)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(ma, mb)


class TestMeanIou:
    def test_perfect_prediction(self):
        m = RNG.integers(0, 3, (4, 8, 8))
        assert mean_iou(m, m, 3) == pytest.approx(1.0)

    def test_disjoint_prediction(self):
        target = np.zeros((2, 4, 4), dtype=int)
        pred = np.ones((2, 4, 4), dtype=int)
        assert mean_iou(pred, target, 3) == pytest.approx(0.0)

    def test_absent_class_skipped(self):
        target = np.zeros((1, 4, 4), dtype=int)
        pred = np.zeros((1, 4, 4), dtype=int)
        # Classes 1 and 2 absent everywhere -> only background counts.
        assert mean_iou(pred, target, 3) == pytest.approx(1.0)

    def test_half_overlap(self):
        target = np.array([[0, 0, 1, 1]])
        pred = np.array([[0, 1, 1, 0]])
        # class0: inter 1, union 3; class1: inter 1, union 3.
        assert mean_iou(pred, target, 2) == pytest.approx(1 / 3)


class TestSegmenterModel:
    def test_forward_shape(self):
        model = make_bayesian_segmenter(width=4, seed=0)
        x = Tensor(RNG.standard_normal((2, 1, 16, 16)))
        assert model(x).shape == (2, 3, 16, 16)

    def test_loss_backward(self):
        model = make_bayesian_segmenter(width=4, seed=0)
        x = Tensor(RNG.standard_normal((2, 1, 16, 16)))
        masks = RNG.integers(0, 3, (2, 16, 16))
        loss = segmentation_loss(model(x), masks)
        loss.backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert grads

    def test_mc_segment_shapes(self):
        model = make_bayesian_segmenter(width=4, seed=0)
        x = RNG.standard_normal((3, 1, 16, 16))
        result = mc_segment(model, x, n_samples=4)
        assert result.probs.shape == (3 * 16 * 16, 3)
        pred, entropy = pixel_maps(result, (3, 16, 16))
        assert pred.shape == entropy.shape == (3, 16, 16)

    def test_mc_samples_vary(self):
        model = make_bayesian_segmenter(width=4, p=0.5, seed=0)
        x = RNG.standard_normal((2, 1, 16, 16))
        result = mc_segment(model, x, n_samples=6)
        # Spatial dropout across passes must produce varying samples.
        assert result.samples.std(axis=0).max() > 0

    def test_learns_above_chance(self):
        from repro.data import batches
        x, m = segmentation_scenes(300, seed=7)
        model = make_bayesian_segmenter(width=8, seed=7)
        opt = nn.Adam(model.parameters(), lr=1e-2)
        for epoch in range(4):
            model.train()
            for xb, yb in batches(x, m, 32, seed=epoch):
                loss = segmentation_loss(model(Tensor(xb)), yb)
                opt.zero_grad()
                loss.backward()
                opt.step()
                nn.clip_latent_weights(model)
        xte, mte = segmentation_scenes(60, seed=8)
        result = mc_segment(model, xte, n_samples=4)
        pred, _ = pixel_maps(result, (60, 16, 16))
        # Background-only prediction gives ~0.7 pixel accuracy but
        # mIoU ~0.23; learned model must beat that mIoU.
        assert mean_iou(pred, mte, 3) > 0.3


class TestSynthPairs:
    def test_shapes(self):
        x, y = synth_pairs(50, size=16, seed=0)
        assert x.shape == (50, 512)
        assert y.min() >= 0 and y.max() <= 99

    def test_nchw(self):
        x, y = synth_pairs(20, size=16, seed=0, flat=False)
        assert x.shape == (20, 1, 16, 32)

    def test_label_encodes_digits(self):
        """Class = tens*10 + ones: left half matches the tens digit."""
        from repro.data.synthetic import synth_digits
        x, y = synth_pairs(400, jitter=0.0, seed=0)
        xd, yd = synth_digits(400, jitter=0.0, seed=1)
        digit_templates = {int(d): xd[yd == d][0] for d in range(10)}
        images = x.reshape(-1, 16, 32)
        for i in range(30):
            tens = int(y[i]) // 10
            left = images[i, :, :16].reshape(-1)
            np.testing.assert_array_equal(
                left, digit_templates[tens])

    def test_hundred_classes_present(self):
        _, y = synth_pairs(3000, seed=0)
        assert len(np.unique(y)) == 100
