"""ADC, sense amplifier, op ledger and mapping strategies."""

import numpy as np
import pytest

from repro.cim import (
    ADC,
    ConvShape,
    MappingStrategy,
    OpLedger,
    SenseAmplifier,
    dropconnect_module_count,
    plan_conv_mapping,
    scale_module_count,
    spatial_module_count,
    spindrop_module_count,
)


class TestADC:
    def test_quantizes_to_grid(self):
        adc = ADC(bits=2, lo=0.0, hi=3.0)
        out = adc.convert(np.array([0.4, 1.6, 2.9]))
        np.testing.assert_allclose(out, [0.0, 2.0, 3.0])

    def test_clips_out_of_range(self):
        adc = ADC(bits=4, lo=-1.0, hi=1.0)
        out = adc.convert(np.array([-5.0, 5.0]))
        np.testing.assert_allclose(out, [-1.0, 1.0])

    def test_high_resolution_near_exact(self):
        adc = ADC(bits=12, lo=-10.0, hi=10.0)
        x = np.random.default_rng(0).uniform(-9, 9, 100)
        np.testing.assert_allclose(adc.convert(x), x, atol=20 / 4095)

    def test_rmse_decreases_with_bits(self):
        x = np.random.default_rng(0).uniform(-1, 1, 500)
        rmse = [ADC(bits=b, lo=-1, hi=1).quantization_rmse(x)
                for b in (2, 4, 8)]
        assert rmse[0] > rmse[1] > rmse[2]

    def test_calibrate(self):
        adc = ADC(bits=4)
        adc.calibrate(-50.0, 50.0)
        assert adc.lo == -50.0 and adc.hi == 50.0
        with pytest.raises(ValueError):
            adc.calibrate(1.0, -1.0)

    def test_ledger_booking(self):
        ledger = OpLedger()
        adc = ADC(bits=4, ledger=ledger)
        adc.convert(np.zeros((3, 5)))
        assert ledger["adc_conversion"] == 15

    def test_needs_positive_bits(self):
        with pytest.raises(ValueError):
            ADC(bits=0)


class TestSenseAmplifier:
    def test_binary_output(self):
        sa = SenseAmplifier()
        out = sa.compare(np.array([-0.5, 0.5]))
        np.testing.assert_array_equal(out, [-1.0, 1.0])

    def test_offset_causes_errors_near_reference(self):
        sa = SenseAmplifier(offset_sigma=0.5,
                            rng=np.random.default_rng(0))
        out = np.stack([sa.compare(np.full(100, 0.01))
                        for _ in range(20)])
        assert (out == -1.0).any() and (out == 1.0).any()

    def test_ledger(self):
        ledger = OpLedger()
        sa = SenseAmplifier(ledger=ledger)
        sa.compare(np.zeros(7))
        assert ledger["sa_read"] == 7


class TestOpLedger:
    def test_add_and_get(self):
        ledger = OpLedger()
        ledger.add("adc_conversion", 5)
        ledger.add("adc_conversion", 3)
        assert ledger["adc_conversion"] == 8

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OpLedger().add("x", -1)

    def test_merge_and_scaled(self):
        a, b = OpLedger(), OpLedger()
        a.add("x", 2)
        b.add("x", 3)
        b.add("y", 1)
        a.merge(b)
        assert a["x"] == 5 and a["y"] == 1
        doubled = a.scaled(2.0)
        assert doubled["x"] == 10 and a["x"] == 5

    def test_total(self):
        ledger = OpLedger()
        ledger.add("x", 2)
        ledger.add("y", 3)
        assert ledger.total() == 5
        assert ledger.total(["x"]) == 2


class TestMappingStrategies:
    def test_strategy1_single_crossbar_when_fits(self):
        plan = plan_conv_mapping(ConvShape(8, 16, 3),
                                 MappingStrategy.UNFOLDED_COLUMN,
                                 max_rows=128, max_cols=128)
        assert plan.n_crossbars == 1          # 72 rows × 16 cols fits
        assert plan.adc_conversions_per_output == 1

    def test_strategy1_tiles_large_layers(self):
        plan = plan_conv_mapping(ConvShape(64, 64, 3),
                                 MappingStrategy.UNFOLDED_COLUMN,
                                 max_rows=128, max_cols=128)
        assert plan.n_crossbars == 5          # 576 rows -> 5 row tiles
        assert plan.adc_conversions_per_output == 5

    def test_strategy2_crossbar_grid(self):
        plan = plan_conv_mapping(ConvShape(8, 16, 3),
                                 MappingStrategy.TILED_KXK)
        assert plan.n_crossbars == 8 * 16
        assert plan.crossbar_rows == plan.crossbar_cols == 3
        assert plan.adc_conversions_per_output == 8  # one per c_in chunk

    def test_dropout_modules_per_input_channel(self):
        for strategy in MappingStrategy:
            plan = plan_conv_mapping(ConvShape(12, 24, 3), strategy)
            assert plan.dropout_modules == 12

    def test_utilization_bounds(self):
        for strategy in MappingStrategy:
            plan = plan_conv_mapping(ConvShape(8, 16, 5), strategy)
            assert 0.0 < plan.utilization <= 1.0

    def test_strategy2_full_utilization(self):
        plan = plan_conv_mapping(ConvShape(4, 4, 3),
                                 MappingStrategy.TILED_KXK)
        assert plan.utilization == pytest.approx(1.0)

    def test_module_count_helpers(self):
        assert spindrop_module_count([100, 50]) == 150
        assert spatial_module_count([8, 16]) == 24
        assert scale_module_count(4) == 4
        assert dropconnect_module_count([1000, 500]) == 1500
