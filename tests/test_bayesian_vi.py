"""VI-family methods: subset-parameter inference and SpinBayes."""

import numpy as np
import pytest

from repro import nn
from repro.bayesian import (
    BayesianScale,
    SpinBayesNetwork,
    bayesian_parameter_count,
    conventional_vi_footprint_bits,
    deterministic_parameter_count,
    elbo_loss,
    make_subset_vi_mlp,
    mc_predict,
    memory_footprint_bits)
from repro.tensor import Tensor

RNG = np.random.default_rng(13)


class TestBayesianScale:
    def test_sampling_statistics(self):
        layer = BayesianScale(2000, rng=np.random.default_rng(0))
        layer.mu.data[:] = 1.5
        layer.log_sigma.data[:] = np.log(0.2)
        sample = layer.posterior_sample_np()
        assert abs(sample.mean() - 1.5) < 0.05
        assert abs(sample.std() - 0.2) < 0.05

    def test_training_mode_samples(self):
        layer = BayesianScale(8, rng=np.random.default_rng(0))
        layer.log_sigma.data[:] = np.log(0.5)
        x = Tensor(np.ones((2, 8)))
        out1 = layer(x).data.copy()
        out2 = layer(x).data.copy()
        assert not np.allclose(out1, out2)

    def test_eval_mode_uses_mean(self):
        layer = BayesianScale(8)
        layer.mu.data[:] = 2.0
        layer.eval()
        out = layer(Tensor(np.ones((2, 8)))).data
        np.testing.assert_allclose(out, 2.0)

    def test_kl_zero_at_prior(self):
        layer = BayesianScale(8, prior_mu=1.0, prior_sigma=0.1,
                              init_log_sigma=np.log(0.1))
        np.testing.assert_allclose(float(layer.kl().data), 0.0, atol=1e-9)

    def test_kl_gradients_flow(self):
        layer = BayesianScale(8)
        layer.mu.data[:] = 3.0
        layer.kl().backward()
        assert layer.mu.grad is not None and layer.log_sigma.grad is not None

    def test_reparam_grad_through_sample(self):
        layer = BayesianScale(4, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert layer.mu.grad is not None
        assert layer.log_sigma.grad is not None

    def test_bayesian_parameter_count(self):
        model = make_subset_vi_mlp(16, (8, 8), 4, seed=0)
        assert bayesian_parameter_count(model) == 2 * (8 + 8)
        assert deterministic_parameter_count(model) > 0


class TestElboAndFootprints:
    def test_elbo_exceeds_ce(self):
        model = make_subset_vi_mlp(16, (8,), 4, seed=0)
        # Move posterior off the prior so KL > 0.
        for module in model.modules():
            if isinstance(module, BayesianScale):
                module.mu.data[:] = 2.0
        x = Tensor(RNG.standard_normal((8, 16)))
        y = RNG.integers(0, 4, 8)
        ce = nn.cross_entropy(model(x), y)
        model.zero_grad()
        elbo = elbo_loss(model, model(x), y, n_train=100)
        assert float(elbo.data) > 0.0

    def test_memory_ratio_large(self):
        """Subset VI stores ~weight_count bits; conventional VI 64× per
        weight — the C5 claim engine."""
        model = make_subset_vi_mlp(256, (256, 128), 10, seed=0)
        ratio = (conventional_vi_footprint_bits(model)
                 / memory_footprint_bits(model))
        assert ratio > 20.0

    def test_footprint_dominated_by_binary_weights(self):
        model = make_subset_vi_mlp(256, (128,), 10, seed=0)
        bits = memory_footprint_bits(model)
        weight_bits = 256 * 128 + 128 * 10
        assert bits < weight_bits * 10  # stats don't blow it up


class TestSubsetViTraining:
    def test_learns_and_estimates_uncertainty(self):
        from repro.experiments.common import (TrainConfig, digits_dataset,
                                              train_classifier)
        data = digits_dataset(n_samples=800, seed=3)
        model = make_subset_vi_mlp(data.n_features, (64,), data.n_classes,
                                   seed=3)
        train_classifier(model, data, TrainConfig(epochs=6, mc_samples=8),
                         loss_kind="elbo")
        result = mc_predict(model, data.x_test, n_samples=8)
        acc = (result.predictions == data.y_test).mean()
        assert acc > 0.5
        assert result.predictive_entropy.shape == (len(data.x_test),)


class TestSpinBayes:
    def _teacher(self, seed=0):
        model = make_subset_vi_mlp(16, (12,), 4, seed=seed)
        # Give the posterior some spread.
        for module in model.modules():
            if isinstance(module, BayesianScale):
                module.log_sigma.data[:] = np.log(0.1)
        # Settle batch-norm stats.
        model.train()
        rng = np.random.default_rng(seed)
        for _ in range(10):
            model(Tensor(np.sign(rng.standard_normal((32, 16)))))
        model.eval()
        return model

    def test_component_count(self):
        net = SpinBayesNetwork.from_subset_vi(self._teacher(),
                                              n_components=4, seed=0)
        for layer in net.mvm_layers():
            assert layer.n_components == 4
        assert net.n_crossbars == 8  # 2 MVM layers × 4 components

    def test_forward_shape(self):
        net = SpinBayesNetwork.from_subset_vi(self._teacher(),
                                              n_components=4, seed=0)
        out = net.forward(np.sign(RNG.standard_normal((5, 16))))
        assert out.shape == (5, 4)

    def test_component_pinning_deterministic(self):
        net = SpinBayesNetwork.from_subset_vi(self._teacher(),
                                              n_components=4, seed=0)
        x = np.sign(RNG.standard_normal((3, 16)))
        a = net.forward(x, components=[1, 2])
        b = net.forward(x, components=[1, 2])
        np.testing.assert_allclose(a, b)

    def test_different_components_differ(self):
        teacher = self._teacher()
        for module in teacher.modules():
            if isinstance(module, BayesianScale):
                module.log_sigma.data[:] = np.log(0.3)  # wide posterior
        net = SpinBayesNetwork.from_subset_vi(teacher, n_components=4,
                                              n_levels=64, seed=0)
        x = np.sign(RNG.standard_normal((3, 16)))
        layer = net.mvm_layers()[0]
        a = layer.forward(x, component=0)
        b = layer.forward(x, component=3)
        # Different posterior samples -> different analog MACs (the sign
        # activation downstream may still absorb small differences —
        # that robustness is a feature of binary networks, not a bug).
        assert not np.allclose(a, b)

    def test_quantization_error_shrinks_with_levels(self):
        teacher = self._teacher()
        coarse = SpinBayesNetwork.from_subset_vi(teacher, n_components=2,
                                                 n_levels=4, seed=0)
        fine = SpinBayesNetwork.from_subset_vi(teacher, n_components=2,
                                               n_levels=64, seed=0)
        assert fine.quantization_error() < coarse.quantization_error()

    def test_arbiter_books_rng_cycles(self):
        net = SpinBayesNetwork.from_subset_vi(self._teacher(),
                                              n_components=4, seed=0)
        net.ledger.reset()
        net.forward(np.sign(RNG.standard_normal((2, 16))))
        assert net.ledger["rng_cycle"] == 2 * 2  # 2 layers × log2(4)

    def test_rejects_unsupported_layers(self):
        model = nn.Sequential(nn.Conv2d(1, 2, 3))
        with pytest.raises(TypeError):
            SpinBayesNetwork.from_subset_vi(model, n_components=2)
