"""MC prediction machinery and hardware deployment of Bayesian models."""

import numpy as np
import pytest
from repro.bayesian import (
    BayesianCim,
    DeepEnsemble,
    PredictiveResult,
    deterministic_predict,
    make_affine_mlp,
    make_scaledrop_mlp,
    make_spatial_spindrop_cnn,
    make_spindrop_mlp,
    make_subset_vi_mlp,
    mc_predict,
    mc_predict_fn)
from repro.cim import CimConfig
from repro.experiments.common import TrainConfig, digits_dataset, train_classifier

RNG = np.random.default_rng(17)


@pytest.fixture(scope="module")
def small_data():
    return digits_dataset(n_samples=600, seed=5)


@pytest.fixture(scope="module")
def trained_spindrop(small_data):
    model = make_spindrop_mlp(small_data.n_features, (32,),
                              small_data.n_classes, p=0.2, seed=5)
    return train_classifier(model, small_data,
                            TrainConfig(epochs=5, mc_samples=6))


class TestPredictiveResult:
    def _result(self):
        samples = np.random.default_rng(0).dirichlet(
            np.ones(4), size=(10, 6))
        return PredictiveResult(probs=samples.mean(axis=0), samples=samples)

    def test_shapes(self):
        r = self._result()
        assert r.predictions.shape == (6,)
        assert r.predictive_entropy.shape == (6,)
        assert r.mutual_information.shape == (6,)

    def test_mutual_information_nonnegative(self):
        r = self._result()
        assert (r.mutual_information >= 0).all()

    def test_entropy_bounds(self):
        r = self._result()
        assert (r.predictive_entropy >= 0).all()
        assert (r.predictive_entropy <= np.log(4) + 1e-9).all()

    def test_uniform_has_max_entropy(self):
        probs = np.full((1, 4), 0.25)
        samples = np.repeat(probs[None], 3, axis=0)
        r = PredictiveResult(probs=probs, samples=samples)
        np.testing.assert_allclose(r.predictive_entropy, np.log(4))
        np.testing.assert_allclose(r.mutual_information, 0.0, atol=1e-12)

    def test_from_samples_rejects_missing_class_axis(self):
        # A (T, N) array would make entropy/std/argmax reduce over the
        # wrong axis; the constructor must refuse it loudly.
        with pytest.raises(ValueError, match=r"\(T, N, C\)"):
            PredictiveResult.from_samples(np.zeros((5, 6)))
        with pytest.raises(ValueError, match=r"\(T, N, C\)"):
            PredictiveResult.from_samples(np.zeros(5))

    def test_from_samples_accepts_singleton_class_axis(self):
        r = PredictiveResult.from_samples(np.full((5, 6, 1), 1.0))
        assert r.probs.shape == (6, 1)


class TestMcPredict:
    def test_probabilities_normalized(self, trained_spindrop, small_data):
        r = mc_predict(trained_spindrop, small_data.x_test[:16], n_samples=5)
        np.testing.assert_allclose(r.probs.sum(axis=1), 1.0, rtol=1e-9)
        assert r.samples.shape == (5, 16, 10)

    def test_mc_mode_restored(self, trained_spindrop, small_data):
        mc_predict(trained_spindrop, small_data.x_test[:4], n_samples=2)
        from repro.bayesian.base import StochasticModule
        for module in trained_spindrop.modules():
            if isinstance(module, StochasticModule):
                assert not module.mc_mode

    def test_deterministic_predict_is_repeatable(self, trained_spindrop,
                                                 small_data):
        a = deterministic_predict(trained_spindrop, small_data.x_test[:8])
        b = deterministic_predict(trained_spindrop, small_data.x_test[:8])
        np.testing.assert_array_equal(a, b)

    def test_batched_prediction_matches(self, trained_spindrop, small_data):
        x = small_data.x_test[:20]
        full = deterministic_predict(trained_spindrop, x)
        chunked = deterministic_predict(trained_spindrop, x, batch_size=7)
        np.testing.assert_allclose(full, chunked, atol=1e-12)

    def test_mc_predict_fn(self):
        rng = np.random.default_rng(0)

        def forward(x):
            return rng.standard_normal((len(x), 3))

        r = mc_predict_fn(forward, np.zeros((5, 2)), n_samples=4)
        assert r.samples.shape == (4, 5, 3)


class TestStackedMcPredict:
    """The software-side batched MC path (mc_predict batched=True)."""

    KINDS = {
        "spindrop": lambda: make_spindrop_mlp(20, (16,), 4, p=0.3, seed=1),
        "scaledrop": lambda: make_scaledrop_mlp(20, (16,), 4, seed=3),
        "subset_vi": lambda: make_subset_vi_mlp(20, (16,), 4, seed=5),
        "affine": lambda: make_affine_mlp(20, (16,), 4, p=0.3, seed=4),
    }

    @pytest.mark.parametrize("kind", sorted(KINDS))
    def test_stacked_is_bit_exact_vs_sequential(self, kind):
        x = np.random.default_rng(8).standard_normal((9, 20))
        seq = mc_predict(self.KINDS[kind](), x, n_samples=5, batched=False)
        stacked = mc_predict(self.KINDS[kind](), x, n_samples=5,
                             chunk_passes=5)
        np.testing.assert_array_equal(seq.samples, stacked.samples)

    def test_stacked_cnn_is_bit_exact(self):
        x = np.random.default_rng(9).standard_normal((4, 1, 12, 12))
        make = lambda: make_spatial_spindrop_cnn(1, 12, 4, widths=(4, 8),
                                                 seed=2)
        seq = mc_predict(make(), x, n_samples=4, batched=False)
        stacked = mc_predict(make(), x, n_samples=4, chunk_passes=4)
        np.testing.assert_array_equal(seq.samples, stacked.samples)

    def test_chunked_matches_unchunked(self):
        x = np.random.default_rng(8).standard_normal((9, 20))
        full = mc_predict(self.KINDS["scaledrop"](), x, n_samples=6,
                          chunk_passes=6)
        chunked = mc_predict(self.KINDS["scaledrop"](), x, n_samples=6,
                             chunk_passes=2)
        np.testing.assert_array_equal(full.samples, chunked.samples)

    def test_unsupported_layer_falls_back_to_sequential(self):
        from repro.bayesian import make_dropconnect_mlp

        x = np.random.default_rng(8).standard_normal((6, 20))
        seq = mc_predict(make_dropconnect_mlp(20, (16,), 4, seed=7), x,
                         n_samples=3, batched=False)
        auto = mc_predict(make_dropconnect_mlp(20, (16,), 4, seed=7), x,
                          n_samples=3, batched=True, chunk_passes=3)
        np.testing.assert_array_equal(seq.samples, auto.samples)

    def test_fallback_consumes_no_randomness_from_supported_layers(self):
        """Regression: with a bank-capable layer BEFORE the unsupported
        one, the stacked path must bail out without drawing anything,
        or the sequential fallback would see a shifted RNG stream."""
        from repro import nn
        from repro.bayesian import SpinDropout
        from repro.bayesian.dropconnect import DropConnectLinear

        def build():
            rng = np.random.default_rng(11)
            return nn.Sequential(
                nn.BinaryLinear(20, 16, rng=rng, binarize_input=True),
                nn.BatchNorm1d(16),
                nn.SignActivation(),
                SpinDropout(16, p=0.3, ideal=True, rng=rng),
                DropConnectLinear(16, 4, p=0.2, rng=rng),
            )

        x = np.random.default_rng(8).standard_normal((6, 20))
        seq = mc_predict(build(), x, n_samples=4, batched=False)
        auto = mc_predict(build(), x, n_samples=4, batched=True,
                          chunk_passes=4)
        np.testing.assert_array_equal(seq.samples, auto.samples)

    def test_banks_cleared_after_stacked_run(self):
        from repro.bayesian.base import StochasticModule

        model = self.KINDS["spindrop"]()
        x = np.random.default_rng(8).standard_normal((9, 20))
        mc_predict(model, x, n_samples=3, chunk_passes=3)
        for module in model.modules():
            if isinstance(module, StochasticModule):
                assert module._mc_bank is None
                assert not module.mc_mode


class TestBayesianCimDeployment:
    def test_spindrop_deploys_and_predicts(self, trained_spindrop,
                                           small_data):
        deployed = BayesianCim(trained_spindrop, CimConfig(seed=0))
        x = small_data.x_test[:20]
        result = deployed.mc_forward(x, n_samples=5)
        assert result.probs.shape == (20, 10)
        assert deployed.n_dropout_modules == 32

    def test_deployed_accuracy_tracks_software(self, trained_spindrop,
                                               small_data):
        sw = mc_predict(trained_spindrop, small_data.x_test, n_samples=10)
        sw_acc = (sw.predictions == small_data.y_test).mean()
        deployed = BayesianCim(trained_spindrop,
                               CimConfig(adc_bits=8, seed=0))
        hw = deployed.mc_forward(small_data.x_test, n_samples=10)
        hw_acc = (hw.predictions == small_data.y_test).mean()
        assert abs(sw_acc - hw_acc) < 0.15

    def test_rng_cycles_booked_per_image(self, trained_spindrop, small_data):
        deployed = BayesianCim(trained_spindrop, CimConfig(seed=0))
        deployed.ledger.reset()
        deployed.forward(small_data.x_test[:10], stochastic=True)
        assert deployed.ledger["rng_cycle"] == 32 * 10

    def test_deterministic_pass_books_no_rng(self, trained_spindrop,
                                             small_data):
        deployed = BayesianCim(trained_spindrop, CimConfig(seed=0))
        deployed.ledger.reset()
        deployed.deterministic_forward(small_data.x_test[:10])
        assert deployed.ledger["rng_cycle"] == 0

    def test_stochastic_passes_differ(self, trained_spindrop, small_data):
        deployed = BayesianCim(trained_spindrop, CimConfig(seed=0))
        x = small_data.x_test[:8]
        a = deployed.forward(x, stochastic=True)
        b = deployed.forward(x, stochastic=True)
        assert not np.allclose(a, b)

    def test_scaledrop_deploys(self, small_data):
        model = make_scaledrop_mlp(small_data.n_features, (32,),
                                   small_data.n_classes, seed=6)
        train_classifier(model, small_data,
                         TrainConfig(epochs=3, mc_samples=4))
        deployed = BayesianCim(model, CimConfig(seed=1))
        assert deployed.n_dropout_modules == 1
        result = deployed.mc_forward(small_data.x_test[:10], n_samples=4)
        assert result.probs.shape == (10, 10)

    def test_subset_vi_deploys(self, small_data):
        model = make_subset_vi_mlp(small_data.n_features, (32,),
                                   small_data.n_classes, seed=7)
        train_classifier(model, small_data,
                         TrainConfig(epochs=3, mc_samples=4),
                         loss_kind="elbo")
        deployed = BayesianCim(model, CimConfig(seed=2))
        deployed.ledger.reset()
        deployed.forward(small_data.x_test[:4], stochastic=True)
        # One stochastic-SOT draw per scale element per image.
        assert deployed.ledger["rng_cycle"] == 32 * 4

    def test_affine_deploys(self, small_data):
        model = make_affine_mlp(small_data.n_features, (32,),
                                small_data.n_classes, p=0.2, seed=8)
        train_classifier(model, small_data,
                         TrainConfig(epochs=3, mc_samples=4))
        deployed = BayesianCim(model, CimConfig(seed=3))
        assert deployed.n_dropout_modules == 2
        result = deployed.mc_forward(small_data.x_test[:10], n_samples=4)
        assert result.probs.shape == (10, 10)

    def test_spatial_cnn_deploys(self):
        data = digits_dataset(n_samples=300, seed=9, flat=False)
        model = make_spatial_spindrop_cnn(1, data.image_size,
                                          data.n_classes, widths=(4, 8),
                                          seed=9)
        train_classifier(model, data, TrainConfig(epochs=2, mc_samples=3))
        deployed = BayesianCim(model, CimConfig(seed=4))
        assert deployed.n_dropout_modules == 4  # one bank: 4 channels
        result = deployed.mc_forward(data.x_test[:6], n_samples=3)
        assert result.probs.shape == (6, 10)


class TestDeepEnsemble:
    def test_member_spread_is_uncertainty(self, small_data):
        def factory(i):
            model = make_spindrop_mlp(small_data.n_features, (16,),
                                      small_data.n_classes, p=0.2, seed=i)
            return train_classifier(model, small_data,
                                    TrainConfig(epochs=2, mc_samples=2,
                                                seed=i))
        ensemble = DeepEnsemble.from_factory(factory, n_members=3)
        result = ensemble.predict(small_data.x_test[:10])
        assert result.samples.shape == (3, 10, 10)

    def test_memory_footprint_scales_with_members(self, small_data):
        model = make_spindrop_mlp(small_data.n_features, (16,),
                                  small_data.n_classes, p=0.2, seed=0)
        ensemble = DeepEnsemble([model, model, model])
        assert ensemble.memory_footprint_bits() == \
            3 * model.num_parameters() * 32

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DeepEnsemble([])
