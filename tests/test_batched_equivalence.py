"""Batched MC engine ≡ sequential MC loop, bit-for-bit.

The acceptance contract of the batched engine: under a fixed seed it
must reproduce the sequential T-pass loop exactly — same predictive
means, same per-pass samples, same :class:`OpLedger` totals (crossbar
accesses, ADC conversions, RNG cycles, SRAM reads) — for every
stochastic mechanism the paper deploys (neuron, channel, scale,
affine, VI), with and without device variability on the dropout
modules, chunked or not.
"""

import numpy as np
import pytest

from repro.bayesian import (
    BayesianCim,
    make_affine_mlp,
    make_scaledrop_mlp,
    make_spatial_spindrop_cnn,
    make_spindrop_mlp,
    make_subset_vi_mlp,
    mc_predict_batched,
)
from repro.cim import CimConfig
from repro.devices import DeviceVariability, VariabilityParams

RNG = np.random.default_rng(42)
X_FLAT = RNG.standard_normal((9, 20))
X_IMG = RNG.standard_normal((4, 1, 12, 12))


def _model(kind):
    makers = {
        "neuron": lambda: make_spindrop_mlp(20, (16,), 4, p=0.3, seed=1),
        "channel": lambda: make_spatial_spindrop_cnn(
            1, 12, 4, widths=(4, 8), seed=2),
        "scale": lambda: make_scaledrop_mlp(20, (16,), 4, seed=3),
        "affine": lambda: make_affine_mlp(20, (16,), 4, p=0.3, seed=4),
        "vi": lambda: make_subset_vi_mlp(20, (16,), 4, seed=5),
    }
    return makers[kind](), (X_IMG if kind == "channel" else X_FLAT)


def _deploy(model, *, read_noise=False, rng_var=False):
    variability = None
    if read_noise:
        variability = DeviceVariability(
            VariabilityParams(sigma_r=0.03, sigma_delta=0.03,
                              sigma_read=0.01),
            rng=np.random.default_rng(77))
    rng_variability = None
    if rng_var:
        rng_variability = DeviceVariability(
            VariabilityParams(sigma_delta=0.08),
            rng=np.random.default_rng(88))
    deployed = BayesianCim(model, CimConfig(seed=6, variability=variability),
                           rng_variability=rng_variability, seed=33)
    deployed.ledger.reset()
    return deployed


ALL_KINDS = ["neuron", "channel", "scale", "affine", "vi"]


class TestBitExactEquivalence:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_samples_probs_and_ledger_match(self, kind):
        model, x = _model(kind)
        a = _deploy(model)
        b = _deploy(model)
        seq = a.mc_forward(x, n_samples=6, batched=False)
        bat = b.mc_forward(x, n_samples=6, batched=True)
        np.testing.assert_array_equal(seq.samples, bat.samples)
        np.testing.assert_array_equal(seq.probs, bat.probs)
        assert a.ledger.as_dict() == b.ledger.as_dict()

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_chunked_matches_unchunked(self, kind):
        model, x = _model(kind)
        a = _deploy(model)
        b = _deploy(model)
        full = a.mc_forward_batched(x, n_samples=5)
        chunked = b.mc_forward_batched(x, n_samples=5, chunk_passes=2)
        np.testing.assert_array_equal(full.samples, chunked.samples)
        assert a.ledger.as_dict() == b.ledger.as_dict()

    @pytest.mark.parametrize("kind", ["neuron", "scale"])
    def test_read_noise_still_bit_exact(self, kind):
        # Cycle-to-cycle read noise draws from its own stream; the
        # batched engine preserves that stream's draw order by running
        # one pass per stacked call, so equality holds even here.
        model, x = _model(kind)
        a = _deploy(model, read_noise=True)
        b = _deploy(model, read_noise=True)
        seq = a.mc_forward(x, n_samples=4, batched=False)
        bat = b.mc_forward(x, n_samples=4, batched=True)
        np.testing.assert_array_equal(seq.samples, bat.samples)
        assert a.ledger.as_dict() == b.ledger.as_dict()

    @pytest.mark.parametrize("kind", ["neuron", "affine"])
    def test_rng_variability_still_bit_exact(self, kind):
        # Device spread on the dropout modules shifts realized rates;
        # both paths must consume the same realizations.
        model, x = _model(kind)
        a = _deploy(model, rng_var=True)
        b = _deploy(model, rng_var=True)
        seq = a.mc_forward(x, n_samples=4, batched=False)
        bat = b.mc_forward(x, n_samples=4, batched=True)
        np.testing.assert_array_equal(seq.samples, bat.samples)
        assert a.ledger.as_dict() == b.ledger.as_dict()

    def test_rng_cycle_totals(self):
        # 16 neuron modules × 9 images × 5 passes, same both ways.
        model, x = _model("neuron")
        deployed = _deploy(model)
        deployed.mc_forward_batched(x, n_samples=5)
        assert deployed.ledger["rng_cycle"] == 16 * 9 * 5

    def test_batched_passes_differ_from_each_other(self):
        model, x = _model("neuron")
        deployed = _deploy(model)
        result = deployed.mc_forward_batched(x, n_samples=6)
        spread = result.samples.std(axis=0).sum()
        assert spread > 0.0

    def test_stage_state_restored_after_batched_run(self):
        from repro.cim.layers import DigitalScale, DropoutGate

        model, x = _model("neuron")
        deployed = _deploy(model)
        deployed.mc_forward_batched(x, n_samples=3)
        for stage in deployed.network.stages:
            if isinstance(stage, DropoutGate):
                assert stage.mask is None
            if isinstance(stage, DigitalScale):
                assert stage.passes_per_call == 1
                assert np.isscalar(stage.multiplier)

    def test_deterministic_forward_unaffected(self):
        model, x = _model("neuron")
        deployed = _deploy(model)
        before = deployed.deterministic_forward(x)
        deployed.mc_forward_batched(x, n_samples=3)
        after = deployed.deterministic_forward(x)
        np.testing.assert_array_equal(before, after)


class TestBatchedApiContracts:
    def test_forward_batched_shape(self):
        model, x = _model("neuron")
        deployed = _deploy(model)
        logits = deployed.forward_batched(x, n_samples=7)
        assert logits.shape == (7, len(x), 4)

    def test_rejects_zero_samples(self):
        model, x = _model("neuron")
        deployed = _deploy(model)
        with pytest.raises(ValueError):
            deployed.forward_batched(x, n_samples=0)

    def test_mc_predict_batched_validates_shape(self):
        with pytest.raises(ValueError):
            mc_predict_batched(
                lambda x, t: np.zeros((t + 1, len(x), 3)),
                np.zeros((4, 2)), n_samples=3)

    def test_mc_predict_batched_normalizes(self):
        rng = np.random.default_rng(0)
        result = mc_predict_batched(
            lambda x, t: rng.standard_normal((t, len(x), 3)),
            np.zeros((5, 2)), n_samples=4)
        assert result.samples.shape == (4, 5, 3)
        np.testing.assert_allclose(result.probs.sum(axis=-1), 1.0,
                                   rtol=1e-9)
