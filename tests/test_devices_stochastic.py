"""Variability, defects, RNG bank and arbiter."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.devices import (
    DefectModel,
    DefectRates,
    DeviceVariability,
    MTJParams,
    SpintronicArbiter,
    SpintronicRNG,
    VariabilityParams,
    effective_dropout_probabilities,
    fit_gaussian,
)


class TestVariability:
    def test_resistance_spread_lognormal(self):
        var = DeviceVariability(VariabilityParams(sigma_r=0.1),
                                rng=np.random.default_rng(0))
        r = var.sample_resistances(5e3, (5000,))
        assert abs(np.median(r) - 5e3) / 5e3 < 0.05
        assert r.std() > 0

    def test_zero_sigma_exact(self):
        var = DeviceVariability(VariabilityParams(sigma_r=0.0))
        r = var.sample_resistances(5e3, (10,))
        np.testing.assert_array_equal(r, 5e3)

    def test_delta_positive(self):
        var = DeviceVariability(VariabilityParams(sigma_delta=0.5),
                                rng=np.random.default_rng(0))
        deltas = var.sample_deltas(40.0, (1000,))
        assert deltas.min() >= 1.0

    def test_temperature_lowers_delta(self):
        hot = DeviceVariability(temperature=400.0,
                                rng=np.random.default_rng(0))
        cold = DeviceVariability(temperature=300.0,
                                 rng=np.random.default_rng(0))
        assert (hot.sample_deltas(40.0, (100,)).mean()
                < cold.sample_deltas(40.0, (100,)).mean())

    def test_perturb_conductances_mean_preserved(self):
        var = DeviceVariability(VariabilityParams(sigma_r=0.05),
                                rng=np.random.default_rng(0))
        g = np.full((100, 100), 2e-4)
        out = var.perturb_conductances(g)
        assert abs(out.mean() - 2e-4) / 2e-4 < 0.02

    def test_effective_dropout_probability_spread(self):
        var = DeviceVariability(VariabilityParams(sigma_delta=0.05),
                                rng=np.random.default_rng(0))
        probs = effective_dropout_probabilities(0.3, MTJParams(), var, 500)
        mu, sigma = fit_gaussian(probs)
        assert abs(mu - 0.3) < 0.1
        assert sigma > 0.0


class TestDefects:
    def test_total_rate_validation(self):
        with pytest.raises(ValueError):
            DefectModel(DefectRates(stuck_at_p=0.6, stuck_at_ap=0.6))

    def test_fault_map_rates(self):
        model = DefectModel(DefectRates(stuck_at_p=0.1, stuck_at_ap=0.1),
                            rng=np.random.default_rng(0))
        fmap = model.sample_fault_map((200, 200))
        stats = model.fault_statistics(fmap)
        assert abs(stats["fault_rate"] - 0.2) < 0.02

    def test_stuck_at_semantics(self):
        model = DefectModel(DefectRates(stuck_at_p=1.0))
        weights = np.ones((4, 4))
        out = model.apply_to_binary_weights(weights)
        np.testing.assert_array_equal(out, -1.0)   # P stores -1

        model = DefectModel(DefectRates(stuck_at_ap=1.0))
        out = model.apply_to_binary_weights(-np.ones((4, 4)))
        np.testing.assert_array_equal(out, 1.0)

    def test_retention_flips_sign(self):
        model = DefectModel(DefectRates(retention_failure=1.0))
        weights = np.ones((3, 3))
        out = model.apply_to_binary_weights(weights)
        np.testing.assert_array_equal(out, -1.0)

    def test_no_faults_identity(self):
        model = DefectModel()
        weights = np.sign(np.random.default_rng(0).standard_normal((5, 5)))
        weights[weights == 0] = 1.0
        out = model.apply_to_binary_weights(weights)
        np.testing.assert_array_equal(out, weights)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            DefectModel().apply_to_binary_weights(np.array([[0.5]]))

    def test_conductance_faults_in_range(self):
        model = DefectModel(DefectRates(write_failure=1.0),
                            rng=np.random.default_rng(0))
        g = np.full((10, 10), 1.5e-4)
        out = model.apply_to_conductances(g, g_p=2e-4, g_ap=8e-5)
        assert out.min() >= 8e-5 - 1e-12
        assert out.max() <= 2e-4 + 1e-12

    @given(st.floats(min_value=0.0, max_value=0.3),
           st.floats(min_value=0.0, max_value=0.3))
    @settings(max_examples=20, deadline=None)
    def test_output_stays_binary(self, p_stuck, p_ret):
        """Whatever the fault mix, corrupted weights stay in {−1,+1}."""
        model = DefectModel(
            DefectRates(stuck_at_p=p_stuck, retention_failure=p_ret),
            rng=np.random.default_rng(1))
        weights = np.sign(np.random.default_rng(2).standard_normal((20, 20)))
        weights[weights == 0] = 1.0
        out = model.apply_to_binary_weights(weights)
        assert set(np.unique(out)) <= {-1.0, 1.0}


class TestSpintronicRNG:
    def test_empirical_rate_tracks_target(self):
        rng = SpintronicRNG(32, p=0.25, rng=np.random.default_rng(0))
        bits = rng.generate(20000)
        assert abs(bits.mean() - 0.25) < 0.02

    def test_variability_shifts_rate(self):
        var = DeviceVariability(VariabilityParams(sigma_delta=0.1),
                                rng=np.random.default_rng(5))
        bank = SpintronicRNG(16, p=0.5, variability=var,
                             rng=np.random.default_rng(5))
        assert bank.effective_p.std() > 0.0

    def test_calibration_reduces_bias(self):
        var = DeviceVariability(VariabilityParams(sigma_delta=0.08),
                                rng=np.random.default_rng(3))
        bank = SpintronicRNG(64, p=0.5, variability=var,
                             rng=np.random.default_rng(3))
        empirical = bank.calibrate(n_samples=4000, tolerance=0.02)
        assert abs(empirical - 0.5) <= 0.05

    def test_ops_accounting(self):
        bank = SpintronicRNG(8, p=0.5, rng=np.random.default_rng(0))
        bank.generate(100)
        assert bank.set_ops == bank.read_ops == bank.reset_ops == 100
        assert bank.total_ops == 300
        bank.reset_counters()
        assert bank.total_ops == 0

    def test_mask_shape(self):
        bank = SpintronicRNG(4, p=0.5, rng=np.random.default_rng(0))
        assert bank.generate_mask((3, 5)).shape == (3, 5)

    def test_cycles_per_mask(self):
        bank = SpintronicRNG(10, p=0.5)
        assert bank.cycles_per_mask(25) == 3

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            SpintronicRNG(0, p=0.5)
        with pytest.raises(ValueError):
            SpintronicRNG(4, p=0.0)


class TestArbiter:
    def test_uniform_selection(self):
        arb = SpintronicArbiter(8, rng=np.random.default_rng(0))
        dist = arb.empirical_distribution(8000)
        np.testing.assert_allclose(dist, 1 / 8, atol=0.03)

    def test_non_power_of_two(self):
        arb = SpintronicArbiter(5, rng=np.random.default_rng(1))
        dist = arb.empirical_distribution(8000)
        assert dist.shape == (5,)
        np.testing.assert_allclose(dist, 1 / 5, atol=0.03)

    def test_weighted_selection(self):
        weights = [0.7, 0.1, 0.1, 0.1]
        arb = SpintronicArbiter(4, weights=weights,
                                rng=np.random.default_rng(2))
        dist = arb.empirical_distribution(8000)
        np.testing.assert_allclose(dist, weights, atol=0.03)

    def test_one_hot(self):
        arb = SpintronicArbiter(4, rng=np.random.default_rng(0))
        one_hot = arb.select_one_hot()
        assert one_hot.sum() == 1.0 and one_hot.shape == (4,)

    def test_cycles_per_selection(self):
        assert SpintronicArbiter(8).cycles_per_selection == 3
        assert SpintronicArbiter(5).cycles_per_selection == 3
        assert SpintronicArbiter(2).cycles_per_selection == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SpintronicArbiter(1)
        with pytest.raises(ValueError):
            SpintronicArbiter(3, weights=[1.0, -0.5, 0.5])
        with pytest.raises(ValueError):
            SpintronicArbiter(3, weights=[0.0, 0.0, 0.0])


class TestMultiLevelCell:
    def test_levels_roundtrip(self):
        from repro.devices import MultiLevelCell
        cell = MultiLevelCell((4, 4), n_mtjs=4)
        levels = np.random.default_rng(0).integers(0, 5, (4, 4))
        cell.program(levels)
        g = cell.conductances()
        # More P junctions -> higher conductance.
        order = np.argsort(levels.reshape(-1))
        assert g.reshape(-1)[order[-1]] >= g.reshape(-1)[order[0]]

    def test_quantize_decode(self):
        from repro.devices import MultiLevelCell
        cell = MultiLevelCell((8, 8), n_mtjs=15)
        values = np.random.default_rng(1).uniform(-2, 2, (8, 8))
        levels = cell.quantize_to_levels(values, -2.0, 2.0)
        decoded = cell.levels_to_values(levels, -2.0, 2.0)
        assert np.abs(decoded - values).max() <= 4.0 / 15 / 2 + 1e-9

    def test_represented_values_with_variability(self):
        from repro.devices import MultiLevelCell
        var = DeviceVariability(VariabilityParams(sigma_r=0.02),
                                rng=np.random.default_rng(2))
        cell = MultiLevelCell((6, 6), n_mtjs=7, variability=var,
                              rng=np.random.default_rng(2))
        values = np.random.default_rng(3).uniform(0, 1, (6, 6))
        cell.program(cell.quantize_to_levels(values, 0.0, 1.0))
        decoded = cell.represented_values(0.0, 1.0)
        assert np.abs(decoded - values).mean() < 0.15

    def test_program_validation(self):
        from repro.devices import MultiLevelCell
        cell = MultiLevelCell((2, 2), n_mtjs=3)
        with pytest.raises(ValueError):
            cell.program(np.full((2, 2), 9))
        with pytest.raises(ValueError):
            cell.program(np.zeros((3, 3), dtype=int))
