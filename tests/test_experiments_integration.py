"""Experiment harnesses (fast settings) and end-to-end integration."""

import numpy as np
import pytest

from repro.experiments.claims import (
    run_c2_spatial,
    run_c5_subset_vi,
)
from repro.experiments.figures import (
    arbiter_statistics,
    mapping_equivalence_check,
    run_fig1_mapping,
)
from repro.experiments.ablations import (
    mapping_utilization,
    rng_scaling,
)
from repro.experiments.common import (
    TrainConfig,
    digits_dataset,
    train_classifier,
)


class TestStructuralExperiments:
    """Experiments that need no training — always exact."""

    def test_c2_module_reduction_band(self):
        claims = run_c2_spatial()
        # Paper reports 9× for its topology; any CNN should give a
        # large (>5×) reduction because neurons ≫ feature maps.
        assert claims.module_reduction > 5.0
        assert claims.dropout_energy_ratio == pytest.approx(
            claims.module_reduction, rel=0.01)
        # Paper: Spatial-SpinDrop 2.94× more energy-efficient overall.
        assert claims.total_energy_ratio > 2.0

    def test_fig1_reports_both_strategies(self):
        reports = run_fig1_mapping()
        assert len(reports["strategy1"]) == len(reports["strategy2"]) == 3
        for r1, r2 in zip(reports["strategy1"], reports["strategy2"]):
            assert r2.n_crossbars >= r1.n_crossbars  # tiled grid is many
            assert r1.dropout_modules == r2.dropout_modules

    def test_mapping_equivalence(self):
        residual = mapping_equivalence_check(seed=0)
        assert residual <= 2.0  # within coarse-ADC resolution

    def test_arbiter_statistics(self):
        stats = arbiter_statistics(n_choices=8, n_draws=4096, seed=0)
        assert stats["cycles_per_selection"] == 3
        assert stats["max_abs_deviation"] < 0.05
        assert stats["entropy_bits"] > 2.9  # close to log2(8) = 3

    def test_rng_scaling_orderings(self):
        scaling = rng_scaling(widths=(64, 256))
        # DropConnect >> SpinDrop >> ScaleDrop at every width.
        for i in range(2):
            assert (scaling["mc_dropconnect"][i] > scaling["spindrop"][i]
                    > scaling["scaledrop"][i])
        # Scale/affine dropout are width-independent.
        assert scaling["scaledrop"][0] == scaling["scaledrop"][1]
        assert scaling["affine"][0] == scaling["affine"][1]

    def test_mapping_utilization_rows(self):
        rows = mapping_utilization(kernel_sizes=(3,),
                                   channels=((8, 16),))
        assert rows[0]["s2_utilization"] == pytest.approx(1.0)
        assert 0 < rows[0]["s1_utilization"] <= 1.0


class TestTrainedExperiments:
    """Tiny-budget versions of the trained experiments."""

    def test_c5_subset_vi_shapes(self):
        claims = run_c5_subset_vi(fast=True, seed=0)
        assert claims.nll_shifted > claims.nll_in_distribution
        assert claims.memory_ratio > 10.0
        assert claims.power_ratio > 5.0
        assert 0.0 < claims.bayesian_fraction < 0.05

    def test_train_classifier_improves_over_chance(self):
        data = digits_dataset(n_samples=1200, seed=11)
        from repro.bayesian import make_binary_mlp, deterministic_predict
        model = make_binary_mlp(data.n_features, (64,), data.n_classes,
                                seed=11)
        train_classifier(model, data, TrainConfig(epochs=8, mc_samples=4))
        probs = deterministic_predict(model, data.x_test)
        acc = (probs.argmax(-1) == data.y_test).mean()
        assert acc > 0.5  # chance is 0.1


class TestEndToEnd:
    def test_full_pipeline_spindrop(self):
        """Train → MC predict → deploy → MC predict on hardware →
        energy accounting, in one flow."""
        from repro.bayesian import BayesianCim, make_spindrop_mlp, mc_predict
        from repro.cim import CimConfig
        from repro.devices import DeviceVariability, VariabilityParams
        from repro.energy import price_ledger

        data = digits_dataset(n_samples=1200, seed=21)
        model = make_spindrop_mlp(data.n_features, (64,), data.n_classes,
                                  p=0.15, seed=21)
        train_classifier(model, data, TrainConfig(epochs=8, mc_samples=6))

        sw = mc_predict(model, data.x_test, n_samples=6)
        sw_acc = (sw.predictions == data.y_test).mean()
        assert sw_acc > 0.5

        variability = DeviceVariability(
            VariabilityParams(sigma_r=0.03, sigma_read=0.01),
            rng=np.random.default_rng(0))
        deployed = BayesianCim(model, CimConfig(variability=variability,
                                                seed=0))
        hw = deployed.mc_forward(data.x_test[:60], n_samples=6)
        hw_acc = (hw.predictions == data.y_test[:60]).mean()
        assert hw_acc > sw_acc - 0.25

        joules, breakdown = price_ledger(deployed.ledger)
        assert joules > 0
        assert breakdown["rng_cycle"] > 0
        assert breakdown["adc_conversion"] > 0

    def test_save_load_then_deploy(self, tmp_path):
        """A trained model survives serialization and redeployment."""
        from repro.bayesian import (BayesianCim, make_scaledrop_mlp,
                                    mc_predict)
        from repro.cim import CimConfig

        data = digits_dataset(n_samples=400, seed=31)
        model = make_scaledrop_mlp(data.n_features, (24,), data.n_classes,
                                   seed=31)
        train_classifier(model, data, TrainConfig(epochs=3, mc_samples=4))
        path = str(tmp_path / "scaledrop.npz")
        model.save(path)

        clone = make_scaledrop_mlp(data.n_features, (24,), data.n_classes,
                                   seed=99)
        clone.load(path)
        a = BayesianCim(model, CimConfig(adc_bits=10, seed=1))
        b = BayesianCim(clone, CimConfig(adc_bits=10, seed=1))
        x = data.x_test[:10]
        np.testing.assert_allclose(a.deterministic_forward(x),
                                   b.deterministic_forward(x), atol=1e-9)

    def test_defect_injection_degrades_gracefully(self):
        """Accuracy decreases with defect rate but stays above chance
        at moderate rates (robustness, key takeaway #8)."""
        from repro.bayesian import BayesianCim, make_spindrop_mlp
        from repro.cim import CimConfig
        from repro.devices import DefectModel, DefectRates

        data = digits_dataset(n_samples=600, seed=41)
        model = make_spindrop_mlp(data.n_features, (32,), data.n_classes,
                                  p=0.15, seed=41)
        train_classifier(model, data, TrainConfig(epochs=5, mc_samples=6))
        x, y = data.x_test[:80], data.y_test[:80]

        accs = []
        for rate in (0.0, 0.3):
            defects = None
            if rate:
                defects = DefectModel(
                    DefectRates(stuck_at_p=rate / 2, stuck_at_ap=rate / 2),
                    rng=np.random.default_rng(5))
            deployed = BayesianCim(model, CimConfig(defects=defects, seed=5))
            result = deployed.mc_forward(x, n_samples=6)
            accs.append((result.predictions == y).mean())
        assert accs[0] >= accs[1]  # faults do not help
        assert accs[0] > 0.4
