"""Latency/area models, MC-DropConnect baseline, temperature sweep."""

import numpy as np
import pytest

from repro.bayesian import (
    DropConnectLinear,
    make_dropconnect_mlp,
    mc_predict,
)
from repro.energy import (
    lenet_like,
    method_area,
    method_latency_per_image,
)
from repro.experiments.ablations import (
    adc_resolution_sweep,
    temperature_sweep,
    wire_resistance_sweep,
)
from repro.tensor import Tensor

RNG = np.random.default_rng(23)


class TestLatencyModel:
    def test_deterministic_fastest(self):
        spec = lenet_like()
        t_det, _ = method_latency_per_image(spec, "deterministic")
        for method in ("spindrop", "scaledrop", "mc_dropconnect"):
            t, _ = method_latency_per_image(spec, method)
            assert t > t_det

    def test_dropconnect_latency_blowup(self):
        """Per-weight masks generated on a per-neuron bank serialize:
        the paper's 'overall sampling latency can be long' claim."""
        spec = lenet_like()
        t_dc, _ = method_latency_per_image(spec, "mc_dropconnect")
        t_sd, _ = method_latency_per_image(spec, "spindrop")
        assert t_dc > t_sd

    def test_mc_passes_scale_latency(self):
        spec = lenet_like()
        t10, _ = method_latency_per_image(spec, "scaledrop", n_mc_passes=10)
        t20, _ = method_latency_per_image(spec, "scaledrop", n_mc_passes=20)
        assert t20 == pytest.approx(2 * t10, rel=0.01)

    def test_breakdown_sums_to_total(self):
        spec = lenet_like()
        total, breakdown = method_latency_per_image(spec, "spindrop")
        assert sum(breakdown.values()) == pytest.approx(total)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            method_latency_per_image(lenet_like(), "alchemy")


class TestAreaModel:
    def test_spindrop_module_area_dominates_scaledrop(self):
        spec = lenet_like()
        a_spin = method_area(spec, "spindrop")
        a_scale = method_area(spec, "scaledrop")
        assert a_spin["dropout_modules"] > 100 * a_scale["dropout_modules"]
        assert a_spin["total"] > a_scale["total"]

    def test_spinbayes_crossbar_area_scales_with_components(self):
        spec = lenet_like()
        small = method_area(spec, "spinbayes", spinbayes_components=2)
        large = method_area(spec, "spinbayes", spinbayes_components=16)
        assert large["crossbar"] == pytest.approx(8 * small["crossbar"])

    def test_scale_sram_only_for_scale_methods(self):
        spec = lenet_like()
        assert method_area(spec, "scaledrop")["scale_sram"] > 0
        assert method_area(spec, "spindrop")["scale_sram"] == 0.0

    def test_total_is_component_sum(self):
        area = method_area(lenet_like(), "subset_vi")
        parts = sum(v for k, v in area.items() if k != "total")
        assert area["total"] == pytest.approx(parts)


class TestDropConnect:
    def test_mask_over_weights(self):
        layer = DropConnectLinear(16, 8, p=0.3,
                                  rng=np.random.default_rng(0))
        mask = layer.sample_weight_mask()
        assert mask.shape == (8, 16)
        assert 0.4 < mask.mean() < 0.9

    def test_module_count_is_per_neuron(self):
        layer = DropConnectLinear(100, 30, p=0.1)
        assert layer.n_dropout_modules == 30
        assert layer.mask_bits_per_pass == 3000

    def test_eval_mode_deterministic(self):
        layer = DropConnectLinear(8, 4, p=0.5,
                                  rng=np.random.default_rng(0))
        layer.eval()
        x = Tensor(np.sign(RNG.standard_normal((3, 8))))
        a = layer(x).data
        b = layer(x).data
        np.testing.assert_array_equal(a, b)

    def test_stochastic_mode_varies(self):
        layer = DropConnectLinear(32, 16, p=0.4,
                                  rng=np.random.default_rng(0))
        x = Tensor(np.sign(RNG.standard_normal((3, 32))))
        a = layer(x).data.copy()
        b = layer(x).data.copy()
        assert not np.allclose(a, b)

    def test_gradients_flow(self):
        layer = DropConnectLinear(8, 4, p=0.2,
                                  rng=np.random.default_rng(0))
        layer(Tensor(RNG.standard_normal((2, 8)))).sum().backward()
        assert layer.weight.grad is not None

    def test_mlp_trains(self):
        from repro.experiments.common import (TrainConfig, digits_dataset,
                                              train_classifier)
        data = digits_dataset(n_samples=800, seed=7)
        model = make_dropconnect_mlp(data.n_features, (32,),
                                     data.n_classes, p=0.1, seed=7)
        train_classifier(model, data, TrainConfig(epochs=5, mc_samples=6))
        result = mc_predict(model, data.x_test, n_samples=6)
        assert (result.predictions == data.y_test).mean() > 0.4

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            DropConnectLinear(4, 4, p=0.0)


class TestNonIdealitySweeps:
    def test_temperature_raises_dropout_rate(self):
        rows = temperature_sweep(temperatures=(250.0, 400.0),
                                 target_p=0.25, seed=0)
        cold, hot = rows[0], rows[1]
        # Δ drops with temperature -> more switching at the same current.
        assert hot["raw_p_mu"] > cold["raw_p_mu"]
        # Calibration trims both back toward the target.
        assert abs(hot["calibrated_p"] - 0.25) < 0.08

    def test_adc_resolution_monotone_band(self):
        accs = adc_resolution_sweep(fast=True, seed=0, bit_grid=(2, 10))
        # Coarse ADC cannot beat fine ADC by more than noise.
        assert accs[10] >= accs[2] - 0.05

    def test_wire_resistance_degrades(self):
        accs = wire_resistance_sweep(fast=True, seed=0,
                                     resistances=(0.0, 20.0))
        assert accs[20.0] <= accs[0.0] + 0.05
