"""BatchScheduler: request coalescing over the batched MC engine."""

import threading
import time

import numpy as np
import pytest

from repro.bayesian import BayesianCim, make_spindrop_mlp
from repro.cim import CimConfig
from repro.serving import BatchScheduler

RNG = np.random.default_rng(7)


def _engine(seed=9):
    model = make_spindrop_mlp(12, (8,), 3, p=0.3, seed=2)
    return BayesianCim(model, CimConfig(seed=4), seed=seed)


@pytest.fixture
def engine():
    return _engine()


class TestSubmitAndResolve:
    def test_result_has_predictive_distribution(self, engine):
        scheduler = BatchScheduler(engine, n_samples=5, max_batch=16)
        ticket = scheduler.submit(RNG.standard_normal((3, 12)))
        result = ticket.result()
        assert result.probs.shape == (3, 3)
        assert result.samples.shape == (5, 3, 3)
        np.testing.assert_allclose(result.probs.sum(axis=-1), 1.0,
                                   rtol=1e-9)
        assert result.mutual_information.shape == (3,)

    def test_unbatched_sample_after_first_request(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3, max_batch=16)
        scheduler.submit(RNG.standard_normal((2, 12)))
        single = scheduler.submit(RNG.standard_normal(12))
        assert single.result().probs.shape == (1, 3)

    def test_feature_mismatch_rejected(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3, max_batch=16)
        scheduler.submit(RNG.standard_normal((2, 12)))
        with pytest.raises(ValueError):
            scheduler.submit(RNG.standard_normal((2, 7)))

    def test_auto_flush_at_max_batch(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3, max_batch=4)
        a = scheduler.submit(RNG.standard_normal((2, 12)))
        assert not a.done()
        b = scheduler.submit(RNG.standard_normal((2, 12)))
        assert a.done() and b.done()
        assert scheduler.pending_rows == 0
        assert scheduler.stats.flushes == 1
        assert scheduler.stats.coalesced_rows == 4

    def test_result_forces_flush(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3, max_batch=64)
        ticket = scheduler.submit(RNG.standard_normal((2, 12)))
        assert not ticket.done()
        assert ticket.result().probs.shape == (2, 3)
        assert scheduler.stats.flushes == 1

    def test_flush_empty_is_noop(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3)
        assert scheduler.flush() == 0
        assert scheduler.stats.flushes == 0


class TestCoalescingSemantics:
    def test_coalesced_equals_one_direct_batched_call(self):
        """Coalescing is invisible: slices of one mc_forward_batched."""
        x1 = RNG.standard_normal((3, 12))
        x2 = RNG.standard_normal((5, 12))

        scheduler = BatchScheduler(_engine(seed=21), n_samples=4,
                                   max_batch=64)
        t1 = scheduler.submit(x1)
        t2 = scheduler.submit(x2)
        scheduler.flush()

        direct = _engine(seed=21).mc_forward_batched(
            np.concatenate([x1, x2]), n_samples=4)
        np.testing.assert_array_equal(t1.result().samples,
                                      direct.samples[:, :3])
        np.testing.assert_array_equal(t2.result().samples,
                                      direct.samples[:, 3:])

    def test_oversized_request_accepted_whole(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3, max_batch=4)
        ticket = scheduler.submit(RNG.standard_normal((9, 12)))
        assert ticket.done()            # flushed immediately, unsplit
        assert ticket.result().probs.shape == (9, 3)

    def test_stats_track_requests_and_rows(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3, max_batch=64)
        scheduler.submit(RNG.standard_normal((2, 12)))
        scheduler.submit(RNG.standard_normal((3, 12)))
        scheduler.flush()
        assert scheduler.stats.requests == 2
        assert scheduler.stats.rows == 5
        assert scheduler.stats.mean_rows_per_flush == 5.0


class TestConcurrency:
    def test_threaded_submits_all_resolve(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3, max_batch=8)
        tickets = []
        lock = threading.Lock()

        def worker(i):
            x = np.random.default_rng(i).standard_normal((2, 12))
            ticket = scheduler.submit(x)
            with lock:
                tickets.append(ticket)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        scheduler.flush()
        assert len(tickets) == 10
        for ticket in tickets:
            assert ticket.result().probs.shape == (2, 3)
        assert scheduler.stats.rows == 20


class TestValidation:
    def test_bad_params_rejected(self, engine):
        with pytest.raises(ValueError):
            BatchScheduler(engine, n_samples=0)
        with pytest.raises(ValueError):
            BatchScheduler(engine, max_batch=0)

    def test_empty_request_rejected(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3)
        with pytest.raises(ValueError):
            scheduler.submit(np.zeros((0, 12)))

    def test_double_result_raises_clear_error(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3)
        ticket = scheduler.submit(RNG.standard_normal((2, 12)))
        ticket.result()
        with pytest.raises(RuntimeError, match="already consumed"):
            ticket.result()

    def test_abandoned_results_evicted_at_cap(self, engine):
        scheduler = BatchScheduler(engine, n_samples=2, max_batch=64,
                                   max_retained_results=2)
        abandoned = scheduler.submit(RNG.standard_normal((1, 12)))
        scheduler.flush()
        kept = [scheduler.submit(RNG.standard_normal((1, 12)))
                for _ in range(2)]
        scheduler.flush()
        assert scheduler.stats.evicted == 1
        with pytest.raises(RuntimeError, match="evicted"):
            abandoned.result()
        for ticket in kept:               # newest results survive
            assert ticket.result().probs.shape == (1, 3)


class TestPerRequestSamples:
    def test_groups_by_n_samples_at_flush(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3, max_batch=64)
        t_default = scheduler.submit(RNG.standard_normal((2, 12)))
        t_deep = scheduler.submit(RNG.standard_normal((3, 12)), n_samples=7)
        t_default2 = scheduler.submit(RNG.standard_normal((1, 12)))
        assert scheduler.flush() == 3
        # One engine call per distinct T.
        assert scheduler.stats.flushes == 2
        assert t_default.result().samples.shape == (3, 2, 3)
        assert t_deep.result().samples.shape == (7, 3, 3)
        assert t_default2.result().samples.shape == (3, 1, 3)

    def test_same_t_group_equals_direct_batched_call(self):
        """Grouping preserves coalescing semantics within a T-group.

        Groups run in arrival order of their first member, so a seeded
        replay of the same engine-call sequence must reproduce every
        request's slices bit-for-bit.
        """
        x_odd = RNG.standard_normal((1, 12))
        x1 = RNG.standard_normal((2, 12))
        x2 = RNG.standard_normal((3, 12))
        scheduler = BatchScheduler(_engine(seed=31), n_samples=2,
                                   max_batch=64)
        t_odd = scheduler.submit(x_odd, n_samples=5)
        t1 = scheduler.submit(x1, n_samples=4)
        t2 = scheduler.submit(x2, n_samples=4)
        scheduler.flush()

        replay = _engine(seed=31)
        direct_odd = replay.mc_forward_batched(x_odd, n_samples=5)
        direct_four = replay.mc_forward_batched(
            np.concatenate([x1, x2]), n_samples=4)
        np.testing.assert_array_equal(t_odd.result().samples,
                                      direct_odd.samples)
        np.testing.assert_array_equal(t1.result().samples,
                                      direct_four.samples[:, :2])
        np.testing.assert_array_equal(t2.result().samples,
                                      direct_four.samples[:, 2:])

    def test_ticket_carries_its_sample_count(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3)
        ticket = scheduler.submit(RNG.standard_normal((2, 12)), n_samples=9)
        assert ticket.n_samples == 9

    def test_invalid_per_request_samples_rejected(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3)
        with pytest.raises(ValueError):
            scheduler.submit(RNG.standard_normal((2, 12)), n_samples=0)


class TestTimerFlush:
    def test_deadline_flushes_pending(self, engine):
        with BatchScheduler(engine, n_samples=2, max_batch=64,
                            flush_interval=0.05) as scheduler:
            ticket = scheduler.submit(RNG.standard_normal((2, 12)))
            assert not ticket.done()
            deadline = time.monotonic() + 5.0
            while not ticket.done() and time.monotonic() < deadline:
                time.sleep(0.01)
            assert ticket.done()
            assert scheduler.stats.timer_flushes == 1
            assert ticket.result().probs.shape == (2, 3)

    def test_manual_flush_cancels_timer(self, engine):
        with BatchScheduler(engine, n_samples=2, max_batch=64,
                            flush_interval=0.05) as scheduler:
            scheduler.submit(RNG.standard_normal((2, 12)))
            scheduler.flush()
            time.sleep(0.12)
            assert scheduler.stats.timer_flushes == 0

    def test_close_flushes_and_stops_timer(self, engine):
        scheduler = BatchScheduler(engine, n_samples=2, max_batch=64,
                                   flush_interval=30.0)
        ticket = scheduler.submit(RNG.standard_normal((2, 12)))
        scheduler.close()
        assert ticket.done()
        assert scheduler._timer is None

    def test_invalid_interval_rejected(self, engine):
        with pytest.raises(ValueError):
            BatchScheduler(engine, flush_interval=0.0)


class TestResolveBugfixes:
    def test_consumed_ticket_does_not_flush_unrelated_requests(self, engine):
        """Regression: resolving a consumed ticket used to force-flush
        every unrelated pending request before raising."""
        scheduler = BatchScheduler(engine, n_samples=2, max_batch=64)
        first = scheduler.submit(RNG.standard_normal((1, 12)))
        first.result()                       # consume (forces one flush)
        pending = scheduler.submit(RNG.standard_normal((2, 12)))
        with pytest.raises(RuntimeError, match="already consumed"):
            first.result()
        assert not pending.done()            # still pending, untouched
        assert scheduler.pending_rows == 2
        assert scheduler.stats.flushes == 1

    def test_evicted_ticket_does_not_flush_unrelated_requests(self, engine):
        scheduler = BatchScheduler(engine, n_samples=2, max_batch=64,
                                   max_retained_results=1)
        abandoned = scheduler.submit(RNG.standard_normal((1, 12)))
        scheduler.flush()
        scheduler.submit(RNG.standard_normal((1, 12)))
        scheduler.flush()                    # evicts the abandoned result
        pending = scheduler.submit(RNG.standard_normal((1, 12)))
        with pytest.raises(RuntimeError, match="evicted"):
            abandoned.result()
        assert not pending.done()
        assert scheduler.pending_rows == 1

    def test_eviction_order_is_oldest_first(self, engine):
        """Regression: the cap must drop the oldest flushed results."""
        scheduler = BatchScheduler(engine, n_samples=2, max_batch=64,
                                   max_retained_results=3)
        tickets = []
        for _ in range(5):
            tickets.append(scheduler.submit(RNG.standard_normal((1, 12))))
            scheduler.flush()
        assert scheduler.stats.evicted == 2
        for old in tickets[:2]:              # oldest two evicted
            with pytest.raises(RuntimeError, match="evicted"):
                old.result()
        for recent in tickets[2:]:           # newest three survive
            assert recent.result().probs.shape == (1, 3)


class TestConcurrencyStress:
    def test_multithreaded_submit_result_flush(self, engine):
        """Hammer submit/result/flush from many threads at once."""
        scheduler = BatchScheduler(engine, n_samples=2, max_batch=8)
        n_workers, per_worker = 8, 6
        errors = []

        def worker(wid):
            rng = np.random.default_rng(wid)
            try:
                for i in range(per_worker):
                    n_rows = 1 + (wid + i) % 3
                    ticket = scheduler.submit(
                        rng.standard_normal((n_rows, 12)),
                        n_samples=2 + (i % 2))
                    if i % 3 == 0:
                        scheduler.flush()
                    result = ticket.result()
                    assert result.probs.shape == (n_rows, 3)
                    assert result.samples.shape[0] == 2 + (i % 2)
            except Exception as exc:         # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,))
                   for w in range(n_workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert scheduler.stats.requests == n_workers * per_worker
        assert scheduler.pending_rows == 0
        assert not scheduler._results     # every ticket claimed its slice


class TestGroupFailureIsolation:
    """An engine failure fails exactly the requests of that engine
    call (one T-group), never the sibling groups in the same flush."""

    class _TSelectivePoison:
        def __init__(self, engine, poisoned_t):
            self._engine = engine
            self._poisoned_t = poisoned_t

        def mc_forward_batched(self, x, n_samples=10, chunk_passes=None):
            if n_samples == self._poisoned_t:
                raise RuntimeError("boom: poisoned T-group")
            return self._engine.mc_forward_batched(
                x, n_samples=n_samples, chunk_passes=chunk_passes)

    def test_poisoned_t_group_leaves_siblings_resolved(self):
        scheduler = BatchScheduler(
            self._TSelectivePoison(_engine(), poisoned_t=7), n_samples=3)
        good = scheduler.submit(RNG.standard_normal((2, 12)))
        bad = scheduler.submit(RNG.standard_normal((1, 12)), n_samples=7)
        scheduler.flush()
        assert good.done() and bad.done()
        assert good.result().probs.shape == (2, 3)
        with pytest.raises(RuntimeError, match="boom"):
            bad.result()
        # The failure slot is consumed like any result.
        with pytest.raises(RuntimeError, match="already consumed"):
            bad.result()


class TestMultiDimFeatures:
    """Image engines: feature shapes with more than one axis."""

    def _cnn_engine(self):
        from repro.bayesian import make_spatial_spindrop_cnn

        model = make_spatial_spindrop_cnn(1, 12, 4, widths=(4, 8), seed=3)
        return BayesianCim(model, CimConfig(seed=5), seed=6)

    def test_explicit_feature_shape_allows_unbatched_image(self):
        scheduler = BatchScheduler(self._cnn_engine(), n_samples=2,
                                   feature_shape=(1, 12, 12))
        single = scheduler.submit(RNG.standard_normal((1, 12, 12)))
        batch = scheduler.submit(RNG.standard_normal((3, 1, 12, 12)))
        scheduler.flush()
        assert single.result().probs.shape == (1, 4)
        assert batch.result().probs.shape == (3, 4)

    def test_multi_dim_first_request_without_feature_shape_rejected(self):
        # A first request with more than two axes is ambiguous (is
        # (2, 1, 12, 12) a batch of two images or one 4-D sample?);
        # the scheduler must refuse to guess rather than silently
        # slice a wrong shape.
        scheduler = BatchScheduler(self._cnn_engine(), n_samples=2)
        with pytest.raises(ValueError, match="feature_shape"):
            scheduler.submit(RNG.standard_normal((2, 1, 12, 12)))
        with pytest.raises(ValueError, match="feature_shape"):
            scheduler.submit(RNG.standard_normal((1, 12, 12)))

    def test_explicit_feature_shape_serves_batched_images(self):
        scheduler = BatchScheduler(self._cnn_engine(), n_samples=2,
                                   feature_shape=(1, 12, 12))
        first = scheduler.submit(RNG.standard_normal((2, 1, 12, 12)))
        single = scheduler.submit(RNG.standard_normal((1, 12, 12)))
        scheduler.flush()
        assert first.result().probs.shape == (2, 4)
        assert single.result().probs.shape == (1, 4)


class TestResultTimeout:
    """result(timeout=...) waits politely, then withdraws the request."""

    def test_timeout_resolves_when_another_trigger_flushes(self, engine):
        scheduler = BatchScheduler(engine, n_samples=2, max_batch=64)
        ticket = scheduler.submit(RNG.standard_normal((2, 12)))

        flusher = threading.Timer(0.05, scheduler.flush)
        flusher.start()
        try:
            result = ticket.result(timeout=5.0)
        finally:
            flusher.cancel()
        assert result.probs.shape == (2, 3)
        assert scheduler.stats.timeouts == 0

    def test_expiry_raises_and_frees_the_queue_slot(self, engine):
        from repro.serving import ResultTimeout

        scheduler = BatchScheduler(engine, n_samples=2, max_batch=64)
        abandoned = scheduler.submit(RNG.standard_normal((3, 12)))
        assert scheduler.pending_rows == 3
        with pytest.raises(ResultTimeout):
            abandoned.result(timeout=0.01)
        # Withdrawn entirely: its rows no longer count toward the
        # batch, and it will never run.
        assert scheduler.pending_rows == 0
        assert scheduler.stats.timeouts == 1

        # Retrying the same ticket re-raises (no silent hang).
        with pytest.raises(ResultTimeout):
            abandoned.result(timeout=0.01)
        with pytest.raises(ResultTimeout):
            abandoned.result()               # even without a timeout

        # The scheduler keeps serving; the withdrawn rows are gone.
        later = scheduler.submit(RNG.standard_normal((2, 12)))
        scheduler.flush()
        assert later.result().probs.shape == (2, 3)
        assert scheduler.stats.flushes == 1  # only the later request ran

    def test_timeout_does_not_force_a_flush(self, engine):
        from repro.serving import ResultTimeout

        scheduler = BatchScheduler(engine, n_samples=2, max_batch=64)
        waiting = scheduler.submit(RNG.standard_normal((2, 12)))
        sibling = scheduler.submit(RNG.standard_normal((1, 12)))
        with pytest.raises(ResultTimeout):
            waiting.result(timeout=0.02)
        # The sibling stayed queued — a timed wait never flushes.
        assert scheduler.stats.flushes == 0
        assert scheduler.pending_rows == 1
        scheduler.flush()
        assert sibling.result().probs.shape == (1, 3)

    def test_deadline_timer_still_serves_timed_waiters(self, engine):
        scheduler = BatchScheduler(engine, n_samples=2, max_batch=64,
                                   flush_interval=0.02)
        with scheduler:
            ticket = scheduler.submit(RNG.standard_normal((2, 12)))
            result = ticket.result(timeout=5.0)
        assert result.probs.shape == (2, 3)
        assert scheduler.stats.timer_flushes == 1

    def test_invalid_timeout_rejected(self, engine):
        scheduler = BatchScheduler(engine, n_samples=2)
        ticket = scheduler.submit(RNG.standard_normal((1, 12)))
        with pytest.raises(ValueError):
            ticket.result(timeout=0.0)
        with pytest.raises(ValueError):
            ticket.result(timeout=-1.0)
        scheduler.flush()
        assert ticket.result().probs.shape == (1, 3)
