"""BatchScheduler: request coalescing over the batched MC engine."""

import threading

import numpy as np
import pytest

from repro.bayesian import BayesianCim, make_spindrop_mlp
from repro.cim import CimConfig
from repro.serving import BatchScheduler

RNG = np.random.default_rng(7)


def _engine(seed=9):
    model = make_spindrop_mlp(12, (8,), 3, p=0.3, seed=2)
    return BayesianCim(model, CimConfig(seed=4), seed=seed)


@pytest.fixture
def engine():
    return _engine()


class TestSubmitAndResolve:
    def test_result_has_predictive_distribution(self, engine):
        scheduler = BatchScheduler(engine, n_samples=5, max_batch=16)
        ticket = scheduler.submit(RNG.standard_normal((3, 12)))
        result = ticket.result()
        assert result.probs.shape == (3, 3)
        assert result.samples.shape == (5, 3, 3)
        np.testing.assert_allclose(result.probs.sum(axis=-1), 1.0,
                                   rtol=1e-9)
        assert result.mutual_information.shape == (3,)

    def test_unbatched_sample_after_first_request(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3, max_batch=16)
        scheduler.submit(RNG.standard_normal((2, 12)))
        single = scheduler.submit(RNG.standard_normal(12))
        assert single.result().probs.shape == (1, 3)

    def test_feature_mismatch_rejected(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3, max_batch=16)
        scheduler.submit(RNG.standard_normal((2, 12)))
        with pytest.raises(ValueError):
            scheduler.submit(RNG.standard_normal((2, 7)))

    def test_auto_flush_at_max_batch(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3, max_batch=4)
        a = scheduler.submit(RNG.standard_normal((2, 12)))
        assert not a.done()
        b = scheduler.submit(RNG.standard_normal((2, 12)))
        assert a.done() and b.done()
        assert scheduler.pending_rows == 0
        assert scheduler.stats.flushes == 1
        assert scheduler.stats.coalesced_rows == 4

    def test_result_forces_flush(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3, max_batch=64)
        ticket = scheduler.submit(RNG.standard_normal((2, 12)))
        assert not ticket.done()
        assert ticket.result().probs.shape == (2, 3)
        assert scheduler.stats.flushes == 1

    def test_flush_empty_is_noop(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3)
        assert scheduler.flush() == 0
        assert scheduler.stats.flushes == 0


class TestCoalescingSemantics:
    def test_coalesced_equals_one_direct_batched_call(self):
        """Coalescing is invisible: slices of one mc_forward_batched."""
        x1 = RNG.standard_normal((3, 12))
        x2 = RNG.standard_normal((5, 12))

        scheduler = BatchScheduler(_engine(seed=21), n_samples=4,
                                   max_batch=64)
        t1 = scheduler.submit(x1)
        t2 = scheduler.submit(x2)
        scheduler.flush()

        direct = _engine(seed=21).mc_forward_batched(
            np.concatenate([x1, x2]), n_samples=4)
        np.testing.assert_array_equal(t1.result().samples,
                                      direct.samples[:, :3])
        np.testing.assert_array_equal(t2.result().samples,
                                      direct.samples[:, 3:])

    def test_oversized_request_accepted_whole(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3, max_batch=4)
        ticket = scheduler.submit(RNG.standard_normal((9, 12)))
        assert ticket.done()            # flushed immediately, unsplit
        assert ticket.result().probs.shape == (9, 3)

    def test_stats_track_requests_and_rows(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3, max_batch=64)
        scheduler.submit(RNG.standard_normal((2, 12)))
        scheduler.submit(RNG.standard_normal((3, 12)))
        scheduler.flush()
        assert scheduler.stats.requests == 2
        assert scheduler.stats.rows == 5
        assert scheduler.stats.mean_rows_per_flush == 5.0


class TestConcurrency:
    def test_threaded_submits_all_resolve(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3, max_batch=8)
        tickets = []
        lock = threading.Lock()

        def worker(i):
            x = np.random.default_rng(i).standard_normal((2, 12))
            ticket = scheduler.submit(x)
            with lock:
                tickets.append(ticket)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(10)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        scheduler.flush()
        assert len(tickets) == 10
        for ticket in tickets:
            assert ticket.result().probs.shape == (2, 3)
        assert scheduler.stats.rows == 20


class TestValidation:
    def test_bad_params_rejected(self, engine):
        with pytest.raises(ValueError):
            BatchScheduler(engine, n_samples=0)
        with pytest.raises(ValueError):
            BatchScheduler(engine, max_batch=0)

    def test_empty_request_rejected(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3)
        with pytest.raises(ValueError):
            scheduler.submit(np.zeros((0, 12)))

    def test_double_result_raises_clear_error(self, engine):
        scheduler = BatchScheduler(engine, n_samples=3)
        ticket = scheduler.submit(RNG.standard_normal((2, 12)))
        ticket.result()
        with pytest.raises(RuntimeError, match="already consumed"):
            ticket.result()

    def test_abandoned_results_evicted_at_cap(self, engine):
        scheduler = BatchScheduler(engine, n_samples=2, max_batch=64,
                                   max_retained_results=2)
        abandoned = scheduler.submit(RNG.standard_normal((1, 12)))
        scheduler.flush()
        kept = [scheduler.submit(RNG.standard_normal((1, 12)))
                for _ in range(2)]
        scheduler.flush()
        assert scheduler.stats.evicted == 1
        with pytest.raises(RuntimeError, match="evicted"):
            abandoned.result()
        for ticket in kept:               # newest results survive
            assert ticket.result().probs.shape == (1, 3)


class TestMultiDimFeatures:
    """Image engines: feature shapes with more than one axis."""

    def _cnn_engine(self):
        from repro.bayesian import make_spatial_spindrop_cnn

        model = make_spatial_spindrop_cnn(1, 12, 4, widths=(4, 8), seed=3)
        return BayesianCim(model, CimConfig(seed=5), seed=6)

    def test_explicit_feature_shape_allows_unbatched_image(self):
        scheduler = BatchScheduler(self._cnn_engine(), n_samples=2,
                                   feature_shape=(1, 12, 12))
        single = scheduler.submit(RNG.standard_normal((1, 12, 12)))
        batch = scheduler.submit(RNG.standard_normal((3, 1, 12, 12)))
        scheduler.flush()
        assert single.result().probs.shape == (1, 4)
        assert batch.result().probs.shape == (3, 4)

    def test_inferred_feature_shape_from_batched_first_request(self):
        scheduler = BatchScheduler(self._cnn_engine(), n_samples=2)
        first = scheduler.submit(RNG.standard_normal((2, 1, 12, 12)))
        single = scheduler.submit(RNG.standard_normal((1, 12, 12)))
        scheduler.flush()
        assert first.result().probs.shape == (2, 4)
        assert single.result().probs.shape == (1, 4)
