"""Energy model: pricing, analytic specs, method orderings, storage."""
import pytest

from repro.cim import OpLedger
from repro.energy import (
    DEFAULT_ENERGY,
    EnergyParams,
    dropout_subsystem_energy,
    forward_pass_ledger,
    format_energy,
    lenet_like,
    method_energy_per_image,
    method_rng_bits,
    mlp_spec,
    price_ledger,
    render_breakdown,
    render_table,
    storage_bits,
)


class TestPricing:
    def test_price_simple_ledger(self):
        ledger = OpLedger()
        ledger.add("adc_conversion", 1000)
        total, breakdown = price_ledger(ledger)
        assert total == pytest.approx(1000 * DEFAULT_ENERGY.adc_conversion)
        assert breakdown == {"adc_conversion": total}

    def test_unknown_op_raises(self):
        ledger = OpLedger()
        ledger.add("quantum_flux", 1)
        with pytest.raises(KeyError):
            price_ledger(ledger)

    def test_custom_params(self):
        ledger = OpLedger()
        ledger.add("rng_cycle", 10)
        cheap = EnergyParams(rng_cycle=1e-15)
        total, _ = price_ledger(ledger, cheap)
        assert total == pytest.approx(1e-14)


class TestSpecs:
    def test_lenet_shapes(self):
        spec = lenet_like()
        assert len(spec.layers) == 5
        assert spec.layers[0].out_positions == 24 * 24
        assert spec.layers[2].in_features == 256

    def test_mlp_spec(self):
        spec = mlp_spec(256, (128, 64), 10)
        assert [layer.in_features for layer in spec.layers] == [256, 128, 64]
        assert spec.total_weights == 256 * 128 + 128 * 64 + 64 * 10

    def test_neuron_count(self):
        spec = mlp_spec(10, (20,), 5)
        assert spec.total_neurons == 25

    def test_forward_pass_ledger_chunking(self):
        spec = mlp_spec(300, (), 10)  # 300 rows -> 3 chunks at 128
        ledger = forward_pass_ledger(spec, max_rows=128)
        assert ledger["adc_conversion"] == 10 * 3


class TestMethodRngBits:
    def test_spindrop_counts_neurons(self):
        spec = mlp_spec(256, (128, 64), 10)
        assert method_rng_bits(spec, "spindrop") == 128 + 64 + 10

    def test_dropconnect_counts_weights(self):
        spec = mlp_spec(16, (8,), 4)
        assert method_rng_bits(spec, "mc_dropconnect") == 16 * 8 + 8 * 4

    def test_scaledrop_one_per_layer(self):
        spec = mlp_spec(256, (128, 64), 10)
        assert method_rng_bits(spec, "scaledrop") == 3

    def test_affine_two_per_layer(self):
        spec = mlp_spec(256, (128,), 10)
        assert method_rng_bits(spec, "affine") == 4

    def test_spinbayes_log_components(self):
        spec = mlp_spec(256, (128,), 10)
        assert method_rng_bits(spec, "spinbayes",
                               spinbayes_components=8) == 2 * 3

    def test_deterministic_zero(self):
        assert method_rng_bits(lenet_like(), "deterministic") == 0

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            method_rng_bits(lenet_like(), "mystery")


class TestTable1Ordering:
    """The structural energy claims of Table I and the text."""

    def test_energy_ordering_matches_paper(self):
        spec = lenet_like()
        energies = {m: method_energy_per_image(spec, m)[0]
                    for m in ("spindrop", "spatial", "scaledrop",
                              "subset_vi", "spinbayes")}
        # Paper: SpinDrop 2.0 > Spatial 0.68 > Subset 0.30 >
        #        SpinBayes 0.26 > ScaleDrop 0.18 (µJ).
        assert energies["spindrop"] > energies["spatial"]
        assert energies["spatial"] > energies["scaledrop"]
        assert energies["subset_vi"] > energies["spinbayes"]
        assert energies["spindrop"] > 3 * energies["scaledrop"]

    def test_spindrop_in_microjoule_band(self):
        e, _ = method_energy_per_image(lenet_like(), "spindrop")
        assert 0.5e-6 < e < 5e-6  # paper: 2.0 µJ

    def test_dropconnect_most_expensive(self):
        spec = lenet_like()
        e_dc, _ = method_energy_per_image(spec, "mc_dropconnect")
        e_sd, _ = method_energy_per_image(spec, "spindrop")
        assert e_dc > e_sd

    def test_deterministic_cheapest(self):
        spec = lenet_like()
        e_det, _ = method_energy_per_image(spec, "deterministic")
        for method in ("spindrop", "spatial", "scaledrop"):
            assert e_det < method_energy_per_image(spec, method)[0]

    def test_dropout_subsystem_ratio_large(self):
        """Scale-Dropout vs SpinDrop dropout-energy: >100× (paper)."""
        spec = lenet_like()
        ratio = (dropout_subsystem_energy(spec, "spindrop")
                 / dropout_subsystem_energy(spec, "scaledrop"))
        assert ratio > 100.0

    def test_more_mc_passes_cost_more(self):
        spec = lenet_like()
        e10, _ = method_energy_per_image(spec, "spindrop", n_mc_passes=10)
        e50, _ = method_energy_per_image(spec, "spindrop", n_mc_passes=50)
        assert e50 == pytest.approx(5 * e10, rel=0.01)


class TestStorage:
    def test_conventional_vi_dominates(self):
        spec = lenet_like()
        conventional = storage_bits(spec, "conventional_vi")
        subset = storage_bits(spec, "subset_vi")
        assert conventional / subset > 20.0

    def test_ensemble_multiplies(self):
        spec = lenet_like()
        single = storage_bits(spec, "deterministic")
        ensemble = storage_bits(spec, "ensemble")
        assert ensemble > 4 * single

    def test_spinbayes_scales_with_components(self):
        spec = lenet_like()
        small = storage_bits(spec, "spinbayes", spinbayes_components=2)
        large = storage_bits(spec, "spinbayes", spinbayes_components=16)
        assert large > small


class TestRendering:
    def test_format_energy_prefixes(self):
        assert format_energy(2e-6) == "2.00 µJ"
        assert format_energy(3.5e-9) == "3.50 nJ"
        assert format_energy(0.0) == "0 J"

    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [["1", "22"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_render_breakdown_sorted(self):
        out = render_breakdown({"small": 1e-12, "big": 1e-9})
        lines = out.splitlines()
        assert "big" in lines[2]  # largest first after header+sep
