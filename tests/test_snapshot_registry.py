"""Deployment snapshots and the multi-tenant model registry.

The acceptance contract of the lifecycle PR: a compiled deployment
captured to disk and rebuilt — in the same or a fresh interpreter —
must be bit-identical to the original through ``mc_forward_batched``
(outputs *and* op-ledger totals); the artifact must refuse to load
when corrupted or written by a different format version; and a single
scheduler fleet must serve several registered models concurrently with
per-model load metrics and LRU eviction that survives reload.
"""

import json
import os
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.bayesian import (
    BayesianCim,
    SpinBayesNetwork,
    make_scaledrop_mlp,
    make_spindrop_mlp,
    make_subset_vi_mlp,
)
from repro.cim import CimConfig
from repro.cim.snapshot import (
    DeploymentSnapshot,
    SnapshotError,
    read_artifact,
    snapshot_engine_factory,
    write_artifact,
)
from repro.serving import BatchScheduler, ModelRegistry

X = np.random.default_rng(8).standard_normal((6, 16))


def _engine(family, seed=0):
    if family == "spindrop":
        model = make_spindrop_mlp(16, (10,), 4, p=0.3, seed=3)
    elif family == "scaledrop":
        model = make_scaledrop_mlp(16, (10,), 4, seed=4)
    elif family == "subset_vi":
        model = make_subset_vi_mlp(16, (10,), 4, seed=5)
    elif family == "spinbayes":
        teacher = make_subset_vi_mlp(16, (10,), 4, seed=5)
        return SpinBayesNetwork.from_subset_vi(
            teacher, n_components=4, n_levels=8,
            config=CimConfig(seed=seed), seed=seed)
    else:
        raise ValueError(family)
    return BayesianCim(model, CimConfig(seed=seed), seed=seed)


FAMILIES = ("spindrop", "scaledrop", "subset_vi", "spinbayes")


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_round_trip_is_bit_identical(self, family, tmp_path):
        original = _engine(family)
        path = str(tmp_path / family)
        DeploymentSnapshot.capture(original).save(path)
        restored = DeploymentSnapshot.load(path).build()
        a = original.mc_forward_batched(X, n_samples=5)
        b = restored.mc_forward_batched(X, n_samples=5)
        np.testing.assert_array_equal(a.samples, b.samples)
        np.testing.assert_array_equal(a.probs, b.probs)
        assert original.ledger.as_dict() == restored.ledger.as_dict()

    def test_replicas_from_one_snapshot_are_identical(self, tmp_path):
        path = str(tmp_path / "snap")
        DeploymentSnapshot.capture(_engine("spindrop")).save(path)
        factory = snapshot_engine_factory(path)
        a = factory().mc_forward_batched(X, n_samples=4)
        b = factory().mc_forward_batched(X, n_samples=4)
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_save_reports_stable_content_hash(self, tmp_path):
        snap = DeploymentSnapshot.capture(_engine("scaledrop"))
        written = snap.save(str(tmp_path / "snap"))
        assert written == snap.content_hash
        reloaded = DeploymentSnapshot.load(str(tmp_path / "snap"))
        assert reloaded.content_hash == written

    def test_capture_rejects_unknown_engine(self):
        with pytest.raises(TypeError, match="cannot snapshot"):
            DeploymentSnapshot.capture(object())

    def test_fresh_interpreter_round_trip(self, tmp_path):
        # The real deployment story: save here, rebuild in a brand-new
        # process, and the prediction stream continues bit-exactly.
        original = _engine("spindrop")
        snap_path = str(tmp_path / "snap")
        DeploymentSnapshot.capture(original).save(snap_path)
        expected = original.mc_forward_batched(X, n_samples=5)
        data_path = str(tmp_path / "io.npz")
        np.savez(data_path, x=X)
        script = (
            "import numpy as np\n"
            "from repro.cim.snapshot import DeploymentSnapshot\n"
            f"x = np.load({data_path!r})['x']\n"
            f"engine = DeploymentSnapshot.load({snap_path!r}).build()\n"
            "result = engine.mc_forward_batched(x, n_samples=5)\n"
            "ledger = engine.ledger.as_dict()\n"
            f"np.savez({str(tmp_path / 'out.npz')!r},\n"
            "         samples=result.samples, probs=result.probs)\n"
            "import json\n"
            f"open({str(tmp_path / 'ledger.json')!r}, 'w')"
            ".write(json.dumps(ledger))\n")
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        subprocess.run([sys.executable, "-c", script], check=True, env=env)
        out = np.load(str(tmp_path / "out.npz"))
        np.testing.assert_array_equal(out["samples"], expected.samples)
        np.testing.assert_array_equal(out["probs"], expected.probs)
        with open(str(tmp_path / "ledger.json")) as fh:
            assert json.load(fh) == {k: int(v) for k, v in
                                     original.ledger.as_dict().items()}


class TestArtifactIntegrity:
    def _saved(self, tmp_path):
        path = str(tmp_path / "snap")
        DeploymentSnapshot.capture(_engine("spindrop")).save(path)
        return path

    def test_missing_artifact(self, tmp_path):
        with pytest.raises(SnapshotError, match="no artifact"):
            DeploymentSnapshot.load(str(tmp_path / "nope"))

    def test_unparseable_manifest(self, tmp_path):
        path = self._saved(tmp_path)
        with open(os.path.join(path, "manifest.json"), "w") as fh:
            fh.write("{not json")
        with pytest.raises(SnapshotError, match="corrupted"):
            DeploymentSnapshot.load(path)

    def test_format_version_mismatch(self, tmp_path):
        path = self._saved(tmp_path)
        manifest_path = os.path.join(path, "manifest.json")
        with open(manifest_path) as fh:
            manifest = json.load(fh)
        manifest["format_version"] = 999
        with open(manifest_path, "w") as fh:
            json.dump(manifest, fh)
        with pytest.raises(SnapshotError, match="version 999"):
            DeploymentSnapshot.load(path)

    def test_wrong_kind_rejected(self, tmp_path):
        path = str(tmp_path / "other")
        write_artifact(path, {"kind": "trained_model"},
                       {"w": np.zeros(3)})
        with pytest.raises(SnapshotError, match="kind"):
            DeploymentSnapshot.load(path)
        # But the generic reader accepts it under its own kind.
        manifest, arrays = read_artifact(path, kind="trained_model")
        assert manifest["kind"] == "trained_model"
        np.testing.assert_array_equal(arrays["w"], np.zeros(3))

    def test_tampered_arrays_fail_content_hash(self, tmp_path):
        path = self._saved(tmp_path)
        blob_path = os.path.join(path, "arrays.bin")
        with open(blob_path, "rb") as fh:
            blob = bytearray(fh.read())
        # The blob ends inside the last array (padding only sits
        # between arrays), so the final byte is always checksummed.
        blob[-1] ^= 0xFF
        with open(blob_path, "wb") as fh:
            fh.write(blob)
        with pytest.raises(SnapshotError, match="content hash mismatch"):
            DeploymentSnapshot.load(path)

    def test_truncated_arrays_rejected(self, tmp_path):
        path = self._saved(tmp_path)
        blob_path = os.path.join(path, "arrays.bin")
        with open(blob_path, "rb") as fh:
            blob = fh.read()
        with open(blob_path, "wb") as fh:
            fh.write(blob[:len(blob) // 2])
        with pytest.raises(SnapshotError, match="corrupted artifact"):
            DeploymentSnapshot.load(path)

    def test_write_requires_kind_tag(self, tmp_path):
        with pytest.raises(ValueError, match="kind"):
            write_artifact(str(tmp_path / "x"), {}, {})


class TestModelRegistry:
    def test_lazy_load_and_metrics(self):
        built = []

        def factory():
            built.append(1)
            return _engine("spindrop")

        registry = ModelRegistry()
        registry.register("clf", factory, feature_shape=(16,))
        assert not built
        engine = registry.engine("clf")
        assert built == [1]
        assert registry.engine("clf") is engine   # cached, not rebuilt
        assert built == [1]
        assert registry.feature_shape("clf") == (16,)
        registry.record_flush("clf", rows=4, n_requests=2, latency_s=0.01)
        snap = registry.metrics("clf").snapshot()
        assert snap.flushes == 1
        assert snap.rows == 4

    def test_register_requires_exactly_one_source(self, tmp_path):
        registry = ModelRegistry()
        with pytest.raises(ValueError, match="exactly one"):
            registry.register("m")
        with pytest.raises(ValueError, match="exactly one"):
            registry.register("m", lambda: None,
                              engine=_engine("spindrop"))

    def test_unknown_model_raises(self):
        registry = ModelRegistry()
        registry.register("a", lambda: _engine("spindrop"))
        with pytest.raises(KeyError, match="a"):
            registry.engine("nope")

    def test_snapshot_backed_registration(self, tmp_path):
        path = str(tmp_path / "snap")
        original = _engine("spindrop")
        DeploymentSnapshot.capture(original).save(path)
        registry = ModelRegistry()
        registry.register("clf", snapshot=path)
        restored = registry.engine("clf")
        a = original.mc_forward_batched(X, n_samples=3)
        b = restored.mc_forward_batched(X, n_samples=3)
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_lru_eviction_keeps_factory_for_reload(self):
        loads = {"a": 0, "b": 0}

        def factory(name):
            def build():
                loads[name] += 1
                return _engine("spindrop")
            return build

        registry = ModelRegistry(max_loaded=1)
        registry.register("a", factory("a"))
        registry.register("b", factory("b"))
        registry.engine("a")
        registry.engine("b")          # evicts a
        assert registry.evictions == 1
        assert loads == {"a": 1, "b": 1}
        registry.engine("a")          # transparent reload, evicts b
        assert loads == {"a": 2, "b": 1}
        assert registry.evictions == 2


class TestMultiTenantServing:
    def _registry(self):
        registry = ModelRegistry()
        registry.register("clf", lambda: _engine("spindrop"),
                          feature_shape=(16,))
        registry.register("vi", lambda: _engine("subset_vi"),
                          feature_shape=(16,))
        return registry

    def test_one_fleet_serves_two_models(self):
        scheduler = BatchScheduler(registry=self._registry(), n_samples=4,
                                   flush_interval=None)
        a1 = scheduler.submit(X[:2], model="clf")
        b1 = scheduler.submit(X[2:5], model="vi")
        a2 = scheduler.submit(X[5:], model="clf")
        scheduler.flush()
        # References: fresh engines from the same factories see the
        # coalesced per-model batches in submit order.
        ref_clf = _engine("spindrop").mc_forward_batched(
            np.concatenate([X[:2], X[5:]]), n_samples=4)
        ref_vi = _engine("subset_vi").mc_forward_batched(
            X[2:5], n_samples=4)
        np.testing.assert_array_equal(a1.result().probs, ref_clf.probs[:2])
        np.testing.assert_array_equal(a2.result().probs, ref_clf.probs[2:])
        np.testing.assert_array_equal(b1.result().probs, ref_vi.probs)

    def test_per_model_metrics_split_the_traffic(self):
        registry = self._registry()
        scheduler = BatchScheduler(registry=registry, n_samples=3,
                                   flush_interval=None)
        scheduler.submit(X[:4], model="clf")
        scheduler.submit(X[4:], model="vi")
        scheduler.flush()
        clf = registry.metrics("clf").snapshot()
        vi = registry.metrics("vi").snapshot()
        assert clf.rows == 4 and clf.flushes == 1
        assert vi.rows == 2 and vi.flushes == 1

    def test_default_model_route(self):
        scheduler = BatchScheduler(registry=self._registry(),
                                   default_model="clf", n_samples=3,
                                   flush_interval=None)
        pending = scheduler.submit(X[:3])
        scheduler.flush()
        ref = _engine("spindrop").mc_forward_batched(X[:3], n_samples=3)
        np.testing.assert_array_equal(pending.result().probs, ref.probs)

    def test_unknown_model_rejected_at_submit(self):
        scheduler = BatchScheduler(registry=self._registry(), n_samples=3)
        with pytest.raises(KeyError):
            scheduler.submit(X[:2], model="nope")

    def test_eviction_under_concurrent_submits(self):
        # A capacity-1 registry thrashes between two tenants while
        # four threads submit concurrently; every prediction must
        # still come back well-formed and fully accounted.
        registry = ModelRegistry(max_loaded=1)
        registry.register("clf", lambda: _engine("spindrop"),
                          feature_shape=(16,))
        registry.register("vi", lambda: _engine("subset_vi"),
                          feature_shape=(16,))
        scheduler = BatchScheduler(registry=registry, n_samples=3,
                                   max_batch=4, flush_interval=None)
        results = []
        lock = threading.Lock()

        def worker(model):
            for _ in range(3):
                pending = scheduler.submit(X[:2], model=model)
                scheduler.flush()
                with lock:
                    results.append((model, pending.result()))

        threads = [threading.Thread(target=worker,
                                    args=("clf" if i % 2 else "vi",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 12
        for _, result in results:
            assert result.probs.shape == (2, 4)
            assert np.isfinite(result.probs).all()
        clf = registry.metrics("clf").snapshot()
        vi = registry.metrics("vi").snapshot()
        assert clf.rows + vi.rows == 24
        assert registry.evictions >= 1


class TestLoadCached:
    """The worker-side fast load path: one parse per artifact."""

    def test_repeated_loads_return_the_cached_snapshot(self, tmp_path):
        path = str(tmp_path / "snap")
        DeploymentSnapshot.capture(_engine("spindrop")).save(path)
        first = DeploymentSnapshot.load_cached(path)
        assert DeploymentSnapshot.load_cached(path) is first
        # The cache is keyed on the resolved path, not the spelling.
        alias = str(tmp_path / "." / "snap")
        assert DeploymentSnapshot.load_cached(alias) is first

    def test_rewritten_artifact_invalidates_the_cache(self, tmp_path):
        path = str(tmp_path / "snap")
        DeploymentSnapshot.capture(_engine("spindrop")).save(path)
        first = DeploymentSnapshot.load_cached(path)
        # Re-save and backdate/forward-date the manifest mtime so the
        # staleness stamp is guaranteed to differ.
        DeploymentSnapshot.capture(_engine("spindrop", seed=1)).save(path)
        manifest = os.path.join(path, "manifest.json")
        stat = os.stat(manifest)
        os.utime(manifest, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10))
        assert DeploymentSnapshot.load_cached(path) is not first

    def test_cached_snapshot_builds_identical_engines(self, tmp_path):
        path = str(tmp_path / "snap")
        DeploymentSnapshot.capture(_engine("spindrop")).save(path)
        a = DeploymentSnapshot.load(path).build()
        b = DeploymentSnapshot.load_cached(path).build()
        np.testing.assert_array_equal(
            a.mc_forward_batched(X, n_samples=3).samples,
            b.mc_forward_batched(X, n_samples=3).samples)


class TestRegistrySnapshotPath:
    """procpool workers boot registered models from their artifact
    path — the registry must remember it verbatim."""

    def test_snapshot_registrations_expose_their_path(self, tmp_path):
        path = str(tmp_path / "snap")
        DeploymentSnapshot.capture(_engine("spindrop")).save(path)
        registry = ModelRegistry()
        registry.register("clf", snapshot=path)
        registry.register("vi", lambda: _engine("subset_vi"))
        assert registry.snapshot_path("clf") == path
        assert registry.snapshot_path("vi") is None
        with pytest.raises(KeyError):
            registry.snapshot_path("nope")
