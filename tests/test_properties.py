"""Cross-module property-based tests (hypothesis).

Invariants that must hold for *any* valid input, spanning the autograd
engine, the crossbar/ADC chain, the device models and the uncertainty
metrics.  These complement the example-based unit tests with
generative coverage.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cim import OpLedger, PopcountADC, XnorCrossbar
from repro.devices import MTJParams, SpintronicRNG, switching_probability
from repro.tensor import Tensor, functional as F
from repro.uncertainty import predictive_entropy, auroc


small_dims = st.integers(min_value=1, max_value=8)


class TestAutogradProperties:
    @given(small_dims, small_dims, small_dims)
    @settings(max_examples=25, deadline=None)
    def test_matmul_shape_contract(self, n, k, m):
        rng = np.random.default_rng(n * 100 + k * 10 + m)
        a = Tensor(rng.standard_normal((n, k)))
        b = Tensor(rng.standard_normal((k, m)))
        assert F.matmul(a, b).shape == (n, m)

    @given(st.lists(st.floats(min_value=-10, max_value=10),
                    min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_softmax_is_distribution(self, values):
        probs = F.softmax(Tensor(np.array([values]))).data
        assert probs.min() >= 0.0
        np.testing.assert_allclose(probs.sum(), 1.0, rtol=1e-9)

    @given(st.lists(st.floats(min_value=-5, max_value=5),
                    min_size=2, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_sign_ste_output_binary(self, values):
        out = F.sign_ste(Tensor(np.array(values))).data
        assert set(np.unique(out)) <= {-1.0, 1.0}

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_sum_then_backward_gives_ones(self, n, m):
        x = Tensor(np.random.default_rng(n + m).standard_normal((n, m)),
                   requires_grad=True)
        x.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones((n, m)))

    @given(st.integers(min_value=2, max_value=5),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_gradient_linearity(self, n, seed):
        """grad of (a·f) is a·(grad of f) for scalar a."""
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((n, n))
        x1 = Tensor(data.copy(), requires_grad=True)
        (F.tanh(x1).sum() * 3.0).backward()
        x2 = Tensor(data.copy(), requires_grad=True)
        F.tanh(x2).sum().backward()
        np.testing.assert_allclose(x1.grad, 3.0 * x2.grad, rtol=1e-10)


class TestCrossbarProperties:
    @given(st.integers(min_value=1, max_value=24),
           st.integers(min_value=1, max_value=12),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_ideal_xnor_mac_always_exact(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        w = np.sign(rng.standard_normal((rows, cols)))
        w[w == 0] = 1.0
        bar = XnorCrossbar(rows, cols)
        bar.program(w)
        x = np.sign(rng.standard_normal((3, rows)))
        x[x == 0] = 1.0
        np.testing.assert_allclose(bar.matvec(x), x @ w, atol=1e-9)

    @given(st.integers(min_value=1, max_value=24),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_mac_parity_invariant(self, rows, seed):
        """XNOR MAC over n active ±1 rows has the same parity as n."""
        rng = np.random.default_rng(seed)
        w = np.sign(rng.standard_normal((rows, 4)))
        w[w == 0] = 1.0
        bar = XnorCrossbar(rows, 4)
        bar.program(w)
        x = np.sign(rng.standard_normal((1, rows)))
        x[x == 0] = 1.0
        mac = np.rint(bar.matvec(x)).astype(int)
        assert np.all((mac - rows) % 2 == 0)

    @given(st.integers(min_value=1, max_value=10),
           st.integers(min_value=2, max_value=64))
    @settings(max_examples=25, deadline=None)
    def test_popcount_adc_idempotent(self, bits, rows):
        """Converting an already-converted value changes nothing."""
        adc = PopcountADC(bits=bits, rows=rows, ledger=OpLedger())
        values = np.linspace(-rows, rows, 17)
        once = adc.convert(values)
        twice = adc.convert(once)
        np.testing.assert_allclose(once, twice)

    @given(st.integers(min_value=6, max_value=12),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_popcount_adc_exact_when_enough_bits(self, bits, rows):
        if 2 ** bits - 1 < 2 * rows:
            return
        adc = PopcountADC(bits=bits, rows=rows, ledger=OpLedger())
        integers = np.arange(-rows, rows + 1, dtype=float)
        np.testing.assert_allclose(adc.convert(integers), integers)


class TestDeviceProperties:
    @given(st.floats(min_value=0.05, max_value=0.95),
           st.floats(min_value=10.0, max_value=80.0))
    @settings(max_examples=25, deadline=None)
    def test_switching_probability_bounded(self, i_ratio, delta):
        params = MTJParams(delta=delta)
        p = switching_probability(i_ratio * params.i_c0, params)
        assert 0.0 <= p <= 1.0

    @given(st.integers(min_value=1, max_value=64),
           st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=15, deadline=None)
    def test_rng_bits_are_binary(self, n_modules, p):
        bank = SpintronicRNG(n_modules, p=p,
                             rng=np.random.default_rng(0))
        bits = bank.generate(100)
        assert set(np.unique(bits)) <= {0.0, 1.0}


class TestUncertaintyProperties:
    @given(st.integers(min_value=2, max_value=12),
           st.integers(min_value=1, max_value=30))
    @settings(max_examples=25, deadline=None)
    def test_entropy_invariant_to_class_permutation(self, c, n):
        rng = np.random.default_rng(c * 100 + n)
        probs = rng.dirichlet(np.ones(c), size=n)
        permuted = probs[:, rng.permutation(c)]
        np.testing.assert_allclose(predictive_entropy(probs),
                                   predictive_entropy(permuted),
                                   rtol=1e-10)

    @given(st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=20, deadline=None)
    def test_auroc_shift_invariant(self, shift):
        rng = np.random.default_rng(3)
        a = rng.standard_normal(200)
        b = rng.standard_normal(200) + 1.0
        base = auroc(a, b)
        shifted = auroc(a + shift, b + shift)
        np.testing.assert_allclose(base, shifted, rtol=1e-9)
