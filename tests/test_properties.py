"""Cross-module property-based tests (hypothesis).

Invariants that must hold for *any* valid input, spanning the autograd
engine, the crossbar/ADC chain, the device models and the uncertainty
metrics.  These complement the example-based unit tests with
generative coverage.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bayesian import (
    BayesianCim,
    SegmenterEngine,
    SpinBayesNetwork,
    make_bayesian_segmenter,
    make_spatial_spindrop_cnn,
    make_spindrop_mlp,
    make_subset_vi_mlp,
)
from repro.cim import CimConfig, OpLedger, PopcountADC, XnorCrossbar
from repro.cim.snapshot import DeploymentSnapshot
from repro.devices import MTJParams, SpintronicRNG, switching_probability
from repro.tensor import Tensor, bitpack, functional as F
from repro.uncertainty import predictive_entropy, auroc


small_dims = st.integers(min_value=1, max_value=8)


class TestAutogradProperties:
    @given(small_dims, small_dims, small_dims)
    @settings(max_examples=25, deadline=None)
    def test_matmul_shape_contract(self, n, k, m):
        rng = np.random.default_rng(n * 100 + k * 10 + m)
        a = Tensor(rng.standard_normal((n, k)))
        b = Tensor(rng.standard_normal((k, m)))
        assert F.matmul(a, b).shape == (n, m)

    @given(st.lists(st.floats(min_value=-10, max_value=10),
                    min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_softmax_is_distribution(self, values):
        probs = F.softmax(Tensor(np.array([values]))).data
        assert probs.min() >= 0.0
        np.testing.assert_allclose(probs.sum(), 1.0, rtol=1e-9)

    @given(st.lists(st.floats(min_value=-5, max_value=5),
                    min_size=2, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_sign_ste_output_binary(self, values):
        out = F.sign_ste(Tensor(np.array(values))).data
        assert set(np.unique(out)) <= {-1.0, 1.0}

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_sum_then_backward_gives_ones(self, n, m):
        x = Tensor(np.random.default_rng(n + m).standard_normal((n, m)),
                   requires_grad=True)
        x.sum().backward()
        np.testing.assert_array_equal(x.grad, np.ones((n, m)))

    @given(st.integers(min_value=2, max_value=5),
           st.integers(min_value=1, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_gradient_linearity(self, n, seed):
        """grad of (a·f) is a·(grad of f) for scalar a."""
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((n, n))
        x1 = Tensor(data.copy(), requires_grad=True)
        (F.tanh(x1).sum() * 3.0).backward()
        x2 = Tensor(data.copy(), requires_grad=True)
        F.tanh(x2).sum().backward()
        np.testing.assert_allclose(x1.grad, 3.0 * x2.grad, rtol=1e-10)


class TestCrossbarProperties:
    @given(st.integers(min_value=1, max_value=24),
           st.integers(min_value=1, max_value=12),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_ideal_xnor_mac_always_exact(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        w = np.sign(rng.standard_normal((rows, cols)))
        w[w == 0] = 1.0
        bar = XnorCrossbar(rows, cols)
        bar.program(w)
        x = np.sign(rng.standard_normal((3, rows)))
        x[x == 0] = 1.0
        np.testing.assert_allclose(bar.matvec(x), x @ w, atol=1e-9)

    @given(st.integers(min_value=1, max_value=24),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_mac_parity_invariant(self, rows, seed):
        """XNOR MAC over n active ±1 rows has the same parity as n."""
        rng = np.random.default_rng(seed)
        w = np.sign(rng.standard_normal((rows, 4)))
        w[w == 0] = 1.0
        bar = XnorCrossbar(rows, 4)
        bar.program(w)
        x = np.sign(rng.standard_normal((1, rows)))
        x[x == 0] = 1.0
        mac = np.rint(bar.matvec(x)).astype(int)
        assert np.all((mac - rows) % 2 == 0)

    @given(st.integers(min_value=1, max_value=10),
           st.integers(min_value=2, max_value=64))
    @settings(max_examples=25, deadline=None)
    def test_popcount_adc_idempotent(self, bits, rows):
        """Converting an already-converted value changes nothing."""
        adc = PopcountADC(bits=bits, rows=rows, ledger=OpLedger())
        values = np.linspace(-rows, rows, 17)
        once = adc.convert(values)
        twice = adc.convert(once)
        np.testing.assert_allclose(once, twice)

    @given(st.integers(min_value=6, max_value=12),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_popcount_adc_exact_when_enough_bits(self, bits, rows):
        if 2 ** bits - 1 < 2 * rows:
            return
        adc = PopcountADC(bits=bits, rows=rows, ledger=OpLedger())
        integers = np.arange(-rows, rows + 1, dtype=float)
        np.testing.assert_allclose(adc.convert(integers), integers)


class TestDeviceProperties:
    @given(st.floats(min_value=0.05, max_value=0.95),
           st.floats(min_value=10.0, max_value=80.0))
    @settings(max_examples=25, deadline=None)
    def test_switching_probability_bounded(self, i_ratio, delta):
        params = MTJParams(delta=delta)
        p = switching_probability(i_ratio * params.i_c0, params)
        assert 0.0 <= p <= 1.0

    @given(st.integers(min_value=1, max_value=64),
           st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=15, deadline=None)
    def test_rng_bits_are_binary(self, n_modules, p):
        bank = SpintronicRNG(n_modules, p=p,
                             rng=np.random.default_rng(0))
        bits = bank.generate(100)
        assert set(np.unique(bits)) <= {0.0, 1.0}


class TestUncertaintyProperties:
    @given(st.integers(min_value=2, max_value=12),
           st.integers(min_value=1, max_value=30))
    @settings(max_examples=25, deadline=None)
    def test_entropy_invariant_to_class_permutation(self, c, n):
        rng = np.random.default_rng(c * 100 + n)
        probs = rng.dirichlet(np.ones(c), size=n)
        permuted = probs[:, rng.permutation(c)]
        np.testing.assert_allclose(predictive_entropy(probs),
                                   predictive_entropy(permuted),
                                   rtol=1e-10)

    @given(st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=20, deadline=None)
    def test_auroc_shift_invariant(self, shift):
        rng = np.random.default_rng(3)
        a = rng.standard_normal(200)
        b = rng.standard_normal(200) + 1.0
        base = auroc(a, b)
        shifted = auroc(a + shift, b + shift)
        np.testing.assert_allclose(base, shifted, rtol=1e-9)


# ----------------------------------------------------------------------
# Bit-packed XNOR kernel: differential bit-exactness harness.
#
# The packed route (repro.tensor.bitpack) must be indistinguishable
# from the float exact-integer route at every level — the raw kernel
# against a ±1 matmul for arbitrary operands, and whole deployed
# engines (all model families) serving the same inputs with the route
# toggled on vs off: bit-identical samples/probs AND identical
# op-ledger totals.

class TestPackedKernelProperties:
    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=200),
           st.integers(min_value=1, max_value=12),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_packed_mvm_equals_ternary_matmul(self, b, k, c, seed):
        rng = np.random.default_rng(seed)
        x = np.sign(rng.standard_normal((b, k)))
        x[rng.random((b, k)) < 0.3] = 0.0     # dropout-gated wordlines
        w = np.sign(rng.standard_normal((k, c)))
        w[w == 0] = 1.0
        dots = bitpack.packed_mvm(bitpack.pack_ternary_rows(x),
                                  bitpack.pack_weights(w))
        np.testing.assert_array_equal(dots, x @ w)

    @given(st.integers(min_value=1, max_value=130),
           st.integers(min_value=0, max_value=2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_pack_roundtrip_identity(self, k, seed):
        rng = np.random.default_rng(seed)
        x = np.sign(rng.standard_normal((3, k)))
        x[rng.random((3, k)) < 0.4] = 0.0
        planes = bitpack.pack_ternary_rows(x)
        np.testing.assert_array_equal(bitpack.unpack_ternary(planes), x)


X_FLAT = np.random.default_rng(42).standard_normal((6, 20))
X_IMG = np.random.default_rng(43).standard_normal((3, 1, 12, 12))
X_SEG = np.random.default_rng(44).standard_normal((2, 1, 16, 16))


def _bitpack_engine(family, use_bitpack):
    """One deployed engine per family with the packed route toggled.

    Model construction and deployment are seeded identically for both
    toggle values, so any output difference is the kernel's."""
    if family == "spindrop":
        model = make_spindrop_mlp(20, (16,), 4, p=0.3, seed=1)
        return (BayesianCim(model, CimConfig(seed=6,
                                             use_bitpack=use_bitpack),
                            seed=33), X_FLAT)
    if family == "cim_conv":
        model = make_spatial_spindrop_cnn(1, 12, 4, widths=(4, 8), seed=2)
        return (BayesianCim(model, CimConfig(seed=6,
                                             use_bitpack=use_bitpack),
                            seed=33), X_IMG)
    if family == "spinbayes":
        teacher = make_subset_vi_mlp(20, (12,), 4, seed=5)
        return (SpinBayesNetwork.from_subset_vi(
            teacher, n_components=4, n_levels=8,
            config=CimConfig(seed=6, use_bitpack=use_bitpack),
            seed=7), X_FLAT)
    if family == "segmenter":
        model = make_bayesian_segmenter(seed=9)
        return (SegmenterEngine(model, use_bitpack=use_bitpack), X_SEG)
    raise ValueError(family)


BITPACK_FAMILIES = ("spindrop", "cim_conv", "spinbayes", "segmenter")


class TestBitpackDifferential:
    @pytest.mark.parametrize("family", BITPACK_FAMILIES)
    def test_packed_route_is_bit_identical(self, family):
        on, x = _bitpack_engine(family, True)
        off, _ = _bitpack_engine(family, False)
        a = on.mc_forward_batched(x, n_samples=4)
        b = off.mc_forward_batched(x, n_samples=4)
        np.testing.assert_array_equal(a.samples, b.samples)
        np.testing.assert_array_equal(a.probs, b.probs)
        ledger_on = getattr(on, "ledger", None)
        if ledger_on is not None:
            assert ledger_on.as_dict() == off.ledger.as_dict()

    def test_packed_route_forced_lut_backend(self):
        """The whole-engine differential also holds on the LUT
        fallback — the NumPy-floor CI leg's code path."""
        with bitpack.force_popcount_backend("lut16"):
            on, x = _bitpack_engine("spindrop", True)
            a = on.mc_forward_batched(x, n_samples=3)
        off, _ = _bitpack_engine("spindrop", False)
        b = off.mc_forward_batched(x, n_samples=3)
        np.testing.assert_array_equal(a.samples, b.samples)
        assert on.ledger.as_dict() == off.ledger.as_dict()

    def test_snapshot_roundtrip_restores_packed_planes(self, tmp_path):
        """save → load → serve with the packed route: the restored
        crossbars carry the captured uint64 planes (no re-pack) and
        the prediction stream continues bit-exactly."""
        original, x = _bitpack_engine("spindrop", True)
        path = str(tmp_path / "snap")
        DeploymentSnapshot.capture(original).save(path)
        restored = DeploymentSnapshot.load(path).build()
        for stage in restored.network.mvm_layers():
            for row in stage.crossbars:
                for bar in row:
                    assert bar._w_packed_t is not None
        a = original.mc_forward_batched(x, n_samples=4)
        b = restored.mc_forward_batched(x, n_samples=4)
        np.testing.assert_array_equal(a.samples, b.samples)
        np.testing.assert_array_equal(a.probs, b.probs)
        assert original.ledger.as_dict() == restored.ledger.as_dict()
