"""``conv2d`` groups/dilation vs a naive nested-loop reference.

The grouped/dilated geometry feeds three consumers — the autograd
training path, the ``no_grad`` inference kernel, and (through the
same memoized index plans) the deployed :class:`repro.cim.CimConv2d`
— so the equivalence here is what certifies all of them against one
independent implementation.
"""

import numpy as np
import pytest

import repro.tensor.functional as F_mod
from repro import nn
from repro.tensor import Tensor, gradcheck, no_grad
from repro.tensor import functional as F

RNG = np.random.default_rng(77)


def naive_conv2d(x, w, stride=1, padding=0, dilation=1, groups=1):
    """Reference convolution: explicit loops, no im2col, no BLAS."""
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    n, _, h, wd = xp.shape
    c_out, c_in_pg, kh, kw = w.shape
    out_h = (h - (kh - 1) * dilation - 1) // stride + 1
    out_w = (wd - (kw - 1) * dilation - 1) // stride + 1
    cog = c_out // groups
    out = np.zeros((n, c_out, out_h, out_w))
    for nn_ in range(n):
        for o in range(c_out):
            g = o // cog
            for i in range(out_h):
                for j in range(out_w):
                    acc = 0.0
                    for ci in range(c_in_pg):
                        for u in range(kh):
                            for v in range(kw):
                                acc += (xp[nn_, g * c_in_pg + ci,
                                           i * stride + u * dilation,
                                           j * stride + v * dilation]
                                        * w[o, ci, u, v])
                    out[nn_, o, i, j] = acc
    return out


# (stride, padding, dilation, groups, c_in, c_out, k, h, w) — odd
# shapes, grouped+dilated combined, depthwise, rectangular images.
CASES = [
    (1, 0, 1, 1, 3, 4, 3, 7, 7),
    (1, 1, 2, 1, 3, 4, 3, 9, 9),          # dilated
    (2, 1, 1, 2, 4, 6, 3, 8, 8),          # grouped, strided
    (1, 2, 2, 2, 4, 4, 3, 10, 10),        # grouped + dilated
    (1, 0, 3, 4, 4, 8, 2, 11, 9),         # heavy dilation, odd/rect
    (2, 2, 2, 3, 6, 9, 3, 13, 13),        # everything at once
    (1, 0, 1, 5, 5, 5, 3, 7, 7),          # depthwise (groups == C_in)
]


class TestAgainstNaive:
    @pytest.mark.parametrize(
        "stride,padding,dilation,groups,c_in,c_out,k,h,w", CASES)
    def test_train_path(self, stride, padding, dilation, groups,
                        c_in, c_out, k, h, w):
        x = RNG.standard_normal((2, c_in, h, w))
        wt = RNG.standard_normal((c_out, c_in // groups, k, k))
        ref = naive_conv2d(x, wt, stride, padding, dilation, groups)
        out = F.conv2d(Tensor(x, requires_grad=True), Tensor(wt),
                       stride=stride, padding=padding,
                       dilation=dilation, groups=groups)
        np.testing.assert_allclose(out.data, ref, atol=1e-10)

    @pytest.mark.parametrize(
        "stride,padding,dilation,groups,c_in,c_out,k,h,w", CASES)
    def test_no_grad_fast_path(self, stride, padding, dilation, groups,
                               c_in, c_out, k, h, w):
        x = RNG.standard_normal((2, c_in, h, w))
        wt = RNG.standard_normal((c_out, c_in // groups, k, k))
        ref = naive_conv2d(x, wt, stride, padding, dilation, groups)
        with no_grad():
            out = F.conv2d(Tensor(x), Tensor(wt), stride=stride,
                           padding=padding, dilation=dilation,
                           groups=groups)
        assert not out.requires_grad
        np.testing.assert_allclose(out.data, ref, atol=1e-8)

    def test_bias_applies_per_output_channel(self):
        x = RNG.standard_normal((2, 4, 6, 6))
        wt = RNG.standard_normal((6, 2, 3, 3))
        b = RNG.standard_normal(6)
        ref = naive_conv2d(x, wt, padding=1, groups=2) \
            + b.reshape(1, -1, 1, 1)
        out = F.conv2d(Tensor(x), Tensor(wt), Tensor(b), padding=1,
                       groups=2)
        np.testing.assert_allclose(out.data, ref, atol=1e-10)

    def test_exact_integer_route_grouped(self):
        """±1 kernels on ternary activations: the float32 inference
        route must equal the float64 training path bit-for-bit."""
        x = np.sign(RNG.standard_normal((3, 4, 9, 9)))
        x[RNG.random(x.shape) < 0.2] = 0.0      # dropout-style gating
        wt = np.sign(RNG.standard_normal((6, 2, 3, 3)))
        wt[wt == 0] = 1.0
        grad_out = F.conv2d(Tensor(x, requires_grad=True), Tensor(wt),
                            padding=1, dilation=2, groups=2)
        with no_grad():
            fast = F.conv2d(Tensor(x), Tensor(wt), padding=1,
                            dilation=2, groups=2)
        np.testing.assert_array_equal(fast.data, grad_out.data)


class TestGradients:
    @pytest.mark.parametrize("dilation,groups", [(2, 1), (1, 2), (2, 2)])
    def test_gradcheck(self, dilation, groups):
        x = Tensor(RNG.standard_normal((1, 2 * groups, 7, 7)),
                   requires_grad=True)
        w = Tensor(RNG.standard_normal((2 * groups, 2, 2, 2)),
                   requires_grad=True)
        b = Tensor(RNG.standard_normal(2 * groups), requires_grad=True)
        gradcheck(lambda xx, ww, bb: F.conv2d(
            xx, ww, bb, stride=1, padding=1, dilation=dilation,
            groups=groups), [x, w, b])

    def test_grouped_grads_match_per_group_convs(self):
        """Grouped backward equals running each group as its own conv."""
        x = RNG.standard_normal((2, 4, 8, 8))
        wt = RNG.standard_normal((6, 2, 3, 3))
        xt = Tensor(x, requires_grad=True)
        wtt = Tensor(wt, requires_grad=True)
        F.conv2d(xt, wtt, padding=1, groups=2).sum().backward()

        grads_x, grads_w = [], []
        for g in range(2):
            xg = Tensor(x[:, 2 * g:2 * (g + 1)], requires_grad=True)
            wg = Tensor(wt[3 * g:3 * (g + 1)], requires_grad=True)
            F.conv2d(xg, wg, padding=1).sum().backward()
            grads_x.append(xg.grad)
            grads_w.append(wg.grad)
        np.testing.assert_allclose(xt.grad, np.concatenate(grads_x, axis=1),
                                   atol=1e-10)
        np.testing.assert_allclose(wtt.grad, np.concatenate(grads_w, axis=0),
                                   atol=1e-10)


class TestValidation:
    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 3, 5, 5))),
                     Tensor(np.zeros((4, 2, 3, 3))), groups=2)

    def test_out_channels_not_divisible_rejected(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 4, 5, 5))),
                     Tensor(np.zeros((3, 2, 3, 3))), groups=2)

    def test_oversized_dilated_kernel_rejected(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 1, 4, 4))),
                     Tensor(np.zeros((1, 1, 3, 3))), dilation=2)


class TestLayerPlumbing:
    @pytest.mark.parametrize("layer_cls", [nn.Conv2d, nn.BinaryConv2d])
    def test_layer_forwards_groups_and_dilation(self, layer_cls):
        layer = layer_cls(4, 6, 3, padding=2, dilation=2, groups=2,
                          rng=np.random.default_rng(0))
        assert layer.weight.data.shape == (6, 2, 3, 3)
        out = layer(Tensor(RNG.standard_normal((2, 4, 10, 10))))
        assert out.shape == (2, 6, 10, 10)

    @pytest.mark.parametrize("layer_cls", [nn.Conv2d, nn.BinaryConv2d])
    def test_layer_rejects_indivisible_groups(self, layer_cls):
        with pytest.raises(ValueError):
            layer_cls(3, 4, 3, groups=2)

    def test_binary_infer_matches_train_path(self):
        layer = nn.BinaryConv2d(4, 4, 3, padding=1, dilation=2, groups=2,
                                binarize_input=True,
                                rng=np.random.default_rng(1))
        x = RNG.standard_normal((2, 4, 9, 9))
        train_out = layer(Tensor(x))
        with no_grad():
            infer_out = layer(Tensor(x))
        np.testing.assert_array_equal(infer_out.data, train_out.data)


class TestPlanCacheApi:
    def test_cache_helpers_are_public(self):
        assert "conv_plan_cache_stats" in F_mod.__all__
        assert "clear_conv_plan_cache" in F_mod.__all__
        stats = F.conv_plan_cache_stats()
        assert set(stats) == {"plans", "hits", "builds", "evictions"}

    def test_dilation_is_part_of_the_plan_key(self):
        F.clear_conv_plan_cache()
        x = Tensor(RNG.standard_normal((1, 1, 9, 9)))
        w = Tensor(RNG.standard_normal((1, 1, 3, 3)))
        with no_grad():
            F.conv2d(x, w)
            builds_plain = F.conv_plan_cache_stats()["builds"]
            F.conv2d(x, w, dilation=2)
            assert F.conv_plan_cache_stats()["builds"] > builds_plain
            # Warm re-runs of both geometries build nothing new.
            before = F.conv_plan_cache_stats()["builds"]
            F.conv2d(x, w)
            F.conv2d(x, w, dilation=2)
        assert F.conv_plan_cache_stats()["builds"] == before
