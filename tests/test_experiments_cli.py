"""The repro-experiments CLI: exit codes, sweep determinism, the gate."""

import json

import pytest

from repro.experiments.cli import main


class TestExitCodes:
    def test_no_subcommand_exits_2_with_usage(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "a subcommand is required" in err

    def test_unknown_subcommand_exits_2_with_usage(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
        assert "usage:" in capsys.readouterr().err

    def test_unknown_matrix_rejected_by_parser(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--matrix", "nope"])
        assert excinfo.value.code == 2

    def test_report_on_empty_store_fails(self, tmp_path, capsys):
        assert main(["report", "--store", str(tmp_path / "empty")]) == 1
        assert "no runs recorded" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_is_deterministic_across_invocations(self, tmp_path,
                                                       capsys):
        store_a = tmp_path / "a"
        store_b = tmp_path / "b"
        assert main(["sweep", "--matrix", "tiny",
                     "--store", str(store_a)]) == 0
        assert main(["sweep", "--matrix", "tiny",
                     "--store", str(store_b)]) == 0
        # The ISSUE's acceptance criterion: two runs, identical metrics
        # JSON, byte for byte.
        assert ((store_a / "runs.jsonl").read_bytes()
                == (store_b / "runs.jsonl").read_bytes())
        out = capsys.readouterr().out
        assert "Scenario sweep (tiny matrix)" in out
        assert "results store:" in out

    def test_sweep_writes_bank_and_report(self, tmp_path, capsys,
                                          monkeypatch):
        summary_path = tmp_path / "step_summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary_path))
        bank = tmp_path / "BENCH_scenarios.json"
        assert main(["sweep", "--matrix", "tiny",
                     "--bank", str(bank)]) == 0
        document = json.loads(bank.read_text())
        assert document["matrix"] == "tiny"
        assert document["preset"] == "tiny"
        assert set(document["tolerances"]) == {
            "accuracy", "nll", "ece", "ood_auroc", "energy_j_per_image"}
        assert document["scenarios"]
        # Job-summary table written via GITHUB_STEP_SUMMARY.
        assert "### Scenario sweep (tiny matrix)" in summary_path.read_text()
        assert "banked baseline written" in capsys.readouterr().out


class TestCompareCommand:
    @pytest.fixture()
    def bank(self, tmp_path):
        path = tmp_path / "BENCH_scenarios.json"
        assert main(["sweep", "--matrix", "tiny", "--bank", str(path)]) == 0
        return path

    def test_gate_passes_against_fresh_bank(self, bank, capsys):
        assert main(["compare", "--baseline", str(bank)]) == 0
        out = capsys.readouterr().out
        assert "[compare]" in out
        assert "PASS: no accuracy/calibration regression" in out

    def test_gate_fails_on_injected_ece_regression(self, bank, capsys,
                                                   monkeypatch, tmp_path):
        summary_path = tmp_path / "step_summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary_path))
        document = json.loads(bank.read_text())
        for metrics in document["scenarios"].values():
            metrics["ece"] -= 0.05      # pretend calibration used to be
        bank.write_text(json.dumps(document))  # 0.05 better than today
        assert main(["compare", "--baseline", str(bank)]) == 1
        out = capsys.readouterr().out
        assert "FAIL:" in out
        assert "ece regressed" in out
        assert "quality gate FAILED" in summary_path.read_text()

    def test_compare_uses_banked_matrix_by_default(self, bank, capsys):
        # No --matrix flag: the bank document names the matrix to run,
        # so both tiny scenarios are compared.
        assert main(["compare", "--baseline", str(bank)]) == 0
        out = capsys.readouterr().out
        assert "[compare] spindrop/clean/d0/v0/letters:" in out
        assert "[compare] spindrop/gaussian_noise@3/d0/v0/letters:" in out
