"""Standard layers: shapes, statistics, modes, serialization."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, no_grad

RNG = np.random.default_rng(3)


class TestLinear:
    def test_output_shape(self):
        layer = nn.Linear(8, 5, rng=RNG)
        assert layer(Tensor(RNG.standard_normal((4, 8)))).shape == (4, 5)

    def test_no_bias(self):
        layer = nn.Linear(8, 5, bias=False, rng=RNG)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((2, 8))))
        np.testing.assert_allclose(out.data, 0.0)

    def test_gradients_reach_parameters(self):
        layer = nn.Linear(4, 3, rng=RNG)
        out = layer(Tensor(RNG.standard_normal((2, 4))))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_matches_manual_affine(self):
        layer = nn.Linear(3, 2, rng=RNG)
        x = RNG.standard_normal((5, 3))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)


class TestConv2d:
    def test_output_shape_padding(self):
        conv = nn.Conv2d(3, 8, 3, padding=1, rng=RNG)
        out = conv(Tensor(RNG.standard_normal((2, 3, 10, 10))))
        assert out.shape == (2, 8, 10, 10)

    def test_output_shape_stride(self):
        conv = nn.Conv2d(1, 4, 3, stride=2, rng=RNG)
        out = conv(Tensor(RNG.standard_normal((1, 1, 9, 9))))
        assert out.shape == (1, 4, 4, 4)


class TestBatchNorm:
    def test_normalizes_training_batch(self):
        bn = nn.BatchNorm1d(6)
        x = RNG.standard_normal((64, 6)) * 5 + 3
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_update(self):
        bn = nn.BatchNorm1d(4, momentum=0.5)
        x = RNG.standard_normal((32, 4)) + 10.0
        bn(Tensor(x))
        assert np.all(bn.running_mean > 1.0)

    def test_eval_uses_running_stats(self):
        bn = nn.BatchNorm1d(4)
        for _ in range(20):
            bn(Tensor(RNG.standard_normal((32, 4)) * 2 + 1))
        bn.eval()
        x = RNG.standard_normal((8, 4))
        out1 = bn(Tensor(x)).data
        out2 = bn(Tensor(x)).data
        np.testing.assert_array_equal(out1, out2)

    def test_batchnorm2d_axes(self):
        bn = nn.BatchNorm2d(3)
        x = RNG.standard_normal((4, 3, 5, 5)) + 2.0
        out = bn(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)

    def test_affine_parameters_trainable(self):
        bn = nn.BatchNorm1d(4)
        out = bn(Tensor(RNG.standard_normal((8, 4))))
        out.sum().backward()
        assert bn.gamma.grad is not None and bn.beta.grad is not None


class TestPoolingAndShape:
    def test_maxpool_module(self):
        out = nn.MaxPool2d(2)(Tensor(RNG.standard_normal((1, 2, 8, 8))))
        assert out.shape == (1, 2, 4, 4)

    def test_avgpool_module(self):
        x = np.ones((1, 1, 4, 4))
        out = nn.AvgPool2d(2)(Tensor(x))
        np.testing.assert_allclose(out.data, 1.0)

    def test_flatten(self):
        out = nn.Flatten()(Tensor(RNG.standard_normal((3, 2, 4, 4))))
        assert out.shape == (3, 32)


class TestDropout:
    def test_train_mode_drops(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((10, 100)))).data
        assert (out == 0).any()

    def test_eval_mode_identity(self):
        layer = nn.Dropout(0.5)
        layer.eval()
        x = np.ones((4, 8))
        np.testing.assert_array_equal(layer(Tensor(x)).data, x)

    def test_inverted_scaling(self):
        layer = nn.Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((100, 100)))).data
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.0)


class TestSequentialAndModule:
    def _model(self):
        return nn.Sequential(nn.Linear(8, 16, rng=RNG), nn.ReLU(),
                             nn.Linear(16, 4, rng=RNG))

    def test_forward_chain(self):
        model = self._model()
        assert model(Tensor(RNG.standard_normal((2, 8)))).shape == (2, 4)

    def test_iteration_and_indexing(self):
        model = self._model()
        assert len(model) == 3
        assert isinstance(model[1], nn.ReLU)

    def test_named_parameters_unique(self):
        model = self._model()
        names = [n for n, _ in model.named_parameters()]
        assert len(names) == len(set(names)) == 4

    def test_num_parameters(self):
        model = self._model()
        assert model.num_parameters() == 8 * 16 + 16 + 16 * 4 + 4

    def test_train_eval_propagates(self):
        model = self._model()
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        model = self._model()
        model(Tensor(RNG.standard_normal((2, 8)))).sum().backward()
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestSerialization:
    def test_state_dict_roundtrip(self, tmp_path):
        model = nn.Sequential(nn.Linear(4, 8, rng=RNG), nn.BatchNorm1d(8),
                              nn.ReLU(), nn.Linear(8, 2, rng=RNG))
        model(Tensor(RNG.standard_normal((16, 4))))  # update running stats
        path = str(tmp_path / "model.npz")
        model.save(path)

        clone = nn.Sequential(nn.Linear(4, 8, rng=RNG), nn.BatchNorm1d(8),
                              nn.ReLU(), nn.Linear(8, 2, rng=RNG))
        clone.load(path)
        x = RNG.standard_normal((3, 4))
        model.eval()
        clone.eval()
        with no_grad():
            np.testing.assert_allclose(model(Tensor(x)).data,
                                       clone(Tensor(x)).data)

    def test_load_shape_mismatch_raises(self):
        a = nn.Linear(4, 8, rng=RNG)
        b = nn.Linear(4, 9, rng=RNG)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())

    def test_load_unknown_key_raises(self):
        a = nn.Linear(4, 8, rng=RNG)
        state = a.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            a.load_state_dict(state)

    def test_buffers_serialized(self):
        bn = nn.BatchNorm1d(4)
        bn(Tensor(RNG.standard_normal((32, 4)) + 5.0))
        state = bn.state_dict()
        assert "buffer::running_mean" in state
