"""Bit-packed XNOR/popcount kernels: packing, exactness, staleness.

Every kernel property runs against both popcount backends — on
NumPy >= 2 the LUT fallback is forced via ``force_popcount_backend``
so it stays covered even where ``numpy.bitwise_count`` exists.
"""

import numpy as np
import pytest

from repro.cim import OpLedger, XnorCrossbar
from repro.cim.layers import CimConfig, CimLinear
from repro.devices import DefectModel, DefectRates
from repro.tensor import bitpack as bp

BACKENDS = bp.available_backends()
K_SET = [1, 63, 64, 65, 640, 1000]


def _ternary(rng, shape, p_zero=0.25):
    """Random {-1, 0, +1} float64 with a controlled zero fraction."""
    x = np.sign(rng.standard_normal(shape))
    x[x == 0] = 1.0
    x[rng.random(shape) < p_zero] = 0.0
    return x


def _binary(rng, shape):
    w = np.sign(rng.standard_normal(shape))
    w[w == 0] = 1.0
    return w


# ----------------------------------------------------------------------
# Packing roundtrips.

class TestPacking:
    @pytest.mark.parametrize("k", K_SET)
    def test_rows_roundtrip(self, k):
        x = _ternary(np.random.default_rng(k), (7, k))
        planes = bp.pack_ternary_rows(x)
        assert planes.k == k
        assert planes.n_words == (k + 63) // 64
        assert planes.batch == 7
        np.testing.assert_array_equal(bp.unpack_ternary(planes), x)

    @pytest.mark.parametrize("k", K_SET)
    def test_cols_roundtrip(self, k):
        x = _ternary(np.random.default_rng(k + 1), (k, 5))
        planes = bp.pack_ternary_cols(x)
        np.testing.assert_array_equal(bp.unpack_ternary(planes), x.T)

    @pytest.mark.parametrize("k", K_SET)
    def test_weights_roundtrip(self, k):
        w = _binary(np.random.default_rng(k + 2), (k, 9))
        packed = bp.pack_weights(w)
        assert packed.sign_t.shape == ((k + 63) // 64, 9)
        assert packed.sign_t.dtype == np.uint64
        np.testing.assert_array_equal(bp.unpack_weights(packed), w)

    def test_row_and_col_packing_agree(self):
        """Both layouts produce the same word-major planes."""
        x = _ternary(np.random.default_rng(3), (6, 130))
        rows = bp.pack_ternary_rows(x)
        cols = bp.pack_ternary_cols(x.T)
        np.testing.assert_array_equal(rows.sign_t, cols.sign_t)
        np.testing.assert_array_equal(rows.active_t, cols.active_t)
        np.testing.assert_array_equal(rows.n_active, cols.n_active)

    def test_tail_bits_are_zero(self):
        """Pad bits of the last lane never carry stale state."""
        x = np.ones((2, 65))
        planes = bp.pack_ternary_rows(x)
        assert planes.n_words == 2
        # only bit 0 of the tail word may be set
        assert np.all(planes.sign_t[1] == 1)
        assert np.all(planes.active_t[1] == 1)

    def test_n_active_counts_nonzeros(self):
        x = np.array([[1.0, 0.0, -1.0, 0.0], [0.0, 0.0, 0.0, 0.0]])
        planes = bp.pack_ternary_rows(x)
        np.testing.assert_array_equal(planes.n_active, [2, 0])


# ----------------------------------------------------------------------
# Popcount backends.

class TestBackends:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_popcount_matches_int_bit_count(self, backend):
        rng = np.random.default_rng(7)
        words = rng.integers(0, 2**64, size=(3, 11), dtype=np.uint64)
        words[0, 0] = 0
        words[0, 1] = np.uint64(0xFFFFFFFFFFFFFFFF)
        out = np.empty(words.shape, np.uint8)
        with bp.force_popcount_backend(backend):
            bp.popcount_into(words, out)
        expected = [[int(w).bit_count() for w in row] for row in words]
        np.testing.assert_array_equal(out, expected)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown popcount backend"):
            bp.set_popcount_backend("avx512")

    def test_force_restores_previous(self):
        before = bp.popcount_backend()
        with bp.force_popcount_backend("lut16"):
            assert bp.popcount_backend() == "lut16"
        assert bp.popcount_backend() == before

    @pytest.mark.skipif(not hasattr(np, "bitwise_count"),
                        reason="NumPy < 2: bitwise_count absent")
    def test_bitwise_count_preferred_on_numpy2(self):
        assert bp.available_backends()[0] == "bitwise_count"

    @pytest.mark.skipif(hasattr(np, "bitwise_count"),
                        reason="NumPy >= 2 has bitwise_count")
    def test_bitwise_count_rejected_on_old_numpy(self):
        with pytest.raises(ValueError, match="unavailable"):
            bp.set_popcount_backend("bitwise_count")


# ----------------------------------------------------------------------
# The MVM kernel.

class TestPackedMvm:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("k", K_SET)
    def test_matches_float_matmul(self, backend, k):
        rng = np.random.default_rng(k)
        x = _ternary(rng, (4, k))
        w = _binary(rng, (k, 17))
        with bp.force_popcount_backend(backend):
            dots = bp.packed_mvm(bp.pack_ternary_rows(x), bp.pack_weights(w))
        assert dots.dtype == np.int64
        np.testing.assert_array_equal(dots, x @ w)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_col_major_parity(self, backend):
        rng = np.random.default_rng(11)
        x = _ternary(rng, (129, 6))       # (K, B) slab
        w = _binary(rng, (129, 10))
        with bp.force_popcount_backend(backend):
            dots = bp.packed_mvm(bp.pack_ternary_cols(x), bp.pack_weights(w),
                                 col_major=True)
        assert dots.shape == (10, 6)
        np.testing.assert_array_equal(dots, (x.T @ w).T)

    def test_all_zero_activations(self):
        w = _binary(np.random.default_rng(0), (70, 5))
        dots = bp.packed_mvm(bp.pack_ternary_rows(np.zeros((3, 70))),
                             bp.pack_weights(w))
        np.testing.assert_array_equal(dots, 0)

    def test_all_ones_plane(self):
        """Dense +1 drive against +1 weights hits the exact depth K."""
        k = 193
        dots = bp.packed_mvm(bp.pack_ternary_rows(np.ones((2, k))),
                             bp.pack_weights(np.ones((k, 4))))
        np.testing.assert_array_equal(dots, k)
        dots = bp.packed_mvm(bp.pack_ternary_rows(np.ones((2, k))),
                             bp.pack_weights(-np.ones((k, 4))))
        np.testing.assert_array_equal(dots, -k)

    def test_empty_batch(self):
        w = _binary(np.random.default_rng(1), (64, 3))
        dots = bp.packed_mvm(bp.pack_ternary_rows(np.zeros((0, 64))),
                             bp.pack_weights(w))
        assert dots.shape == (0, 3)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_uint32_accumulator_past_65535(self, backend):
        """K > 0xFFFF must not overflow the per-word accumulator."""
        k = 70001
        x = -np.ones((1, k))             # every lane mismatches +1 weights
        w = np.ones((k, 2))
        with bp.force_popcount_backend(backend):
            dots = bp.packed_mvm(bp.pack_ternary_rows(x), bp.pack_weights(w))
        np.testing.assert_array_equal(dots, -k)

    def test_out_buffer_float32(self):
        rng = np.random.default_rng(5)
        x = _ternary(rng, (3, 100))
        w = _binary(rng, (100, 7))
        out = np.full((3, 7), np.nan, np.float32)
        ret = bp.packed_mvm(bp.pack_ternary_rows(x), bp.pack_weights(w),
                            out=out)
        assert ret is out
        np.testing.assert_array_equal(out, (x @ w).astype(np.float32))

    def test_depth_mismatch_raises(self):
        with pytest.raises(ValueError, match="depth mismatch"):
            bp.packed_mvm(bp.pack_ternary_rows(np.ones((1, 64))),
                          bp.pack_weights(np.ones((65, 2))))

    def test_pack_weight_groups(self):
        rng = np.random.default_rng(9)
        w = _binary(rng, (6, 2, 3, 3))   # C_out=6, groups=2 → f_g=18
        packs = bp.pack_weight_groups(w, 2)
        assert len(packs) == 2
        flat = w.reshape(2, 3, -1)
        for g in range(2):
            np.testing.assert_array_equal(bp.unpack_weights(packs[g]),
                                          flat[g].T)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_seeded_fuzz(self, backend):
        """Random shapes/sparsity: packed == float, both layouts."""
        with bp.force_popcount_backend(backend):
            for seed in range(20):
                rng = np.random.default_rng(1000 + seed)
                b = int(rng.integers(1, 9))
                k = int(rng.integers(1, 300))
                c = int(rng.integers(1, 40))
                x = _ternary(rng, (b, k), p_zero=float(rng.random()))
                w = _binary(rng, (k, c))
                ref = x @ w
                got = bp.packed_mvm(bp.pack_ternary_rows(x),
                                    bp.pack_weights(w))
                np.testing.assert_array_equal(got, ref)
                got_t = bp.packed_mvm(bp.pack_ternary_cols(x.T),
                                      bp.pack_weights(w), col_major=True)
                np.testing.assert_array_equal(got_t, ref.T)


# ----------------------------------------------------------------------
# Route heuristic.

class TestRouteHeuristic:
    def test_requires_prepacked_weights(self):
        assert not bp.packed_route_beneficial(2, 4096, 4096,
                                              weights_prepacked=False)

    def test_memory_bound_gemv_wins(self):
        assert bp.packed_route_beneficial(2, 4096, 4096)
        assert bp.packed_route_beneficial(4, 1024, 1024)

    def test_compute_bound_gemm_loses(self):
        assert not bp.packed_route_beneficial(512, 4096, 4096)

    def test_tiny_operands_lose(self):
        assert not bp.packed_route_beneficial(1, 64, 64)


# ----------------------------------------------------------------------
# Staleness: cached packed operands must follow conductance mutations.

def _flipping_defects(seed=0):
    """A defect model guaranteed to flip some cells of a 64×8 array."""
    return DefectModel(DefectRates(stuck_at_p=0.2, stuck_at_ap=0.2),
                       rng=np.random.default_rng(seed))


class TestPackedStaleness:
    def test_reprogram_invalidates_packed_operand(self):
        rng = np.random.default_rng(2)
        bar = XnorCrossbar(64, 8, ledger=OpLedger())
        w1, w2 = _binary(rng, (64, 8)), _binary(rng, (64, 8))
        bar.program(w1)
        first = bar.packed_weights_t()
        x = _ternary(rng, (3, 64))
        planes = bp.pack_ternary_rows(x)
        np.testing.assert_array_equal(bar.mvm_packed(planes), x @ w1)
        bar.program(w2)
        second = bar.packed_weights_t()
        assert second is not first
        np.testing.assert_array_equal(bar.mvm_packed(planes), x @ w2)

    def test_defect_injection_invalidates_packed_operand(self):
        """Regression: post-deployment fault injection must re-pack."""
        rng = np.random.default_rng(4)
        bar = XnorCrossbar(64, 8, ledger=OpLedger())
        w = _binary(rng, (64, 8))
        bar.program(w)
        bar.packed_weights_t()               # warm the cache
        bar.signed_weights_t()
        bar.inject_defects(_flipping_defects())
        corrupted = bar.programmed_weights
        assert not np.array_equal(corrupted, w)   # faults actually landed
        x = _ternary(rng, (5, 64))
        packed = bar.mvm_packed(bp.pack_ternary_rows(x))
        np.testing.assert_array_equal(packed, x @ corrupted)
        # float fast-route operand re-derived too, and the analog
        # readout agrees: all three views serve the post-fault matrix.
        np.testing.assert_array_equal(
            bar.signed_weights_t().T.astype(np.float64), corrupted)
        np.testing.assert_allclose(bar.matvec(x), x @ corrupted, atol=1e-9)

    def test_load_state_installs_planes_without_repack(self):
        rng = np.random.default_rng(6)
        bar = XnorCrossbar(100, 4, ledger=OpLedger())
        bar.program(_binary(rng, (100, 4)))
        bar.packed_weights_t()               # materialize → captured
        state = bar.state_dict()
        fresh = XnorCrossbar(100, 4, ledger=OpLedger())
        fresh.load_state(state)
        assert fresh._w_packed_t is not None
        np.testing.assert_array_equal(fresh._w_packed_t.sign_t,
                                      state["w_packed_t"])
        x = _ternary(rng, (2, 100))
        np.testing.assert_array_equal(
            fresh.mvm_packed(bp.pack_ternary_rows(x)),
            x @ bar.programmed_weights)

    def test_load_state_rejects_bad_plane_shape(self):
        rng = np.random.default_rng(8)
        bar = XnorCrossbar(64, 4, ledger=OpLedger())
        bar.program(_binary(rng, (64, 4)))
        state = bar.state_dict()
        assert "w_packed_t" not in state     # never packed → not captured
        state["w_packed_t"] = np.zeros((3, 4), np.uint64)
        fresh = XnorCrossbar(64, 4, ledger=OpLedger())
        with pytest.raises(ValueError, match="packed plane shape"):
            fresh.load_state(state)

    def test_mvm_packed_requires_ideal_array(self):
        from repro.devices import DeviceVariability, VariabilityParams
        bar = XnorCrossbar(
            64, 4,
            variability=DeviceVariability(
                VariabilityParams(sigma_r=0.05),
                rng=np.random.default_rng(0)),
            rng=np.random.default_rng(0), ledger=OpLedger())
        bar.program(_binary(np.random.default_rng(0), (64, 4)))
        with pytest.raises(RuntimeError, match="ideal"):
            bar.mvm_packed(bp.pack_ternary_rows(np.ones((1, 64))))

    def test_cim_linear_defect_injection_routes_agree(self):
        """Layer-level regression: inject faults after compile, then
        the forced-packed and float routes still agree bit-for-bit."""
        rng = np.random.default_rng(10)
        w = _binary(rng, (24, 96))           # (out, in) → two 64-row tiles
        layer = CimLinear(w, None, None,
                          CimConfig(max_rows=64, max_cols=64, seed=0),
                          OpLedger())
        x = _ternary(rng, (3, 96))
        layer.use_bitpack = True
        layer.forward(x)                     # warm every packed cache
        for row in layer.crossbars:
            for bar in row:
                bar.inject_defects(_flipping_defects(seed=1))
        packed_out = layer.forward(x)
        layer.use_bitpack = False
        float_out = layer.forward(x)
        np.testing.assert_array_equal(packed_out, float_out)
