"""Shared trend-gate logic behind bench_ci and the CI quality gate."""

import pytest

from repro.experiments.trend import (
    QUALITY_METRICS,
    MetricSpec,
    bench_summary_rows,
    compare_bench_record,
    compare_quality,
    metric_regression,
    quality_summary_rows,
    resolve_specs,
)


class TestMetricRegression:
    def test_absolute_margin_both_directions(self):
        up = MetricSpec("accuracy", higher_is_better=True, tolerance=0.03)
        down = MetricSpec("ece", higher_is_better=False, tolerance=0.02)
        assert metric_regression("accuracy", 0.88, 0.90, up) is None
        assert "regressed" in metric_regression("accuracy", 0.85, 0.90, up)
        assert metric_regression("ece", 0.06, 0.05, down) is None
        assert "regressed" in metric_regression("ece", 0.09, 0.05, down)

    def test_improvements_never_fail(self):
        up = MetricSpec("accuracy", higher_is_better=True, tolerance=0.03)
        down = MetricSpec("ece", higher_is_better=False, tolerance=0.02)
        assert metric_regression("accuracy", 0.99, 0.80, up) is None
        assert metric_regression("ece", 0.001, 0.20, down) is None

    def test_relative_drift(self):
        spec = MetricSpec("energy_j_per_image", higher_is_better=False,
                          tolerance=0.20, relative=True)
        assert metric_regression("e", 1.1e-9, 1.0e-9, spec) is None
        assert "drift" in metric_regression("e", 1.5e-9, 1.0e-9, spec)
        # A zero baseline cannot be a drift reference.
        assert metric_regression("e", 1.0, 0.0, spec) is None

    def test_missing_values_are_skipped(self):
        spec = MetricSpec("ood_auroc", higher_is_better=True, tolerance=0.03)
        assert metric_regression("a", None, 0.9, spec) is None
        assert metric_regression("a", 0.5, None, spec) is None


class TestResolveSpecs:
    def test_defaults_pass_through(self):
        assert resolve_specs(None) == list(QUALITY_METRICS)

    def test_bank_tolerances_override(self):
        specs = resolve_specs({"ece": 0.5})
        by_name = {s.name: s for s in specs}
        assert by_name["ece"].tolerance == 0.5
        assert by_name["accuracy"].tolerance == pytest.approx(0.03)


class TestCompareQuality:
    FRESH = {"spindrop/clean/d0/v0/letters": {
        "accuracy": 0.85, "nll": 0.5, "ece": 0.08, "brier": 0.25,
        "ood_auroc": 0.80, "energy_j_per_image": 1.0e-9}}

    def baseline(self, **overrides):
        metrics = dict(self.FRESH["spindrop/clean/d0/v0/letters"])
        metrics.update(overrides)
        return {"scenarios": {"spindrop/clean/d0/v0/letters": metrics}}

    def test_identical_metrics_pass(self):
        lines = []
        failures = compare_quality(self.FRESH, self.baseline(),
                                   printer=lines.append)
        assert failures == []
        assert lines and lines[0].startswith(
            "[compare] spindrop/clean/d0/v0/letters:")

    def test_injected_ece_regression_fails(self):
        # The banked ECE was 0.05 better than fresh → beyond the 0.02
        # margin → the gate must fail (the ISSUE's acceptance demo).
        failures = compare_quality(self.FRESH, self.baseline(ece=0.03),
                                   printer=lambda _: None)
        assert len(failures) == 1
        assert "ece regressed" in failures[0]

    def test_auroc_drop_fails(self):
        failures = compare_quality(self.FRESH,
                                   self.baseline(ood_auroc=0.95),
                                   printer=lambda _: None)
        assert any("ood_auroc regressed" in f for f in failures)

    def test_unmatched_scenarios_are_skipped(self):
        baseline = self.baseline()
        baseline["scenarios"]["gone/clean/d0/v0/none"] = {"ece": 0.0}
        failures = compare_quality(self.FRESH, baseline,
                                   printer=lambda _: None)
        assert failures == []

    def test_none_metrics_are_skipped(self):
        fresh = {"segmenter/clean/d0/v0/none": {
            "accuracy": 0.9, "ood_auroc": None,
            "energy_j_per_image": None}}
        baseline = {"scenarios": {"segmenter/clean/d0/v0/none": {
            "accuracy": 0.9, "ood_auroc": 0.99,
            "energy_j_per_image": 1.0e-9}}}
        failures = compare_quality(fresh, baseline, printer=lambda _: None)
        assert failures == []

    def test_bank_tolerance_block_is_honoured(self):
        baseline = self.baseline(ece=0.03)
        baseline["tolerances"] = {"ece": 0.5}
        failures = compare_quality(self.FRESH, baseline,
                                   printer=lambda _: None)
        assert failures == []

    def test_summary_rows(self):
        rows = quality_summary_rows(self.FRESH, self.baseline())
        assert rows == [["spindrop/clean/d0/v0/letters",
                         "0.850 (banked 0.850)",
                         "0.080 (banked 0.080)",
                         "0.800 (banked 0.800)"]]


class TestCompareBenchRecord:
    RECORD = {"engines": {"spindrop": {"speedup": 3.5},
                          "segmentation": {"speedup": 3.2}},
              "serving": {"throughput_ratio": 1.1}}

    def test_passes_within_tolerance(self):
        baseline = {"engines": {"spindrop": {"speedup": 3.6}},
                    "serving": {"throughput_ratio": 1.1}}
        lines = []
        failures = compare_bench_record(self.RECORD, baseline, 0.20,
                                        printer=lines.append)
        assert failures == []
        assert any(line.startswith("[compare] spindrop:")
                   for line in lines)

    def test_speedup_regression_fails(self):
        baseline = {"engines": {"spindrop": {"speedup": 5.0}}}
        failures = compare_bench_record(self.RECORD, baseline, 0.20,
                                        printer=lambda _: None)
        assert len(failures) == 1
        assert "spindrop speedup regressed" in failures[0]

    def test_serving_regression_fails(self):
        baseline = {"engines": {},
                    "serving": {"throughput_ratio": 2.0}}
        failures = compare_bench_record(self.RECORD, baseline, 0.20,
                                        printer=lambda _: None)
        assert len(failures) == 1
        assert "serving throughput ratio regressed" in failures[0]

    def test_new_and_removed_engines_are_skipped(self):
        # The gate protects banked entries; it does not pin the schema.
        baseline = {"engines": {"spindrop": {"speedup": 3.5},
                                "retired_engine": {"speedup": 9.9}}}
        failures = compare_bench_record(self.RECORD, baseline, 0.20,
                                        printer=lambda _: None)
        assert failures == []

    def test_summary_rows_include_serving_and_unbanked(self):
        baseline = {"engines": {"spindrop": {"speedup": 3.5}}}
        rows = bench_summary_rows(self.RECORD, baseline)
        by_name = {row[0]: row for row in rows}
        assert by_name["spindrop"] == ["spindrop", "3.50x", "3.50x", "1.00"]
        assert by_name["segmentation"][1] == "-"
        assert by_name["serving"][2] == "1.10x"
