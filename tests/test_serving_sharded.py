"""ShardedScheduler: one coalesced batch across engine replicas."""

import numpy as np
import pytest

from repro.bayesian import BayesianCim, make_spindrop_mlp
from repro.cim import CimConfig
from repro.serving import BatchScheduler, ShardedScheduler
from repro.serving.faults import PoisonEngine

RNG = np.random.default_rng(17)


def _engine(seed=9):
    model = make_spindrop_mlp(12, (8,), 3, p=0.3, seed=2)
    return BayesianCim(model, CimConfig(seed=4), seed=seed)


class TestSharding:
    def test_requires_at_least_one_replica(self):
        with pytest.raises(ValueError):
            ShardedScheduler([])

    def test_single_replica_equals_plain_scheduler(self):
        """With one replica sharding is the identity."""
        x1 = RNG.standard_normal((2, 12))
        x2 = RNG.standard_normal((3, 12))
        sharded = ShardedScheduler([_engine(seed=5)], n_samples=4)
        plain = BatchScheduler(_engine(seed=5), n_samples=4)
        s1, s2 = sharded.submit(x1), sharded.submit(x2)
        p1, p2 = plain.submit(x1), plain.submit(x2)
        sharded.flush()
        plain.flush()
        np.testing.assert_array_equal(s1.result().samples,
                                      p1.result().samples)
        np.testing.assert_array_equal(s2.result().samples,
                                      p2.result().samples)

    def test_requests_never_straddle_replicas(self):
        """Each request's slice comes from exactly one replica: a
        seeded per-replica replay reproduces it bit-for-bit."""
        xs = [RNG.standard_normal((n, 12)) for n in (2, 3, 1, 2)]
        sharded = ShardedScheduler([_engine(seed=5), _engine(seed=6)],
                                   n_samples=3, parallel=False)
        tickets = [sharded.submit(x) for x in xs]
        sharded.flush()
        assert sharded.stats.shard_calls == 2

        # Greedy row-balancing in arrival order: req0 (2 rows) -> r0,
        # req1 (3 rows) -> r1, req2 (1 row) -> r0, req3 (2 rows) -> r0.
        replica0 = _engine(seed=5).mc_forward_batched(
            np.concatenate([xs[0], xs[2], xs[3]]), n_samples=3)
        replica1 = _engine(seed=6).mc_forward_batched(
            xs[1], n_samples=3)
        np.testing.assert_array_equal(tickets[0].result().samples,
                                      replica0.samples[:, :2])
        np.testing.assert_array_equal(tickets[2].result().samples,
                                      replica0.samples[:, 2:3])
        np.testing.assert_array_equal(tickets[3].result().samples,
                                      replica0.samples[:, 3:])
        np.testing.assert_array_equal(tickets[1].result().samples,
                                      replica1.samples)

    def test_parallel_pool_resolves_all_requests(self):
        engines = [_engine(seed=s) for s in (5, 6, 7)]
        with ShardedScheduler(engines, n_samples=2, max_batch=64) \
                as sharded:
            tickets = [sharded.submit(RNG.standard_normal((2, 12)))
                       for _ in range(9)]
            sharded.flush()
            for ticket in tickets:
                result = ticket.result()
                assert result.probs.shape == (2, 3)
                np.testing.assert_allclose(result.probs.sum(axis=-1), 1.0,
                                           rtol=1e-9)
        assert sharded.stats.shard_calls == 3
        assert sharded._pool is None          # closed with the scheduler

    def test_per_request_samples_compose_with_sharding(self):
        sharded = ShardedScheduler([_engine(seed=5), _engine(seed=6)],
                                   n_samples=2, parallel=False)
        shallow = sharded.submit(RNG.standard_normal((2, 12)))
        deep = sharded.submit(RNG.standard_normal((2, 12)), n_samples=6)
        sharded.flush()
        assert shallow.result().samples.shape[0] == 2
        assert deep.result().samples.shape[0] == 6

    def test_row_balancing_spreads_load(self):
        sharded = ShardedScheduler([_engine(seed=5), _engine(seed=6)],
                                   n_samples=2, parallel=False)
        for n in (4, 1, 1, 1, 1):
            sharded.submit(RNG.standard_normal((n, 12)))
        shards = sharded._partition(sharded._pending)
        rows = sorted(sum(r.x.shape[0] for r in shard) for shard in shards)
        assert rows == [4, 4]


class TestShardFailureIsolation:
    """Regression: a replica failure used to abort the whole flush,
    leaving *sibling* shards' tickets pending forever."""

    @pytest.mark.parametrize("parallel", [False, True])
    def test_poisoned_replica_fails_only_its_own_tickets(self, parallel):
        sharded = ShardedScheduler([_engine(seed=5), PoisonEngine()],
                                   n_samples=3, parallel=parallel)
        # Greedy row balance: req0 (2 rows) -> replica0, req1 (3 rows)
        # -> poisoned replica1, req2 (1 row) -> replica0.
        ok1 = sharded.submit(RNG.standard_normal((2, 12)))
        bad = sharded.submit(RNG.standard_normal((3, 12)))
        ok2 = sharded.submit(RNG.standard_normal((1, 12)))
        sharded.flush()
        # Every ticket resolved — none left pending.
        assert ok1.done() and bad.done() and ok2.done()
        assert ok1.result().probs.shape == (2, 3)
        assert ok2.result().probs.shape == (1, 3)
        with pytest.raises(RuntimeError, match="boom"):
            bad.result()

    def test_failure_carries_the_original_traceback(self):
        sharded = ShardedScheduler([_engine(seed=5), PoisonEngine()],
                                   n_samples=3, parallel=False)
        sharded.submit(RNG.standard_normal((2, 12)))
        bad = sharded.submit(RNG.standard_normal((3, 12)))
        sharded.submit(RNG.standard_normal((1, 12)))
        sharded.flush()
        with pytest.raises(RuntimeError) as excinfo:
            bad.result()
        frames = [f.name for f in excinfo.traceback]
        assert "mc_forward_batched" in frames    # the engine frame

    def test_scheduler_keeps_serving_after_a_shard_failure(self):
        sharded = ShardedScheduler([_engine(seed=5), PoisonEngine()],
                                   n_samples=2, parallel=False)
        sharded.submit(RNG.standard_normal((2, 12)))
        bad = sharded.submit(RNG.standard_normal((3, 12)))
        sharded.flush()
        with pytest.raises(RuntimeError, match="boom"):
            bad.result()
        # Replace the poisoned replica; traffic resumes.
        assert sharded.remove_replica().__class__ is PoisonEngine
        sharded.add_replica(_engine(seed=6))
        later = sharded.submit(RNG.standard_normal((2, 12)))
        sharded.flush()
        assert later.result().probs.shape == (2, 3)
