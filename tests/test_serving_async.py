"""AsyncBatchScheduler: asyncio front-end over the batch schedulers."""

import asyncio

import numpy as np
import pytest

from repro.bayesian import BayesianCim, make_spindrop_mlp
from repro.cim import CimConfig
from repro.serving import (
    AsyncBatchScheduler,
    Autoscaler,
    BatchScheduler,
    LoadMetrics,
    ShardedScheduler,
)
from repro.serving.faults import PoisonEngine

RNG = np.random.default_rng(23)


def _engine(seed=9):
    model = make_spindrop_mlp(12, (8,), 3, p=0.3, seed=2)
    return BayesianCim(model, CimConfig(seed=4), seed=seed)


def run(coro):
    return asyncio.run(coro)


class TestEquivalence:
    def test_bit_identical_to_sync_scheduler(self):
        """Same submissions, same seed: async == sync, bit for bit —
        including per-request sample counts (T-grouping)."""
        xs = [RNG.standard_normal((n, 12)) for n in (3, 1, 2, 4)]
        ts = [4, 7, 4, 7]

        sync = BatchScheduler(_engine(seed=5), n_samples=4, max_batch=64)
        sync_tickets = [sync.submit(x, n_samples=t)
                        for x, t in zip(xs, ts)]
        sync.flush()
        expected = [t.result().samples for t in sync_tickets]

        async def go():
            inner = BatchScheduler(_engine(seed=5), n_samples=4,
                                   max_batch=64)
            async with AsyncBatchScheduler(inner) as frontend:
                tickets = [await frontend.submit(x, n_samples=t)
                           for x, t in zip(xs, ts)]
                await frontend.flush()
                return [(await t).samples for t in tickets]

        for got, want in zip(run(go()), expected):
            np.testing.assert_array_equal(got, want)

    def test_bit_identical_over_sharded_inner(self):
        xs = [RNG.standard_normal((n, 12)) for n in (2, 3, 1)]
        sync = ShardedScheduler([_engine(seed=5), _engine(seed=6)],
                                n_samples=3, parallel=False)
        sync_tickets = [sync.submit(x) for x in xs]
        sync.flush()
        expected = [t.result().samples for t in sync_tickets]

        async def go():
            inner = ShardedScheduler([_engine(seed=5), _engine(seed=6)],
                                     n_samples=3, parallel=False)
            async with AsyncBatchScheduler(inner) as frontend:
                tickets = [await frontend.submit(x) for x in xs]
                await frontend.flush()
                return [(await t).samples for t in tickets]

        for got, want in zip(run(go()), expected):
            np.testing.assert_array_equal(got, want)


class TestSubmitPredict:
    def test_predict_returns_predictive_result(self):
        async def go():
            async with AsyncBatchScheduler(
                    BatchScheduler(_engine(), n_samples=5)) as frontend:
                return await frontend.predict(RNG.standard_normal((3, 12)))

        result = run(go())
        assert result.probs.shape == (3, 3)
        assert result.samples.shape == (5, 3, 3)
        np.testing.assert_allclose(result.probs.sum(axis=-1), 1.0,
                                   rtol=1e-9)

    def test_max_batch_triggers_flush(self):
        async def go():
            inner = BatchScheduler(_engine(), n_samples=2, max_batch=4)
            async with AsyncBatchScheduler(inner) as frontend:
                a = await frontend.submit(RNG.standard_normal((2, 12)))
                assert not a.done()
                b = await frontend.submit(RNG.standard_normal((2, 12)))
                ra, rb = await a, await b
                assert frontend.stats.flushes == 1
                assert frontend.stats.coalesced_rows == 4
                return ra, rb

        ra, rb = run(go())
        assert ra.probs.shape == (2, 3) and rb.probs.shape == (2, 3)

    def test_deadline_flush_uses_call_later(self):
        """With flush_interval set, a lone request resolves without
        any explicit flush — and without a timer thread."""
        async def go():
            inner = BatchScheduler(_engine(), n_samples=2, max_batch=64)
            async with AsyncBatchScheduler(
                    inner, flush_interval=0.02) as frontend:
                ticket = await frontend.submit(
                    RNG.standard_normal((2, 12)))
                result = await asyncio.wait_for(ticket.result(),
                                                timeout=5.0)
                assert frontend.stats.timer_flushes == 1
                return result

        assert run(go()).probs.shape == (2, 3)

    def test_submit_after_close_raises(self):
        async def go():
            frontend = AsyncBatchScheduler(
                BatchScheduler(_engine(), n_samples=2))
            await frontend.aclose()
            with pytest.raises(RuntimeError, match="closed"):
                await frontend.submit(RNG.standard_normal((1, 12)))

        run(go())

    def test_aclose_flushes_pending(self):
        async def go():
            frontend = AsyncBatchScheduler(
                BatchScheduler(_engine(), n_samples=2, max_batch=64))
            ticket = await frontend.submit(RNG.standard_normal((2, 12)))
            await frontend.aclose()
            return await ticket

        assert run(go()).probs.shape == (2, 3)

    def test_drain_resolves_requests_queued_behind_a_far_deadline(self):
        """Regression: drain() must flush requests that joined the
        queue while it was waiting, not just the first batch."""
        async def go():
            inner = BatchScheduler(_engine(), n_samples=2, max_batch=64)
            async with AsyncBatchScheduler(
                    inner, flush_interval=30.0) as frontend:
                first = await frontend.submit(
                    RNG.standard_normal((1, 12)))

                late = []

                async def late_submit():
                    # Runs while drain is awaiting the first flush.
                    late.append(await frontend.submit(
                        RNG.standard_normal((2, 12))))

                task = asyncio.ensure_future(late_submit())
                await frontend.drain()
                await task
                assert frontend.pending_rows == 0
                assert late[0].done()        # not parked on the timer
                return await first, await late[0]

        r1, r2 = run(go())
        assert r1.probs.shape == (1, 3) and r2.probs.shape == (2, 3)

    def test_validation_matches_sync_front_end(self):
        async def go():
            async with AsyncBatchScheduler(
                    BatchScheduler(_engine(), n_samples=2)) as frontend:
                with pytest.raises(ValueError):
                    await frontend.submit(np.zeros((0, 12)))
                with pytest.raises(ValueError):
                    await frontend.submit(RNG.standard_normal((2, 12)),
                                          n_samples=0)
                await frontend.submit(RNG.standard_normal((2, 12)))
                with pytest.raises(ValueError):
                    await frontend.submit(RNG.standard_normal((2, 7)))

        run(go())


class TestBackpressure:
    def test_submit_suspends_at_bound_and_resumes(self):
        async def go():
            inner = BatchScheduler(_engine(), n_samples=2, max_batch=64)
            # A far-off deadline: flushes happen only when the test
            # says so, keeping the suspension assertions deterministic.
            async with AsyncBatchScheduler(
                    inner, max_pending_rows=4,
                    flush_interval=30.0) as frontend:
                first = await frontend.submit(
                    RNG.standard_normal((4, 12)))
                blocked = asyncio.ensure_future(
                    frontend.submit(RNG.standard_normal((2, 12))))
                for _ in range(5):
                    await asyncio.sleep(0)
                assert not blocked.done()       # suspended at the bound
                await frontend.flush()          # frees the 4 rows
                ticket = await asyncio.wait_for(blocked, timeout=5.0)
                await frontend.flush()
                return await first, await ticket

        r1, r2 = run(go())
        assert r1.probs.shape == (4, 3) and r2.probs.shape == (2, 3)

    def test_oversized_request_admitted_when_idle(self):
        async def go():
            inner = BatchScheduler(_engine(), n_samples=2, max_batch=64)
            async with AsyncBatchScheduler(
                    inner, max_pending_rows=4) as frontend:
                ticket = await frontend.submit(
                    RNG.standard_normal((9, 12)))
                await frontend.flush()
                return await ticket

        assert run(go()).probs.shape == (9, 3)

    def test_cancelled_request_frees_its_queue_slot(self):
        """The satellite regression: a cancelled await-predict must
        release its backpressure rows and leave the flush batch."""
        async def go():
            inner = BatchScheduler(_engine(), n_samples=2, max_batch=64)
            async with AsyncBatchScheduler(
                    inner, max_pending_rows=4,
                    flush_interval=30.0) as frontend:
                doomed = await frontend.submit(
                    RNG.standard_normal((3, 12)))
                blocked = asyncio.ensure_future(
                    frontend.submit(RNG.standard_normal((3, 12))))
                for _ in range(5):
                    await asyncio.sleep(0)
                assert not blocked.done()
                assert doomed.cancel()
                # The slot frees without any flush running.
                ticket = await asyncio.wait_for(blocked, timeout=5.0)
                assert frontend.pending_rows == 3   # doomed left the queue
                with pytest.raises(asyncio.CancelledError):
                    await doomed
                await frontend.flush()
                assert frontend.stats.flushes == 1  # doomed never ran
                return await ticket

        assert run(go()).probs.shape == (3, 3)

    def test_cancel_after_resolution_returns_false(self):
        async def go():
            async with AsyncBatchScheduler(
                    BatchScheduler(_engine(), n_samples=2)) as frontend:
                ticket = await frontend.submit(
                    RNG.standard_normal((1, 12)))
                await frontend.flush()
                await ticket
                assert not ticket.cancel()

        run(go())


class TestFailureIsolation:
    def test_poisoned_replica_fails_only_its_shard(self):
        """Async view of the sharded error-isolation fix: the poisoned
        replica's ticket raises the original error, siblings resolve."""
        async def go():
            inner = ShardedScheduler([_engine(seed=5), PoisonEngine()],
                                     n_samples=3, parallel=False)
            async with AsyncBatchScheduler(inner) as frontend:
                # Greedy row balance: req0 (2 rows) -> replica0,
                # req1 (3 rows) -> poisoned replica1, req2 -> replica0.
                ok1 = await frontend.submit(RNG.standard_normal((2, 12)))
                bad = await frontend.submit(RNG.standard_normal((3, 12)))
                ok2 = await frontend.submit(RNG.standard_normal((1, 12)))
                await frontend.flush()
                with pytest.raises(RuntimeError, match="boom"):
                    await bad
                return await ok1, await ok2

        r1, r2 = run(go())
        assert r1.probs.shape == (2, 3) and r2.probs.shape == (1, 3)

    def test_whole_flush_failure_rejects_every_ticket(self):
        async def go():
            inner = BatchScheduler(PoisonEngine(), n_samples=3,
                                   feature_shape=(12,))
            async with AsyncBatchScheduler(inner) as frontend:
                t1 = await frontend.submit(RNG.standard_normal((2, 12)))
                t2 = await frontend.submit(RNG.standard_normal((1, 12)))
                await frontend.flush()
                with pytest.raises(RuntimeError, match="boom"):
                    await t1
                with pytest.raises(RuntimeError, match="boom"):
                    await t2

        run(go())


class TestMetricsAndScaling:
    def test_metrics_record_flushes_and_queue(self):
        async def go():
            metrics = LoadMetrics()
            inner = BatchScheduler(_engine(), n_samples=2, max_batch=64)
            async with AsyncBatchScheduler(
                    inner, metrics=metrics) as frontend:
                for _ in range(3):
                    await frontend.submit(RNG.standard_normal((2, 12)))
                await frontend.flush()
            return metrics.snapshot()

        snap = run(go())
        assert snap.flushes == 1
        assert snap.requests == 3
        assert snap.rows == 6
        assert snap.max_queue_depth == 6
        assert snap.p95_latency_s >= snap.p50_latency_s > 0.0
        assert snap.replica_rows == (6,)

    def test_autoscaler_grows_replicas_under_sustained_load(self):
        """Back-to-back flush rounds push the utilization EWMA over a
        (deliberately low) threshold; the autoscaler must scale the
        sharded inner up and keep results flowing."""
        async def go():
            sharded = ShardedScheduler([_engine(seed=5)], n_samples=6,
                                       max_batch=64)
            scaler = Autoscaler(
                sharded, lambda: _engine(seed=11), min_replicas=1,
                max_replicas=2, scale_up_utilization=0.2,
                scale_down_utilization=0.05, up_patience=1,
                warm_spares=1)
            async with AsyncBatchScheduler(
                    sharded, flush_interval=0.02,
                    autoscaler=scaler) as frontend:
                rounds = 0
                while scaler.scale_ups == 0 and rounds < 25:
                    for _ in range(4):
                        await frontend.submit(
                            RNG.standard_normal((3, 12)))
                    await frontend.flush()
                    rounds += 1
                # Service keeps working after the replica set grew.
                result = await frontend.predict(
                    RNG.standard_normal((2, 12)))
                return scaler.scale_ups, sharded.n_replicas, result

        ups, replicas, result = run(go())
        assert ups >= 1
        assert replicas == 2
        assert result.probs.shape == (2, 3)


    def test_autoscaler_failure_does_not_break_serving(self):
        """A raising policy step is recorded, not propagated into the
        flush path — requests keep resolving."""
        async def go():
            sharded = ShardedScheduler([_engine(seed=5)], n_samples=2)
            scaler = Autoscaler(sharded, lambda: _engine(seed=7),
                                max_replicas=2, warm_spares=0)

            def poisoned_step(**kwargs):
                raise RuntimeError("policy exploded")

            scaler.step = poisoned_step
            async with AsyncBatchScheduler(
                    sharded, autoscaler=scaler) as frontend:
                result = await frontend.predict(
                    RNG.standard_normal((2, 12)))
                assert isinstance(frontend.last_autoscale_error,
                                  RuntimeError)
                return result

        assert run(go()).probs.shape == (2, 3)


class TestLoopDiscipline:
    def test_front_end_is_bound_to_one_loop(self):
        frontend = AsyncBatchScheduler(
            BatchScheduler(_engine(), n_samples=2))

        async def first():
            await frontend.submit(RNG.standard_normal((1, 12)))
            await frontend.flush()

        run(first())

        async def second():
            with pytest.raises(RuntimeError, match="event loop"):
                await frontend.submit(RNG.standard_normal((1, 12)))

        run(second())
