"""Process-backed replica pool: equivalence, transport, failure.

The acceptance contract of the procpool PR: a k-worker
:class:`ProcReplicaPool` under a :class:`ShardedScheduler` must serve
samples and ledger totals *bit-identical* to k threaded replicas built
from the same snapshot/factory — for all four model families — while
rows travel through the shared-memory slot rings (with a transparent
pipe fallback for oversized payloads).  Worker death must surface as
:class:`WorkerDied` on that replica only, feed the control plane's
quarantine + warm-spare loop, and never wedge sibling tickets.  A
fresh interpreter (the spawn boot path, exercised here both through
the pool and through an explicit subprocess) must rehydrate a snapshot
with prepacked bitplanes and continue the captured streams exactly.

Everything here spawns worker processes, so the module is marked
``procpool`` (the NumPy-floor CI leg deselects it; a dedicated 3.12
step runs it).
"""

import hashlib
import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.bayesian import (
    BayesianCim,
    SegmenterEngine,
    SpinBayesNetwork,
    make_bayesian_segmenter,
    make_spatial_spindrop_cnn,
    make_spindrop_mlp,
    make_subset_vi_mlp,
)
from repro.cim import CimConfig
from repro.cim.snapshot import DeploymentSnapshot
from repro.serving import (
    Autoscaler,
    ControlPlane,
    HealthPolicy,
    ModelRegistry,
    ProcReplicaPool,
    RemoteEngineError,
    ShardedScheduler,
    WorkerDied,
)
from repro.serving.controlplane import QUARANTINED

pytestmark = pytest.mark.procpool

RNG = np.random.default_rng(23)


# ----------------------------------------------------------------------
# Model families.  Factories are module-level so they pickle across the
# spawn boundary (workers are fresh interpreters that re-import us).
# ----------------------------------------------------------------------
def _spindrop_engine():
    model = make_spindrop_mlp(12, (8,), 3, p=0.3, seed=2)
    return BayesianCim(model, CimConfig(seed=4), seed=9)


def _spinbayes_engine():
    teacher = make_subset_vi_mlp(12, (8,), 3, seed=3)
    return SpinBayesNetwork.from_subset_vi(
        teacher, n_components=4, n_levels=8, config=CimConfig(seed=6),
        seed=11)


def _cim_conv_engine():
    model = make_spatial_spindrop_cnn(1, 8, 3, p=0.2, widths=(4,), seed=1)
    return BayesianCim(model, CimConfig(seed=2), seed=5)


def _segmenter_engine():
    # Software path: no OpLedger, not snapshotable -> the factory route.
    return SegmenterEngine(make_bayesian_segmenter(width=4, seed=7))


FAMILIES = {
    # name -> (engine factory, per-request input maker, feature_shape)
    "spindrop": (_spindrop_engine,
                 lambda rng, n: rng.standard_normal((n, 12)), None),
    "spinbayes": (_spinbayes_engine,
                  lambda rng, n: rng.standard_normal((n, 12)), None),
    "cim_conv": (_cim_conv_engine,
                 lambda rng, n: rng.standard_normal((n, 1, 8, 8)),
                 (1, 8, 8)),
    "segmenter": (_segmenter_engine,
                  lambda rng, n: rng.standard_normal((n, 1, 8, 8)),
                  (1, 8, 8)),
}


def _save_snapshot(make_engine, path):
    DeploymentSnapshot.capture(make_engine()).save(path)
    return path


def _ledger_dict(engine):
    ledger = getattr(engine, "ledger", None)
    return None if ledger is None else ledger.as_dict()


# ----------------------------------------------------------------------
# Bit-exactness: k proc workers == k threaded replicas
# ----------------------------------------------------------------------
class TestBitExactEquivalence:
    @pytest.mark.parametrize("family", ["spindrop", "spinbayes",
                                        "cim_conv", "segmenter"])
    def test_pool_matches_threaded_sharding(self, family, tmp_path):
        """Same requests through threaded replicas and through the
        process pool: identical samples per ticket, identical ledger
        totals per replica (None for the ledger-less segmenter)."""
        make_engine, make_x, feature_shape = FAMILIES[family]
        if family == "segmenter":
            threaded_engines = [make_engine(), make_engine()]
            pool = ProcReplicaPool.from_factory(make_engine, workers=2)
        else:
            path = _save_snapshot(make_engine, str(tmp_path / "snap"))
            snap = DeploymentSnapshot.load(path)
            threaded_engines = [snap.build(), snap.build()]
            pool = ProcReplicaPool.from_snapshot(path, workers=2)

        rng = np.random.default_rng(17)
        xs = [make_x(rng, n) for n in (2, 3, 1, 2)]
        kwargs = dict(n_samples=3, parallel=False, max_batch=1024)
        if feature_shape is not None:
            kwargs["feature_shape"] = feature_shape
        with pool:
            threaded = ShardedScheduler(threaded_engines, **kwargs)
            proc_replicas = pool.replicas
            sharded = ShardedScheduler(proc_replicas, **kwargs)
            t_tickets = [threaded.submit(x) for x in xs]
            p_tickets = [sharded.submit(x) for x in xs]
            threaded.flush()
            sharded.flush()
            for t, p in zip(t_tickets, p_tickets):
                np.testing.assert_array_equal(t.result().samples,
                                              p.result().samples)
            # Deterministic greedy partition => replica i on each side
            # served the same shards, so the op ledgers must agree too.
            for engine, replica in zip(threaded_engines, proc_replicas):
                assert replica.ledger_totals() == _ledger_dict(engine)
            assert pool.stats["shm_requests"] > 0

    def test_ledger_property_is_a_detached_copy(self, tmp_path):
        path = _save_snapshot(_spindrop_engine, str(tmp_path / "snap"))
        with ProcReplicaPool.from_snapshot(path, workers=1) as pool:
            replica = pool.replicas[0]
            replica.mc_forward_batched(RNG.standard_normal((2, 12)),
                                       n_samples=2)
            ledger = replica.ledger
            totals = ledger.as_dict()
            assert totals == replica.ledger_totals()
            ledger.reset()                 # local copy only
            assert replica.ledger_totals() == totals


# ----------------------------------------------------------------------
# Transport: slot rings, pipe fallback, in-worker errors
# ----------------------------------------------------------------------
class TestTransport:
    def test_oversized_payloads_fall_back_to_pipe(self, tmp_path):
        """Requests/results over slot_bytes ship via pickle-over-pipe,
        counted but never wrong: results stay bit-identical."""
        path = _save_snapshot(_spindrop_engine, str(tmp_path / "snap"))
        reference = DeploymentSnapshot.load(path).build()
        x = np.random.default_rng(3).standard_normal((20, 12))
        expected = reference.mc_forward_batched(x, n_samples=3)
        with ProcReplicaPool.from_snapshot(path, workers=1,
                                           slot_bytes=1024) as pool:
            replica = pool.replicas[0]
            result = replica.mc_forward_batched(x, n_samples=3)
            np.testing.assert_array_equal(result.samples, expected.samples)
            assert pool.stats["pipe_fallbacks"] >= 1

            # A healthy worker survives an engine exception: the bad
            # request fails with the remote traceback, the next one
            # serves normally.
            with pytest.raises(RemoteEngineError):
                replica.mc_forward_batched(
                    np.zeros((2, 3, 4)), n_samples=2)
            assert replica.alive
            small = np.random.default_rng(4).standard_normal((2, 12))
            assert replica.mc_forward_batched(small, n_samples=2) \
                .samples.shape[1] == 2

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ProcReplicaPool.from_factory(_spindrop_engine, workers=0)
        with pytest.raises(ValueError):
            ProcReplicaPool.from_factory(_spindrop_engine, slots=0)
        with pytest.raises(ValueError):
            ProcReplicaPool.from_factory(_spindrop_engine, slot_bytes=16)
        with pytest.raises(TypeError):
            ProcReplicaPool({"m": 123})
        with pytest.raises(ValueError):
            ProcReplicaPool({})

    def test_boot_failure_surfaces_and_cleans_up(self):
        with pytest.raises(RuntimeError, match="failed to boot"):
            ProcReplicaPool.from_snapshot("/nonexistent/snapshot",
                                          workers=1)


# ----------------------------------------------------------------------
# Multi-tenant boot from the registry
# ----------------------------------------------------------------------
class TestRegistryBoot:
    def test_workers_host_every_registered_model(self, tmp_path):
        path = _save_snapshot(_spindrop_engine, str(tmp_path / "snap"))
        registry = ModelRegistry()
        registry.register("mlp", snapshot=path)
        registry.register("seg", factory=_segmenter_engine)
        x_mlp = np.random.default_rng(5).standard_normal((2, 12))
        x_seg = np.random.default_rng(6).standard_normal((2, 1, 8, 8))
        expected_mlp = DeploymentSnapshot.load(path).build() \
            .mc_forward_batched(x_mlp, n_samples=2)
        expected_seg = _segmenter_engine() \
            .mc_forward_batched(x_seg, n_samples=2)
        with ProcReplicaPool.from_registry(registry, workers=1) as pool:
            assert sorted(pool.model_ids) == ["mlp", "seg"]
            mlp = pool.replica(0, model="mlp")
            seg = pool.replica(0, model="seg")
            np.testing.assert_array_equal(
                mlp.mc_forward_batched(x_mlp, n_samples=2).samples,
                expected_mlp.samples)
            np.testing.assert_array_equal(
                seg.mc_forward_batched(x_seg, n_samples=2).samples,
                expected_seg.samples)
            # Proxies are stable objects (control-plane keys).
            assert pool.replica(0, model="mlp") is mlp
            with pytest.raises(KeyError):
                pool.replica(0, model="unknown")


# ----------------------------------------------------------------------
# Failure model: worker death, quarantine, warm-spare promotion
# ----------------------------------------------------------------------
class TestWorkerDeath:
    def test_dead_worker_raises_and_sibling_serves(self, tmp_path):
        path = _save_snapshot(_spindrop_engine, str(tmp_path / "snap"))
        x = RNG.standard_normal((2, 12))
        with ProcReplicaPool.from_snapshot(path, workers=2) as pool:
            victim, sibling = pool.replicas
            victim._worker.process.terminate()
            victim._worker.process.join()
            with pytest.raises(WorkerDied):
                victim.mc_forward_batched(x, n_samples=2)
            assert pool.stats["worker_deaths"] == 1
            assert pool.alive_workers == 1
            assert pool.replicas == [sibling]
            assert sibling.mc_forward_batched(x, n_samples=2) \
                .samples.shape[1] == 2
            # A dead replica stays dead (no hang, immediate error).
            with pytest.raises(WorkerDied):
                victim.mc_forward_batched(x, n_samples=2)
            # spawn_replica restores capacity: the Autoscaler's
            # engine-factory hook.
            spare = pool.spawn_replica()
            assert pool.alive_workers == 2
            assert spare.mc_forward_batched(x, n_samples=2) \
                .samples.shape[1] == 2

    def test_quarantine_and_warm_spare_promotion(self, tmp_path):
        """The control plane treats a dead worker like any failing
        replica: quarantined after the failed shard, its capacity
        replaced by a warm spare spawned through the pool — and the
        sibling's ticket of the same flush resolves normally."""
        path = _save_snapshot(_spindrop_engine, str(tmp_path / "snap"))
        with ProcReplicaPool.from_snapshot(path, workers=2) as pool:
            replicas = pool.replicas
            plane = ControlPlane(health=HealthPolicy(
                quarantine_after=1, probe_backoff_s=1000.0,
                max_backoff_s=10000.0))
            sharded = ShardedScheduler(replicas, n_samples=2,
                                       parallel=False, max_batch=1024,
                                       controlplane=plane)
            scaler = Autoscaler(sharded, pool.spawn_replica,
                                max_replicas=4, warm_spares=1,
                                cooldown_s=1000.0)
            plane.autoscaler = scaler

            victim = replicas[0]
            victim._worker.process.terminate()
            victim._worker.process.join()

            tickets = [sharded.submit(RNG.standard_normal((2, 12)))
                       for _ in range(2)]
            sharded.flush()
            outcomes = []
            for ticket in tickets:
                try:
                    outcomes.append(ticket.result().samples.shape)
                except WorkerDied:
                    outcomes.append("died")
            # Exactly the dead replica's shard failed; the sibling's
            # ticket never wedged.
            assert sorted(outcomes, key=str) == [(2, 2, 3), "died"]
            assert plane.health_of(victim).state == QUARANTINED
            assert scaler.promotions == 1
            assert sharded.n_replicas == 3    # victim parked + 2 live

            # The promoted spare is a fresh worker process serving the
            # same snapshot: the next flush succeeds on every ticket.
            tickets = [sharded.submit(RNG.standard_normal((2, 12)))
                       for _ in range(2)]
            sharded.flush()
            for ticket in tickets:
                assert ticket.result().samples.shape == (2, 2, 3)
            assert pool.stats["workers_spawned"] >= 3


# ----------------------------------------------------------------------
# Snapshot -> fresh-interpreter worker boot
# ----------------------------------------------------------------------
_BOOT_SCRIPT = """\
import hashlib, json, sys
import numpy as np
from repro.cim.snapshot import DeploymentSnapshot

engine = DeploymentSnapshot.load(sys.argv[1]).build()
x = np.random.default_rng(41).standard_normal((4, 12))
result = engine.mc_forward_batched(x, n_samples=3)
print(json.dumps({
    "sha": hashlib.sha256(
        np.ascontiguousarray(result.samples).tobytes()).hexdigest(),
    "shape": list(result.samples.shape),
    "ledger": engine.ledger.as_dict(),
}))
"""


class TestFreshInterpreterBoot:
    def test_subprocess_serves_bit_identical(self, tmp_path):
        """A cold interpreter rehydrates a snapshot whose crossbars
        carry prepacked bitplanes (use_bitpack=True at compile) and
        continues the captured streams exactly: same samples, same
        ledger totals as the capturing process."""
        model = make_spindrop_mlp(12, (8,), 3, p=0.3, seed=2)
        engine = BayesianCim(model, CimConfig(seed=4, use_bitpack=True),
                             seed=9)
        path = str(tmp_path / "snap")
        DeploymentSnapshot.capture(engine).save(path)

        x = np.random.default_rng(41).standard_normal((4, 12))
        expected = DeploymentSnapshot.load(path).build()
        expected_result = expected.mc_forward_batched(x, n_samples=3)
        expected_sha = hashlib.sha256(np.ascontiguousarray(
            expected_result.samples).tobytes()).hexdigest()

        script = tmp_path / "boot.py"
        script.write_text(_BOOT_SCRIPT)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, str(script), path],
            capture_output=True, text=True, env=env, timeout=120)
        assert proc.returncode == 0, proc.stderr
        report = json.loads(proc.stdout)
        assert report["sha"] == expected_sha
        assert tuple(report["shape"]) == expected_result.samples.shape
        assert report["ledger"] == expected.ledger.as_dict()
