"""Recurrent cells and inverted normalization."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, no_grad

RNG = np.random.default_rng(5)


class TestRNNCells:
    def test_rnn_cell_shape(self):
        cell = nn.RNNCell(4, 8, rng=RNG)
        h = cell(Tensor(RNG.standard_normal((3, 4))),
                 Tensor(np.zeros((3, 8))))
        assert h.shape == (3, 8)

    def test_rnn_cell_bounded(self):
        cell = nn.RNNCell(4, 8, rng=RNG)
        h = cell(Tensor(RNG.standard_normal((3, 4)) * 100),
                 Tensor(np.zeros((3, 8))))
        assert np.abs(h.data).max() <= 1.0

    def test_gru_cell_shape(self):
        cell = nn.GRUCell(4, 8, rng=RNG)
        h = cell(Tensor(RNG.standard_normal((3, 4))),
                 Tensor(np.zeros((3, 8))))
        assert h.shape == (3, 8)

    def test_gru_gradient_through_time(self):
        cell = nn.GRUCell(2, 4, rng=RNG)
        x = Tensor(RNG.standard_normal((2, 5, 2)))
        h = Tensor(np.zeros((2, 4)))
        for step in range(5):
            h = cell(x[:, step, :], h)
        h.sum().backward()
        assert cell.w_xz.grad is not None
        assert np.abs(cell.w_xz.grad).sum() > 0

    def test_unknown_cell_raises(self):
        with pytest.raises(ValueError):
            nn.SequenceRegressor(1, 4, cell="lstm")


class TestSequenceRegressor:
    def test_output_shape(self):
        model = nn.SequenceRegressor(1, 8, rng=RNG)
        out = model(Tensor(RNG.standard_normal((4, 10, 1))))
        assert out.shape == (4, 1)

    def test_learns_sine_forecast(self):
        from repro.data import forecast_dataset
        from repro.experiments.common import train_regressor, rmse
        (xtr, ytr), (xte, yte) = forecast_dataset(n_points=400, seed=0)
        model = nn.SequenceRegressor(1, 16, rng=np.random.default_rng(0))
        train_regressor(model, xtr, ytr, epochs=10, seed=0)
        with no_grad():
            err = rmse(model(Tensor(xte)).data, yte)
        # Predicting the mean gives RMSE ≈ signal std (~0.5).
        assert err < 0.3


class TestInvertedNorm:
    def test_affine_before_normalization(self):
        """With beta large, plain BN output would be shifted; inverted
        norm must re-center AFTER the affine, so the output stays
        zero-mean."""
        norm = nn.InvertedNorm(4)
        norm.beta.data[:] = 100.0
        x = RNG.standard_normal((64, 4))
        out = norm(Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)

    def test_gamma_scales_before_stats(self):
        norm = nn.InvertedNorm(2)
        norm.gamma.data[:] = [1.0, 100.0]
        x = RNG.standard_normal((128, 2))
        out = norm(Tensor(x)).data
        # Both features end up unit variance despite the huge gamma.
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=0.05)

    def test_running_stats_used_in_eval(self):
        norm = nn.InvertedNorm(4)
        for _ in range(30):
            norm(Tensor(RNG.standard_normal((32, 4)) + 3.0))
        norm.eval()
        x = RNG.standard_normal((8, 4))
        out1 = norm(Tensor(x)).data
        out2 = norm(Tensor(x)).data
        np.testing.assert_array_equal(out1, out2)

    def test_affine_masks_gamma_to_identity(self):
        """With gamma dropped (mask 0) the affine weight becomes one."""
        norm = nn.InvertedNorm(3)
        norm.gamma.data[:] = 50.0
        norm.eval()
        x = RNG.standard_normal((8, 3))
        norm.set_affine_masks(0.0, 1.0)
        dropped = norm(Tensor(x)).data
        norm.gamma.data[:] = 1.0
        norm.set_affine_masks(None, None)
        identity = norm(Tensor(x)).data
        np.testing.assert_allclose(dropped, identity)

    def test_affine_masks_beta_to_zero(self):
        norm = nn.InvertedNorm(3)
        norm.beta.data[:] = 7.0
        norm.eval()
        x = RNG.standard_normal((8, 3))
        norm.set_affine_masks(1.0, 0.0)
        dropped = norm(Tensor(x)).data
        norm.beta.data[:] = 0.0
        norm.set_affine_masks(None, None)
        zeroed = norm(Tensor(x)).data
        np.testing.assert_allclose(dropped, zeroed)

    def test_spatial_mode(self):
        norm = nn.InvertedNorm(3, spatial=True)
        out = norm(Tensor(RNG.standard_normal((4, 3, 5, 5))))
        assert out.shape == (4, 3, 5, 5)

    def test_parameters_trainable(self):
        norm = nn.InvertedNorm(4)
        norm(Tensor(RNG.standard_normal((16, 4)))).sum().backward()
        assert norm.gamma.grad is not None and norm.beta.grad is not None
