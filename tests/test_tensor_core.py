"""Tensor class semantics: graph construction, no_grad, accumulation."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, is_grad_enabled


class TestConstruction:
    def test_data_coerced_to_float64(self):
        assert Tensor([1, 2, 3]).data.dtype == np.float64

    def test_shape_and_size(self):
        x = Tensor.zeros(2, 3)
        assert x.shape == (2, 3) and x.size == 6 and x.ndim == 2

    def test_randn_seeded(self):
        rng1 = np.random.default_rng(7)
        rng2 = np.random.default_rng(7)
        a = Tensor.randn(3, 3, rng=rng1)
        b = Tensor.randn(3, 3, rng=rng2)
        np.testing.assert_array_equal(a.data, b.data)

    def test_detach_copies(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        d = x.detach()
        d.data[0] = 99.0
        assert x.data[0] == 1.0 and not d.requires_grad

    def test_item(self):
        assert Tensor([3.5]).item() == 3.5


class TestBackward:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        with pytest.raises(RuntimeError):
            y.backward()

    def test_grad_accumulates_across_uses(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        (x * 3.0).backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        """f = (x*2) * (x*3) -> df/dx = 12x."""
        x = Tensor([2.0], requires_grad=True)
        (x * 2.0 * (x * 3.0)).backward()
        np.testing.assert_allclose(x.grad, [24.0])

    def test_deep_chain(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(50):
            y = y + 1.0
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_no_graph_through_constants(self):
        x = Tensor([1.0])  # requires_grad=False
        y = x * 2.0
        assert not y.requires_grad and y._backward is None


class TestNoGrad:
    def test_flag_toggles(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_graph_built(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_nested(self):
        with no_grad():
            with no_grad():
                pass
            assert not is_grad_enabled()

    def test_restored_on_exception(self):
        try:
            with no_grad():
                raise ValueError
        except ValueError:
            pass
        assert is_grad_enabled()


class TestOperatorSugar:
    def test_radd_rmul(self):
        x = Tensor([2.0])
        np.testing.assert_allclose((3.0 + x).data, [5.0])
        np.testing.assert_allclose((3.0 * x).data, [6.0])

    def test_rsub_rdiv(self):
        x = Tensor([2.0])
        np.testing.assert_allclose((3.0 - x).data, [1.0])
        np.testing.assert_allclose((4.0 / x).data, [2.0])

    def test_neg(self):
        np.testing.assert_allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_pow(self):
        np.testing.assert_allclose((Tensor([3.0]) ** 2).data, [9.0])

    def test_matmul_operator(self):
        a = Tensor(np.eye(2))
        b = Tensor([[1.0], [2.0]])
        np.testing.assert_allclose((a @ b).data, [[1.0], [2.0]])

    def test_t_property(self):
        x = Tensor(np.arange(6).reshape(2, 3))
        assert x.T.shape == (3, 2)

    def test_method_sum_mean(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        assert float(x.sum().data) == 6.0
        assert float(x.mean().data) == 1.0


class TestBroadcastGradients:
    def test_row_vector_grad_shape(self):
        a = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        (a + b).sum().backward()
        assert b.grad.shape == (3,)
        np.testing.assert_allclose(b.grad, [4.0, 4.0, 4.0])

    def test_keepdim_axis_grad_shape(self):
        a = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.ones((4, 1)), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == (4, 1)
        np.testing.assert_allclose(b.grad.reshape(-1), [3.0] * 4)

    def test_scalar_tensor_grad(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        s = Tensor(2.0, requires_grad=True)
        (a * s).sum().backward()
        np.testing.assert_allclose(s.grad, 4.0)
