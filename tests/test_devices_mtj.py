"""MTJ device model: switching physics, state machine, inversion."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.devices import (
    MTJ,
    MTJParams,
    MTJState,
    current_for_probability,
    switching_probability,
)


class TestParams:
    def test_resistance_from_tmr(self):
        params = MTJParams(r_p=5e3, tmr=1.5)
        assert params.r_ap == pytest.approx(12.5e3)

    def test_conductances_reciprocal(self):
        params = MTJParams()
        assert params.g_p == pytest.approx(1.0 / params.r_p)
        assert params.g_ap == pytest.approx(1.0 / params.r_ap)

    def test_g_p_exceeds_g_ap(self):
        params = MTJParams()
        assert params.g_p > params.g_ap


class TestSwitchingProbability:
    def test_monotone_in_current(self):
        params = MTJParams()
        currents = np.linspace(0.1, 1.2, 30) * params.i_c0
        probs = [switching_probability(i, params) for i in currents]
        assert all(a <= b + 1e-12 for a, b in zip(probs, probs[1:]))

    def test_monotone_in_pulse_width(self):
        params = MTJParams()
        i = 0.8 * params.i_c0
        p_short = switching_probability(i, params, pulse_width=5e-9)
        p_long = switching_probability(i, params, pulse_width=50e-9)
        assert p_long > p_short

    def test_saturates_at_critical_current(self):
        params = MTJParams()
        p = switching_probability(2.0 * params.i_c0, params)
        assert p > 0.99

    def test_lower_delta_switches_easier(self):
        params = MTJParams()
        i = 0.7 * params.i_c0
        p_stable = switching_probability(i, params, delta=60.0)
        p_weak = switching_probability(i, params, delta=20.0)
        assert p_weak > p_stable

    def test_vectorized_over_delta(self):
        params = MTJParams()
        deltas = np.array([20.0, 40.0, 60.0])
        probs = switching_probability(0.7 * params.i_c0, params, delta=deltas)
        assert probs.shape == (3,)
        assert probs[0] > probs[1] > probs[2]

    @given(st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=30, deadline=None)
    def test_inversion_roundtrip(self, p_target):
        """current_for_probability inverts switching_probability exactly."""
        params = MTJParams()
        current = current_for_probability(p_target, params)
        p_back = switching_probability(current, params)
        assert p_back == pytest.approx(p_target, rel=1e-6)

    def test_inversion_rejects_degenerate(self):
        with pytest.raises(ValueError):
            current_for_probability(0.0, MTJParams())
        with pytest.raises(ValueError):
            current_for_probability(1.0, MTJParams())


class TestMTJStateMachine:
    def test_initial_state_resistance(self):
        mtj = MTJ(state=MTJState.PARALLEL)
        assert mtj.resistance == pytest.approx(mtj.params.r_p)
        mtj.state = MTJState.ANTI_PARALLEL
        assert mtj.resistance == pytest.approx(mtj.params.r_ap)

    def test_deterministic_write(self):
        mtj = MTJ(rng=np.random.default_rng(0))
        assert mtj.write(MTJState.ANTI_PARALLEL)
        assert mtj.state == MTJState.ANTI_PARALLEL

    def test_reset_returns_to_parallel(self):
        mtj = MTJ(state=MTJState.ANTI_PARALLEL)
        mtj.reset()
        assert mtj.state == MTJState.PARALLEL

    def test_stochastic_set_rate(self):
        """Empirical switch rate tracks the programmed probability."""
        rng = np.random.default_rng(7)
        switches = 0
        trials = 3000
        for _ in range(trials):
            mtj = MTJ(rng=rng)
            if mtj.set_stochastic(0.3):
                switches += 1
        assert abs(switches / trials - 0.3) < 0.03

    def test_write_to_same_state_is_noop_success(self):
        mtj = MTJ(state=MTJState.PARALLEL)
        assert mtj.write(MTJState.PARALLEL, current=1e-9)

    def test_read_noise_zero_sigma_exact(self):
        mtj = MTJ()
        assert mtj.read() == pytest.approx(mtj.params.r_p)

    def test_read_noise_spreads(self):
        mtj = MTJ(rng=np.random.default_rng(0))
        reads = [mtj.read(noise_sigma=0.05) for _ in range(100)]
        assert np.std(reads) > 0

    def test_operation_counters(self):
        mtj = MTJ(rng=np.random.default_rng(0))
        mtj.read()
        mtj.write(MTJState.ANTI_PARALLEL)
        mtj.reset()
        assert mtj.reads == 1 and mtj.writes == 2

    def test_per_device_delta_shifts_probability(self):
        rng = np.random.default_rng(3)
        weak = MTJ(delta=15.0, rng=rng)
        trials = 2000
        switched = sum(
            MTJ(delta=15.0, rng=rng).set_stochastic(0.2)
            for _ in range(trials))
        # Programmed for nominal delta 40, actual delta 15 switches
        # far more often than 20%.
        assert switched / trials > 0.35
