"""Binary layers: ±1 weights, STE, scales, latent clipping."""

import numpy as np

from repro import nn
from repro.tensor import Tensor

RNG = np.random.default_rng(11)


class TestBinaryLinear:
    def test_binary_weight_values(self):
        layer = nn.BinaryLinear(6, 4, rng=RNG)
        assert set(np.unique(layer.binary_weight().data)) <= {-1.0, 1.0}

    def test_forward_uses_binarized_weights(self):
        layer = nn.BinaryLinear(3, 2, scale=False, bias=False, rng=RNG)
        x = RNG.standard_normal((4, 3))
        expected = x @ np.where(layer.weight.data >= 0, 1.0, -1.0).T
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_scale_applies_per_output(self):
        layer = nn.BinaryLinear(3, 2, bias=False, rng=RNG)
        layer.scale.data[:] = [2.0, 3.0]
        x = np.ones((1, 3))
        base = x @ np.where(layer.weight.data >= 0, 1.0, -1.0).T
        np.testing.assert_allclose(layer(Tensor(x)).data,
                                   base * [2.0, 3.0])

    def test_binarize_input(self):
        layer = nn.BinaryLinear(3, 2, scale=False, bias=False,
                                binarize_input=True, rng=RNG)
        x = np.array([[0.3, -0.7, 2.0]])
        expected_input = np.array([[1.0, -1.0, 1.0]])
        w = np.where(layer.weight.data >= 0, 1.0, -1.0)
        np.testing.assert_allclose(layer(Tensor(x)).data,
                                   expected_input @ w.T)

    def test_gradient_flows_to_latent_weights(self):
        layer = nn.BinaryLinear(4, 3, rng=RNG)
        layer(Tensor(RNG.standard_normal((2, 4)))).sum().backward()
        assert layer.weight.grad is not None
        assert np.abs(layer.weight.grad).sum() > 0

    def test_training_learns_majority_rule(self):
        """STE training fits a majority-vote rule to high accuracy."""
        rng = np.random.default_rng(0)
        x = rng.choice([-1.0, 1.0], size=(256, 9))
        y = (x[:, :5].sum(axis=1) > 0).astype(int)
        model = nn.Sequential(
            nn.BinaryLinear(9, 32, rng=rng), nn.BatchNorm1d(32),
            nn.SignActivation(), nn.BinaryLinear(32, 2, rng=rng))
        opt = nn.Adam(model.parameters(), lr=1e-2)
        for _ in range(200):
            loss = nn.cross_entropy(model(Tensor(x)), y)
            opt.zero_grad()
            loss.backward()
            opt.step()
            nn.clip_latent_weights(model)
        acc = nn.accuracy(model(Tensor(x)).data, y)
        assert acc > 0.9


class TestBinaryConv2d:
    def test_binary_kernel_values(self):
        conv = nn.BinaryConv2d(2, 4, 3, rng=RNG)
        assert set(np.unique(conv.binary_weight().data)) <= {-1.0, 1.0}

    def test_output_shape(self):
        conv = nn.BinaryConv2d(2, 4, 3, padding=1, rng=RNG)
        out = conv(Tensor(RNG.standard_normal((2, 2, 8, 8))))
        assert out.shape == (2, 4, 8, 8)

    def test_channel_scale_shape(self):
        conv = nn.BinaryConv2d(1, 3, 3, rng=RNG)
        assert conv.scale.data.shape == (3,)

    def test_matches_conv_with_sign_weights(self):
        conv = nn.BinaryConv2d(1, 2, 3, scale=False, bias=False, rng=RNG)
        x = RNG.standard_normal((1, 1, 5, 5))
        from repro.tensor import functional as F
        signw = np.where(conv.weight.data >= 0, 1.0, -1.0)
        expected = F.conv2d(Tensor(x), Tensor(signw)).data
        np.testing.assert_allclose(conv(Tensor(x)).data, expected)


class TestClipLatentWeights:
    def test_clips_into_bound(self):
        layer = nn.BinaryLinear(4, 4, rng=RNG)
        layer.weight.data *= 100.0
        nn.clip_latent_weights(layer, bound=1.0)
        assert np.abs(layer.weight.data).max() <= 1.0

    def test_ignores_non_binary_layers(self):
        model = nn.Sequential(nn.Linear(4, 4, rng=RNG))
        model[0].weight.data *= 100.0
        nn.clip_latent_weights(model)
        assert np.abs(model[0].weight.data).max() > 1.0

    def test_recurses_into_sequential(self):
        model = nn.Sequential(nn.BinaryLinear(4, 4, rng=RNG))
        model[0].weight.data *= 100.0
        nn.clip_latent_weights(model)
        assert np.abs(model[0].weight.data).max() <= 1.0


class TestSignActivationModule:
    def test_forward_binary(self):
        out = nn.SignActivation()(Tensor(RNG.standard_normal((4, 5))))
        assert set(np.unique(out.data)) <= {-1.0, 1.0}

    def test_ste_gradient(self):
        x = Tensor(np.array([[0.5, -3.0]]), requires_grad=True)
        nn.SignActivation()(x).sum().backward()
        np.testing.assert_array_equal(x.grad, [[1.0, 0.0]])
