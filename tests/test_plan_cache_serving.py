"""Plan-cache lifecycle under live serving.

``clear_conv_plan_cache()`` is a public maintenance hook (exported in
``repro.tensor.functional.__all__``): an operator may drop the
memoized im2col plans on a *running* service — e.g. after a workload
shift — while sharded replicas are mid-flush on their own threads.
Plans handed to in-flight forwards are immutable and stay referenced,
so clearing must never corrupt results: every flush concurrent with a
clear storm must stay bit-identical to an undisturbed run.
"""

import threading

import numpy as np

from repro.bayesian import SegmenterEngine, make_bayesian_segmenter
from repro.serving import ShardedScheduler
from repro.tensor import functional as F
from repro.tensor.functional import (
    clear_conv_plan_cache,
    conv_plan_cache_stats,
)

RNG = np.random.default_rng(91)


def _requests(n=12, size=16):
    return [RNG.standard_normal((1, 1, size, size)) for _ in range(n)]


def _serve(xs, hammer_clears):
    """Serve ``xs`` through threaded sharded replicas; optionally run
    a concurrent thread that clears the conv-plan cache in a loop."""
    engines = [SegmenterEngine(make_bayesian_segmenter(width=4, seed=s))
               for s in (3, 4)]
    scheduler = ShardedScheduler(engines, n_samples=3,
                                 feature_shape=(1, 16, 16))
    stop = threading.Event()
    hammer = None
    if hammer_clears:
        def spin():
            while not stop.is_set():
                clear_conv_plan_cache()
        hammer = threading.Thread(target=spin)
        hammer.start()
    results = []
    try:
        for start in range(0, len(xs), 2):
            tickets = [scheduler.submit(x) for x in xs[start:start + 2]]
            scheduler.flush()
            results.extend(t.result().samples for t in tickets)
    finally:
        stop.set()
        if hammer is not None:
            hammer.join()
        scheduler.close()
    return results


class TestClearDuringServing:
    def test_clear_storm_does_not_corrupt_flushes(self):
        xs = _requests()
        clean = _serve(xs, hammer_clears=False)
        stormed = _serve(xs, hammer_clears=True)
        assert len(clean) == len(stormed) == len(xs)
        for a, b in zip(clean, stormed):
            np.testing.assert_array_equal(a, b)

    def test_cleared_cache_rebuilds_and_stays_consistent(self):
        x = RNG.standard_normal((1, 1, 16, 16))
        engine = SegmenterEngine(make_bayesian_segmenter(width=4, seed=6))
        warm = engine.mc_forward_batched(x, n_samples=2)
        clear_conv_plan_cache()
        assert conv_plan_cache_stats()["plans"] == 0
        engine2 = SegmenterEngine(make_bayesian_segmenter(width=4, seed=6))
        rebuilt = engine2.mc_forward_batched(x, n_samples=2)
        np.testing.assert_array_equal(warm.samples, rebuilt.samples)
        assert conv_plan_cache_stats()["builds"] > 0

    def test_concurrent_builders_share_one_cache(self):
        """Many threads racing cold lookups of the same geometry end
        with a usable cache and correct plans (no torn state)."""
        clear_conv_plan_cache()
        errors = []

        def worker(seed):
            try:
                rng = np.random.default_rng(seed)
                x = rng.standard_normal((1, 2, 9, 9))
                w = rng.standard_normal((3, 2, 3, 3))
                from repro.tensor import Tensor, no_grad
                with no_grad():
                    out = F.conv2d(Tensor(x), Tensor(w), padding=1,
                                   dilation=2).data
                ref = F.conv2d(Tensor(x), Tensor(w), padding=1,
                               dilation=2).data
                np.testing.assert_allclose(out, ref, atol=1e-8)
            except Exception as exc:       # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert conv_plan_cache_stats()["plans"] > 0
