"""Deployed CIM layers and compilation: parity with software."""

import numpy as np
import pytest

from repro import nn
from repro.cim import (
    CimConfig,
    CimConv2d,
    CimLinear,
    DigitalScale,
    DropoutGate,
    FrozenNorm,
    MappingStrategy,
    OpLedger,
    compile_to_cim,
)
from repro.tensor import Tensor, no_grad

RNG = np.random.default_rng(31)


def _binary(shape):
    w = np.sign(RNG.standard_normal(shape))
    w[w == 0] = 1.0
    return w


def _ideal_config(**kwargs):
    defaults = dict(adc_bits=12, seed=0)
    defaults.update(kwargs)
    return CimConfig(**defaults)


class TestCimLinear:
    def test_matches_software_matmul(self):
        w = _binary((10, 24))
        layer = CimLinear(w, None, None, _ideal_config(), OpLedger())
        x = _binary((6, 24))
        np.testing.assert_allclose(layer.forward(x), x @ w.T, atol=1e-6)

    def test_tiling_preserves_result(self):
        w = _binary((20, 300))   # 300 rows -> 3 tiles at max_rows=128
        layer = CimLinear(w, None, None, _ideal_config(max_rows=128),
                          OpLedger())
        assert layer.n_crossbars == 3
        x = _binary((4, 300))
        np.testing.assert_allclose(layer.forward(x), x @ w.T, atol=1e-6)

    def test_scale_and_bias(self):
        w = _binary((3, 8))
        scale = np.array([2.0, 0.5, 1.0])
        bias = np.array([1.0, -1.0, 0.0])
        layer = CimLinear(w, scale, bias, _ideal_config(), OpLedger())
        x = _binary((2, 8))
        np.testing.assert_allclose(layer.forward(x),
                                   (x @ w.T) * scale + bias, atol=1e-6)

    def test_low_adc_bits_quantizes(self):
        w = _binary((4, 64))
        coarse = CimLinear(w, None, None, _ideal_config(adc_bits=3),
                           OpLedger())
        fine = CimLinear(w, None, None, _ideal_config(adc_bits=12),
                         OpLedger())
        x = _binary((8, 64))
        err_coarse = np.abs(coarse.forward(x) - x @ w.T).mean()
        err_fine = np.abs(fine.forward(x) - x @ w.T).mean()
        assert err_coarse > err_fine

    def test_rejects_real_weights(self):
        with pytest.raises(ValueError):
            CimLinear(np.full((2, 2), 0.5), None, None, _ideal_config(),
                      OpLedger())

    def test_exact_route_is_bit_identical_to_analog(self):
        # An ideal chain with odd ADC steps takes the exact-integer
        # float32 route; forcing exact_route=False must reproduce the
        # same outputs AND the same ledger totals bit-for-bit.
        w = _binary((10, 300))   # 3 row tiles at max_rows=128
        la, lb = OpLedger(), OpLedger()
        fast = CimLinear(w, np.full(10, 0.5), np.arange(10.0),
                         _ideal_config(max_rows=128), la)
        slow = CimLinear(w, np.full(10, 0.5), np.arange(10.0),
                         _ideal_config(max_rows=128), lb)
        assert fast._exact_ok
        slow.exact_route = False
        x = _binary((6, 300))
        np.testing.assert_array_equal(fast.forward(x), slow.forward(x))
        assert la.as_dict() == lb.as_dict()

    def test_exact_route_respects_input_mask(self):
        w = _binary((8, 32))
        fast = CimLinear(w, None, None, _ideal_config(), OpLedger())
        slow = CimLinear(w, None, None, _ideal_config(), OpLedger())
        slow.exact_route = False
        mask = np.ones(32)
        mask[::3] = 0.0
        fast.input_mask = mask
        slow.input_mask = mask
        x = _binary((4, 32))
        np.testing.assert_array_equal(fast.forward(x), slow.forward(x))

    def test_exact_route_disabled_by_nonideal_chain(self):
        from repro.devices.variability import (
            DeviceVariability,
            VariabilityParams,
        )
        w = _binary((4, 16))
        config = _ideal_config()
        config.variability = DeviceVariability(
            VariabilityParams(sigma_r=0.05),
            rng=np.random.default_rng(0))
        layer = CimLinear(w, None, None, config, OpLedger())
        assert not layer._exact_ok


class TestCimConv2d:
    def test_matches_software_conv(self):
        w = _binary((4, 2, 3, 3))
        layer = CimConv2d(w, None, None, stride=1, padding=1,
                          config=_ideal_config(), ledger=OpLedger())
        x = _binary((2, 2, 6, 6))
        from repro.tensor import functional as F
        expected = F.conv2d(Tensor(x), Tensor(w), padding=1).data
        np.testing.assert_allclose(layer.forward(x), expected, atol=1e-6)

    def test_both_strategies_equivalent(self):
        w = _binary((4, 3, 3, 3))
        x = _binary((2, 3, 8, 8))
        outs = []
        for strategy in MappingStrategy:
            layer = CimConv2d(
                w, None, None, stride=1, padding=0,
                config=_ideal_config(mapping_strategy=strategy),
                ledger=OpLedger())
            outs.append(layer.forward(x))
        np.testing.assert_allclose(outs[0], outs[1], atol=1e-6)

    def test_channel_mask_gates_feature_maps(self):
        w = _binary((4, 3, 3, 3))
        layer = CimConv2d(w, None, None, stride=1, padding=0,
                          config=_ideal_config(), ledger=OpLedger())
        x = _binary((1, 3, 6, 6))
        layer.channel_mask = np.array([1.0, 0.0, 1.0])
        out = layer.forward(x)
        x_masked = x.copy()
        x_masked[:, 1] = 0.0
        from repro.tensor import functional as F
        expected = F.conv2d(Tensor(x_masked), Tensor(w)).data
        np.testing.assert_allclose(out, expected, atol=1e-6)

    def test_rejects_rectangular_kernel(self):
        w = np.ones((2, 2, 3, 5))
        with pytest.raises(ValueError):
            CimConv2d(w, None, None, 1, 0, _ideal_config(), OpLedger())


class TestDigitalStages:
    def test_frozen_norm_matches_batchnorm_eval(self):
        bn = nn.BatchNorm1d(6)
        for _ in range(10):
            bn(Tensor(RNG.standard_normal((32, 6)) * 2 + 1))
        bn.eval()
        frozen = FrozenNorm(bn.running_mean, bn.running_var,
                            bn.gamma.data, bn.beta.data, bn.eps,
                            spatial=False, inverted=False,
                            ledger=OpLedger())
        x = RNG.standard_normal((8, 6))
        with no_grad():
            np.testing.assert_allclose(frozen.forward(x),
                                       bn(Tensor(x)).data, atol=1e-10)

    def test_frozen_inverted_norm_order(self):
        inv = nn.InvertedNorm(4)
        for _ in range(10):
            inv(Tensor(RNG.standard_normal((32, 4)) + 2.0))
        inv.eval()
        frozen = FrozenNorm(inv.running_mean, inv.running_var,
                            inv.gamma.data, inv.beta.data, inv.eps,
                            spatial=False, inverted=True,
                            ledger=OpLedger())
        x = RNG.standard_normal((8, 4))
        with no_grad():
            np.testing.assert_allclose(frozen.forward(x),
                                       inv(Tensor(x)).data, atol=1e-10)

    def test_frozen_norm_affine_masks(self):
        frozen = FrozenNorm(np.zeros(3), np.ones(3), np.full(3, 5.0),
                            np.full(3, 2.0), 1e-5, spatial=False,
                            inverted=True, ledger=OpLedger())
        x = RNG.standard_normal((4, 3))
        frozen.gamma_multiplier = 0.0    # gamma -> identity
        frozen.beta_multiplier = 0.0     # beta -> zero
        out = frozen.forward(x)
        expected = x / np.sqrt(1.0 + 1e-5)
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_dropout_gate_masks_and_passthrough(self):
        gate = DropoutGate(0.5, channelwise=False, ledger=OpLedger())
        x = np.ones((2, 4))
        np.testing.assert_array_equal(gate.forward(x), x)  # mask None
        gate.mask = np.array([1.0, 0.0, 1.0, 0.0])
        out = gate.forward(x)
        np.testing.assert_array_equal(out, [[1, 0, 1, 0]] * 2)

    def test_digital_scale_multiplier(self):
        stage = DigitalScale(np.array([2.0, 3.0]), spatial=False,
                             ledger=OpLedger())
        x = np.ones((1, 2))
        np.testing.assert_allclose(stage.forward(x), [[2.0, 3.0]])
        stage.multiplier = 0.5
        np.testing.assert_allclose(stage.forward(x), [[1.0, 1.5]])


class TestCompile:
    def _binary_model(self):
        rng = np.random.default_rng(0)
        return nn.Sequential(
            nn.BinaryLinear(16, 12, rng=rng, binarize_input=True),
            nn.BatchNorm1d(12),
            nn.SignActivation(),
            nn.BinaryLinear(12, 4, rng=rng),
        )

    def test_compiled_matches_software_eval(self):
        model = self._binary_model()
        # Settle batch-norm running statistics.
        model.train()
        for _ in range(20):
            model(Tensor(RNG.standard_normal((32, 16))))
        model.eval()
        net = compile_to_cim(model, CimConfig(adc_bits=12, seed=0))
        x = RNG.standard_normal((8, 16))
        with no_grad():
            expected = model(Tensor(x)).data
        np.testing.assert_allclose(net.forward(x), expected, atol=1e-5)

    def test_full_precision_linear_rejected(self):
        model = nn.Sequential(nn.Linear(4, 2))
        with pytest.raises(TypeError):
            compile_to_cim(model)

    def test_stage_count_and_types(self):
        net = compile_to_cim(self._binary_model(),
                             CimConfig(adc_bits=8, seed=0))
        kinds = [type(s).__name__ for s in net.stages]
        assert kinds == ["CimLinear", "FrozenNorm", "DigitalSign",
                         "CimLinear"]

    def test_n_crossbars(self):
        net = compile_to_cim(self._binary_model(),
                             CimConfig(adc_bits=8, seed=0))
        assert net.n_crossbars == 2

    def test_ledger_accumulates_over_forward(self):
        net = compile_to_cim(self._binary_model(),
                             CimConfig(adc_bits=8, seed=0))
        programming = net.ledger["mtj_write"]
        assert programming == 2 * (16 * 12 + 12 * 4)
        net.forward(RNG.standard_normal((4, 16)))
        assert net.ledger["adc_conversion"] > 0
        assert net.ledger["sa_read"] > 0
