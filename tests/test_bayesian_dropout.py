"""Dropout-family Bayesian layers: SpinDrop, Spatial, ScaleDrop, Affine."""

import numpy as np
import pytest
from repro.bayesian import (
    AffineDropout,
    ScaleDropout,
    SpatialSpinDropout,
    SpinDropout,
    adaptive_dropout_probability,
    count_dropout_modules,
    make_affine_mlp,
    make_scaledrop_mlp,
    make_spatial_spindrop_cnn,
    make_spindrop_mlp,
    scale_parameters,
    set_mc_mode,
)
from repro.devices import DeviceVariability, VariabilityParams
from repro.tensor import Tensor

RNG = np.random.default_rng(9)


class TestSpinDropout:
    def test_mask_rate(self):
        layer = SpinDropout(1000, p=0.3, ideal=True,
                            rng=np.random.default_rng(0))
        mask = layer.sample_mask(20)
        assert abs(1.0 - mask.mean() - 0.3) < 0.03

    def test_eval_mode_identity(self):
        layer = SpinDropout(8, p=0.5, ideal=True)
        layer.eval()
        x = Tensor(np.ones((4, 8)))
        np.testing.assert_array_equal(layer(x).data, 1.0)

    def test_mc_mode_keeps_sampling_in_eval(self):
        layer = SpinDropout(64, p=0.5, ideal=True,
                            rng=np.random.default_rng(0))
        layer.eval()
        layer.enable_mc(True)
        out = layer(Tensor(np.ones((4, 64)))).data
        assert (out == 0).any()

    def test_device_backed_mask(self):
        var = DeviceVariability(VariabilityParams(sigma_delta=0.05),
                                rng=np.random.default_rng(1))
        layer = SpinDropout(128, p=0.3, ideal=False, variability=var,
                            rng=np.random.default_rng(1))
        masks = [layer.sample_mask(1) for _ in range(200)]
        rate = 1.0 - np.mean(masks)
        assert 0.1 < rate < 0.5
        assert layer.modules_bank.total_ops > 0

    def test_rejects_feature_maps(self):
        layer = SpinDropout(4, p=0.2, ideal=True)
        with pytest.raises(ValueError):
            layer(Tensor(np.ones((2, 4, 3, 3))))

    def test_module_count(self):
        model = make_spindrop_mlp(16, (32, 8), 4, p=0.2, seed=0)
        assert count_dropout_modules(model) == 40


class TestSpatialSpinDropout:
    def test_whole_channels_dropped(self):
        layer = SpatialSpinDropout(16, p=0.5, ideal=True,
                                   rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((2, 16, 4, 4)))).data
        channel_sums = out.sum(axis=(2, 3))
        # Every channel is either fully kept (16) or fully dropped (0).
        assert set(np.unique(channel_sums)) <= {0.0, 16.0}

    def test_requires_nchw(self):
        layer = SpatialSpinDropout(4, p=0.2, ideal=True)
        with pytest.raises(ValueError):
            layer(Tensor(np.ones((2, 4))))

    def test_module_count_is_channels(self):
        layer = SpatialSpinDropout(24, p=0.2, ideal=True)
        assert layer.n_dropout_modules == 24

    def test_cnn_factory_forward(self):
        model = make_spatial_spindrop_cnn(1, 16, 10, widths=(4, 8), seed=0)
        out = model(Tensor(RNG.standard_normal((2, 1, 16, 16))))
        assert out.shape == (2, 10)


class TestScaleDropout:
    def test_adaptive_probability_monotone(self):
        small = adaptive_dropout_probability(100)
        large = adaptive_dropout_probability(1_000_000)
        assert small < large <= 0.25

    def test_adaptive_probability_validation(self):
        with pytest.raises(ValueError):
            adaptive_dropout_probability(0)

    def test_single_module(self):
        layer = ScaleDropout(64, p=0.2)
        assert layer.n_dropout_modules == 1

    def test_scalar_mask_modulates_whole_layer(self):
        layer = ScaleDropout(8, p=0.999, drop_scale=0.5,
                             rng=np.random.default_rng(0))
        layer.scale.data[:] = 2.0
        out = layer(Tensor(np.ones((3, 8)))).data
        # p≈1 -> dropped: scale modulated to 2.0*0.5 = 1.0 everywhere.
        np.testing.assert_allclose(out, 1.0)

    def test_eval_uses_learned_scale(self):
        layer = ScaleDropout(4, p=0.5)
        layer.scale.data[:] = 3.0
        layer.eval()
        out = layer(Tensor(np.ones((2, 4)))).data
        np.testing.assert_allclose(out, 3.0)

    def test_stochastic_p_varies(self):
        layer = ScaleDropout(4, p=0.5, stochastic_p_sigma=0.1,
                             rng=np.random.default_rng(0))
        ps = {layer._current_p() for _ in range(20)}
        assert len(ps) > 1

    def test_scale_is_trainable(self):
        layer = ScaleDropout(4, p=0.2)
        layer(Tensor(np.ones((2, 4)))).sum().backward()
        assert layer.scale.grad is not None

    def test_scale_parameters_helper(self):
        model = make_scaledrop_mlp(16, (8, 8), 4, seed=0)
        assert len(scale_parameters(model)) == 2

    def test_spatial_mode(self):
        layer = ScaleDropout(3, p=0.2, spatial=True)
        out = layer(Tensor(np.ones((2, 3, 4, 4))))
        assert out.shape == (2, 3, 4, 4)


class TestAffineDropout:
    def test_two_modules(self):
        assert AffineDropout(8, p=0.2).n_dropout_modules == 2

    def test_mask_sampling_rates(self):
        layer = AffineDropout(4, p=0.3, rng=np.random.default_rng(0))
        masks = [layer.sample_masks() for _ in range(2000)]
        gamma_drop = np.mean([1 - m[0] for m in masks])
        beta_drop = np.mean([1 - m[1] for m in masks])
        assert abs(gamma_drop - 0.3) < 0.05
        assert abs(beta_drop - 0.3) < 0.05

    def test_forward_shapes(self):
        layer = AffineDropout(8, p=0.2, rng=np.random.default_rng(0))
        out = layer(Tensor(RNG.standard_normal((16, 8))))
        assert out.shape == (16, 8)

    def test_masks_cleared_after_forward(self):
        layer = AffineDropout(4, p=0.9, rng=np.random.default_rng(0))
        layer(Tensor(RNG.standard_normal((8, 4))))
        assert layer.norm._gamma_mask is None

    def test_stochastic_output_distribution(self):
        layer = AffineDropout(4, p=0.5, rng=np.random.default_rng(0))
        layer.norm.gamma.data[:] = 5.0
        layer.norm.beta.data[:] = 2.0
        set_mc_mode(layer, True)
        layer.eval()
        x = Tensor(RNG.standard_normal((16, 4)))
        outs = {tuple(np.round(layer(x).data[0], 6)) for _ in range(20)}
        assert len(outs) > 1  # different masks -> different outputs

    def test_mlp_factory(self):
        model = make_affine_mlp(16, (8,), 4, seed=0)
        assert model(Tensor(RNG.standard_normal((2, 16)))).shape == (2, 4)
