"""Gradient checks for every autograd primitive.

Each op's analytic vector-Jacobian product is verified against central
differences; this certifies the training substrate for all six
Bayesian methods.
"""

import numpy as np

from repro.tensor import Tensor, functional as F, gradcheck

RNG = np.random.default_rng(42)


def t(shape, scale=1.0):
    return Tensor(RNG.standard_normal(shape) * scale, requires_grad=True)


class TestElementwise:
    def test_add(self):
        assert gradcheck(lambda a, b: F.add(a, b), [t((3, 4)), t((3, 4))])

    def test_add_broadcast(self):
        assert gradcheck(lambda a, b: F.add(a, b), [t((3, 4)), t((4,))])

    def test_add_scalar_broadcast(self):
        assert gradcheck(lambda a, b: F.add(a, b), [t((2, 3, 4)), t((1, 4))])

    def test_sub(self):
        assert gradcheck(lambda a, b: F.sub(a, b), [t((5,)), t((5,))])

    def test_mul(self):
        assert gradcheck(lambda a, b: F.mul(a, b), [t((3, 4)), t((3, 4))])

    def test_mul_broadcast(self):
        assert gradcheck(lambda a, b: F.mul(a, b), [t((3, 4)), t((3, 1))])

    def test_div(self):
        b = Tensor(RNG.uniform(0.5, 2.0, (3, 4)), requires_grad=True)
        assert gradcheck(lambda a, b: F.div(a, b), [t((3, 4)), b])

    def test_power(self):
        a = Tensor(RNG.uniform(0.5, 2.0, (4,)), requires_grad=True)
        assert gradcheck(lambda a: F.power(a, 3.0), [a])

    def test_exp(self):
        assert gradcheck(lambda a: F.exp(a), [t((3, 3), scale=0.5)])

    def test_log(self):
        a = Tensor(RNG.uniform(0.5, 3.0, (4, 4)), requires_grad=True)
        assert gradcheck(lambda a: F.log(a), [a])

    def test_sqrt(self):
        a = Tensor(RNG.uniform(0.5, 3.0, (4,)), requires_grad=True)
        assert gradcheck(lambda a: F.sqrt(a), [a])

    def test_abs(self):
        a = Tensor(RNG.uniform(0.5, 2.0, (5,)) * RNG.choice([-1, 1], 5),
                   requires_grad=True)
        assert gradcheck(lambda a: F.absolute(a), [a])


class TestNonlinearities:
    def test_relu(self):
        a = Tensor(RNG.standard_normal((4, 4)) + 0.05, requires_grad=True)
        assert gradcheck(lambda a: F.relu(a), [a])

    def test_leaky_relu(self):
        a = Tensor(RNG.standard_normal((4, 4)) + 0.05, requires_grad=True)
        assert gradcheck(lambda a: F.leaky_relu(a, 0.1), [a])

    def test_sigmoid(self):
        assert gradcheck(lambda a: F.sigmoid(a), [t((3, 4))])

    def test_tanh(self):
        assert gradcheck(lambda a: F.tanh(a), [t((3, 4))])

    def test_hardtanh(self):
        a = Tensor(RNG.uniform(-2, 2, (6,)), requires_grad=True)
        # Avoid kink points for numeric diff.
        a.data[np.abs(np.abs(a.data) - 1.0) < 0.05] = 0.5
        assert gradcheck(lambda a: F.hardtanh(a), [a])

    def test_sign_ste_forward(self):
        out = F.sign_ste(Tensor([-0.5, 0.0, 0.7]))
        assert np.array_equal(out.data, [-1.0, 1.0, 1.0])

    def test_sign_ste_backward_window(self):
        a = Tensor(np.array([-2.0, -0.5, 0.5, 2.0]), requires_grad=True)
        F.sign_ste(a).sum().backward()
        assert np.array_equal(a.grad, [0.0, 1.0, 1.0, 0.0])

    def test_where(self):
        cond = RNG.random((3, 4)) > 0.5
        assert gradcheck(lambda a, b: F.where(cond, a, b),
                         [t((3, 4)), t((3, 4))])

    def test_maximum(self):
        a, b = t((5,)), t((5,))
        b.data += 0.2  # avoid exact ties
        assert gradcheck(lambda a, b: F.maximum(a, b), [a, b])


class TestLinearAlgebra:
    def test_matmul_2d(self):
        assert gradcheck(lambda a, b: F.matmul(a, b), [t((3, 4)), t((4, 5))])

    def test_matmul_batched(self):
        assert gradcheck(lambda a, b: F.matmul(a, b),
                         [t((2, 3, 4)), t((2, 4, 5))])

    def test_matmul_broadcast_batch(self):
        assert gradcheck(lambda a, b: F.matmul(a, b),
                         [t((2, 3, 4)), t((4, 5))])

    def test_matmul_values(self):
        a = np.arange(6, dtype=float).reshape(2, 3)
        b = np.arange(12, dtype=float).reshape(3, 4)
        out = F.matmul(Tensor(a), Tensor(b))
        np.testing.assert_allclose(out.data, a @ b)


class TestReductions:
    def test_sum_all(self):
        assert gradcheck(lambda a: F.sum(a), [t((3, 4))])

    def test_sum_axis(self):
        assert gradcheck(lambda a: F.sum(a, axis=1), [t((3, 4))])

    def test_sum_keepdims(self):
        assert gradcheck(lambda a: F.sum(a, axis=0, keepdims=True),
                         [t((3, 4))])

    def test_mean_all(self):
        assert gradcheck(lambda a: F.mean(a), [t((3, 4))])

    def test_mean_axes_tuple(self):
        assert gradcheck(lambda a: F.mean(a, axis=(0, 2)), [t((2, 3, 4))])

    def test_var_value(self):
        a = t((50,))
        np.testing.assert_allclose(F.var(a).data, a.data.var(), rtol=1e-10)

    def test_max_reduce(self):
        a = t((4, 5))
        assert gradcheck(lambda a: F.max_reduce(a, axis=1), [a])


class TestShapeOps:
    def test_reshape(self):
        assert gradcheck(lambda a: F.reshape(a, (4, 3)), [t((3, 4))])

    def test_transpose_default(self):
        assert gradcheck(lambda a: F.transpose(a), [t((3, 4))])

    def test_transpose_axes(self):
        assert gradcheck(lambda a: F.transpose(a, (2, 0, 1)), [t((2, 3, 4))])

    def test_concat(self):
        assert gradcheck(lambda a, b: F.concat([a, b], axis=1),
                         [t((3, 2)), t((3, 4))])

    def test_getitem(self):
        assert gradcheck(lambda a: a[1:3], [t((5, 4))])

    def test_pad2d(self):
        assert gradcheck(lambda a: F.pad2d(a, 1), [t((1, 2, 3, 3))])


class TestConvPool:
    def test_conv2d_grad(self):
        x = t((2, 2, 6, 6), scale=0.5)
        w = t((3, 2, 3, 3), scale=0.3)
        assert gradcheck(lambda x, w: F.conv2d(x, w), [x, w], atol=1e-4)

    def test_conv2d_with_bias_padding_stride(self):
        x = t((1, 2, 5, 5), scale=0.5)
        w = t((2, 2, 3, 3), scale=0.3)
        b = t((2,))
        assert gradcheck(
            lambda x, w, b: F.conv2d(x, w, b, stride=2, padding=1),
            [x, w, b], atol=1e-4)

    def test_conv2d_matches_direct(self):
        """im2col convolution equals the naive nested-loop convolution."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 2, 5, 5))
        w = rng.standard_normal((3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w)).data
        expected = np.zeros((1, 3, 3, 3))
        for co in range(3):
            for i in range(3):
                for j in range(3):
                    expected[0, co, i, j] = (
                        x[0, :, i:i + 3, j:j + 3] * w[co]).sum()
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_max_pool(self):
        x = t((2, 3, 6, 6))
        assert gradcheck(lambda x: F.max_pool2d(x, 2), [x], atol=1e-4)

    def test_max_pool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_avg_pool(self):
        x = t((2, 2, 4, 4))
        assert gradcheck(lambda x: F.avg_pool2d(x, 2), [x], atol=1e-4)


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self):
        out = F.softmax(t((6, 10)))
        np.testing.assert_allclose(out.data.sum(axis=1), 1.0, rtol=1e-12)

    def test_softmax_grad(self):
        assert gradcheck(lambda a: F.softmax(a), [t((3, 5))])

    def test_log_softmax_grad(self):
        assert gradcheck(lambda a: F.log_softmax(a), [t((3, 5))])

    def test_log_softmax_stability(self):
        out = F.log_softmax(Tensor([[1000.0, 0.0]]))
        assert np.isfinite(out.data).all()

    def test_cross_entropy_matches_manual(self):
        logits = t((4, 3))
        labels = np.array([0, 2, 1, 1])
        loss = F.softmax_cross_entropy(logits, labels)
        probs = F.softmax(Tensor(logits.data)).data
        manual = -np.log(probs[np.arange(4), labels]).mean()
        np.testing.assert_allclose(float(loss.data), manual, rtol=1e-10)

    def test_cross_entropy_grad(self):
        labels = np.array([0, 2, 1])
        assert gradcheck(
            lambda a: F.softmax_cross_entropy(a, labels), [t((3, 4))])
