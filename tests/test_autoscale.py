"""LoadMetrics collector and Autoscaler policy."""

import numpy as np
import pytest

from repro.bayesian import BayesianCim, make_spindrop_mlp
from repro.cim import CimConfig
from repro.serving import Autoscaler, LoadMetrics, MetricsSnapshot, ShardedScheduler

RNG = np.random.default_rng(29)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class FakeScheduler:
    """Replica-count double for policy tests (no engines, no flushes)."""

    max_batch = 16

    def __init__(self, n=1):
        self._n = n

    @property
    def n_replicas(self):
        return self._n

    def add_replica(self, engine):
        self._n += 1
        return self._n

    def remove_replica(self):
        if self._n <= 1:
            raise ValueError("cannot remove the last engine replica")
        self._n -= 1
        return object()


def snap(utilization=0.0, queue_depth=0):
    return MetricsSnapshot(utilization=utilization, queue_depth=queue_depth)


def _engine(seed=9):
    model = make_spindrop_mlp(12, (8,), 3, p=0.3, seed=2)
    return BayesianCim(model, CimConfig(seed=4), seed=seed)


class TestLoadMetrics:
    def test_flush_records_and_percentiles(self):
        clock = FakeClock()
        metrics = LoadMetrics(clock=clock, throughput_window_s=10.0)
        for latency in (0.010, 0.020, 0.030, 0.040):
            clock.advance(0.1)
            metrics.record_flush(rows=8, n_requests=2, latency_s=latency)
        s = metrics.snapshot()
        assert s.flushes == 4
        assert s.requests == 8
        assert s.rows == 32
        assert s.mean_flush_rows == 8.0
        assert s.last_flush_rows == 8
        assert s.p50_latency_s == pytest.approx(0.025)
        assert s.p95_latency_s == pytest.approx(0.0385)
        assert s.rows_per_s == pytest.approx(3.2)

    def test_throughput_window_forgets_old_completions(self):
        clock = FakeClock()
        metrics = LoadMetrics(clock=clock, throughput_window_s=1.0)
        metrics.record_flush(rows=100, n_requests=1, latency_s=0.01)
        clock.advance(5.0)
        assert metrics.snapshot().rows_per_s == 0.0

    def test_utilization_rises_under_load_and_decays_idle(self):
        clock = FakeClock()
        metrics = LoadMetrics(clock=clock, ewma_alpha=0.5,
                              throughput_window_s=1.0)
        # Back-to-back: each 0.1 s flush fills the whole 0.1 s gap.
        for _ in range(6):
            clock.advance(0.1)
            metrics.record_flush(rows=4, n_requests=1, latency_s=0.1)
        busy = metrics.snapshot().utilization
        assert busy > 0.9
        # Long idle gap: utilization reads as drained.
        clock.advance(10.0)
        assert metrics.snapshot().utilization == 0.0

    def test_utilization_low_for_sparse_traffic(self):
        clock = FakeClock()
        metrics = LoadMetrics(clock=clock, ewma_alpha=0.5,
                              throughput_window_s=100.0)
        metrics.record_flush(rows=1, n_requests=1, latency_s=0.001)
        for _ in range(6):
            clock.advance(1.0)           # 1 ms busy per second
            metrics.record_flush(rows=1, n_requests=1, latency_s=0.001)
        assert metrics.snapshot().utilization < 0.05

    def test_first_flush_after_idle_restarts_from_drained(self):
        """Regression: the stored EWMA must reset after an idle gap —
        a lone request after a hot spell is not 'high utilization'."""
        clock = FakeClock()
        metrics = LoadMetrics(clock=clock, ewma_alpha=0.25,
                              throughput_window_s=1.0)
        for _ in range(10):
            clock.advance(0.1)
            metrics.record_flush(rows=4, n_requests=1, latency_s=0.1)
        assert metrics.snapshot().utilization > 0.8
        clock.advance(60.0)                  # long drained period
        metrics.record_flush(rows=1, n_requests=1, latency_s=0.001)
        assert metrics.snapshot().utilization < 0.05

    def test_queue_depth_and_replica_rows(self):
        metrics = LoadMetrics()
        metrics.observe_queue_depth(5)
        metrics.observe_queue_depth(12)
        metrics.observe_queue_depth(3)
        metrics.record_flush(rows=7, n_requests=2, latency_s=0.01,
                             replica_loads=[4, 3])
        metrics.record_flush(rows=6, n_requests=1, latency_s=0.01,
                             replica_loads=[2, 1, 3])
        s = metrics.snapshot()
        assert s.queue_depth == 3
        assert s.max_queue_depth == 12
        assert s.replica_rows == (6, 4, 3)
        assert s.per_replica_queue(3) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadMetrics(window=0)
        with pytest.raises(ValueError):
            LoadMetrics(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            LoadMetrics(throughput_window_s=0.0)


class TestAutoscalerPolicy:
    def _scaler(self, scheduler=None, **kwargs):
        kwargs.setdefault("warm_spares", 0)
        return Autoscaler(scheduler or FakeScheduler(),
                          engine_factory=object, **kwargs)

    def test_scale_up_under_burst_until_max_clamp(self):
        scaler = self._scaler(max_replicas=3, up_patience=1)
        hot = snap(utilization=0.95)
        assert scaler.step(hot) == 1
        assert scaler.step(hot) == 1
        assert scaler.n_replicas == 3
        assert scaler.step(hot) == 0          # clamped at max
        assert scaler.scale_ups == 2

    def test_queue_watermark_triggers_scale_up(self):
        scaler = self._scaler(max_replicas=2, scale_up_queue_rows=10)
        cold_but_backed_up = snap(utilization=0.1, queue_depth=50)
        assert scaler.step(cold_but_backed_up) == 1

    def test_scale_down_after_drain_until_min_clamp(self):
        scaler = self._scaler(FakeScheduler(n=3), max_replicas=3,
                              down_patience=2)
        drained = snap(utilization=0.05, queue_depth=0)
        assert scaler.step(drained) == 0      # patience not yet met
        assert scaler.step(drained) == -1
        assert scaler.step(drained) == 0
        assert scaler.step(drained) == -1
        assert scaler.n_replicas == 1
        for _ in range(3):
            assert scaler.step(drained) == 0  # clamped at min
        assert scaler.scale_downs == 2

    def test_hysteresis_band_holds_replica_count(self):
        scaler = self._scaler(FakeScheduler(n=2), max_replicas=4,
                              scale_up_utilization=0.75,
                              scale_down_utilization=0.30,
                              up_patience=2, down_patience=2)
        mid = snap(utilization=0.5)
        for _ in range(10):
            assert scaler.step(mid) == 0
        # The band also resets streaks: alternating hot/mid never
        # accumulates the patience needed to act.
        hot = snap(utilization=0.9)
        for _ in range(6):
            assert scaler.step(hot) == 0
            assert scaler.step(mid) == 0
        assert scaler.n_replicas == 2

    def test_busy_queue_blocks_scale_down(self):
        scaler = self._scaler(FakeScheduler(n=2), max_replicas=4,
                              down_patience=1)
        # Low utilization but rows still queued: not cold.
        assert scaler.step(snap(utilization=0.1, queue_depth=8)) == 0
        assert scaler.n_replicas == 2

    def test_cooldown_spaces_actions(self):
        clock = FakeClock()
        scaler = self._scaler(max_replicas=4, cooldown_s=10.0,
                              clock=clock)
        hot = snap(utilization=0.95)
        assert scaler.step(hot) == 1
        assert scaler.step(hot) == 0          # cooling down
        clock.advance(11.0)
        assert scaler.step(hot) == 1

    def test_live_queue_rows_override(self):
        scaler = self._scaler(max_replicas=2, scale_up_queue_rows=4)
        stale = snap(utilization=0.0, queue_depth=0)
        assert scaler.step(stale, queue_rows=40) == 1

    def test_out_of_clamp_counts_corrected_first(self):
        grow = self._scaler(FakeScheduler(n=1), min_replicas=2,
                            max_replicas=4)
        assert grow.step(snap()) == 1
        shrink = self._scaler(FakeScheduler(n=5), max_replicas=3)
        assert shrink.step(snap(utilization=0.99)) == -1

    def test_validation(self):
        with pytest.raises(ValueError):
            self._scaler(min_replicas=0)
        with pytest.raises(ValueError):
            self._scaler(min_replicas=3, max_replicas=2)
        with pytest.raises(ValueError):
            self._scaler(scale_up_utilization=0.3,
                         scale_down_utilization=0.3)
        with pytest.raises(ValueError):
            self._scaler(up_patience=0)
        with pytest.raises(ValueError):
            self._scaler(cooldown_s=-1.0)


class TestWarmSpares:
    def test_scale_up_consumes_prebuilt_spare(self):
        calls = []

        def factory():
            calls.append(1)
            return object()

        scaler = Autoscaler(FakeScheduler(), factory, max_replicas=3,
                            warm_spares=1)
        assert len(calls) == 1                # prebuilt at construction
        assert scaler.spare_count == 1
        assert scaler.step(snap(utilization=0.95)) == 1
        assert len(calls) == 1                # spare used, not the factory
        assert scaler.spare_count == 0
        assert scaler.step(snap(utilization=0.95)) == 1
        assert len(calls) == 2                # pool empty: built inline

    def test_scale_down_refills_the_spare_pool(self):
        scaler = Autoscaler(FakeScheduler(n=2), object, max_replicas=3,
                            warm_spares=1, down_patience=1)
        scaler._spares.clear()
        assert scaler.step(snap(utilization=0.01)) == -1
        assert scaler.spare_count == 1        # removed engine kept warm

    def test_replenish_builds_up_to_target(self):
        calls = []
        scaler = Autoscaler(FakeScheduler(), lambda: calls.append(1),
                            warm_spares=2)
        assert len(calls) == 2
        scaler._spares.clear()
        assert scaler.replenish_spares() == 2
        assert len(calls) == 4


class TestSchedulerIntegration:
    def test_pool_growth_retires_old_executor_until_close(self):
        """Regression: growing the replica set must not shut down a
        pool an in-flight flush may have snapshotted; retired pools
        close with the scheduler."""
        sharded = ShardedScheduler([_engine(seed=5), _engine(seed=6)])
        old_pool = sharded._pool
        sharded.add_replica(_engine(seed=7))
        assert sharded._pool is not old_pool
        assert sharded._retired_pools == [old_pool]
        # The retired pool still accepts work (no mid-run shutdown).
        assert old_pool.submit(lambda: 42).result() == 42
        sharded.close()
        assert sharded._retired_pools == []
        with pytest.raises(RuntimeError):
            old_pool.submit(lambda: 0)       # now genuinely shut down

    def test_add_remove_replica_round_trip(self):
        sharded = ShardedScheduler([_engine(seed=5)], n_samples=2,
                                   parallel=False)
        extra = _engine(seed=6)
        assert sharded.add_replica(extra) == 2
        assert sharded.n_replicas == 2
        # Two replicas now genuinely split a flush.
        for n in (2, 3):
            sharded.submit(RNG.standard_normal((n, 12)))
        sharded.flush()
        assert sharded.stats.shard_calls == 2
        assert sharded.remove_replica() is extra
        assert sharded.n_replicas == 1
        with pytest.raises(ValueError):
            sharded.remove_replica()

    def test_autoscaler_drives_real_scheduler(self):
        sharded = ShardedScheduler([_engine(seed=5)], n_samples=2,
                                   parallel=False)
        scaler = Autoscaler(sharded, lambda: _engine(seed=7),
                            max_replicas=2, warm_spares=1)
        assert scaler.step(snap(utilization=0.9)) == 1
        assert sharded.n_replicas == 2
        tickets = [sharded.submit(RNG.standard_normal((2, 12)))
                   for _ in range(4)]
        sharded.flush()
        for ticket in tickets:
            assert ticket.result().probs.shape == (2, 3)
        drained = snap(utilization=0.0, queue_depth=0)
        deltas = [scaler.step(drained) for _ in range(3)]
        assert -1 in deltas
        assert sharded.n_replicas == 1


class TestPerModelMetrics:
    def test_flushes_file_under_their_model_window(self):
        clock = FakeClock()
        metrics = LoadMetrics(clock=clock, throughput_window_s=10.0)
        for latency in (0.010, 0.020):
            clock.advance(0.1)
            metrics.record_flush(rows=4, n_requests=1, latency_s=latency,
                                 model_id="mlp")
        clock.advance(0.1)
        metrics.record_flush(rows=8, n_requests=2, latency_s=0.200,
                             model_id="segmenter")
        s = metrics.snapshot()
        assert set(s.per_model) == {"mlp", "segmenter"}
        mlp, seg = s.per_model["mlp"], s.per_model["segmenter"]
        assert mlp.flushes == 2 and mlp.requests == 2 and mlp.rows == 8
        assert seg.flushes == 1 and seg.rows == 8
        # The slow segmenter no longer hides inside one pooled p95.
        assert mlp.p95_latency_s == pytest.approx(0.0195)
        assert seg.p95_latency_s == pytest.approx(0.200)
        # The top-level window still pools everything.
        assert s.p95_latency_s > mlp.p95_latency_s

    def test_anonymous_flushes_stay_out_of_per_model(self):
        metrics = LoadMetrics()
        metrics.record_flush(rows=2, n_requests=1, latency_s=0.01)
        assert metrics.snapshot().per_model == {}

    def test_p95_accessor_matches_snapshot(self):
        metrics = LoadMetrics()
        for latency in (0.01, 0.02, 0.03):
            metrics.record_flush(rows=1, n_requests=1, latency_s=latency)
        assert metrics.p95_latency_s() == pytest.approx(
            metrics.snapshot().p95_latency_s)


class TestSloModeScaling:
    def _scaler(self, scheduler=None, **kwargs):
        kwargs.setdefault("warm_spares", 0)
        return Autoscaler(scheduler or FakeScheduler(),
                          engine_factory=object, **kwargs)

    def _snap(self, p95, queue_depth=0):
        return MetricsSnapshot(p95_latency_s=p95, queue_depth=queue_depth)

    def test_p95_over_target_scales_up(self):
        scaler = self._scaler(max_replicas=3, target_p95_s=0.050)
        assert scaler.step(self._snap(p95=0.120)) == 1

    def test_p95_under_half_target_scales_down(self):
        scaler = self._scaler(FakeScheduler(n=3), max_replicas=3,
                              target_p95_s=0.050, down_patience=1)
        assert scaler.step(self._snap(p95=0.010)) == -1

    def test_band_between_holds(self):
        scaler = self._scaler(FakeScheduler(n=2), max_replicas=4,
                              target_p95_s=0.050, up_patience=1,
                              down_patience=1)
        for _ in range(5):
            assert scaler.step(self._snap(p95=0.040)) == 0
        assert scaler.n_replicas == 2

    def test_empty_latency_window_is_not_cold(self):
        scaler = self._scaler(FakeScheduler(n=2), max_replicas=4,
                              target_p95_s=0.050, down_patience=1)
        assert scaler.step(self._snap(p95=0.0)) == 0

    def test_per_step_target_overrides_utilization_mode(self):
        scaler = self._scaler(max_replicas=3)
        breached = MetricsSnapshot(p95_latency_s=0.2, utilization=0.1)
        assert scaler.step(breached) == 0                 # EWMA mode: cold-ish
        assert scaler.step(breached, target_p95_s=0.05) == 1

    def test_queue_watermark_still_applies_in_slo_mode(self):
        scaler = self._scaler(max_replicas=2, target_p95_s=1.0,
                              scale_up_queue_rows=10)
        assert scaler.step(self._snap(p95=0.001, queue_depth=50)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            self._scaler(target_p95_s=0.0)
        with pytest.raises(ValueError):
            self._scaler(scale_down_p95_fraction=1.0)
        scaler = self._scaler()
        with pytest.raises(ValueError):
            scaler.step(snap(), target_p95_s=-1.0)


class TestPromotion:
    def test_promote_spare_bypasses_patience_cooldown_and_clamp(self):
        clock = FakeClock()
        scheduler = FakeScheduler(n=2)
        scaler = Autoscaler(scheduler, object, max_replicas=2,
                            warm_spares=1, cooldown_s=100.0, clock=clock)
        engine = scaler.promote_spare()
        assert engine is not None
        assert scheduler.n_replicas == 3      # past max_replicas: the
        assert scaler.promotions == 1         # quarantined one still sits
        assert scaler.spare_count == 0        # in the list, unscheduled
        # Promotion is not a scaling action: no cooldown was started,
        # so the next genuine policy action fires immediately (here
        # the out-of-clamp correction back under max_replicas).
        assert scaler._last_action is None
        assert scaler.step(snap(utilization=0.0)) == -1
        assert scheduler.n_replicas == 2
        assert scaler.scale_ups == 0

    def test_promote_builds_when_pool_is_empty(self):
        calls = []

        def factory():
            calls.append(1)
            return object()

        scaler = Autoscaler(FakeScheduler(), factory, warm_spares=0)
        assert calls == []
        scaler.promote_spare()
        assert len(calls) == 1

    def test_replenish_after_quarantined_replica_removed_mid_cooldown(self):
        """A quarantined replica evicted while the policy is cooling
        down must still be replaceable: replenish_spares rebuilds the
        pool regardless of cooldown, and the next promotion uses it."""
        clock = FakeClock()
        sharded = ShardedScheduler(
            [_engine(seed=5), _engine(seed=6)], parallel=False)
        built = []

        def factory():
            built.append(1)
            return _engine(seed=7 + len(built))

        scaler = Autoscaler(sharded, factory, max_replicas=3,
                            warm_spares=1, cooldown_s=1000.0, clock=clock)
        assert len(built) == 1                # pool primed at construction
        # A scaling action starts the long cooldown window.
        assert scaler.step(snap(utilization=0.95)) == 1
        assert sharded.n_replicas == 3

        # Mid-cooldown, the control plane evicts a quarantined replica.
        bad = sharded.engines[1]
        sharded.remove_replica(bad)
        assert sharded.n_replicas == 2

        # Cooldown blocks the *policy*...
        assert scaler.step(snap(utilization=0.95)) == 0
        # ...but not spare replenishment or capacity replacement.
        assert scaler.replenish_spares() == 1
        assert scaler.spare_count == 1
        scaler.promote_spare()
        assert sharded.n_replicas == 3
        assert scaler.spare_count == 0
        # The restored fleet actually serves.
        tickets = [sharded.submit(RNG.standard_normal((2, 12)))
                   for _ in range(3)]
        sharded.flush()
        for ticket in tickets:
            assert ticket.result().probs.shape == (2, 3)
