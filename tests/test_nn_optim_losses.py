"""Optimizers, schedulers and loss functions."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter
from repro.tensor import Tensor


def _quadratic_min(optimizer_cls, steps=250, **kwargs):
    """Minimize ||x - t||² and return the final distance to t."""
    target = np.array([1.0, -2.0, 3.0])
    x = Parameter(np.zeros(3))
    opt = optimizer_cls([x], **kwargs)
    for _ in range(steps):
        diff = x - Tensor(target)
        loss = (diff * diff).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
    return float(np.abs(x.data - target).max())


class TestSGD:
    def test_converges(self):
        assert _quadratic_min(nn.SGD, lr=0.1) < 1e-6

    def test_momentum_converges(self):
        assert _quadratic_min(nn.SGD, lr=0.05, momentum=0.9) < 1e-4

    def test_weight_decay_shrinks(self):
        x = Parameter(np.array([10.0]))
        opt = nn.SGD([x], lr=0.1, weight_decay=1.0)
        x.grad = np.array([0.0])
        opt.step()
        assert x.data[0] < 10.0

    def test_skips_params_without_grad(self):
        x = Parameter(np.array([1.0]))
        opt = nn.SGD([x], lr=0.1)
        opt.step()  # no grad -> no change, no crash
        assert x.data[0] == 1.0

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)


class TestAdam:
    def test_converges(self):
        assert _quadratic_min(nn.Adam, lr=0.05) < 1e-4

    def test_bias_correction_first_step(self):
        """First Adam step must be ≈ lr in magnitude, not lr·(1−β1)."""
        x = Parameter(np.array([0.0]))
        opt = nn.Adam([x], lr=0.1)
        x.grad = np.array([1.0])
        opt.step()
        np.testing.assert_allclose(abs(x.data[0]), 0.1, rtol=1e-5)


class TestSchedulers:
    def test_step_lr(self):
        x = Parameter(np.zeros(1))
        opt = nn.SGD([x], lr=1.0)
        sched = nn.StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        np.testing.assert_allclose(opt.lr, 0.1)

    def test_cosine_lr_endpoints(self):
        x = Parameter(np.zeros(1))
        opt = nn.SGD([x], lr=1.0)
        sched = nn.CosineLR(opt, t_max=10, min_lr=0.0)
        for _ in range(10):
            sched.step()
        np.testing.assert_allclose(opt.lr, 0.0, atol=1e-12)

    def test_cosine_monotone_decreasing(self):
        x = Parameter(np.zeros(1))
        opt = nn.SGD([x], lr=1.0)
        sched = nn.CosineLR(opt, t_max=5)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        assert all(a > b for a, b in zip(lrs, lrs[1:]))


class TestLosses:
    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 10)), requires_grad=True)
        loss = nn.cross_entropy(logits, np.zeros(4, dtype=int))
        np.testing.assert_allclose(float(loss.data), np.log(10), rtol=1e-10)

    def test_mse_value(self):
        loss = nn.mse(Tensor([[1.0], [3.0]]), np.array([[0.0], [0.0]]))
        np.testing.assert_allclose(float(loss.data), 5.0)

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert nn.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_scale_regularizer_zero_at_center(self):
        s = Parameter(np.ones(8))
        loss = nn.scale_regularizer([s], strength=1.0)
        np.testing.assert_allclose(float(loss.data), 0.0)

    def test_scale_regularizer_penalizes_negative(self):
        pos = nn.scale_regularizer([Parameter(np.full(4, 2.0))],
                                   strength=1.0)
        neg = nn.scale_regularizer([Parameter(np.full(4, -2.0))],
                                   strength=1.0)
        assert float(neg.data) > float(pos.data)

    def test_scale_regularizer_empty(self):
        assert float(nn.scale_regularizer([]).data) == 0.0

    def test_gaussian_kl_zero_at_prior(self):
        mu = Parameter(np.full(6, 1.0))
        log_sigma = Parameter(np.full(6, np.log(0.1)))
        kl = nn.gaussian_kl(mu, log_sigma, prior_mu=1.0, prior_sigma=0.1)
        np.testing.assert_allclose(float(kl.data), 0.0, atol=1e-10)

    def test_gaussian_kl_positive_off_prior(self):
        mu = Parameter(np.full(6, 2.0))
        log_sigma = Parameter(np.full(6, np.log(0.1)))
        kl = nn.gaussian_kl(mu, log_sigma, prior_mu=1.0, prior_sigma=0.1)
        assert float(kl.data) > 0.0

    def test_gaussian_kl_grad_direction(self):
        """Gradient pulls mu toward the prior mean."""
        mu = Parameter(np.full(3, 2.0))
        log_sigma = Parameter(np.full(3, -2.0))
        nn.gaussian_kl(mu, log_sigma).backward()
        assert np.all(mu.grad > 0)  # decreasing mu decreases KL

    def test_nll_from_probs(self):
        probs = np.array([[0.9, 0.1], [0.2, 0.8]])
        val = nn.losses.nll_from_probs(probs, np.array([0, 1]))
        expected = -(np.log(0.9) + np.log(0.8)) / 2
        np.testing.assert_allclose(val, expected)
