"""Retention aging, calibration comparison, deployment folding."""

import numpy as np
import pytest
from repro.bayesian import make_scaledrop_mlp
from repro.cim import (
    CimConfig,
    DigitalScale,
    FrozenNorm,
    OpLedger,
    compile_to_cim,
    fold_norm_into_scale,
)
from repro.cim.optimize import FoldedAffine
from repro.devices import DefectModel
from repro.experiments.ablations import calibration_comparison, retention_aging
from repro.experiments.common import TrainConfig, digits_dataset, train_classifier


class TestRetentionModel:
    def test_flip_probability_bounds(self):
        model = DefectModel()
        assert model.retention_flip_probability(0.0) == 0.0
        p = model.retention_flip_probability(1e9, delta=40.0)
        assert 0.0 < p < 1.0

    def test_flip_probability_monotone_in_time(self):
        model = DefectModel()
        p1 = model.retention_flip_probability(1e6, delta=40.0)
        p2 = model.retention_flip_probability(1e8, delta=40.0)
        assert p2 > p1

    def test_higher_delta_retains_longer(self):
        model = DefectModel()
        weak = model.retention_flip_probability(1e8, delta=35.0)
        strong = model.retention_flip_probability(1e8, delta=45.0)
        assert weak > strong

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            DefectModel().retention_flip_probability(-1.0)

    def test_aging_flips_weak_devices_first(self):
        rng = np.random.default_rng(0)
        model = DefectModel(rng=rng)
        weights = np.ones((64, 64))
        deltas = np.full((64, 64), 60.0)
        deltas[:8] = 35.0       # weak rows
        aged = model.age_binary_weights(weights, 3.15e7, deltas=deltas)
        weak_flips = (aged[:8] == -1.0).mean()
        strong_flips = (aged[8:] == -1.0).mean()
        assert weak_flips > 0.5
        assert strong_flips < 0.01

    def test_aging_preserves_binary(self):
        model = DefectModel(rng=np.random.default_rng(1))
        w = np.sign(np.random.default_rng(2).standard_normal((10, 10)))
        w[w == 0] = 1.0
        aged = model.age_binary_weights(w, 1e8)
        assert set(np.unique(aged)) <= {-1.0, 1.0}

    def test_experiment_accuracy_decays(self):
        results = retention_aging(fast=True, seed=0,
                                  ages_years=(0.0, 10.0))
        assert results[0]["flipped_fraction"] == 0.0
        assert results[1]["flipped_fraction"] > 0.0
        assert results[1]["accuracy"] <= results[0]["accuracy"] + 0.05


class TestCalibrationComparison:
    def test_structure_and_bayesian_improvement(self):
        results = calibration_comparison(fast=True, seed=0)
        assert set(results) == {"deterministic", "spindrop", "scaledrop",
                                "subset_vi"}
        for metrics in results.values():
            assert 0.0 <= metrics["ece"] <= 1.0
            assert metrics["nll"] >= 0.0
        # At least one Bayesian method must calibrate better than the
        # deterministic baseline (the uncertainty-quality claim).
        det_ece = results["deterministic"]["ece"]
        assert min(results["spindrop"]["ece"],
                   results["subset_vi"]["ece"]) < det_ece


class TestFolding:
    def _scaledrop_net(self, seed=0):
        data = digits_dataset(n_samples=500, seed=71)
        model = train_classifier(
            make_scaledrop_mlp(data.n_features, (24,), data.n_classes,
                               seed=71),
            data, TrainConfig(epochs=2, mc_samples=2))
        return compile_to_cim(model, CimConfig(adc_bits=10, seed=seed)), data

    def test_fold_preserves_output_exactly(self):
        net, data = self._scaledrop_net()
        x = data.x_test[:10]
        before = net.forward(x)
        n_folds = fold_norm_into_scale(net)
        after = net.forward(x)
        assert n_folds == 1
        np.testing.assert_allclose(before, after, atol=1e-12)

    def test_fold_reduces_digital_macs(self):
        net, data = self._scaledrop_net()
        x = data.x_test[:10]
        net.ledger.reset()
        net.forward(x)
        macs_before = net.ledger["digital_mac"]
        fold_norm_into_scale(net)
        net.ledger.reset()
        net.forward(x)
        assert net.ledger["digital_mac"] < macs_before

    def test_fold_replaces_stage_types(self):
        net, _ = self._scaledrop_net()
        fold_norm_into_scale(net)
        kinds = [type(s).__name__ for s in net.stages]
        assert "FoldedAffine" in kinds

    def test_stochastic_pairs_not_folded(self):
        """A DigitalScale with a live multiplier must stay unfolded."""
        net, _ = self._scaledrop_net()
        for stage in net.stages:
            if isinstance(stage, DigitalScale):
                stage.multiplier = 0.5   # simulating a live binding
        assert fold_norm_into_scale(net) == 0

    def test_inverted_norm_not_folded(self):
        ledger = OpLedger()
        scale = DigitalScale(np.ones(4), spatial=False, ledger=ledger)
        norm = FrozenNorm(np.zeros(4), np.ones(4), np.ones(4),
                          np.zeros(4), 1e-5, spatial=False,
                          inverted=True, ledger=ledger)
        from repro.cim.layers import CimNetwork

        net = CimNetwork([scale, norm], ledger, CimConfig(seed=0))
        assert fold_norm_into_scale(net) == 0

    def test_folded_affine_math(self):
        ledger = OpLedger()
        affine = FoldedAffine(np.array([2.0, 3.0]), np.array([1.0, -1.0]),
                              spatial=False, ledger=ledger)
        out = affine.forward(np.ones((1, 2)))
        np.testing.assert_allclose(out, [[3.0, 2.0]])
