"""Uncertainty metrics, calibration and OOD scoring."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.uncertainty import (
    aupr,
    auroc,
    brier_score,
    detect,
    expected_calibration_error,
    max_probability,
    mutual_information,
    nll,
    predictive_entropy,
    reliability_bins,
)


def _dirichlet(shape, alpha=1.0, seed=0):
    rng = np.random.default_rng(seed)
    return rng.dirichlet(np.full(shape[-1], alpha), size=shape[:-1])


class TestEntropyFamily:
    def test_uniform_maximizes_entropy(self):
        uniform = np.full((1, 5), 0.2)
        peaked = np.array([[0.96, 0.01, 0.01, 0.01, 0.01]])
        assert predictive_entropy(uniform)[0] > predictive_entropy(peaked)[0]

    def test_entropy_of_onehot_zero(self):
        onehot = np.array([[1.0, 0.0, 0.0]])
        np.testing.assert_allclose(predictive_entropy(onehot), 0.0,
                                   atol=1e-9)

    def test_mutual_information_zero_when_samples_agree(self):
        probs = _dirichlet((4, 3), seed=1)
        samples = np.repeat(probs[None], 7, axis=0)
        np.testing.assert_allclose(mutual_information(samples), 0.0,
                                   atol=1e-12)

    def test_mutual_information_positive_when_disagreeing(self):
        a = np.array([[[0.9, 0.1]], [[0.1, 0.9]]])  # (T=2, N=1, C=2)
        assert mutual_information(a)[0] > 0.1

    @given(st.integers(min_value=2, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_entropy_bounded_by_log_classes(self, n_classes):
        probs = _dirichlet((16, n_classes), seed=3)
        h = predictive_entropy(probs)
        assert (h <= np.log(n_classes) + 1e-9).all()
        assert (h >= 0).all()

    def test_max_probability(self):
        probs = np.array([[0.5, 0.3, 0.2]])
        assert max_probability(probs)[0] == 0.5


class TestScoringRules:
    def test_nll_perfect_prediction(self):
        probs = np.array([[1.0, 0.0], [0.0, 1.0]])
        np.testing.assert_allclose(nll(probs, np.array([0, 1])), 0.0,
                                   atol=1e-9)

    def test_nll_penalizes_wrong_confidence(self):
        good = np.array([[0.9, 0.1]])
        bad = np.array([[0.1, 0.9]])
        y = np.array([0])
        assert nll(bad, y) > nll(good, y)

    def test_brier_perfect_zero(self):
        probs = np.array([[1.0, 0.0]])
        assert brier_score(probs, np.array([0])) == pytest.approx(0.0)

    def test_brier_worst_case(self):
        probs = np.array([[0.0, 1.0]])
        assert brier_score(probs, np.array([0])) == pytest.approx(2.0)


class TestCalibration:
    def test_perfectly_calibrated_low_ece(self):
        rng = np.random.default_rng(0)
        n = 20000
        conf = rng.uniform(0.5, 1.0, n)
        correct = rng.random(n) < conf
        probs = np.stack([conf, 1 - conf], axis=1)
        labels = np.where(correct, 0, 1)
        assert expected_calibration_error(probs, labels) < 0.02

    def test_overconfident_high_ece(self):
        n = 1000
        probs = np.tile([0.99, 0.01], (n, 1))
        labels = np.array([0] * (n // 2) + [1] * (n // 2))
        assert expected_calibration_error(probs, labels) > 0.4

    def test_reliability_bins_structure(self):
        probs = _dirichlet((50, 3), seed=2)
        labels = np.random.default_rng(3).integers(0, 3, 50)
        bins = reliability_bins(probs, labels, n_bins=10)
        assert len(bins) == 10
        total = sum(count for _, _, count in bins)
        assert total == 50


class TestOodScoring:
    def test_auroc_separable(self):
        id_scores = np.zeros(100)
        ood_scores = np.ones(100)
        assert auroc(id_scores, ood_scores) == pytest.approx(1.0)

    def test_auroc_chance(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal(2000)
        b = rng.standard_normal(2000)
        assert abs(auroc(a, b) - 0.5) < 0.05

    def test_auroc_ties_half(self):
        same = np.ones(50)
        assert auroc(same, same) == pytest.approx(0.5)

    def test_aupr_separable(self):
        assert aupr(np.zeros(50), np.ones(50)) == pytest.approx(1.0)

    def test_detect_threshold_semantics(self):
        rng = np.random.default_rng(1)
        id_scores = rng.normal(0.0, 1.0, 5000)
        ood_scores = rng.normal(4.0, 1.0, 5000)
        result = detect(id_scores, ood_scores, id_keep_rate=0.95)
        # Threshold keeps ~95 % of ID.
        assert abs((id_scores <= result.threshold).mean() - 0.95) < 0.01
        assert result.detection_rate > 0.95
        assert result.auroc > 0.99

    def test_detect_requires_scores(self):
        with pytest.raises(ValueError):
            auroc(np.array([]), np.array([1.0]))

    @given(st.floats(min_value=0.5, max_value=0.99))
    @settings(max_examples=15, deadline=None)
    def test_detection_rate_monotone_in_keep_rate(self, keep):
        rng = np.random.default_rng(2)
        id_scores = rng.normal(0, 1, 1000)
        ood_scores = rng.normal(2, 1, 1000)
        loose = detect(id_scores, ood_scores, id_keep_rate=keep)
        strict = detect(id_scores, ood_scores, id_keep_rate=0.995)
        assert loose.detection_rate >= strict.detection_rate - 1e-9
