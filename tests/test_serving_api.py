"""serve() / ServingConfig / Frontend: the unified serving surface.

One factory builds every front-end — ``backend="sync" | "threads" |
"procs" | "async"`` — behind one :class:`Frontend` protocol with one
normalized ``submit(x, *, model=, n_samples=, feature_shape=,
deadline_s=)`` signature, and all four serve bit-identical results
for the same model source.  Legacy ``serve()`` kwargs are absorbed
with a DeprecationWarning; the typed error taxonomy lives in
``repro.serving.errors``; and admission accounting must reconcile on
every cancellation path (the async cancel-after-flush leak this PR
fixes, plus the sync timeout-withdraw).
"""

import asyncio
import threading
import warnings

import numpy as np
import pytest

from repro.bayesian import BayesianCim, make_spindrop_mlp
from repro.cim import CimConfig
from repro.cim.snapshot import DeploymentSnapshot
from repro.serving import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionRejected,
    AsyncBatchScheduler,
    BatchScheduler,
    Frontend,
    ModelRegistry,
    Overload,
    QueueFull,
    ResultTimeout,
    ServingConfig,
    serve,
)
from repro.serving import errors as serving_errors

RNG = np.random.default_rng(29)
X = RNG.standard_normal((4, 12))


def _factory():
    model = make_spindrop_mlp(12, (8,), 3, p=0.3, seed=2)
    return BayesianCim(model, CimConfig(seed=4), seed=9)


@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("serve") / "snap")
    DeploymentSnapshot.capture(_factory()).save(path)
    return path


# ----------------------------------------------------------------------
# One factory, four backends, one answer
# ----------------------------------------------------------------------
class TestServeBackends:
    def test_sync_threads_async_bit_identical(self, snapshot_path):
        config = ServingConfig(n_samples=4, replicas=2)
        with serve(snapshot_path, backend="sync", config=config) as f:
            assert f.backend == "sync"
            reference = f.predict(X).samples
        with serve(snapshot_path, backend="threads", config=config) as f:
            assert f.backend == "threads"
            np.testing.assert_array_equal(f.predict(X).samples, reference)

        async def run_async():
            async with serve(snapshot_path, backend="async",
                             config=config) as f:
                assert f.backend == "async"
                return (await f.predict(X)).samples
        np.testing.assert_array_equal(asyncio.run(run_async()), reference)

    @pytest.mark.procpool
    def test_procs_matches_sync(self, snapshot_path):
        config = ServingConfig(n_samples=4, replicas=2)
        with serve(snapshot_path, backend="sync", config=config) as f:
            reference = f.predict(X).samples
        with serve(snapshot_path, backend="procs", config=config) as f:
            assert f.backend == "procs"
            np.testing.assert_array_equal(f.predict(X).samples, reference)
            assert f.pool.alive_workers == 2

    def test_every_source_kind_serves_the_same_model(self, snapshot_path):
        with serve(snapshot_path, backend="sync",
                   config=ServingConfig(n_samples=3)) as f:
            reference = f.predict(X).samples
        sources = {
            "snapshot-object": DeploymentSnapshot.load(snapshot_path),
            "factory": _factory,
            "engine": _factory(),
        }
        for label, source in sources.items():
            with serve(source, backend="sync",
                       config=ServingConfig(n_samples=3)) as f:
                np.testing.assert_array_equal(
                    f.predict(X).samples, reference,
                    err_msg=f"source kind {label}")

    def test_registry_backed_serving(self, snapshot_path):
        registry = ModelRegistry()
        registry.register("mlp", snapshot=snapshot_path)
        config = ServingConfig(n_samples=3, registry=registry,
                               default_model="mlp")
        with serve(None, backend="sync", config=config) as f:
            by_default = f.predict(X).samples
            by_name = f.predict(X, model="mlp").samples
        assert by_default.shape == (3, 4, 3)
        assert by_name.shape == (3, 4, 3)

    def test_sync_frontends_satisfy_the_protocol(self, snapshot_path):
        with serve(snapshot_path, backend="sync") as f:
            assert isinstance(f, Frontend)
            assert f.metrics() is f.scheduler.metrics

    def test_source_and_backend_validation(self, snapshot_path):
        with pytest.raises(ValueError, match="registry"):
            serve(None, backend="sync")
        with pytest.raises(ValueError, match="unknown backend"):
            serve(snapshot_path, backend="fibers")
        with pytest.raises(TypeError, match="cannot serve"):
            serve(object())
        registry = ModelRegistry()
        registry.register("mlp", snapshot=snapshot_path)
        with pytest.raises(ValueError, match="replicates one model"):
            serve(None, backend="threads",
                  config=ServingConfig(registry=registry,
                                       default_model="mlp"))


# ----------------------------------------------------------------------
# Legacy kwargs: absorbed, warned about, never mutating the caller's
# config
# ----------------------------------------------------------------------
class TestLegacyKwargs:
    def test_legacy_kwargs_warn_and_apply(self, snapshot_path):
        with pytest.warns(DeprecationWarning,
                          match="ServingConfig.flush_interval"):
            f = serve(snapshot_path, backend="sync", flush_interval=0.5)
        try:
            assert f.scheduler.flush_interval == 0.5
        finally:
            f.close()

    def test_legacy_registry_kwarg(self, snapshot_path):
        registry = ModelRegistry()
        registry.register("mlp", snapshot=snapshot_path)
        with pytest.warns(DeprecationWarning, match="ServingConfig.registry"):
            f = serve(None, backend="sync", registry=registry,
                      config=ServingConfig(n_samples=2,
                                           default_model="mlp"))
        try:
            assert f.predict(X).samples.shape == (2, 4, 3)
        finally:
            f.close()

    def test_unknown_kwarg_raises(self, snapshot_path):
        with pytest.raises(TypeError, match="unexpected keyword"):
            serve(snapshot_path, backend="sync", turbo=True)

    def test_caller_config_is_not_mutated(self, snapshot_path):
        config = ServingConfig(n_samples=2)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            f = serve(snapshot_path, backend="sync", config=config,
                      flush_interval=0.5)
        f.close()
        assert config.flush_interval is None


# ----------------------------------------------------------------------
# Normalized submit: per-request overrides and deadlines
# ----------------------------------------------------------------------
class TestNormalizedSubmit:
    def test_per_request_overrides(self, snapshot_path):
        with serve(snapshot_path, backend="sync",
                   config=ServingConfig(n_samples=2)) as f:
            ticket = f.submit(X, n_samples=5, feature_shape=(12,))
            f.flush()
            assert ticket.result().samples.shape == (5, 4, 3)

    def test_deadline_withdraws_with_result_timeout(self, snapshot_path):
        with serve(snapshot_path, backend="sync") as f:
            ticket = f.submit(X, deadline_s=0.05)
            with pytest.raises(ResultTimeout):
                ticket.result()


# ----------------------------------------------------------------------
# The error taxonomy lives in repro.serving.errors
# ----------------------------------------------------------------------
class TestErrorsModule:
    def test_admission_hierarchy(self):
        assert issubclass(QueueFull, AdmissionRejected)
        assert issubclass(Overload, AdmissionRejected)
        assert issubclass(AdmissionRejected, RuntimeError)

    def test_package_reexports_are_the_same_objects(self):
        from repro import serving
        for name in ("AdmissionRejected", "Overload", "QueueFull",
                     "RemoteEngineError", "ResultTimeout", "WorkerDied"):
            assert getattr(serving, name) is getattr(serving_errors, name)

    def test_scheduler_backcompat_alias(self):
        from repro.serving import scheduler
        assert scheduler.ResultTimeout is serving_errors.ResultTimeout


# ----------------------------------------------------------------------
# Admission accounting reconciles on every cancellation path
# ----------------------------------------------------------------------
class _GateEngine:
    """Engine that blocks inside the flush until released — pins a
    request in the in-flight state so the test can cancel it there."""

    def __init__(self):
        self.inner = _factory()
        self.release = threading.Event()

    def mc_forward_batched(self, x, n_samples=20, chunk_passes=None):
        assert self.release.wait(timeout=10)
        return self.inner.mc_forward_batched(
            x, n_samples=n_samples, chunk_passes=chunk_passes)


class TestAdmissionReconciliation:
    def _admission(self):
        return AdmissionController(AdmissionPolicy(max_queue_rows=64))

    def test_async_cancel_after_flush_started_releases_rows(self):
        """The regression this PR fixes: a ticket cancelled *after*
        its batch was detached into a running flush left its rows
        booked in the admission counters forever."""
        gate = _GateEngine()
        admission = self._admission()

        async def run():
            scheduler = BatchScheduler(gate, n_samples=2,
                                       admission=admission)
            async with AsyncBatchScheduler(scheduler) as front:
                ticket = await front.submit(X)
                flush_task = asyncio.ensure_future(front.flush())
                # Let the flush task detach the batch and enter the
                # (gated) engine call before cancelling.
                for _ in range(50):
                    await asyncio.sleep(0.01)
                    if front.in_flight_rows == X.shape[0]:
                        break
                assert ticket.cancel()
                gate.release.set()
                await flush_task
        asyncio.run(run())
        assert admission.admitted_rows == X.shape[0]
        assert admission.cancelled_rows == X.shape[0]
        assert admission.served_rows == 0

    def test_async_cancel_while_queued_releases_rows(self):
        admission = self._admission()

        async def run():
            scheduler = BatchScheduler(_factory(), n_samples=2,
                                       admission=admission)
            async with AsyncBatchScheduler(scheduler) as front:
                ticket = await front.submit(X)
                assert ticket.cancel()
                await asyncio.sleep(0)     # let the done-callback run
                assert front.pending_rows == 0
        asyncio.run(run())
        assert admission.cancelled_rows == X.shape[0]
        assert admission.served_rows == 0

    def test_sync_timeout_withdraw_releases_rows(self):
        admission = self._admission()
        scheduler = BatchScheduler(_factory(), n_samples=2,
                                   admission=admission)
        ticket = scheduler.submit(X, deadline_s=0.05)
        with pytest.raises(ResultTimeout):
            ticket.result()
        assert admission.admitted_rows == X.shape[0]
        assert admission.cancelled_rows == X.shape[0]
        assert admission.served_rows == 0
        scheduler.close()
