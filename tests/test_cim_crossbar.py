"""Crossbar arrays: XNOR MAC exactness, gating, non-idealities."""

import numpy as np
import pytest

from repro.cim import AnalogCrossbar, OpLedger, XnorCrossbar
from repro.devices import (
    DefectModel,
    DefectRates,
    DeviceVariability,
    VariabilityParams,
)

RNG = np.random.default_rng(21)


def _random_binary(shape, rng=RNG):
    w = np.sign(rng.standard_normal(shape))
    w[w == 0] = 1.0
    return w


class TestXnorCrossbar:
    def test_ideal_mac_exact(self):
        """With no non-idealities the decoded MAC equals x @ W."""
        w = _random_binary((16, 8))
        bar = XnorCrossbar(16, 8)
        bar.program(w)
        x = _random_binary((5, 16))
        out = bar.matvec(x)
        np.testing.assert_allclose(out, x @ w, atol=1e-9)

    def test_zero_inputs_gate_rows(self):
        w = _random_binary((6, 4))
        bar = XnorCrossbar(6, 4)
        bar.program(w)
        x = _random_binary((1, 6))
        x_gated = x.copy()
        x_gated[0, :3] = 0.0
        out = bar.matvec(x_gated)
        np.testing.assert_allclose(out, x_gated @ w, atol=1e-9)

    def test_row_mask_gates_layerwide(self):
        w = _random_binary((6, 4))
        bar = XnorCrossbar(6, 4)
        bar.program(w)
        x = _random_binary((3, 6))
        mask = np.array([1, 1, 0, 0, 1, 1], dtype=float)
        out = bar.matvec(x, row_mask=mask)
        np.testing.assert_allclose(out, (x * mask) @ w, atol=1e-9)

    def test_row_mask_gates_per_sample(self):
        w = _random_binary((6, 4))
        bar = XnorCrossbar(6, 4)
        bar.program(w)
        x = _random_binary((3, 6))
        masks = np.array([[1, 1, 0, 0, 1, 1],
                          [0, 1, 1, 1, 1, 0],
                          [1, 0, 1, 0, 1, 0]], dtype=float)
        out = bar.matvec(x, row_mask=masks)
        np.testing.assert_allclose(out, (x * masks) @ w, atol=1e-9)

    def test_row_mask_shape_mismatch_rejected(self):
        bar = XnorCrossbar(6, 4)
        bar.program(_random_binary((6, 4)))
        with pytest.raises(ValueError):
            bar.matvec(_random_binary((3, 6)),
                       row_mask=np.ones((2, 6)))

    def test_leading_sample_axis(self):
        """A stacked (T, N, rows) tensor equals T separate calls."""
        w = _random_binary((6, 4))
        bar = XnorCrossbar(6, 4)
        bar.program(w)
        x = _random_binary((2, 3, 6))
        out = bar.matvec(x)
        assert out.shape == (2, 3, 4)
        for t in range(2):
            np.testing.assert_allclose(out[t], x[t] @ w, atol=1e-9)

    def test_rejects_non_binary_weights(self):
        bar = XnorCrossbar(4, 4)
        with pytest.raises(ValueError):
            bar.program(np.full((4, 4), 0.5))

    def test_rejects_bad_inputs(self):
        bar = XnorCrossbar(4, 4)
        bar.program(_random_binary((4, 4)))
        with pytest.raises(ValueError):
            bar.matvec(np.full((1, 4), 0.3))

    def test_unprogrammed_raises(self):
        with pytest.raises(RuntimeError):
            XnorCrossbar(4, 4).matvec(_random_binary((1, 4)))

    def test_variability_perturbs_but_tracks(self):
        w = _random_binary((32, 16))
        var = DeviceVariability(VariabilityParams(sigma_r=0.05,
                                                  sigma_read=0.02),
                                rng=np.random.default_rng(5))
        bar = XnorCrossbar(32, 16, variability=var,
                           rng=np.random.default_rng(5))
        bar.program(w)
        x = _random_binary((10, 32))
        out = bar.matvec(x)
        exact = x @ w
        assert not np.allclose(out, exact)          # noise present
        assert np.abs(out - exact).mean() < 4.0     # but small

    def test_defects_change_stored_weights(self):
        w = np.ones((8, 8))
        defects = DefectModel(DefectRates(stuck_at_p=0.5),
                              rng=np.random.default_rng(0))
        bar = XnorCrossbar(8, 8, defects=defects)
        bar.program(w)
        assert (bar.programmed_weights == -1.0).any()

    def test_ir_drop_attenuates(self):
        w = np.ones((64, 4))
        clean = XnorCrossbar(64, 4)
        clean.program(w)
        droopy = XnorCrossbar(64, 4, wire_resistance=5.0)
        droopy.program(w)
        x = np.ones((1, 64))
        out_clean = clean.matvec(x)
        out_droopy = droopy.matvec(x)
        assert np.all(out_droopy < out_clean)

    def test_ledger_counts_cell_accesses(self):
        ledger = OpLedger()
        bar = XnorCrossbar(10, 6, ledger=ledger)
        bar.program(_random_binary((10, 6)))
        assert ledger["mtj_write"] == 2 * 60
        bar.matvec(_random_binary((3, 10)))
        assert ledger["crossbar_cell_access"] == 3 * 10 * 6

    def test_ledger_skips_gated_rows(self):
        ledger = OpLedger()
        bar = XnorCrossbar(10, 6, ledger=ledger)
        bar.program(_random_binary((10, 6)))
        x = _random_binary((1, 10))
        x[0, :5] = 0.0
        bar.matvec(x)
        assert ledger["crossbar_cell_access"] == 5 * 6


class TestAnalogCrossbar:
    def test_mvm_accuracy_many_levels(self):
        values = RNG.uniform(-1, 1, (12, 6))
        bar = AnalogCrossbar(12, 6, n_levels=256)
        bar.program(values)
        x = RNG.uniform(-1, 1, (4, 12))
        out = bar.matvec(x)
        np.testing.assert_allclose(out, x @ values, atol=0.1)

    def test_quantization_error_shrinks_with_levels(self):
        values = RNG.uniform(-1, 1, (16, 16))
        errors = []
        for n_levels in (4, 16, 64):
            bar = AnalogCrossbar(16, 16, n_levels=n_levels)
            bar.program(values)
            errors.append(np.abs(bar.stored_values() - values).mean())
        assert errors[0] > errors[1] > errors[2]

    def test_stored_values_range(self):
        values = RNG.uniform(-3, 5, (8, 8))
        bar = AnalogCrossbar(8, 8, n_levels=16)
        bar.program(values)
        stored = bar.stored_values()
        assert stored.min() >= values.min() - 1e-9
        assert stored.max() <= values.max() + 1e-9

    def test_explicit_range_clips(self):
        values = np.array([[-10.0, 10.0]])
        bar = AnalogCrossbar(1, 2, n_levels=16)
        bar.program(values, v_min=-1.0, v_max=1.0)
        stored = bar.stored_values()
        np.testing.assert_allclose(stored, [[-1.0, 1.0]])

    def test_needs_two_levels(self):
        with pytest.raises(ValueError):
            AnalogCrossbar(4, 4, n_levels=1)

    def test_ledger_counts(self):
        ledger = OpLedger()
        bar = AnalogCrossbar(8, 4, n_levels=16, ledger=ledger)
        bar.program(RNG.uniform(-1, 1, (8, 4)))
        bar.matvec(RNG.uniform(-1, 1, (2, 8)))
        assert ledger["crossbar_cell_access"] == 2 * 8 * 4
        assert ledger["mtj_write"] == 8 * 4 * 4  # log2(16) junction writes
