"""Benchmarks for the §III-B.2 extended evaluation scopes.

* semantic segmentation (scene understanding substitute): mIoU,
  pixel accuracy, OOD-object behaviour;
* 100-class classification with a SpinBayes deployment;
* the latency/area companion to Table I.
"""

from repro.energy import render_table
from repro.experiments.extended import (
    latency_area_table,
    run_100class_experiment,
    run_seg_experiment,
)


def test_segmentation_scene_understanding(benchmark):
    result = benchmark.pedantic(
        lambda: run_seg_experiment(fast=True, seed=0),
        rounds=1, iterations=1)
    print()
    print(render_table(
        ["quantity", "measured"],
        [
            ["mIoU", f"{result.miou:.3f}"],
            ["pixel accuracy", f"{result.pixel_accuracy * 100:.1f}%"],
            ["object accuracy (known objects)",
             f"{result.object_accuracy_id * 100:.1f}%"],
            ["object accuracy (unknown objects)",
             f"{result.object_accuracy_ood * 100:.1f}%"],
            ["object entropy (known)",
             f"{result.object_entropy_id:.3f}"],
            ["object entropy (unknown)",
             f"{result.object_entropy_ood:.3f}"],
        ],
        title="Segmentation (scene understanding substitute)"))

    # Background-only prediction gives mIoU ≈ 0.23; the model must
    # genuinely segment.
    assert result.miou > 0.3
    assert result.pixel_accuracy > 0.7
    # Unknown objects are harder than known ones.
    assert result.object_accuracy_ood < result.object_accuracy_id + 0.05


def test_100_class_classification(benchmark):
    result = benchmark.pedantic(
        lambda: run_100class_experiment(fast=True, seed=0),
        rounds=1, iterations=1)
    print()
    print(render_table(
        ["quantity", "measured"],
        [
            ["classes", str(result.n_classes_seen)],
            ["teacher (subset-VI) accuracy",
             f"{result.teacher_accuracy * 100:.2f}%"],
            ["SpinBayes accuracy",
             f"{result.spinbayes_accuracy * 100:.2f}%"],
            ["SpinBayes top-5 accuracy",
             f"{result.top5_accuracy * 100:.2f}%"],
        ],
        title="100-class classification (paired glyphs)"))

    assert result.n_classes_seen == 100
    assert result.teacher_accuracy > 0.5        # chance is 1 %
    # In-memory approximation stays within a band of the teacher.
    assert result.spinbayes_accuracy > result.teacher_accuracy - 0.15
    assert result.top5_accuracy > result.spinbayes_accuracy


def test_latency_area_companion(benchmark):
    rows = benchmark.pedantic(latency_area_table, rounds=1, iterations=1)
    print()
    print(render_table(
        ["method", "latency µs/img", "area mm²", "module area µm²"],
        [[r["method"], f"{r['latency_us']:.1f}", f"{r['area_mm2']:.3f}",
          f"{r['module_area_um2']:.0f}"] for r in rows],
        title="Latency / area companion to Table I"))

    by_method = {r["method"]: r for r in rows}
    # DropConnect pays latency (serial per-weight mask generation).
    assert (by_method["mc_dropconnect"]["latency_us"]
            > by_method["spindrop"]["latency_us"])
    # SpinDrop pays area (one module per neuron).
    assert (by_method["spindrop"]["module_area_um2"]
            > 100 * by_method["scaledrop"]["module_area_um2"])
    # SpinBayes pays crossbar area (N copies) but not modules.
    assert (by_method["spinbayes"]["area_mm2"]
            > by_method["scaledrop"]["area_mm2"])
