"""Benchmark T1 — regenerate Table I (method comparison).

Prints the same rows the paper's Table I reports (method, inference
accuracy, energy per image) side by side with the paper's numbers,
and asserts the reproduction's shape targets:

* all trained methods land in a common accuracy band;
* energy ordering: SpinDrop ≫ Spatial > Subset-VI ≈ SpinBayes ≈
  ScaleDrop, with SpinDrop in the µJ band.
"""

import pytest

from repro.experiments.table1 import PAPER_TABLE1, render_table1, run_table1


@pytest.fixture(scope="module")
def table1_rows():
    return run_table1(fast=True, seed=0)


def test_table1(benchmark, table1_rows):
    rows = benchmark.pedantic(lambda: table1_rows, rounds=1, iterations=1)
    print()
    print(render_table1(rows))

    by_name = {row.method: row for row in rows}
    assert set(by_name) == set(PAPER_TABLE1)

    # Energy ordering (analytic, paper-scale spec).
    e = {name: row.energy_paper_scale for name, row in by_name.items()}
    assert e["SpinDrop"] > e["Spatial-SpinDrop"]
    assert e["Spatial-SpinDrop"] > e["SpinScaleDropout"]
    assert e["SpinDrop"] > 3 * e["SpinScaleDropout"]
    assert 0.5e-6 < e["SpinDrop"] < 5e-6       # paper: 2.00 µJ

    # Accuracy: every trained method must clear a floor and the MLP
    # methods should sit within a few points of each other.
    mlp_methods = ("SpinDrop", "SpinScaleDropout",
                   "Bayesian Sub-Set Parameter")
    accs = [by_name[m].accuracy_software for m in mlp_methods]
    assert min(accs) > 0.55
    assert max(accs) - min(accs) < 0.25

    # Deployed accuracy tracks software accuracy.
    for method in mlp_methods:
        row = by_name[method]
        assert abs(row.accuracy_deployed - row.accuracy_software) < 0.2
