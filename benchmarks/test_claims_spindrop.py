"""Benchmark C1 — SpinDrop claims (Sec. III-A.1).

Paper: "up to 100% detection of out-of-distribution data, an
improvement in accuracy of ∼2%, and up to 15% for corrupted data."

Shape targets here: OOD uncertainty clearly separates from ID
(AUROC), Bayesian ≥ deterministic on clean data within a small band,
and a positive mean corruption gain.
"""

from repro.energy import render_table
from repro.experiments.claims import run_c1_spindrop


def test_c1_spindrop_claims(benchmark):
    claims = benchmark.pedantic(lambda: run_c1_spindrop(fast=True, seed=0),
                                rounds=1, iterations=1)

    print()
    print(render_table(
        ["quantity", "paper", "measured"],
        [
            ["clean accuracy (Bayesian)", "91.95%",
             f"{claims.accuracy_bayesian * 100:.2f}%"],
            ["clean accuracy (deterministic)", "—",
             f"{claims.accuracy_deterministic * 100:.2f}%"],
            ["accuracy gain", "~2%",
             f"{claims.accuracy_gain * 100:+.2f}%"],
            ["OOD detection (glyph swap)", "up to 100%",
             f"{claims.ood_detection_letters * 100:.1f}%"],
            ["OOD detection (uniform noise)", "up to 100%",
             f"{claims.ood_detection_noise * 100:.1f}%"],
            ["OOD AUROC (glyph swap)", "—",
             f"{claims.ood_auroc_letters:.3f}"],
            ["mean corrupted-accuracy gain", "up to +15%",
             f"{claims.mean_corruption_gain * 100:+.2f}%"],
        ],
        title="C1 — SpinDrop claims"))

    # OOD uncertainty separates (threshold-free check is the robust
    # one at benchmark budgets).
    assert claims.ood_auroc_letters > 0.6
    assert claims.ood_detection_letters > 0.0
    # Clean accuracy: Bayesian within a small band of deterministic.
    assert claims.accuracy_bayesian > claims.accuracy_deterministic - 0.05
    # Corruption robustness: Bayesian gains on average.
    assert claims.mean_corruption_gain > -0.02
    per_corruption_wins = sum(
        claims.corrupted_bayesian[k] >= claims.corrupted_deterministic[k]
        for k in claims.corrupted_bayesian)
    assert per_corruption_wins >= 2
