"""Micro-benchmarks of the simulation substrates themselves.

These time the hot paths (crossbar MVM, RNG bit generation, one MC
inference pass) so performance regressions in the simulator are
caught; they also double as smoke tests of the public API under
benchmark pressure.
"""

import numpy as np
import pytest

from repro.cim import CimConfig, XnorCrossbar
from repro.devices import SpintronicArbiter, SpintronicRNG
from repro.experiments.common import TrainConfig, digits_dataset, train_classifier


def _binary(shape, seed=0):
    rng = np.random.default_rng(seed)
    w = np.sign(rng.standard_normal(shape))
    w[w == 0] = 1.0
    return w


def test_crossbar_mvm_throughput(benchmark):
    bar = XnorCrossbar(128, 128)
    bar.program(_binary((128, 128)))
    x = _binary((64, 128), seed=1)
    out = benchmark(bar.matvec, x)
    assert out.shape == (64, 128)


def test_rng_bitstream_throughput(benchmark):
    bank = SpintronicRNG(256, p=0.5, rng=np.random.default_rng(0))
    bits = benchmark(bank.generate, 4096)
    assert bits.shape == (4096,)


def test_arbiter_selection_throughput(benchmark):
    arbiter = SpintronicArbiter(8, rng=np.random.default_rng(0))
    picks = benchmark(arbiter.select_many, 256)
    assert picks.shape == (256,)


@pytest.fixture(scope="module")
def deployed_model():
    from repro.bayesian import BayesianCim, make_spindrop_mlp

    data = digits_dataset(n_samples=600, seed=51)
    model = make_spindrop_mlp(data.n_features, (64,), data.n_classes,
                              p=0.15, seed=51)
    train_classifier(model, data, TrainConfig(epochs=3, mc_samples=4))
    return BayesianCim(model, CimConfig(seed=0)), data


def test_mc_inference_pass(benchmark, deployed_model):
    deployed, data = deployed_model
    x = data.x_test[:32]
    logits = benchmark(deployed.forward, x)
    assert logits.shape == (32, 10)


def test_mc_inference_batched(benchmark, deployed_model):
    """Full T-pass MC inference through the batched engine."""
    deployed, data = deployed_model
    x = data.x_test[:32]
    result = benchmark(deployed.mc_forward_batched, x, 10)
    assert result.samples.shape == (10, 32, 10)


def test_serving_coalesced_requests(benchmark, deployed_model):
    """Scheduler throughput: many small requests per batched MC call."""
    from repro.serving import BatchScheduler

    deployed, data = deployed_model
    requests = [data.x_test[i:i + 4] for i in range(0, 32, 4)]

    def serve():
        scheduler = BatchScheduler(deployed, n_samples=10, max_batch=32)
        tickets = [scheduler.submit(x) for x in requests]
        scheduler.flush()
        return [t.result() for t in tickets]

    results = benchmark(serve)
    assert len(results) == 8
    assert all(r.probs.shape == (4, 10) for r in results)


def test_training_epoch(benchmark):
    from repro import nn
    from repro.bayesian import make_spindrop_mlp
    from repro.data import batches
    from repro.tensor import Tensor

    data = digits_dataset(n_samples=600, seed=61)
    model = make_spindrop_mlp(data.n_features, (64,), data.n_classes,
                              p=0.15, seed=61)
    opt = nn.Adam(model.parameters(), lr=1e-2)

    def one_epoch():
        model.train()
        for xb, yb in batches(data.x_train, data.y_train, 64, seed=0):
            loss = nn.cross_entropy(model(Tensor(xb)), yb)
            opt.zero_grad()
            loss.backward()
            opt.step()
            nn.clip_latent_weights(model)
        return float(loss.data)

    final_loss = benchmark.pedantic(one_epoch, rounds=1, iterations=1)
    assert np.isfinite(final_loss)
