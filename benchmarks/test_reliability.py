"""Benchmark — reliability and uncertainty-quality extensions.

* Retention aging (key takeaway #4: in-field device modelling);
* Calibration comparison across methods (the uncertainty-quality
  dimension of the paper's claims).
"""

from repro.energy import render_table
from repro.experiments.ablations import calibration_comparison, retention_aging


def test_retention_aging(benchmark):
    results = benchmark.pedantic(
        lambda: retention_aging(fast=True, seed=0,
                                ages_years=(0.0, 1.0, 5.0, 10.0)),
        rounds=1, iterations=1)
    print()
    print(render_table(
        ["age (years)", "flipped cells", "accuracy"],
        [[f"{r['age_years']:.0f}",
          f"{r['flipped_fraction'] * 100:.2f}%",
          f"{r['accuracy'] * 100:.1f}%"] for r in results],
        title="Retention aging (Néel–Brown, Δ = N(50, 5²))"))

    flips = [r["flipped_fraction"] for r in results]
    accs = [r["accuracy"] for r in results]
    # Flips accumulate monotonically with age.
    assert all(a <= b + 1e-12 for a, b in zip(flips, flips[1:]))
    # Accuracy does not improve with age (beyond MC noise).
    assert accs[-1] <= accs[0] + 0.05
    # At 10 years only the low-Δ tail has flipped (a few percent).
    assert flips[-1] < 0.15


def test_calibration_comparison(benchmark):
    results = benchmark.pedantic(
        lambda: calibration_comparison(fast=True, seed=0),
        rounds=1, iterations=1)
    print()
    print(render_table(
        ["method", "accuracy", "ECE", "NLL"],
        [[name, f"{m['accuracy'] * 100:.1f}%", f"{m['ece']:.3f}",
          f"{m['nll']:.3f}"] for name, m in results.items()],
        title="Calibration quality (lower ECE/NLL is better)"))

    det = results["deterministic"]
    # The uncertainty-quality claim: Bayesian inference improves the
    # proper scores relative to the point-estimate baseline.
    assert min(results["spindrop"]["ece"],
               results["subset_vi"]["ece"]) < det["ece"]
    assert min(results["spindrop"]["nll"],
               results["subset_vi"]["nll"]) < det["nll"]
