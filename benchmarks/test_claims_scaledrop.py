"""Benchmark C3 — SpinScaleDrop claims (Sec. III-A.3).

Paper: "only a single dropout module ... per layer", "up to 1%
improvement in predictive performance", "more than 100× energy savings
compared to existing methods", and the Gaussian-fitted stochastic
dropout probability under device variation.
"""

from repro.energy import render_table
from repro.experiments.claims import run_c3_scaledrop


def test_c3_scaledrop_claims(benchmark):
    claims = benchmark.pedantic(lambda: run_c3_scaledrop(fast=True, seed=0),
                                rounds=1, iterations=1)

    print()
    print(render_table(
        ["quantity", "paper", "measured"],
        [
            ["accuracy (ScaleDrop)", "90.45%",
             f"{claims.accuracy_scaledrop * 100:.2f}%"],
            ["accuracy (SpinDrop ref)", "91.95%",
             f"{claims.accuracy_spindrop * 100:.2f}%"],
            ["RNG modules (ScaleDrop)", "1 per layer",
             str(claims.rng_modules_scaledrop)],
            ["RNG modules (SpinDrop)", "1 per neuron",
             str(claims.rng_modules_spindrop)],
            ["dropout-energy saving", ">100×",
             f"{claims.dropout_energy_saving:.0f}×"],
            ["device-fitted p (mu, sigma)", "Gaussian",
             f"({claims.stochastic_p_mu:.3f}, "
             f"{claims.stochastic_p_sigma:.3f})"],
        ],
        title="C3 — SpinScaleDrop claims"))

    # One module per hidden layer (2 hidden layers in the MLP).
    assert claims.rng_modules_scaledrop == 2
    assert claims.rng_modules_spindrop > 50 * claims.rng_modules_scaledrop
    # Paper: >100× dropout-subsystem energy saving.
    assert claims.dropout_energy_saving > 100.0
    # Comparable predictive performance (within a few points).
    assert claims.accuracy_scaledrop > claims.accuracy_spindrop - 0.15
    # Variability makes p itself stochastic with a real spread.
    assert claims.stochastic_p_sigma > 0.0
    assert abs(claims.stochastic_p_mu - 0.2) < 0.15
