"""Benchmark C6 — SpinBayes claims (Sec. III-B.2).

Paper: "improvements in classification accuracy of up to 1.14% and
uncertainty estimation of up to 20.16%", "can detect up to 100%
samples from several out-of-distribution datasets".

Shape targets: the N-crossbar in-memory approximation retains the
teacher's accuracy (within a small quantization-induced band), its
uncertainty rises on OOD inputs, and detection works above chance.
"""

from repro.energy import render_table
from repro.experiments.claims import run_c6_spinbayes


def test_c6_spinbayes_claims(benchmark):
    claims = benchmark.pedantic(lambda: run_c6_spinbayes(fast=True, seed=0),
                                rounds=1, iterations=1)

    print()
    print(render_table(
        ["quantity", "paper", "measured"],
        [
            ["teacher accuracy (subset-VI)", "—",
             f"{claims.teacher_accuracy * 100:.2f}%"],
            ["SpinBayes accuracy", "within ~1%",
             f"{claims.spinbayes_accuracy * 100:.2f}%"],
            ["accuracy delta", "+1.14% (best)",
             f"{claims.accuracy_delta * 100:+.2f}%"],
            ["OOD detection (glyph swap)", "up to 100%",
             f"{claims.ood_detection_letters * 100:.1f}%"],
            ["OOD detection (uniform noise)", "up to 100%",
             f"{claims.ood_detection_noise * 100:.1f}%"],
            ["OOD/ID uncertainty ratio", ">1",
             f"{claims.uncertainty_ratio:.2f}"],
        ],
        title="C6 — SpinBayes claims"))

    # In-memory approximation tracks the teacher.
    assert abs(claims.accuracy_delta) < 0.15
    assert claims.spinbayes_accuracy > 0.5
    # Uncertainty grows on OOD inputs (the paper's detection driver).
    assert claims.uncertainty_ratio > 1.0
    assert claims.ood_detection_letters >= 0.0
