"""Benchmark F1 — Fig. 1 mapping strategies for conv layers.

Regenerates the architectural comparison the figure illustrates:
crossbar counts, utilization, ADC conversions per output and dropout-
module placement for strategies ① and ②, plus a functional-
equivalence check between the two mappings.
"""

import pytest

from repro.energy import render_table
from repro.experiments.figures import (
    mapping_equivalence_check,
    run_fig1_mapping,
)


def test_fig1_mapping(benchmark):
    reports = benchmark.pedantic(run_fig1_mapping, rounds=1, iterations=1)

    rows = []
    for r1, r2 in zip(reports["strategy1"], reports["strategy2"]):
        rows.append([
            f"{r1.crossbar_shape}", r1.n_crossbars,
            f"{r1.utilization:.2f}", r1.adc_per_output, r1.dropout_modules,
            f"{r2.crossbar_shape}", r2.n_crossbars,
            f"{r2.utilization:.2f}", r2.adc_per_output,
        ])
    print()
    print(render_table(
        ["S1 xbar", "S1 #", "S1 util", "S1 adc/out", "drop mods",
         "S2 xbar", "S2 #", "S2 util", "S2 adc/out"],
        rows, title="Fig. 1 — conv mapping strategies ① vs ②"))

    for r1, r2 in zip(reports["strategy1"], reports["strategy2"]):
        # Strategy ② always fully utilizes its small crossbars but
        # needs many of them and more conversions per output.
        assert r2.utilization == pytest.approx(1.0)
        assert r2.n_crossbars >= r1.n_crossbars
        assert r2.adc_per_output >= r1.adc_per_output
        # The dropout module count is mapping-independent (one per
        # input feature map) — the generalizability claim of III-A.2.
        assert r1.dropout_modules == r2.dropout_modules


def test_fig1_functional_equivalence(benchmark):
    residual = benchmark.pedantic(mapping_equivalence_check,
                                  rounds=1, iterations=1)
    print(f"\nmax |strategy1 - strategy2| = {residual:.3f} "
          "(ADC-resolution bound)")
    assert residual <= 2.0
