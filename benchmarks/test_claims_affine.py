"""Benchmark C4 — Inverted normalization + Affine Dropout (Sec. III-A.4).

Paper: "improvement in inference accuracy by up to 55.62%" (under CIM
non-idealities), "RMSE score is reduced by up to 46.7%" (time series),
"detecting up to 55.03% and 78.95% of OOD instances for uniform noise
and random rotation".

Shape targets: the affine (self-healing) model loses less accuracy
than the deterministic baseline under injected stuck-at faults; both
OOD sources are detected above chance with rotation ≥ noise ordering
checked threshold-free; the MC-averaged affine regressor does not lose
to the plain regressor on RMSE.
"""

from repro.energy import render_table
from repro.experiments.claims import run_c4_affine


def test_c4_affine_claims(benchmark):
    claims = benchmark.pedantic(lambda: run_c4_affine(fast=True, seed=0),
                                rounds=1, iterations=1)

    print()
    print(render_table(
        ["quantity", "paper", "measured"],
        [
            ["clean accuracy (affine)", "—",
             f"{claims.clean_affine * 100:.2f}%"],
            ["clean accuracy (baseline)", "—",
             f"{claims.clean_baseline * 100:.2f}%"],
            ["faulty accuracy (affine)", "—",
             f"{claims.faulty_affine * 100:.2f}%"],
            ["faulty accuracy (baseline)", "—",
             f"{claims.faulty_baseline * 100:.2f}%"],
            ["fault recovery (affine-baseline)", "up to +55.62%",
             f"{claims.fault_recovery * 100:+.2f}%"],
            ["OOD detection (uniform noise)", "55.03%",
             f"{claims.ood_detection_noise * 100:.1f}%"],
            ["OOD detection (rotation)", "78.95%",
             f"{claims.ood_detection_rotation * 100:.1f}%"],
            ["RMSE (affine, MC)", "—", f"{claims.rmse_affine:.4f}"],
            ["RMSE (baseline)", "—", f"{claims.rmse_baseline:.4f}"],
            ["RMSE reduction", "up to 46.7%",
             f"{claims.rmse_reduction * 100:+.1f}%"],
        ],
        title="C4 — Inverted normalization + Affine Dropout claims"))

    # Self-healing: under faults, affine model retains more accuracy.
    assert claims.faulty_affine >= claims.faulty_baseline - 0.05
    # Both models work on clean data.
    assert claims.clean_affine > 0.5
    # OOD detection above the 5 % false-positive floor for rotation.
    assert claims.ood_detection_rotation > 0.05
    # Time series: the paper's RMSE-reduction claim did NOT reproduce
    # in our GRU substitute (EXPERIMENTS.md C4 discusses why); the
    # assertion only bounds the regression so the negative result
    # stays visible but stable.
    assert claims.rmse_affine < claims.rmse_baseline * 3.0
