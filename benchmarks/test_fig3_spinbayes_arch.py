"""Benchmark F3 — Fig. 3 SpinBayes layer architecture.

Regenerates the design-space exploration behind the figure: arbiter
selection statistics and the accuracy / energy / quantization-error
trade-off versus the number of posterior crossbars N and the
multi-level-cell precision.
"""

from repro.energy import format_energy, render_table
from repro.experiments.figures import arbiter_statistics, run_fig3_spinbayes


def test_fig3_arbiter(benchmark):
    stats = benchmark.pedantic(
        lambda: arbiter_statistics(n_choices=8, n_draws=8192, seed=0),
        rounds=1, iterations=1)
    print(f"\narbiter: {int(stats['n_choices'])} choices, "
          f"{int(stats['cycles_per_selection'])} cycles/selection, "
          f"max deviation {stats['max_abs_deviation']:.3f}, "
          f"entropy {stats['entropy_bits']:.3f} bits")
    assert stats["max_abs_deviation"] < 0.05
    assert stats["entropy_bits"] > 2.9


def test_fig3_design_space(benchmark):
    points = benchmark.pedantic(
        lambda: run_fig3_spinbayes(fast=True, seed=0,
                                   component_grid=(2, 4, 8),
                                   level_grid=(4, 16)),
        rounds=1, iterations=1)

    rows = [[p.n_components, p.n_levels, f"{p.accuracy * 100:.1f}%",
             format_energy(p.energy_per_image),
             f"{p.quantization_error:.4f}",
             f"{p.arbiter_uniformity:.3f}"]
            for p in points]
    print()
    print(render_table(
        ["N crossbars", "levels", "accuracy", "E/image", "quant err",
         "arbiter dev"],
        rows, title="Fig. 3 — SpinBayes design space"))

    # Quantization error shrinks with cell precision at every N.
    by_n = {}
    for p in points:
        by_n.setdefault(p.n_components, {})[p.n_levels] = p
    for n, variants in by_n.items():
        assert variants[16].quantization_error \
            < variants[4].quantization_error

    # All design points stay usable (well above 10-class chance).
    assert min(p.accuracy for p in points) > 0.3

    # Arbiter selection stays near uniform across the sweep.
    assert max(p.arbiter_uniformity for p in points) < 0.15
