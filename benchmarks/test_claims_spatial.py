"""Benchmark C2 — Spatial-SpinDrop claims (Sec. III-A.2).

Paper: "a reduction in the number of dropout modules per network by a
factor of 9× and energy consumption by 94.11×", and "2.94× more
energy efficient than the SpinDrop concept".

The ratios are structural op-count ratios; our reference network
(LeNet-style) differs from the paper's VGG-style topology so the
absolute factors differ, but the orderings and magnitude bands hold.
"""

from repro.energy import render_table
from repro.experiments.claims import run_c2_spatial


def test_c2_spatial_claims(benchmark):
    claims = benchmark.pedantic(lambda: run_c2_spatial(seed=0),
                                rounds=1, iterations=1)

    print()
    print(render_table(
        ["quantity", "paper", "measured"],
        [
            ["dropout modules (SpinDrop)", "—",
             str(claims.spindrop_modules)],
            ["dropout modules (Spatial)", "—",
             str(claims.spatial_modules)],
            ["module reduction", "9×",
             f"{claims.module_reduction:.1f}×"],
            ["dropout-subsystem energy ratio", "94.11×",
             f"{claims.dropout_energy_ratio:.1f}×"],
            ["total energy ratio", "2.94×",
             f"{claims.total_energy_ratio:.2f}×"],
        ],
        title="C2 — Spatial-SpinDrop claims"))

    assert claims.module_reduction > 5.0          # paper: 9×
    assert claims.dropout_energy_ratio > 5.0      # paper: 94×
    assert claims.total_energy_ratio > 2.0        # paper: 2.94×
    # Total ratio is damped versus the dropout-only ratio because the
    # MVM/ADC base cost is method-independent.
    assert claims.total_energy_ratio < claims.dropout_energy_ratio
