"""Benchmark C5 — Bayesian sub-set parameter inference (Sec. III-B.1).

Paper: "comparable accuracy to full-precision models", "increase in
negative log-likelihood (NLL) under dataset shifts", "up to 70× lower
power consumption and 158.7× lower storage memory requirements
compared to traditional methods".
"""

from repro.energy import render_table
from repro.experiments.claims import run_c5_subset_vi


def test_c5_subset_vi_claims(benchmark):
    claims = benchmark.pedantic(lambda: run_c5_subset_vi(fast=True, seed=0),
                                rounds=1, iterations=1)

    print()
    print(render_table(
        ["quantity", "paper", "measured"],
        [
            ["accuracy", "90.62%", f"{claims.accuracy * 100:.2f}%"],
            ["NLL (in-distribution)", "—",
             f"{claims.nll_in_distribution:.3f}"],
            ["NLL (shifted)", "increases",
             f"{claims.nll_shifted:.3f}"],
            ["memory reduction vs conventional VI", "158.7×",
             f"{claims.memory_ratio:.1f}×"],
            ["power reduction vs conventional VI", "70×",
             f"{claims.power_ratio:.1f}×"],
            ["Bayesian parameter fraction", "<10% of params",
             f"{claims.bayesian_fraction * 100:.2f}%"],
        ],
        title="C5 — Bayesian sub-set parameter inference claims"))

    # Dataset shift inflates NLL (the paper's OOD-awareness evidence).
    assert claims.nll_shifted > 1.5 * claims.nll_in_distribution
    # Storage: binary weights + two small vectors vs 2×32-bit per
    # weight.  Paper reports 158.7×; the exact factor depends on the
    # norm-constant overhead of the (small) model, so we assert the
    # magnitude band.
    assert claims.memory_ratio > 20.0
    # Power: conventional VI pays one Gaussian draw per weight per
    # pass; subset VI per scale element.  Paper: 70×; band check.
    assert claims.power_ratio > 10.0
    # Bayesian treatment covers only a sliver of the parameters.
    assert claims.bayesian_fraction < 0.05
    assert claims.accuracy > 0.55
