"""Benchmark F2 — Fig. 2 Scale-Dropout inference architecture.

Regenerates the component inventory of the figure as an energy
breakdown of one deployed Scale-Dropout inference: crossbar array,
sense amplifiers, ADC, scale SRAM, the (single) dropout module and the
digital periphery.
"""

from repro.energy import format_energy, render_table
from repro.experiments.figures import run_fig2_breakdown


def test_fig2_scaledrop_architecture(benchmark):
    breakdown = benchmark.pedantic(
        lambda: run_fig2_breakdown(fast=True, seed=0),
        rounds=1, iterations=1)

    inference = {k: v for k, v in breakdown.items()
                 if k != "weight_programming"}
    total = sum(inference.values())
    rows = [[name, format_energy(value), f"{100 * value / total:5.1f} %"]
            for name, value in sorted(inference.items(),
                                      key=lambda kv: -kv[1])]
    print()
    print(render_table(["component", "E/image", "share"], rows,
                       title="Fig. 2 — Scale-Dropout architecture, "
                             "per-image energy by component"))

    # Every Fig.-2 component must be exercised.
    for component in ("crossbar_array", "sense_amplifiers", "adc",
                      "scale_sram", "dropout_module",
                      "digital_periphery"):
        assert breakdown[component] > 0.0, component

    # The defining property of Scale-Dropout: the dropout module is a
    # small slice of the budget (one RNG per layer), unlike SpinDrop
    # where it dominates.  At the benchmark's tiny network size the
    # fixed per-layer cycle weighs relatively more than at paper
    # scale, so the bound is loose here and tight in the analytic
    # model (see test_energy.py::test_dropout_subsystem_ratio_large).
    assert breakdown["dropout_module"] / total < 0.15
    # ADC is the dominant shared-periphery cost in CIM macros.
    assert breakdown["adc"] == max(inference.values())
