"""Benchmark A1 — ablations over the DESIGN.md design choices.

* RNG-module scaling versus network width per method (the Sec. II-D
  scalability wall).
* Defect-rate robustness per method (key takeaway #8).
* STE clip-window ablation.
* Scalar- vs vector-mask predictive performance.
"""

from repro.energy import render_table
from repro.experiments.ablations import (
    defect_robustness,
    rng_scaling,
    scalar_vs_vector_masks,
    ste_clip_ablation,
)


def test_rng_scaling(benchmark):
    widths = (64, 128, 256, 512, 1024)
    scaling = benchmark.pedantic(lambda: rng_scaling(widths=widths),
                                 rounds=1, iterations=1)
    rows = [[m] + [str(v) for v in counts]
            for m, counts in sorted(scaling.items())]
    print()
    print(render_table(["method"] + [f"w={w}" for w in widths], rows,
                       title="A1 — RNG modules vs hidden width"))

    for i in range(len(widths)):
        assert (scaling["mc_dropconnect"][i] > scaling["spindrop"][i]
                >= scaling["spatial"][i] > scaling["scaledrop"][i])
    # Constant-per-layer methods are flat in width.
    assert len(set(scaling["scaledrop"])) == 1
    assert len(set(scaling["affine"])) == 1
    # Per-weight methods scale superlinearly vs per-neuron.
    growth_dc = scaling["mc_dropconnect"][-1] / scaling["mc_dropconnect"][0]
    growth_sd = scaling["spindrop"][-1] / scaling["spindrop"][0]
    assert growth_dc > growth_sd


def test_defect_robustness(benchmark):
    points = benchmark.pedantic(
        lambda: defect_robustness(fast=True, seed=0,
                                  fault_rates=(0.0, 0.05, 0.15)),
        rounds=1, iterations=1)

    by_method = {}
    for p in points:
        by_method.setdefault(p.method, []).append((p.fault_rate, p.accuracy))
    rows = [[m] + [f"{acc * 100:.1f}%" for _, acc in sorted(series)]
            for m, series in sorted(by_method.items())]
    print()
    print(render_table(["method", "0%", "5%", "15%"], rows,
                       title="A1 — deployed accuracy vs stuck-at rate"))

    for method, series in by_method.items():
        series = dict(series)
        # Clean deployment works.
        assert series[0.0] > 0.45, method
        # Heavy faults cannot *gain* accuracy beyond noise.
        assert series[0.15] <= series[0.0] + 0.1, method


def test_ste_clip(benchmark):
    results = benchmark.pedantic(
        lambda: ste_clip_ablation(clips=(0.05, 0.25, 1.0), seed=0, epochs=5),
        rounds=1, iterations=1)
    rows = [[f"{clip}", f"{acc * 100:.1f}%"]
            for clip, acc in sorted(results.items())]
    print()
    print(render_table(["STE clip", "accuracy"], rows,
                       title="A1 — STE clip-window ablation"))
    # All clip settings train to something useful; the canonical 1.0
    # window is not the worst choice.
    assert all(acc > 0.3 for acc in results.values())
    assert results[1.0] >= min(results.values())


def test_scalar_vs_vector_masks(benchmark):
    result = benchmark.pedantic(
        lambda: scalar_vs_vector_masks(fast=True, seed=0),
        rounds=1, iterations=1)
    print(f"\nscalar-mask (ScaleDrop): "
          f"{result['scalar_mask_accuracy'] * 100:.2f}%  "
          f"vector-mask (SpinDrop): "
          f"{result['vector_mask_accuracy'] * 100:.2f}%")
    # The design claim: collapsing the mask to a scalar (1 RNG/layer)
    # keeps predictive performance in the same band.
    assert (result["scalar_mask_accuracy"]
            > result["vector_mask_accuracy"] - 0.15)
