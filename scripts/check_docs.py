"""Docs quality gate: code snippets must parse, links must resolve.

Checks every Markdown page under ``docs/`` plus ``README.md``:

- each fenced ```` ```python ```` block is compiled
  (``compile(..., "exec")``), so documentation examples cannot rot
  into syntax errors;
- every relative Markdown link/image target (``[text](path)``)
  resolves to an existing file or directory, anchors and external
  ``http(s)``/``mailto`` targets excluded.

Exits non-zero listing every failure.  CI runs this in the lint job;
run it locally with ``python scripts/check_docs.py``.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
PYTHON_BLOCK = re.compile(r"```python[ \t]*\n(.*?)```", re.DOTALL)
# [text](target) links and ![alt](target) images; stops at the first
# closing paren, which Markdown requires be balanced for plain paths.
LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL = ("http://", "https://", "mailto:", "#")


def check_file(path: pathlib.Path) -> list:
    errors = []
    text = path.read_text(encoding="utf-8")
    rel = path.relative_to(ROOT)

    for i, match in enumerate(PYTHON_BLOCK.finditer(text)):
        block = match.group(1)
        line = text[:match.start(1)].count("\n") + 1
        try:
            compile(block, f"{rel}:{line}", "exec")
        except SyntaxError as exc:
            errors.append(
                f"{rel}:{line}: python block {i + 1} does not parse: "
                f"{exc.msg} (block line {exc.lineno})")

    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL):
            continue
        line = text[:match.start()].count("\n") + 1
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            errors.append(
                f"{rel}:{line}: broken relative link -> {target}")
    return errors


def main() -> int:
    pages = sorted((ROOT / "docs").glob("*.md")) + [ROOT / "README.md"]
    missing = [p for p in pages if not p.exists()]
    if missing:
        for page in missing:
            print(f"MISSING: {page.relative_to(ROOT)}")
        return 1
    errors = []
    for page in pages:
        errors.extend(check_file(page))
    for error in errors:
        print(error)
    checked = ", ".join(str(p.relative_to(ROOT)) for p in pages)
    if errors:
        print(f"FAIL: {len(errors)} docs problem(s) in: {checked}")
        return 1
    print(f"PASS: docs snippets parse and links resolve ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
