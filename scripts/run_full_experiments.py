"""Run every experiment at full (non-fast) settings and print a report.

Thin wrapper around ``repro-experiments full`` (the installable
console command), kept so the historical

    python scripts/run_full_experiments.py | tee results_full.txt

invocation keeps working from a source checkout without installation.
"""

import os
import sys

if __name__ == "__main__":
    try:
        from repro.experiments.cli import main
    except ImportError:
        sys.path.insert(0, os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src"))
        from repro.experiments.cli import main
    sys.exit(main(["full"]))
