"""CI benchmark gate: batched MC inference must beat sequential.

Times T-pass Monte-Carlo inference for FOUR engines — the Table-I
(fast preset) SpinDrop MLP on :class:`BayesianCim`, the subset-VI
teacher deployed as a :class:`SpinBayesNetwork` (N crossbars +
arbiter per layer), the §III-B.2 Bayesian segmenter through the
pass-stacked ``mc_segment_batched`` engine, and the deployed
Spatial-SpinDrop CNN (``cim_conv``: :class:`CimConv2d` crossbars on
the plan-cached, arena-backed, exact-integer conv kernel) — once
through the original sequential per-pass loop and once through the
batched engine.  For each engine it verifies the two paths are
bit-for-bit identical (samples, and ledger totals for the deployed
engines; the segmentation and cim_conv gates additionally check that
a warm engine performs zero im2col index-plan rebuilds), writes the
measurements to ``BENCH_mc_forward.json``, and exits non-zero if any
batched path is not at least its per-engine minimum speedup faster
(``--min-speedup``, default 3×; the spindrop MLP and the deployed
conv chain gate at ``--spindrop-min-speedup`` /
``--cim-conv-min-speedup``, default 2×, because their sequential
baselines share the same fast kernels — ``CimLinear``'s
exact-integer route serves the per-pass loop too).

Two kernel-substrate gates (``engines.bitpack_mvm`` and
``engines.bitpack_linear``) time the bit-packed XNOR/popcount route
(:mod:`repro.tensor.bitpack`) against the float32 exact-integer route
it shadows, on the memory-bound small-batch × wide-matrix shapes the
packed kernel exists for.  Both verify bit-exactness first — the raw
kernel against the float GEMV, and a forced-``use_bitpack``
:class:`CimLinear` against its own float route including op-ledger
totals — and fail below ``--bitpack-min-speedup`` (default 4×).

A serving-level gate replays the same Poisson arrival workload
through the threaded ``ShardedScheduler`` (thread-per-client
submitters polling their tickets) and through the asyncio
``AsyncBatchScheduler`` with an ``Autoscaler`` on top, and fails if
the async front-end's throughput regresses below
``--serving-min-ratio`` of the threaded baseline (see
``docs/benchmarks.md``).  A structural ``serving.degradation``
scenario additionally drives a control-plane scheduler through an
injected-latency overload burst and requires adaptive-T shedding to
kick in (served T below requested, floored at ``t_min``), the p95 to
recover under the SLO target once the burst drains, full-T service to
resume, and the under-target control plane to be bit-invisible.

A lifecycle gate (``lifecycle.snapshot_load``) saves a
realistically-sized deployment — the conv family compiled with device
variability and programming defects, the configuration snapshots
exist to freeze — as a :class:`DeploymentSnapshot` and requires
``DeploymentSnapshot.load().build()`` to be at least
``--lifecycle-min-speedup`` (default 5×) faster than a fresh compile,
with the loaded engine verified bit-identical (outputs and ledger
totals) to the engine it was captured from.  A registry-backed
mixed-tenant scenario additionally drives two registered models
through ONE ``BatchScheduler`` fleet and fails unless every row is
accounted to exactly one model's ``LoadMetrics``.

``--compare BASELINE.json`` additionally makes the gate trend-aware:
after the fresh run, every engine speedup (and the serving throughput
ratio) is diffed against the committed baseline record, and the gate
fails if any entry present in both regressed by more than
``--compare-tolerance`` (default 20%) — so a change can pass the
absolute thresholds yet still fail CI by giving back a previously
banked speedup.

Run locally from a source checkout:

    python scripts/bench_ci.py
    python scripts/bench_ci.py --compare BENCH_mc_forward.json

CI runs it as a separate job so a perf regression in the batched
engines fails the build even when all functional tests pass.
"""

import argparse
import json
import os
import sys
import time

try:
    from repro.bayesian import (
        BayesianCim,
        SpinBayesNetwork,
        make_bayesian_segmenter,
        make_spatial_spindrop_cnn,
        make_spindrop_mlp,
        make_subset_vi_mlp,
        mc_segment,
        mc_segment_batched,
    )
    from repro.cim import CimConfig
    from repro.tensor.functional import conv_plan_cache_stats
except ImportError:  # source checkout without install
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))
    from repro.bayesian import (
        BayesianCim,
        SpinBayesNetwork,
        make_bayesian_segmenter,
        make_spatial_spindrop_cnn,
        make_spindrop_mlp,
        make_subset_vi_mlp,
        mc_segment,
        mc_segment_batched,
    )
    from repro.cim import CimConfig
    from repro.tensor.functional import conv_plan_cache_stats

# sys.path is fixed up by the block above for source checkouts.
from repro.experiments.report import markdown_table  # noqa: E402
from repro.experiments.trend import (  # noqa: E402
    bench_summary_rows,
    compare_bench_record,
)
from repro.serving import (  # noqa: E402
    AsyncBatchScheduler,
    Autoscaler,
    BatchScheduler,
    ControlPlane,
    LoadMetrics,
    ShardedScheduler,
    SloPolicy,
)
from repro.serving.faults import SlowEngine  # noqa: E402

import asyncio     # noqa: E402
import threading   # noqa: E402

import numpy as np  # noqa: E402

# Table-I model (fast preset): 256-dim SynthDigits input, (128, 64)
# hidden, 10 classes, SpinDrop after each hidden block.  Like the
# deployed conv chain, its sequential baseline now runs CimLinear's
# exact-integer fast route, so the batched win is pass-stacking +
# prefix memoization alone and the gate is 2x instead of 3x.
IN_FEATURES = 256
HIDDEN = (128, 64)
N_CLASSES = 10
DROPOUT_P = 0.25
BATCH = 12
N_SAMPLES = 20
REPEATS = 5
# SpinBayes serving slice: the batched engine's payoff is the
# low-latency regime where per-pass Python overhead dominates, so the
# gate times a small coalesced batch (the scheduler's common case).
SPINBAYES_BATCH = 4
SPINBAYES_COMPONENTS = 8
SPINBAYES_LEVELS = 16
# Segmentation serving slice: the per-pixel safety-critical use case
# is latency-bound single-image traffic; the ISSUE gate pins T=10 on
# the default segmenter (width 8, p 0.15, 16x16 scenes).
SEG_BATCH = 1
SEG_SIZE = 16
SEG_SAMPLES = 10
# Deployed conv slice: the Spatial-SpinDrop CNN compiled to CimConv2d
# crossbars, T=10 on a small coalesced batch.  Its sequential baseline
# runs the same plan-cached/exact-integer kernels, so the batched win
# is pass-stacking + prefix memoization alone — gated at 2x instead
# of the software engines' 3x.
CIM_CONV_BATCH = 4
CIM_CONV_SIZE = 16
CIM_CONV_WIDTHS = (8, 16)
CIM_CONV_SAMPLES = 10
# Bit-packed XNOR kernel slice: the packed route's win is the
# memory-bound regime (a small batch of wordline drives against a
# wide packed matrix, 64x less weight traffic).  The raw-kernel gate
# times the widest shape; the layer gate runs a forced-use_bitpack
# CimLinear on a single 4096-row crossbar (ADC step 131, odd, so the
# exact-integer precondition holds) against its own float32 route.
BITPACK_MVM_SHAPE = (2, 4096, 4096)       # batch, K, n_cols
BITPACK_LINEAR_SHAPE = (2, 4096, 2048)    # batch, in, out
# Lifecycle slice: snapshot restore vs recompile is only worth gating
# on the deployment snapshots exist to freeze — a non-ideal fabric
# (conductance variability + programming defects) whose compile draws
# a fresh device realization, at production-like widths.  The tiny
# ideal cim_conv preset above compiles in under a millisecond, which
# no verified artifact read can beat.
LIFECYCLE_WIDTHS = (128, 256)
# Serving front-end gate: a fixed Poisson arrival trace replayed once
# through the threaded sharded scheduler and once through the async
# front-end (same requests, same engine work).
SERVING_REQUESTS = 160
SERVING_MEAN_GAP_S = 0.0004     # Poisson arrivals, ~0.4 ms mean gap
SERVING_SAMPLES = 24            # deep enough that flushes dominate
SERVING_MAX_BATCH = 32
SERVING_FLUSH_INTERVAL = 0.004
SERVING_REPLICAS = 2            # both front-ends start with this many
SERVING_MAX_REPLICAS = 3        # autoscaler headroom for the async run
SERVING_REPEATS = 3
# Process-pool gate: the same snapshot served by 4 threaded replicas
# vs 4 process-backed replicas (shared-memory row transport) on a
# mixed-tenant-shaped trace — interleaved request sizes and two
# request-T classes, so every flush shards two (model, T) groups.
# Pure-NumPy replicas contend on one GIL when threaded; worker
# processes don't, so the pool must scale with worker count.  The gate
# needs real cores: below PROCPOOL_MIN_CORES it records a skip entry
# (no "speedup" key, which the trend compare ignores) instead of
# measuring scheduler-starved noise.
PROCPOOL_WORKERS = 4
PROCPOOL_MIN_CORES = 4
PROCPOOL_REQUESTS = 24
PROCPOOL_SAMPLES = (16, 24)     # the two tenant T classes
PROCPOOL_REPEATS = 3
# Degradation scenario: an overload burst (injected per-flush delay)
# must push the p95 over the SLO target and trigger adaptive-T
# shedding; once the burst passes, the latency window turns over, p95
# recovers under target, and service returns to the full requested T.
DEGRADATION_TARGET_P95_S = 0.030
DEGRADATION_BURST_DELAY_S = 0.080
DEGRADATION_BURST_FLUSHES = 4
DEGRADATION_SAMPLES = 16
DEGRADATION_T_MIN = 2
DEGRADATION_WINDOW = 8          # latency ring: how fast p95 forgets


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _engine() -> BayesianCim:
    model = make_spindrop_mlp(IN_FEATURES, HIDDEN, N_CLASSES,
                              p=DROPOUT_P, seed=0)
    return BayesianCim(model, CimConfig(seed=0), seed=0)


def _spinbayes_engine() -> SpinBayesNetwork:
    teacher = make_subset_vi_mlp(IN_FEATURES, HIDDEN, N_CLASSES, seed=0)
    return SpinBayesNetwork.from_subset_vi(
        teacher, n_components=SPINBAYES_COMPONENTS,
        n_levels=SPINBAYES_LEVELS, config=CimConfig(seed=0), seed=0)


def _cim_conv_engine() -> BayesianCim:
    model = make_spatial_spindrop_cnn(
        1, CIM_CONV_SIZE, N_CLASSES, p=DROPOUT_P,
        widths=CIM_CONV_WIDTHS, seed=0)
    return BayesianCim(model, CimConfig(seed=0), seed=0)


def _gate_engine(name, make_engine, x, n_samples, min_speedup,
                 check_plan_rebuilds=False):
    """Equivalence check + timed gate for one engine; returns a record."""
    check_seq = make_engine()
    check_bat = make_engine()
    check_seq.ledger.reset()
    check_bat.ledger.reset()
    seq_result = check_seq.mc_forward(x, n_samples=n_samples, batched=False)
    bat_result = check_bat.mc_forward_batched(x, n_samples=n_samples)
    if not np.array_equal(seq_result.samples, bat_result.samples):
        print(f"FAIL: {name} batched MC output differs from sequential")
        return None
    if check_seq.ledger.as_dict() != check_bat.ledger.as_dict():
        print(f"FAIL: {name} batched MC ledger differs from sequential")
        return None

    engine = make_engine()
    engine.mc_forward(x[:2], n_samples=2, batched=False)
    engine.mc_forward_batched(x[:2], n_samples=2)
    record = {
        "batch": len(x),
        "n_samples": n_samples,
        "repeats": REPEATS,
        "min_speedup": min_speedup,
        "bit_exact": True,
    }
    if check_plan_rebuilds:
        # Warm engines must serve every im2col/pooling geometry from
        # the memoized plan cache: zero index-plan rebuilds from here.
        builds_before = conv_plan_cache_stats()["builds"]
        engine.mc_forward_batched(x, n_samples=n_samples)
        rebuilds = conv_plan_cache_stats()["builds"] - builds_before
        if rebuilds != 0:
            print(f"FAIL: warm {name} engine rebuilt {rebuilds} "
                  f"im2col index plans (expected 0)")
            return None
        record["plan_rebuilds_warm"] = rebuilds
    seq_s = _best_of(
        lambda: engine.mc_forward(x, n_samples=n_samples, batched=False),
        REPEATS)
    bat_s = _best_of(
        lambda: engine.mc_forward_batched(x, n_samples=n_samples),
        REPEATS)
    record.update({
        "sequential_s": seq_s,
        "batched_s": bat_s,
        "speedup": seq_s / bat_s,
    })
    return record


def _gate_segmentation(min_speedup):
    """Equivalence + plan-cache + timed gate for the segmentation
    engine (software path: no OpLedger; bit-exactness covers probs
    and per-pass samples)."""
    x = np.random.default_rng(2).standard_normal(
        (SEG_BATCH, 1, SEG_SIZE, SEG_SIZE))
    check_seq = make_bayesian_segmenter(seed=0)
    check_bat = make_bayesian_segmenter(seed=0)
    seq_result = mc_segment(check_seq, x, n_samples=SEG_SAMPLES,
                            batched=False)
    bat_result = mc_segment_batched(check_bat, x, n_samples=SEG_SAMPLES)
    if not np.array_equal(seq_result.samples, bat_result.samples):
        print("FAIL: segmentation batched MC output differs from sequential")
        return None
    if not np.array_equal(seq_result.probs, bat_result.probs):
        print("FAIL: segmentation batched MC probs differ from sequential")
        return None

    model = make_bayesian_segmenter(seed=0)
    mc_segment(model, x, n_samples=2, batched=False)
    mc_segment_batched(model, x, n_samples=2)
    # Warm engines must reuse the memoized im2col/pooling plans:
    # zero index-plan rebuilds from here on.
    builds_before = conv_plan_cache_stats()["builds"]
    mc_segment_batched(model, x, n_samples=SEG_SAMPLES)
    plan_rebuilds = conv_plan_cache_stats()["builds"] - builds_before
    if plan_rebuilds != 0:
        print(f"FAIL: warm segmentation engine rebuilt {plan_rebuilds} "
              f"im2col index plans (expected 0)")
        return None

    seq_s = _best_of(
        lambda: mc_segment(model, x, n_samples=SEG_SAMPLES, batched=False),
        REPEATS)
    bat_s = _best_of(
        lambda: mc_segment_batched(model, x, n_samples=SEG_SAMPLES),
        REPEATS)
    return {
        "batch": SEG_BATCH,
        "n_samples": SEG_SAMPLES,
        "repeats": REPEATS,
        "sequential_s": seq_s,
        "batched_s": bat_s,
        "speedup": seq_s / bat_s,
        "min_speedup": min_speedup,
        "bit_exact": True,
        "plan_rebuilds_warm": plan_rebuilds,
        "model": (f"bayesian_segmenter width=8 p=0.15 "
                  f"{SEG_SIZE}x{SEG_SIZE}"),
    }


def _gate_bitpack(min_speedup):
    """Bit-exactness + timed gates for the packed XNOR kernel.

    Returns ``(bitpack_mvm, bitpack_linear)`` records, or None on an
    exactness failure.  Weights are packed outside the timed region —
    exactly the deployment contract (program/compile/snapshot packs
    once, serving never does).
    """
    from repro.cim import OpLedger
    from repro.cim.layers import CimLinear
    from repro.tensor import bitpack

    rng = np.random.default_rng(11)

    # Raw kernel vs the float32 GEMV it replaces.
    b, k, c = BITPACK_MVM_SHAPE
    x = np.sign(rng.standard_normal((b, k)))
    x[x == 0] = 1.0
    x[rng.random((b, k)) < 0.1] = 0.0       # some gated wordlines
    w = np.sign(rng.standard_normal((k, c)))
    w[w == 0] = 1.0
    w32_t = np.ascontiguousarray(w.T.astype(np.float32))
    packed_w = bitpack.pack_weights(w)
    x32 = x.astype(np.float32)
    ref = x32 @ w32_t.T
    got = bitpack.packed_mvm(bitpack.pack_ternary_rows(x), packed_w)
    if not np.array_equal(ref, got):
        print("FAIL: packed XNOR kernel differs from the float GEMV")
        return None
    float_s = _best_of(lambda: x32 @ w32_t.T, REPEATS)
    packed_s = _best_of(
        lambda: bitpack.packed_mvm(bitpack.pack_ternary_rows(x), packed_w),
        REPEATS)
    mvm_record = {
        "batch": b,
        "k": k,
        "n_cols": c,
        "repeats": REPEATS,
        "sequential_s": float_s,
        "batched_s": packed_s,
        "speedup": float_s / packed_s,
        "min_speedup": min_speedup,
        "bit_exact": True,
        "popcount_backend": bitpack.popcount_backend(),
        "model": f"packed_mvm {b}x{k} @ {k}x{c} vs float32 GEMV",
    }

    # A deployed CimLinear with the route forced on vs forced off:
    # same outputs bit-for-bit, same ledger totals, gated speedup.
    b, k, c = BITPACK_LINEAR_SHAPE
    w = np.sign(rng.standard_normal((c, k)))
    w[w == 0] = 1.0
    layer = CimLinear(w, None, None,
                      CimConfig(seed=0, max_rows=k, max_cols=c),
                      OpLedger())
    layer.ledger.reset()            # drop programming's mtj_write entries
    x = np.sign(rng.standard_normal((b, k)))
    x[x == 0] = 1.0
    layer.use_bitpack = False
    float_out = layer.forward(x)
    float_ledger = layer.ledger.as_dict()
    layer.ledger.reset()
    layer.use_bitpack = True
    packed_out = layer.forward(x)           # also warms the packed cache
    packed_ledger = layer.ledger.as_dict()
    if not np.array_equal(float_out, packed_out):
        print("FAIL: CimLinear packed route differs from the float route")
        return None
    if float_ledger != packed_ledger:
        print("FAIL: CimLinear packed route books different ledger totals")
        return None
    packed_s = _best_of(lambda: layer.forward(x), REPEATS)
    layer.use_bitpack = False
    float_s = _best_of(lambda: layer.forward(x), REPEATS)
    linear_record = {
        "batch": b,
        "k": k,
        "n_cols": c,
        "repeats": REPEATS,
        "sequential_s": float_s,
        "batched_s": packed_s,
        "speedup": float_s / packed_s,
        "min_speedup": min_speedup,
        "bit_exact": True,
        "popcount_backend": bitpack.popcount_backend(),
        "model": f"CimLinear {k}->{c} batch {b} forced use_bitpack "
                 "vs float exact route",
    }
    return mvm_record, linear_record


def _lifecycle_engine() -> BayesianCim:
    """The deployment the snapshot gate measures: the conv family
    compiled onto a non-ideal fabric.  Every compile draws a fresh
    device realization (conductance spread + programming defects) —
    exactly the state a snapshot exists to freeze."""
    from repro.devices.defects import DefectModel, DefectRates
    from repro.devices.variability import DeviceVariability, VariabilityParams

    model = make_spatial_spindrop_cnn(
        1, CIM_CONV_SIZE, N_CLASSES, p=DROPOUT_P,
        widths=LIFECYCLE_WIDTHS, seed=0)
    config = CimConfig(
        seed=0,
        variability=DeviceVariability(VariabilityParams(),
                                      rng=np.random.default_rng(0)),
        defects=DefectModel(DefectRates(), rng=np.random.default_rng(1)))
    return BayesianCim(model, config, seed=0)


def _gate_lifecycle(min_speedup):
    """Snapshot-load vs fresh-compile gate on a realistic deployment.

    Compiling draws a new device realization every time; loading a
    snapshot must restore the *same* realization (bit-identical
    outputs and ledger totals) and do it at least ``min_speedup``×
    faster than the compile it replaces.
    """
    import tempfile

    from repro.cim.snapshot import DeploymentSnapshot

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "snap")
        original = _lifecycle_engine()
        DeploymentSnapshot.capture(original).save(path)

        x = np.random.default_rng(5).standard_normal(
            (CIM_CONV_BATCH, 1, CIM_CONV_SIZE, CIM_CONV_SIZE))
        loaded = DeploymentSnapshot.load(path).build()
        expected = original.mc_forward_batched(x, n_samples=4)
        actual = loaded.mc_forward_batched(x, n_samples=4)
        if not np.array_equal(expected.samples, actual.samples):
            print("FAIL: snapshot-loaded engine output differs from "
                  "the captured engine")
            return None
        if original.ledger.as_dict() != loaded.ledger.as_dict():
            print("FAIL: snapshot-loaded engine ledger differs from "
                  "the captured engine")
            return None

        compile_s = _best_of(_lifecycle_engine, REPEATS)
        load_s = _best_of(
            lambda: DeploymentSnapshot.load(path).build(), REPEATS)
        artifact_bytes = sum(
            os.path.getsize(os.path.join(path, name))
            for name in os.listdir(path))
    return {
        "repeats": REPEATS,
        # sequential/batched naming keeps the generic engine-gate
        # reporting and the trend compare working unchanged: the
        # "sequential" path is the compile the snapshot replaces.
        "sequential_s": compile_s,
        "batched_s": load_s,
        "speedup": compile_s / load_s,
        "min_speedup": min_speedup,
        "bit_exact": True,
        "artifact_bytes": artifact_bytes,
        "model": (f"spatial_spindrop_cnn widths="
                  f"{'-'.join(map(str, LIFECYCLE_WIDTHS))} "
                  "variability+defects: snapshot load vs fresh compile"),
    }


def _gate_mixed_tenant():
    """One scheduler fleet, two registered models, full accounting.

    Replays an interleaved two-tenant trace through a single
    registry-backed ``BatchScheduler`` and verifies every submitted
    row lands in exactly one model's ``LoadMetrics``.  Returns the
    scenario record, or None on an accounting failure.
    """
    from repro.serving import BatchScheduler, ModelRegistry

    rng = np.random.default_rng(7)
    registry = ModelRegistry()
    registry.register("spindrop", _engine, feature_shape=(IN_FEATURES,))
    registry.register("spinbayes", _spinbayes_engine,
                      feature_shape=(IN_FEATURES,))
    models = ["spindrop" if i % 3 else "spinbayes" for i in range(24)]
    xs = [rng.standard_normal((int(n), IN_FEATURES))
          for n in rng.integers(1, 4, len(models))]
    total_rows = int(sum(x.shape[0] for x in xs))

    scheduler = BatchScheduler(registry=registry, n_samples=8,
                               max_batch=SERVING_MAX_BATCH,
                               flush_interval=None)
    # Warm both tenants so the timed replay measures serving, not the
    # one-off lazy compiles (those are the lifecycle gate's subject).
    for model_id in ("spindrop", "spinbayes"):
        registry.engine(model_id)
    t0 = time.perf_counter()
    tickets = [scheduler.submit(x, model=model)
               for x, model in zip(xs, models)]
    scheduler.flush()
    results = [t.result() for t in tickets]
    elapsed = time.perf_counter() - t0

    for x, result in zip(xs, results):
        if result.probs.shape[0] != x.shape[0]:
            print("FAIL: mixed-tenant serving returned a wrong-shaped "
                  "result")
            return None
    per_model = {}
    for model_id in ("spindrop", "spinbayes"):
        snap = registry.metrics(model_id).snapshot()
        per_model[model_id] = {"rows": snap.rows,
                               "flushes": snap.flushes,
                               "requests": snap.requests}
    accounted = sum(entry["rows"] for entry in per_model.values())
    if accounted != total_rows:
        print(f"FAIL: mixed-tenant metrics account for {accounted} rows, "
              f"{total_rows} were submitted")
        return None
    return {
        "requests": len(xs),
        "rows": total_rows,
        "n_samples": 8,
        "elapsed_s": elapsed,
        "rows_per_s": total_rows / elapsed,
        "per_model": per_model,
        "workload": "interleaved two-tenant trace, one scheduler fleet",
    }


def _serving_trace(seed: int = 3):
    """Fixed Poisson workload: arrival offsets + request payloads."""
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(SERVING_MEAN_GAP_S,
                                         SERVING_REQUESTS))
    rows = rng.integers(1, 4, SERVING_REQUESTS)
    xs = [rng.standard_normal((int(n), IN_FEATURES)) for n in rows]
    return arrivals, xs


def _warm(engine) -> None:
    engine.mc_forward_batched(np.zeros((2, IN_FEATURES)), n_samples=2)


def _run_threaded_serving(arrivals, xs) -> float:
    """Thread-per-client replay over the threaded ShardedScheduler.

    Each client sleeps until its arrival offset, submits, and polls
    its ticket (``result()`` would force a flush and defeat the
    deadline batching a sync service relies on).  Returns the wall
    seconds from the first arrival to the last resolved result.
    """
    engines = [_engine() for _ in range(SERVING_REPLICAS)]
    for engine in engines:
        _warm(engine)
    errors = []
    with ShardedScheduler(engines, n_samples=SERVING_SAMPLES,
                          max_batch=SERVING_MAX_BATCH,
                          flush_interval=SERVING_FLUSH_INTERVAL) as sched:
        start = time.perf_counter()

        def client(i):
            try:
                delay = arrivals[i] - (time.perf_counter() - start)
                if delay > 0:
                    time.sleep(delay)
                ticket = sched.submit(xs[i])
                while not ticket.done():
                    time.sleep(0.0002)
                ticket.result()
            except Exception as exc:    # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(len(xs))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed


def _run_async_serving(arrivals, xs):
    """Coroutine-per-client replay over the async front-end with a
    replica autoscaler (same starting replicas as the threaded
    baseline, headroom to SERVING_MAX_REPLICAS).  Returns (wall
    seconds, final replica count, scale-ups)."""
    engines = [_engine() for _ in range(SERVING_REPLICAS)]
    for engine in engines:
        _warm(engine)

    async def go():
        sharded = ShardedScheduler(engines, n_samples=SERVING_SAMPLES,
                                   max_batch=SERVING_MAX_BATCH)
        try:
            return await run_workload(sharded)
        finally:
            sharded.close()     # shard pools don't outlive the run

    async def run_workload(sharded):
        metrics = LoadMetrics()
        scaler = Autoscaler(
            sharded, _engine, metrics=metrics,
            min_replicas=SERVING_REPLICAS,
            max_replicas=SERVING_MAX_REPLICAS,
            scale_up_utilization=0.5, scale_down_utilization=0.1,
            # Enough pre-warmed spares that no engine is ever built
            # mid-run (construction would steal GIL from the flushes).
            warm_spares=SERVING_MAX_REPLICAS - SERVING_REPLICAS + 1)
        for spare in scaler._spares:
            _warm(spare)
        async with AsyncBatchScheduler(
                sharded, flush_interval=SERVING_FLUSH_INTERVAL,
                metrics=metrics, autoscaler=scaler) as frontend:
            start = time.perf_counter()

            async def client(i):
                delay = arrivals[i] - (time.perf_counter() - start)
                if delay > 0:
                    await asyncio.sleep(delay)
                await frontend.predict(xs[i])

            await asyncio.gather(*[client(i) for i in range(len(xs))])
            elapsed = time.perf_counter() - start
        return elapsed, sharded.n_replicas, scaler.scale_ups

    return asyncio.run(go())


def _gate_serving(min_ratio):
    """Async front-end must not regress below the threaded baseline."""
    arrivals, xs = _serving_trace()
    total_rows = int(sum(x.shape[0] for x in xs))
    threaded_s = min(_run_threaded_serving(arrivals, xs)
                     for _ in range(SERVING_REPEATS))
    best_async = None
    for _ in range(SERVING_REPEATS):
        run = _run_async_serving(arrivals, xs)
        if best_async is None or run[0] < best_async[0]:
            best_async = run
    async_s, replicas, ups = best_async
    return {
        "requests": SERVING_REQUESTS,
        "rows": total_rows,
        "n_samples": SERVING_SAMPLES,
        "mean_gap_s": SERVING_MEAN_GAP_S,
        "max_batch": SERVING_MAX_BATCH,
        "flush_interval_s": SERVING_FLUSH_INTERVAL,
        "repeats": SERVING_REPEATS,
        "threaded_replicas": SERVING_REPLICAS,
        "threaded_s": threaded_s,
        "threaded_rows_per_s": total_rows / threaded_s,
        "async_s": async_s,
        "async_rows_per_s": total_rows / async_s,
        "async_final_replicas": replicas,
        "async_scale_ups": ups,
        "throughput_ratio": threaded_s / async_s,
        "min_ratio": min_ratio,
        "workload": "poisson thread-per-client vs coroutine-per-client",
    }


def _gate_procpool(min_speedup):
    """Process-backed replica pool vs threaded sharding, same snapshot.

    Serves a mixed-tenant-shaped trace (interleaved request sizes, two
    request-T classes) through a 4-replica threaded ``ShardedScheduler``
    and through a 4-worker ``ProcReplicaPool`` under the same sharded
    scheduler, after verifying the two transports resolve bit-identical
    samples.  Fails below ``min_speedup``; on hosts with fewer than
    ``PROCPOOL_MIN_CORES`` usable cores it returns a skip entry without
    a ``"speedup"`` key (the trend compare skips such entries, so a
    laptop re-bank never erases the banked datacenter number).
    """
    cores = os.cpu_count() or 1
    model_desc = (f"spindrop_mlp {IN_FEATURES}-"
                  f"{'-'.join(map(str, HIDDEN))}-{N_CLASSES}: "
                  f"{PROCPOOL_WORKERS} proc workers vs "
                  f"{PROCPOOL_WORKERS} threaded replicas, "
                  "mixed-tenant trace")
    if cores < PROCPOOL_MIN_CORES:
        return {
            "min_speedup": min_speedup,
            "workers": PROCPOOL_WORKERS,
            "cpu_count": cores,
            "skipped": (f"needs >= {PROCPOOL_MIN_CORES} cores for a "
                        f"meaningful scaling measurement, host has "
                        f"{cores}"),
            "model": model_desc,
        }

    import tempfile

    from repro.cim.snapshot import DeploymentSnapshot
    from repro.serving.procpool import ProcReplicaPool

    rng = np.random.default_rng(11)
    sizes = rng.integers(1, 5, PROCPOOL_REQUESTS)
    xs = [rng.standard_normal((int(n), IN_FEATURES)) for n in sizes]
    ts = [PROCPOOL_SAMPLES[i % 2] for i in range(PROCPOOL_REQUESTS)]
    total_rows = int(sum(x.shape[0] for x in xs))

    def replay(scheduler):
        tickets = [scheduler.submit(x, n_samples=t)
                   for x, t in zip(xs, ts)]
        scheduler.flush()
        return [ticket.result().samples for ticket in tickets]

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "snap")
        engine = _engine()
        _warm(engine)
        DeploymentSnapshot.capture(engine).save(path)
        snapshot = DeploymentSnapshot.load(path)

        with ProcReplicaPool.from_snapshot(
                path, workers=PROCPOOL_WORKERS) as pool:
            # Bit-exactness first: fresh equally-positioned replicas on
            # both transports must resolve identical tickets.
            check = ShardedScheduler(
                [snapshot.build() for _ in range(PROCPOOL_WORKERS)],
                max_batch=4 * SERVING_MAX_BATCH)
            expected = replay(check)
            check.close()
            pooled = ShardedScheduler(pool.replicas,
                                      max_batch=4 * SERVING_MAX_BATCH)
            actual = replay(pooled)
            for want, got in zip(expected, actual):
                if not np.array_equal(want, got):
                    print("FAIL: procpool serving is not bit-identical "
                          "to threaded sharding")
                    pooled.close()
                    return None

            # Timed replays: same scheduler reused across repeats (the
            # engines keep consuming their streams; work per repeat is
            # identical in shape and cost).
            threaded = ShardedScheduler(
                [snapshot.build() for _ in range(PROCPOOL_WORKERS)],
                max_batch=4 * SERVING_MAX_BATCH)
            replay(threaded)                         # warm both paths
            threaded_s = _best_of(lambda: replay(threaded),
                                  PROCPOOL_REPEATS)
            threaded.close()
            proc_s = _best_of(lambda: replay(pooled), PROCPOOL_REPEATS)
            pooled.close()
            transport = dict(pool.stats)

    return {
        "repeats": PROCPOOL_REPEATS,
        "workers": PROCPOOL_WORKERS,
        "cpu_count": cores,
        "requests": PROCPOOL_REQUESTS,
        "rows": total_rows,
        "n_samples": list(PROCPOOL_SAMPLES),
        # sequential/batched naming keeps the generic engine-gate
        # reporting and trend compare working: "sequential" is the
        # GIL-bound threaded baseline the pool replaces.
        "sequential_s": threaded_s,
        "batched_s": proc_s,
        "speedup": threaded_s / proc_s,
        "min_speedup": min_speedup,
        "bit_exact": True,
        "transport": transport,
        "model": model_desc,
    }


def _gate_degradation():
    """Overload burst -> adaptive-T shedding -> full-T recovery.

    Structural serving gate (pass/fail on behaviour, not speed): a
    control-plane scheduler serves through an injected-latency burst,
    and the gate requires (1) degradation actually triggered during
    the burst — results flagged, served T below requested, never below
    ``t_min``; (2) after the burst the p95 recovers under the SLO
    target and service returns to the full requested T, undegraded;
    (3) with the p95 under target the control plane is invisible —
    full-T results bit-identical to a plain scheduler under the same
    seed.  Returns the scenario record, or None on failure.
    """
    rng = np.random.default_rng(9)

    def burst_delay(call):
        return (DEGRADATION_BURST_DELAY_S
                if call < DEGRADATION_BURST_FLUSHES else 0.0)

    inner = _engine()
    _warm(inner)
    metrics = LoadMetrics(window=DEGRADATION_WINDOW)
    plane = ControlPlane(
        slo=SloPolicy(DEGRADATION_TARGET_P95_S, t_min=DEGRADATION_T_MIN),
        metrics=metrics)
    scheduler = BatchScheduler(SlowEngine(inner, delay_s=burst_delay),
                               n_samples=DEGRADATION_SAMPLES,
                               max_batch=1024, controlplane=plane)

    served_ts = []
    degraded_flags = []
    for _ in range(DEGRADATION_BURST_FLUSHES):
        ticket = scheduler.submit(rng.standard_normal((2, IN_FEATURES)))
        scheduler.flush()
        result = ticket.result()
        served_ts.append(result.served_samples)
        degraded_flags.append(result.degraded)
    burst_p95 = metrics.p95_latency_s()
    if not any(degraded_flags):
        print("FAIL: degradation scenario: the overload burst never "
              "triggered adaptive-T shedding")
        return None
    if min(served_ts) < DEGRADATION_T_MIN:
        print(f"FAIL: degradation scenario: served T fell below "
              f"t_min={DEGRADATION_T_MIN}")
        return None

    # Burst over: fast flushes turn the latency window over until the
    # p95 drops back under target (bounded, so a broken recovery path
    # fails the gate instead of hanging it).
    recovery_flushes = 0
    while metrics.p95_latency_s() > DEGRADATION_TARGET_P95_S \
            and recovery_flushes < 4 * DEGRADATION_WINDOW:
        ticket = scheduler.submit(rng.standard_normal((2, IN_FEATURES)))
        scheduler.flush()
        ticket.result()
        recovery_flushes += 1
    recovered_p95 = metrics.p95_latency_s()
    final = scheduler.submit(rng.standard_normal((2, IN_FEATURES)))
    scheduler.flush()
    final_result = final.result()
    if recovered_p95 > DEGRADATION_TARGET_P95_S:
        print(f"FAIL: degradation scenario: p95 "
              f"{recovered_p95 * 1e3:.1f} ms never recovered under the "
              f"{DEGRADATION_TARGET_P95_S * 1e3:.1f} ms target")
        return None
    if final_result.degraded \
            or final_result.served_samples != DEGRADATION_SAMPLES:
        print("FAIL: degradation scenario: full T was not restored "
              "after the p95 recovered")
        return None

    # Under-target control plane must be invisible: bit-identical to a
    # plain scheduler under the same seed.
    x = rng.standard_normal((3, IN_FEATURES))
    plain = BatchScheduler(_engine(), n_samples=8, max_batch=1024)
    governed = BatchScheduler(
        _engine(), n_samples=8, max_batch=1024,
        controlplane=ControlPlane(slo=SloPolicy(target_p95_s=1000.0)))
    plain_ticket, governed_ticket = plain.submit(x), governed.submit(x)
    plain.flush()
    governed.flush()
    if not np.array_equal(plain_ticket.result().samples,
                          governed_ticket.result().samples):
        print("FAIL: degradation scenario: an undegraded control-plane "
              "scheduler is not bit-identical to a plain one")
        return None

    return {
        "target_p95_s": DEGRADATION_TARGET_P95_S,
        "n_samples": DEGRADATION_SAMPLES,
        "t_min": DEGRADATION_T_MIN,
        "burst_flushes": DEGRADATION_BURST_FLUSHES,
        "burst_delay_s": DEGRADATION_BURST_DELAY_S,
        "burst_p95_s": burst_p95,
        "degraded_flushes": scheduler.stats.degraded_flushes,
        "min_served_t": int(min(served_ts)),
        "shed_passes": plane.slo.shed_passes,
        "recovery_flushes": recovery_flushes,
        "recovered_p95_s": recovered_p95,
        "recovery_ratio": DEGRADATION_TARGET_P95_S / recovered_p95,
        "full_t_restored": True,
        "bit_exact_full_t": True,
        "workload": "injected-latency overload burst, then drain",
    }


def _compare_with_baseline(record, baseline_path, tolerance):
    """Trend gate against a committed baseline record.

    The compare/tolerance logic lives in the shared
    :mod:`repro.experiments.trend` module (the quality gate reuses
    it); this wrapper only loads the baseline file and, on CI,
    publishes the banked-vs-fresh table to the job summary.
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    failures = compare_bench_record(record, baseline, tolerance)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        table = markdown_table(
            ["engine", "banked", "fresh", "ratio of banked"],
            bench_summary_rows(record, baseline))
        verdict = ("❌ speed trend gate FAILED" if failures
                   else "✅ speed trend gate passed")
        with open(summary_path, "a", encoding="utf-8") as fh:
            fh.write(f"### Speed bench vs banked {baseline_path}\n\n"
                     f"{table}\n{verdict}\n")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--min-speedup", type=float,
                        default=float(os.environ.get("BENCH_MIN_SPEEDUP", 3.0)),
                        help="fail if batched/sequential speedup is below "
                             "this (default 3.0, env BENCH_MIN_SPEEDUP)")
    parser.add_argument("--spindrop-min-speedup", type=float,
                        default=float(os.environ.get(
                            "BENCH_SPINDROP_MIN_SPEEDUP", 2.0)),
                        help="gate for the spindrop MLP, whose sequential "
                             "baseline runs CimLinear's exact-integer fast "
                             "route (default 2.0, env "
                             "BENCH_SPINDROP_MIN_SPEEDUP)")
    parser.add_argument("--cim-conv-min-speedup", type=float,
                        default=float(os.environ.get(
                            "BENCH_CIM_CONV_MIN_SPEEDUP", 2.0)),
                        help="gate for the deployed conv chain, whose "
                             "sequential baseline shares the fast kernels "
                             "(default 2.0, env BENCH_CIM_CONV_MIN_SPEEDUP)")
    parser.add_argument("--bitpack-min-speedup", type=float,
                        default=float(os.environ.get(
                            "BENCH_BITPACK_MIN_SPEEDUP", 4.0)),
                        help="gate for the bit-packed XNOR kernel vs the "
                             "float32 exact route on its memory-bound "
                             "serving shapes (default 4.0, env "
                             "BENCH_BITPACK_MIN_SPEEDUP)")
    parser.add_argument("--lifecycle-min-speedup", type=float,
                        default=float(os.environ.get(
                            "BENCH_LIFECYCLE_MIN_SPEEDUP", 5.0)),
                        help="fail if loading a deployment snapshot is not "
                             "at least this much faster than a fresh "
                             "compile (default 5.0, env "
                             "BENCH_LIFECYCLE_MIN_SPEEDUP)")
    parser.add_argument("--procpool-min-speedup", type=float,
                        default=float(os.environ.get(
                            "BENCH_PROCPOOL_MIN_SPEEDUP", 2.5)),
                        help="fail if the 4-worker process-backed replica "
                             "pool is not at least this much faster than "
                             "4 threaded replicas on the mixed-tenant "
                             "trace; skipped (not failed) below "
                             f"{PROCPOOL_MIN_CORES} cores (default 2.5, "
                             "env BENCH_PROCPOOL_MIN_SPEEDUP)")
    parser.add_argument("--serving-min-ratio", type=float,
                        default=float(os.environ.get(
                            "BENCH_SERVING_MIN_RATIO", 0.9)),
                        help="fail if async serving throughput falls below "
                             "this fraction of the threaded baseline "
                             "(default 0.9, env BENCH_SERVING_MIN_RATIO)")
    parser.add_argument("--compare", metavar="BASELINE", default=None,
                        help="also diff the fresh run against this committed "
                             "benchmark record and fail on any "
                             "speedup-ratio regression beyond "
                             "--compare-tolerance")
    parser.add_argument("--compare-tolerance", type=float,
                        default=float(os.environ.get(
                            "BENCH_COMPARE_TOLERANCE", 0.20)),
                        help="maximum tolerated fractional regression vs "
                             "the --compare baseline (default 0.20)")
    parser.add_argument("--out", default="BENCH_mc_forward.json",
                        help="where to write the benchmark record")
    parser.add_argument("--samples", type=int, default=N_SAMPLES)
    parser.add_argument("--batch", type=int, default=BATCH)
    args = parser.parse_args()

    rng = np.random.default_rng(1)
    x = rng.standard_normal((args.batch, IN_FEATURES))
    x_spin = rng.standard_normal((SPINBAYES_BATCH, IN_FEATURES))
    x_conv = rng.standard_normal((CIM_CONV_BATCH, 1,
                                  CIM_CONV_SIZE, CIM_CONV_SIZE))

    # Correctness guard before timing: seeded batched output must match
    # the sequential loop bit-for-bit, with identical ledger totals.
    spindrop = _gate_engine("spindrop", _engine, x, args.samples,
                            args.spindrop_min_speedup)
    if spindrop is None:
        return 1
    spinbayes = _gate_engine("spinbayes", _spinbayes_engine, x_spin,
                             args.samples, args.min_speedup)
    if spinbayes is None:
        return 1
    segmentation = _gate_segmentation(args.min_speedup)
    if segmentation is None:
        return 1
    cim_conv = _gate_engine("cim_conv", _cim_conv_engine, x_conv,
                            CIM_CONV_SAMPLES, args.cim_conv_min_speedup,
                            check_plan_rebuilds=True)
    if cim_conv is None:
        return 1
    spindrop["model"] = (f"spindrop_mlp {IN_FEATURES}-"
                         f"{'-'.join(map(str, HIDDEN))}-{N_CLASSES}")
    spinbayes["model"] = (f"spinbayes {IN_FEATURES}-"
                          f"{'-'.join(map(str, HIDDEN))}-{N_CLASSES} "
                          f"N={SPINBAYES_COMPONENTS} "
                          f"levels={SPINBAYES_LEVELS}")
    cim_conv["model"] = (f"spatial_spindrop_cnn deployed "
                         f"{CIM_CONV_SIZE}x{CIM_CONV_SIZE} widths="
                         f"{'-'.join(map(str, CIM_CONV_WIDTHS))}")

    bitpack_gates = _gate_bitpack(args.bitpack_min_speedup)
    if bitpack_gates is None:
        return 1
    bitpack_mvm, bitpack_linear = bitpack_gates

    lifecycle = _gate_lifecycle(args.lifecycle_min_speedup)
    if lifecycle is None:
        return 1

    procpool = _gate_procpool(args.procpool_min_speedup)
    if procpool is None:
        return 1

    serving = _gate_serving(args.serving_min_ratio)
    mixed_tenant = _gate_mixed_tenant()
    if mixed_tenant is None:
        return 1
    degradation = _gate_degradation()
    if degradation is None:
        return 1

    # Top-level keys keep the PR-1 layout (the SpinDrop engine);
    # per-engine sections carry the speedup gates (including the
    # lifecycle snapshot-load gate), and the serving section the
    # front-end comparison plus the mixed-tenant scenario.
    record = dict(spindrop)
    record["engines"] = {"spindrop": spindrop, "spinbayes": spinbayes,
                         "segmentation": segmentation, "cim_conv": cim_conv,
                         "bitpack_mvm": bitpack_mvm,
                         "bitpack_linear": bitpack_linear,
                         "lifecycle.snapshot_load": lifecycle,
                         "procpool": procpool}
    record["serving"] = serving
    record["serving"]["mixed_tenant"] = mixed_tenant
    record["serving"]["degradation"] = degradation
    record["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())

    compare_failures = []
    if args.compare:
        compare_failures = _compare_with_baseline(
            record, args.compare, args.compare_tolerance)

    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")

    failed = False
    for name, entry in record["engines"].items():
        if "speedup" not in entry:
            # A hardware-skipped gate (e.g. procpool below its core
            # floor) records its reason and neither prints timings nor
            # gates — the trend compare skips it the same way.
            reason = entry.get("skipped", "no measurement")
            print(f"[{name}] SKIPPED: {reason}")
            continue
        gate = entry["min_speedup"]
        print(f"[{name}] sequential: {entry['sequential_s'] * 1e3:8.2f} ms")
        print(f"[{name}] batched:    {entry['batched_s'] * 1e3:8.2f} ms")
        print(f"[{name}] speedup:    {entry['speedup']:8.2f}x  "
              f"(gate: >= {gate}x)")
        if entry["speedup"] < gate:
            print(f"FAIL: {name} batched engine below the {gate}x gate")
            failed = True
    print(f"[mixed-tenant] {mixed_tenant['rows_per_s']:8.0f} rows/s over "
          f"{len(mixed_tenant['per_model'])} registered models "
          f"(all {mixed_tenant['rows']} rows accounted)")
    print(f"[serving] threaded:   {serving['threaded_rows_per_s']:8.0f} "
          f"rows/s ({SERVING_REPLICAS} replicas)")
    print(f"[serving] async:      {serving['async_rows_per_s']:8.0f} "
          f"rows/s (autoscaled to {serving['async_final_replicas']})")
    print(f"[serving] ratio:      {serving['throughput_ratio']:8.2f}x  "
          f"(gate: >= {args.serving_min_ratio}x)")
    if serving["throughput_ratio"] < args.serving_min_ratio:
        print(f"FAIL: async serving throughput below "
              f"{args.serving_min_ratio}x of the threaded baseline")
        failed = True
    print(f"[degradation] burst p95 {degradation['burst_p95_s'] * 1e3:.1f} "
          f"ms -> served T down to {degradation['min_served_t']} "
          f"({degradation['shed_passes']} passes shed)")
    print(f"[degradation] recovered p95 "
          f"{degradation['recovered_p95_s'] * 1e3:.1f} ms under the "
          f"{degradation['target_p95_s'] * 1e3:.1f} ms target after "
          f"{degradation['recovery_flushes']} flushes; full T restored")
    for message in compare_failures:
        print(f"FAIL: {message}")
        failed = True
    print(f"record written to {args.out}")
    if failed:
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
