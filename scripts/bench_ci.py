"""CI benchmark gate: batched MC inference must beat sequential.

Times T-pass Monte-Carlo inference through the deployed CIM chain on
the Table-I (fast preset) SpinDrop MLP, once through the original
sequential per-pass loop and once through the batched engine, verifies
the two are bit-for-bit identical, writes the measurements to
``BENCH_mc_forward.json``, and exits non-zero if the batched path is
not at least ``--min-speedup`` (default 3×) faster.

Run locally from a source checkout:

    python scripts/bench_ci.py

CI runs it as a separate job so a perf regression in the batched
engine fails the build even when all functional tests pass.
"""

import argparse
import json
import os
import sys
import time

try:
    from repro.bayesian import BayesianCim, make_spindrop_mlp
    from repro.cim import CimConfig
except ImportError:  # source checkout without install
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))
    from repro.bayesian import BayesianCim, make_spindrop_mlp
    from repro.cim import CimConfig

import numpy as np

# Table-I model (fast preset): 256-dim SynthDigits input, (128, 64)
# hidden, 10 classes, SpinDrop after each hidden block.
IN_FEATURES = 256
HIDDEN = (128, 64)
N_CLASSES = 10
DROPOUT_P = 0.25
BATCH = 12
N_SAMPLES = 20
REPEATS = 5


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _engine() -> BayesianCim:
    model = make_spindrop_mlp(IN_FEATURES, HIDDEN, N_CLASSES,
                              p=DROPOUT_P, seed=0)
    return BayesianCim(model, CimConfig(seed=0), seed=0)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--min-speedup", type=float,
                        default=float(os.environ.get("BENCH_MIN_SPEEDUP", 3.0)),
                        help="fail if batched/sequential speedup is below "
                             "this (default 3.0, env BENCH_MIN_SPEEDUP)")
    parser.add_argument("--out", default="BENCH_mc_forward.json",
                        help="where to write the benchmark record")
    parser.add_argument("--samples", type=int, default=N_SAMPLES)
    parser.add_argument("--batch", type=int, default=BATCH)
    args = parser.parse_args()

    x = np.random.default_rng(1).standard_normal((args.batch, IN_FEATURES))
    engine = _engine()

    # Correctness guard before timing: seeded batched output must match
    # the sequential loop bit-for-bit, with identical ledger totals.
    check_seq = _engine()
    check_bat = _engine()
    check_seq.ledger.reset()
    check_bat.ledger.reset()
    seq_result = check_seq.mc_forward(x, n_samples=args.samples,
                                      batched=False)
    bat_result = check_bat.mc_forward_batched(x, n_samples=args.samples)
    if not np.array_equal(seq_result.samples, bat_result.samples):
        print("FAIL: batched MC output differs from sequential")
        return 1
    if check_seq.ledger.as_dict() != check_bat.ledger.as_dict():
        print("FAIL: batched MC ledger differs from sequential")
        return 1

    # Warm up both paths, then time best-of-N.
    engine.mc_forward(x[:2], n_samples=2, batched=False)
    engine.mc_forward_batched(x[:2], n_samples=2)
    seq_s = _best_of(
        lambda: engine.mc_forward(x, n_samples=args.samples, batched=False),
        REPEATS)
    bat_s = _best_of(
        lambda: engine.mc_forward_batched(x, n_samples=args.samples),
        REPEATS)
    speedup = seq_s / bat_s

    record = {
        "model": f"spindrop_mlp {IN_FEATURES}-"
                 f"{'-'.join(map(str, HIDDEN))}-{N_CLASSES}",
        "batch": args.batch,
        "n_samples": args.samples,
        "repeats": REPEATS,
        "sequential_s": seq_s,
        "batched_s": bat_s,
        "speedup": speedup,
        "min_speedup": args.min_speedup,
        "bit_exact": True,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")

    print(f"sequential: {seq_s * 1e3:8.2f} ms")
    print(f"batched:    {bat_s * 1e3:8.2f} ms")
    print(f"speedup:    {speedup:8.2f}x  (gate: >= {args.min_speedup}x)")
    print(f"record written to {args.out}")
    if speedup < args.min_speedup:
        print(f"FAIL: batched engine below the {args.min_speedup}x gate")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
