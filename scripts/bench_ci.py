"""CI benchmark gate: batched MC inference must beat sequential.

Times T-pass Monte-Carlo inference for THREE engines — the Table-I
(fast preset) SpinDrop MLP on :class:`BayesianCim`, the subset-VI
teacher deployed as a :class:`SpinBayesNetwork` (N crossbars +
arbiter per layer), and the §III-B.2 Bayesian segmenter through the
pass-stacked ``mc_segment_batched`` engine — once through the
original sequential per-pass loop and once through the batched
engine.  For each engine it verifies the two paths are bit-for-bit
identical (samples, and ledger totals for the deployed engines; the
segmentation gate additionally checks that a warm engine performs
zero im2col index-plan rebuilds), writes the measurements to
``BENCH_mc_forward.json``, and exits non-zero if any batched path is
not at least ``--min-speedup`` (default 3×) faster.

Run locally from a source checkout:

    python scripts/bench_ci.py

CI runs it as a separate job so a perf regression in the batched
engines fails the build even when all functional tests pass.
"""

import argparse
import json
import os
import sys
import time

try:
    from repro.bayesian import (
        BayesianCim,
        SpinBayesNetwork,
        make_bayesian_segmenter,
        make_spindrop_mlp,
        make_subset_vi_mlp,
        mc_segment,
        mc_segment_batched,
    )
    from repro.cim import CimConfig
    from repro.tensor.functional import conv_plan_cache_stats
except ImportError:  # source checkout without install
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))
    from repro.bayesian import (
        BayesianCim,
        SpinBayesNetwork,
        make_bayesian_segmenter,
        make_spindrop_mlp,
        make_subset_vi_mlp,
        mc_segment,
        mc_segment_batched,
    )
    from repro.cim import CimConfig
    from repro.tensor.functional import conv_plan_cache_stats

import numpy as np

# Table-I model (fast preset): 256-dim SynthDigits input, (128, 64)
# hidden, 10 classes, SpinDrop after each hidden block.
IN_FEATURES = 256
HIDDEN = (128, 64)
N_CLASSES = 10
DROPOUT_P = 0.25
BATCH = 12
N_SAMPLES = 20
REPEATS = 5
# SpinBayes serving slice: the batched engine's payoff is the
# low-latency regime where per-pass Python overhead dominates, so the
# gate times a small coalesced batch (the scheduler's common case).
SPINBAYES_BATCH = 4
SPINBAYES_COMPONENTS = 8
SPINBAYES_LEVELS = 16
# Segmentation serving slice: the per-pixel safety-critical use case
# is latency-bound single-image traffic; the ISSUE gate pins T=10 on
# the default segmenter (width 8, p 0.15, 16x16 scenes).
SEG_BATCH = 1
SEG_SIZE = 16
SEG_SAMPLES = 10


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _engine() -> BayesianCim:
    model = make_spindrop_mlp(IN_FEATURES, HIDDEN, N_CLASSES,
                              p=DROPOUT_P, seed=0)
    return BayesianCim(model, CimConfig(seed=0), seed=0)


def _spinbayes_engine() -> SpinBayesNetwork:
    teacher = make_subset_vi_mlp(IN_FEATURES, HIDDEN, N_CLASSES, seed=0)
    return SpinBayesNetwork.from_subset_vi(
        teacher, n_components=SPINBAYES_COMPONENTS,
        n_levels=SPINBAYES_LEVELS, config=CimConfig(seed=0), seed=0)


def _gate_engine(name, make_engine, x, n_samples, min_speedup):
    """Equivalence check + timed gate for one engine; returns a record."""
    check_seq = make_engine()
    check_bat = make_engine()
    check_seq.ledger.reset()
    check_bat.ledger.reset()
    seq_result = check_seq.mc_forward(x, n_samples=n_samples, batched=False)
    bat_result = check_bat.mc_forward_batched(x, n_samples=n_samples)
    if not np.array_equal(seq_result.samples, bat_result.samples):
        print(f"FAIL: {name} batched MC output differs from sequential")
        return None
    if check_seq.ledger.as_dict() != check_bat.ledger.as_dict():
        print(f"FAIL: {name} batched MC ledger differs from sequential")
        return None

    engine = make_engine()
    engine.mc_forward(x[:2], n_samples=2, batched=False)
    engine.mc_forward_batched(x[:2], n_samples=2)
    seq_s = _best_of(
        lambda: engine.mc_forward(x, n_samples=n_samples, batched=False),
        REPEATS)
    bat_s = _best_of(
        lambda: engine.mc_forward_batched(x, n_samples=n_samples),
        REPEATS)
    return {
        "batch": len(x),
        "n_samples": n_samples,
        "repeats": REPEATS,
        "sequential_s": seq_s,
        "batched_s": bat_s,
        "speedup": seq_s / bat_s,
        "min_speedup": min_speedup,
        "bit_exact": True,
    }


def _gate_segmentation(min_speedup):
    """Equivalence + plan-cache + timed gate for the segmentation
    engine (software path: no OpLedger; bit-exactness covers probs
    and per-pass samples)."""
    x = np.random.default_rng(2).standard_normal(
        (SEG_BATCH, 1, SEG_SIZE, SEG_SIZE))
    check_seq = make_bayesian_segmenter(seed=0)
    check_bat = make_bayesian_segmenter(seed=0)
    seq_result = mc_segment(check_seq, x, n_samples=SEG_SAMPLES,
                            batched=False)
    bat_result = mc_segment_batched(check_bat, x, n_samples=SEG_SAMPLES)
    if not np.array_equal(seq_result.samples, bat_result.samples):
        print("FAIL: segmentation batched MC output differs from sequential")
        return None
    if not np.array_equal(seq_result.probs, bat_result.probs):
        print("FAIL: segmentation batched MC probs differ from sequential")
        return None

    model = make_bayesian_segmenter(seed=0)
    mc_segment(model, x, n_samples=2, batched=False)
    mc_segment_batched(model, x, n_samples=2)
    # Warm engines must reuse the memoized im2col/pooling plans:
    # zero index-plan rebuilds from here on.
    builds_before = conv_plan_cache_stats()["builds"]
    mc_segment_batched(model, x, n_samples=SEG_SAMPLES)
    plan_rebuilds = conv_plan_cache_stats()["builds"] - builds_before
    if plan_rebuilds != 0:
        print(f"FAIL: warm segmentation engine rebuilt {plan_rebuilds} "
              f"im2col index plans (expected 0)")
        return None

    seq_s = _best_of(
        lambda: mc_segment(model, x, n_samples=SEG_SAMPLES, batched=False),
        REPEATS)
    bat_s = _best_of(
        lambda: mc_segment_batched(model, x, n_samples=SEG_SAMPLES),
        REPEATS)
    return {
        "batch": SEG_BATCH,
        "n_samples": SEG_SAMPLES,
        "repeats": REPEATS,
        "sequential_s": seq_s,
        "batched_s": bat_s,
        "speedup": seq_s / bat_s,
        "min_speedup": min_speedup,
        "bit_exact": True,
        "plan_rebuilds_warm": plan_rebuilds,
        "model": (f"bayesian_segmenter width=8 p=0.15 "
                  f"{SEG_SIZE}x{SEG_SIZE}"),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--min-speedup", type=float,
                        default=float(os.environ.get("BENCH_MIN_SPEEDUP", 3.0)),
                        help="fail if batched/sequential speedup is below "
                             "this (default 3.0, env BENCH_MIN_SPEEDUP)")
    parser.add_argument("--out", default="BENCH_mc_forward.json",
                        help="where to write the benchmark record")
    parser.add_argument("--samples", type=int, default=N_SAMPLES)
    parser.add_argument("--batch", type=int, default=BATCH)
    args = parser.parse_args()

    rng = np.random.default_rng(1)
    x = rng.standard_normal((args.batch, IN_FEATURES))
    x_spin = rng.standard_normal((SPINBAYES_BATCH, IN_FEATURES))

    # Correctness guard before timing: seeded batched output must match
    # the sequential loop bit-for-bit, with identical ledger totals.
    spindrop = _gate_engine("spindrop", _engine, x, args.samples,
                            args.min_speedup)
    if spindrop is None:
        return 1
    spinbayes = _gate_engine("spinbayes", _spinbayes_engine, x_spin,
                             args.samples, args.min_speedup)
    if spinbayes is None:
        return 1
    segmentation = _gate_segmentation(args.min_speedup)
    if segmentation is None:
        return 1
    spindrop["model"] = (f"spindrop_mlp {IN_FEATURES}-"
                         f"{'-'.join(map(str, HIDDEN))}-{N_CLASSES}")
    spinbayes["model"] = (f"spinbayes {IN_FEATURES}-"
                          f"{'-'.join(map(str, HIDDEN))}-{N_CLASSES} "
                          f"N={SPINBAYES_COMPONENTS} "
                          f"levels={SPINBAYES_LEVELS}")

    # Top-level keys keep the PR-1 layout (the SpinDrop engine);
    # per-engine sections carry all three gates.
    record = dict(spindrop)
    record["engines"] = {"spindrop": spindrop, "spinbayes": spinbayes,
                         "segmentation": segmentation}
    record["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")

    failed = False
    for name, entry in record["engines"].items():
        print(f"[{name}] sequential: {entry['sequential_s'] * 1e3:8.2f} ms")
        print(f"[{name}] batched:    {entry['batched_s'] * 1e3:8.2f} ms")
        print(f"[{name}] speedup:    {entry['speedup']:8.2f}x  "
              f"(gate: >= {args.min_speedup}x)")
        if entry["speedup"] < args.min_speedup:
            print(f"FAIL: {name} batched engine below the "
                  f"{args.min_speedup}x gate")
            failed = True
    print(f"record written to {args.out}")
    if failed:
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
