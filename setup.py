"""Package metadata for the NeuSpin reproduction.

The package lives under ``src/``; ``pip install -e .`` replaces the
``PYTHONPATH=src`` incantation and installs the ``repro-experiments``
console command (the full experiment sweep behind EXPERIMENTS.md).
"""

from setuptools import find_packages, setup

setup(
    name="neuspin-repro",
    version="0.2.0",
    description=(
        "Reproduction of NeuSpin: spintronic Bayesian CIM with a "
        "batched Monte-Carlo inference engine"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
        "cov": ["pytest-cov"],
        "lint": ["ruff"],
    },
    entry_points={
        "console_scripts": [
            "repro-experiments=repro.experiments.cli:main",
        ],
    },
)
