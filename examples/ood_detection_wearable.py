"""OOD detection for an edge healthcare scenario.

The paper's motivation: IoT / smart-wearable devices for personalized
healthcare must know when an input is outside what the model was
trained on (Sec. I, Sec. II-B).  Here a compact Bayesian classifier —
trained to recognize ten "gesture glyph" patterns — faces three kinds
of anomalous inputs at inference time:

* sensor failure producing uniform noise;
* a mounting shift producing heavily rotated patterns;
* an unknown gesture family it was never trained on.

The predictive entropy of the Monte-Carlo posterior flags all three,
while a deterministic network stays confidently wrong.

Run:  python examples/ood_detection_wearable.py
"""

from repro.bayesian import (
    deterministic_predict,
    make_binary_mlp,
    make_spindrop_mlp,
    mc_predict,
)
from repro.data import ood, synth_digits, train_test_split
from repro.experiments.common import TrainConfig, train_classifier
from repro.experiments.common import Dataset
from repro.uncertainty import detect


def main() -> None:
    x, y = synth_digits(4000, jitter=0.4, seed=0)
    (xtr, ytr), (xte, yte) = train_test_split(x, y, 0.2, seed=1)
    data = Dataset(xtr, ytr, xte, yte, n_classes=10, image_size=16)

    config = TrainConfig(epochs=20, lr=1e-2, mc_samples=25, seed=0)
    bayes = train_classifier(
        make_spindrop_mlp(256, (256, 128), 10, p=0.2, seed=2),
        data, config)
    det = train_classifier(
        make_binary_mlp(256, (256, 128), 10, seed=2), data, config)

    id_result = mc_predict(bayes, xte, n_samples=config.mc_samples)
    print(f"in-distribution accuracy: "
          f"{(id_result.predictions == yte).mean() * 100:.2f}%")

    sources = {
        "sensor noise (uniform)": ood.uniform_noise(800, 256, seed=3),
        "mounting shift (rotated)": ood.random_rotation(xte[:800], seed=4),
        "unknown gestures (letters)": ood.letters(800, seed=5),
    }

    print(f"\n{'anomaly source':28s} {'detected@95%TPR':>16s} "
          f"{'AUROC':>7s} {'det. conf.':>11s}")
    for name, x_ood in sources.items():
        ood_result = mc_predict(bayes, x_ood, n_samples=config.mc_samples)
        report = detect(id_result.predictive_entropy,
                        ood_result.predictive_entropy)
        # What the deterministic net believes about the same inputs:
        det_conf = deterministic_predict(det, x_ood).max(axis=1).mean()
        print(f"{name:28s} {report.detection_rate * 100:15.1f}% "
              f"{report.auroc:7.3f} {det_conf * 100:10.1f}%")

    print("\nThe deterministic network stays highly confident on inputs "
          "it has never seen;\nthe Bayesian posterior's entropy flags them "
          "(the paper's 'up to 100% OOD detection' protocol).")


if __name__ == "__main__":
    main()
