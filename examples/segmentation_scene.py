"""Bayesian semantic segmentation with per-pixel uncertainty maps.

The paper's SpinBayes evaluation covers "semantic segmentation tasks
on two safety-critical tasks: medical image diagnosis and automotive
scene understanding" (§III-B.2).  This example trains the binary
Bayesian encoder–decoder on the synthetic scene dataset and renders
ASCII uncertainty maps: the per-pixel predictive entropy lights up on
object boundaries and — crucially — on *unknown* objects the model
was never trained to segment.

Run:  python examples/segmentation_scene.py
"""

import numpy as np

from repro import nn
from repro.bayesian import (
    PredictiveResult,
    SegmenterEngine,
    make_bayesian_segmenter,
    mc_segment,
    pixel_maps,
    segmentation_loss,
)
from repro.data import batches, segmentation_scenes
from repro.serving import BatchScheduler
from repro.tensor import Tensor
from repro.uncertainty import mean_iou


def ascii_map(values: np.ndarray, chars: str = " .:-=+*#%@") -> str:
    """Render a 2-D array as an ASCII intensity map."""
    lo, hi = values.min(), values.max()
    norm = (values - lo) / max(hi - lo, 1e-9)
    idx = (norm * (len(chars) - 1)).astype(int)
    return "\n".join("".join(chars[j] for j in row) for row in idx)


def main() -> None:
    x_train, m_train = segmentation_scenes(1200, seed=0)
    x_test, m_test = segmentation_scenes(200, seed=1)
    x_ood, m_ood = segmentation_scenes(200, seed=2, ood_objects=True)

    model = make_bayesian_segmenter(width=8, p=0.15, seed=3)
    optimizer = nn.Adam(model.parameters(), lr=1e-2)
    scheduler = nn.CosineLR(optimizer, 20)
    print("training the Bayesian segmenter...")
    for epoch in range(20):
        model.train()
        for xb, yb in batches(x_train, m_train, 32, seed=epoch):
            loss = segmentation_loss(model(Tensor(xb)), yb)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            nn.clip_latent_weights(model)
        scheduler.step()

    # All T passes run as one pass-stacked tensor (mc_segment's
    # default engine — bit-identical to the sequential loop).
    shape = (len(x_test), 16, 16)
    result = mc_segment(model, x_test, n_samples=20)
    pred, entropy = pixel_maps(result, shape)
    print(f"\nmIoU {mean_iou(pred, m_test, 3):.3f}   "
          f"pixel accuracy {(pred == m_test).mean() * 100:.1f}%")

    # Serving-side: per-pixel results through the request scheduler —
    # concurrent callers submit images, each gets back its own pixels.
    with BatchScheduler(SegmenterEngine(model), n_samples=20,
                        feature_shape=(1, 16, 16)) as scheduler:
        tickets = [scheduler.submit(x_ood[i:i + 50])
                   for i in range(0, len(x_ood), 50)]
        parts = [t.result() for t in tickets]
    ood_samples = np.concatenate([p.samples for p in parts], axis=1)
    ood_result = PredictiveResult.from_samples(ood_samples)
    ood_pred, ood_entropy = pixel_maps(ood_result, (len(x_ood), 16, 16))

    i = 0
    print("\n--- known scene: input / prediction / uncertainty ---")
    print(ascii_map(x_test[i, 0]))
    print()
    print(ascii_map(pred[i].astype(float)))
    print()
    print(ascii_map(entropy[i]))

    j = int(np.argmax(ood_entropy.mean(axis=(1, 2))))
    print("\n--- scene with an UNKNOWN object: input / uncertainty ---")
    print(ascii_map(x_ood[j, 0]))
    print()
    print(ascii_map(ood_entropy[j]))

    obj_h_id = entropy[m_test > 0].mean()
    obj_h_ood = ood_entropy[m_ood > 0].mean()
    print(f"\nmean object-pixel entropy: known {obj_h_id:.3f}  "
          f"unknown {obj_h_ood:.3f}")
    print("high-entropy pixels mark where the safety-critical system "
          "should not trust the segmentation.")


if __name__ == "__main__":
    main()
