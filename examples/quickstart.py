"""Quickstart: train a spintronic Bayesian NN, deploy it to CIM, measure.

This walks the full NeuSpin pipeline in ~1 minute on a laptop CPU:

1. generate a synthetic digit-classification dataset;
2. train a binary Bayesian MLP with SpinDrop (MC-Dropout whose
   randomness comes from stochastic MTJ switching);
3. run Monte-Carlo Bayesian inference in software;
4. deploy the model onto the simulated SOT-MRAM crossbar fabric
   (device variability included) and run the same inference on
   "hardware" through the batched MC engine (all T passes as one
   stacked tensor — bit-for-bit the sequential loop, much faster);
5. serve concurrent requests through the coalescing BatchScheduler;
6. price the inference from the operation ledger.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import nn
from repro.bayesian import BayesianCim, make_spindrop_mlp, mc_predict
from repro.cim import CimConfig
from repro.data import batches, synth_digits, train_test_split
from repro.devices import DeviceVariability, VariabilityParams
from repro.energy import format_energy, price_ledger, render_breakdown
from repro.tensor import Tensor


def main() -> None:
    # ------------------------------------------------------------ data
    x, y = synth_digits(3000, jitter=0.6, seed=0)
    (x_train, y_train), (x_test, y_test) = train_test_split(x, y, 0.2,
                                                            seed=1)
    print(f"dataset: {len(x_train)} train / {len(x_test)} test, "
          f"{x.shape[1]} features, 10 classes")

    # ----------------------------------------------------------- train
    model = make_spindrop_mlp(in_features=256, hidden=(128, 64),
                              n_classes=10, p=0.15, seed=2)
    optimizer = nn.Adam(model.parameters(), lr=1e-2)
    scheduler = nn.CosineLR(optimizer, t_max=12)
    for epoch in range(12):
        model.train()
        for xb, yb in batches(x_train, y_train, 64, seed=epoch):
            loss = nn.cross_entropy(model(Tensor(xb)), yb)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            nn.clip_latent_weights(model)
        scheduler.step()
    print(f"training done (final batch loss {float(loss.data):.3f})")

    # ---------------------------------------------- Bayesian inference
    result = mc_predict(model, x_test, n_samples=20)
    accuracy = (result.predictions == y_test).mean()
    print(f"software MC inference:  accuracy {accuracy * 100:.2f}%  "
          f"mean predictive entropy {result.predictive_entropy.mean():.3f}")

    # ---------------------------------------------------------- deploy
    variability = DeviceVariability(
        VariabilityParams(sigma_r=0.03, sigma_delta=0.03, sigma_read=0.01),
        rng=np.random.default_rng(3))
    deployed = BayesianCim(model, CimConfig(variability=variability,
                                            adc_bits=6, seed=3))
    print(f"deployed: {deployed.network.n_crossbars} crossbars, "
          f"{deployed.n_dropout_modules} MTJ dropout modules")

    hw_result = deployed.mc_forward(x_test[:200], n_samples=20)  # batched
    hw_accuracy = (hw_result.predictions == y_test[:200]).mean()
    print(f"CIM inference (variability on): accuracy "
          f"{hw_accuracy * 100:.2f}%")

    # ----------------------------------------------------------- serve
    # Concurrent callers coalesce into one batched MC call; each gets
    # back its own slice of the predictive distribution.
    from repro.serving import BatchScheduler

    scheduler = BatchScheduler(deployed, n_samples=20, max_batch=64)
    tickets = [scheduler.submit(x_test[200 + 8 * i: 200 + 8 * (i + 1)])
               for i in range(4)]
    scheduler.flush()
    entropies = [t.result().predictive_entropy.mean() for t in tickets]
    print(f"served {scheduler.stats.requests} requests in "
          f"{scheduler.stats.flushes} batched call(s); per-request mean "
          f"entropy {', '.join(f'{e:.3f}' for e in entropies)}")

    # ----------------------------------------------------------- price
    joules, breakdown = price_ledger(deployed.ledger)
    per_image = joules / 200
    print(f"\nenergy per image ({20} MC passes): "
          f"{format_energy(per_image)}")
    print(render_breakdown(breakdown, title="operation breakdown (total)"))


if __name__ == "__main__":
    main()
