"""SpinBayes design-space exploration (Fig. 3 / Sec. III-B.2).

Trains a subset-VI teacher once, then sweeps the two SpinBayes design
knobs — the number of posterior crossbars N (arbiter fan-out) and the
multi-level-cell precision — reporting accuracy, per-image energy,
post-training-quantization error and arbiter statistics for every
design point.  This is the "design-time exploration to optimize
bit-precision" the paper describes.

Run:  python examples/spinbayes_design_space.py
"""

from repro.bayesian import SpinBayesNetwork, make_subset_vi_mlp
from repro.cim import CimConfig
from repro.data import synth_digits, train_test_split
from repro.energy import format_energy, price_ledger, render_table
from repro.experiments.common import Dataset, TrainConfig, train_classifier


def main() -> None:
    x, y = synth_digits(4000, jitter=0.5, seed=0)
    (xtr, ytr), (xte, yte) = train_test_split(x, y, 0.2, seed=1)
    data = Dataset(xtr, ytr, xte, yte, n_classes=10, image_size=16)

    print("training the subset-VI teacher...")
    teacher = train_classifier(
        make_subset_vi_mlp(256, (256, 128), 10, seed=2),
        data, TrainConfig(epochs=18, lr=1e-2, mc_samples=20, seed=0),
        loss_kind="elbo")

    x_eval, y_eval = xte[:400], yte[:400]
    rows = []
    for n_components in (2, 4, 8, 16):
        for n_levels in (4, 8, 16, 32):
            net = SpinBayesNetwork.from_subset_vi(
                teacher, n_components=n_components, n_levels=n_levels,
                config=CimConfig(seed=3 + n_components), seed=3)
            net.ledger.reset()
            result = net.mc_forward(x_eval, n_samples=20)
            joules, _ = price_ledger(net.ledger)
            acc = (result.predictions == y_eval).mean()
            rows.append([
                n_components, n_levels, f"{acc * 100:.1f}%",
                format_energy(joules / len(x_eval)),
                f"{net.quantization_error():.4f}",
                net.n_crossbars,
            ])
    print()
    print(render_table(
        ["N crossbars/layer", "levels", "accuracy", "E/image",
         "PTQ error", "total crossbars"],
        rows, title="SpinBayes design space (Fig. 3 exploration)"))

    print("\nReading the table: accuracy saturates after ~8 components "
          "and ~16 levels;\nthe arbiter costs only ceil(log2 N) device "
          "cycles per layer per pass, so the\nenergy column barely moves "
          "— the area (crossbar count) is the real price of N.")


if __name__ == "__main__":
    main()
