"""Asyncio serving with load metrics and replica autoscaling.

The paper's deployment story is a CIM fabric answering many
concurrent uncertainty queries.  This example runs the full async
serving stack on a small SpinDrop classifier: coroutine clients
arrive in a Poisson burst, the :class:`AsyncBatchScheduler` coalesces
them into batched Monte-Carlo flushes on a worker thread, a
:class:`LoadMetrics` collector watches queue depth / latency /
utilization, and an :class:`Autoscaler` grows the sharded replica set
when the burst saturates the fabric — then shrinks it again as the
traffic drains.

Run:  python examples/serving_async.py
"""

import asyncio
import time

import numpy as np

from repro.bayesian import BayesianCim, make_spindrop_mlp
from repro.cim import CimConfig
from repro.serving import (
    AsyncBatchScheduler,
    Autoscaler,
    LoadMetrics,
    ShardedScheduler,
)

IN_FEATURES = 64
N_CLASSES = 4


def make_engine(seed: int = 0) -> BayesianCim:
    model = make_spindrop_mlp(IN_FEATURES, (48,), N_CLASSES, p=0.25,
                              seed=1)
    return BayesianCim(model, CimConfig(seed=2), seed=seed)


async def client(frontend, rng, arrival_s, start):
    """One serving client: arrive, predict, report uncertainty."""
    delay = arrival_s - (time.perf_counter() - start)
    if delay > 0:
        await asyncio.sleep(delay)
    x = rng.standard_normal((rng.integers(1, 4), IN_FEATURES))
    result = await frontend.predict(x, n_samples=32)
    return float(result.mutual_information.mean())


async def main() -> None:
    rng = np.random.default_rng(7)
    sharded = ShardedScheduler([make_engine(seed=3)], n_samples=32,
                               max_batch=24)
    metrics = LoadMetrics(ewma_alpha=0.4, throughput_window_s=0.2)
    autoscaler = Autoscaler(
        sharded, make_engine, metrics=metrics,
        min_replicas=1, max_replicas=3,
        scale_up_utilization=0.3, scale_down_utilization=0.1,
        scale_up_queue_rows=24, down_patience=4, warm_spares=1)

    async with AsyncBatchScheduler(
            sharded, flush_interval=0.003,
            autoscaler=autoscaler) as frontend:
        print("Poisson burst: 120 clients, ~0.3 ms mean gap")
        arrivals = np.cumsum(rng.exponential(0.0003, 120))
        start = time.perf_counter()
        scores = await asyncio.gather(*[
            client(frontend, rng, float(t), start) for t in arrivals])
        wall = time.perf_counter() - start

        snap = metrics.snapshot()
        print(f"  served {snap.requests} requests / {snap.rows} rows "
              f"in {wall * 1e3:.0f} ms "
              f"({snap.rows / wall:.0f} rows/s)")
        print(f"  flushes: {snap.flushes}  "
              f"mean batch: {snap.mean_flush_rows:.1f} rows  "
              f"p50/p95 flush latency: "
              f"{snap.p50_latency_s * 1e3:.1f} / "
              f"{snap.p95_latency_s * 1e3:.1f} ms")
        print(f"  utilization (EWMA): {snap.utilization:.2f}  "
              f"max queue depth: {snap.max_queue_depth} rows")
        print(f"  replicas: {sharded.n_replicas} "
              f"(scale-ups: {autoscaler.scale_ups})  "
              f"per-replica rows: {snap.replica_rows}")
        print(f"  mean epistemic uncertainty (BALD): "
              f"{np.mean(scores):.4f}")

        # Traffic drains; idle observations walk the replica set back.
        print("drain: idle policy steps")
        for _ in range(10):
            await asyncio.sleep(0.06)
            autoscaler.step()
        print(f"  replicas after drain: {sharded.n_replicas} "
              f"(scale-downs: {autoscaler.scale_downs}, "
              f"warm spares: {autoscaler.spare_count})")


if __name__ == "__main__":
    asyncio.run(main())
