"""Self-healing inference under manufacturing defects (Sec. III-A.4).

Edge devices cannot be re-tested after deployment; stuck-at faults in
the MTJ crossbar silently corrupt weights.  This example deploys the
same task three ways —

* a deterministic binary network,
* a SpinDrop Bayesian network,
* the inverted-normalization + affine-dropout ("self-healing") network

— onto crossbars with increasing stuck-at fault rates, and shows how
Monte-Carlo Bayesian inference (and the affine/inverted-norm structure
in particular) retains accuracy where the deterministic net collapses.

Run:  python examples/self_healing_edge.py
"""

import numpy as np

from repro.bayesian import (
    BayesianCim,
    make_affine_mlp,
    make_binary_mlp,
    make_spindrop_mlp,
)
from repro.cim import CimConfig
from repro.data import synth_digits, train_test_split
from repro.devices import DefectModel, DefectRates
from repro.energy import render_table
from repro.experiments.common import Dataset, TrainConfig, train_classifier


def main() -> None:
    x, y = synth_digits(4000, jitter=0.5, seed=0)
    (xtr, ytr), (xte, yte) = train_test_split(x, y, 0.2, seed=1)
    data = Dataset(xtr, ytr, xte, yte, n_classes=10, image_size=16)
    config = TrainConfig(epochs=18, lr=1e-2, mc_samples=20, seed=0)

    print("training three models (deterministic / SpinDrop / "
          "inverted-norm + affine dropout)...")
    models = {
        "deterministic": train_classifier(
            make_binary_mlp(256, (256, 128), 10, seed=2), data, config),
        "spindrop": train_classifier(
            make_spindrop_mlp(256, (256, 128), 10, p=0.15, seed=2),
            data, config),
        "affine (self-healing)": train_classifier(
            make_affine_mlp(256, (256, 128), 10, p=0.15, seed=2),
            data, config),
    }

    fault_rates = (0.0, 0.02, 0.05, 0.10, 0.20)
    x_eval, y_eval = xte[:400], yte[:400]
    table = {name: [] for name in models}

    for rate in fault_rates:
        defects = None
        if rate > 0:
            defects = DefectModel(
                DefectRates(stuck_at_p=rate / 2, stuck_at_ap=rate / 2),
                rng=np.random.default_rng(7))
        cim = CimConfig(defects=defects, seed=7)
        for name, model in models.items():
            deployed = BayesianCim(model, cim)
            if name == "deterministic":
                logits = deployed.deterministic_forward(x_eval)
                acc = (logits.argmax(-1) == y_eval).mean()
            else:
                result = deployed.mc_forward(x_eval, n_samples=20)
                acc = (result.predictions == y_eval).mean()
            table[name].append(acc)

    rows = [[name] + [f"{acc * 100:5.1f}%" for acc in accs]
            for name, accs in table.items()]
    print()
    print(render_table(
        ["model"] + [f"{r * 100:.0f}% faults" for r in fault_rates],
        rows, title="Deployed accuracy vs stuck-at fault rate"))

    healthy = table["affine (self-healing)"][0]
    worst = table["affine (self-healing)"][-1]
    print(f"\nself-healing model retains "
          f"{worst / healthy * 100:.0f}% of its clean accuracy at "
          f"{fault_rates[-1] * 100:.0f}% faults "
          "(key takeaway #8 of the paper).")


if __name__ == "__main__":
    main()
