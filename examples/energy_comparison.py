"""Energy comparison of every NeuSpin method (the Table-I view).

Uses the analytic op-count energy model on a LeNet-style reference
network — the same engine the T1 benchmark uses — and shows:

* per-image inference energy per method (paper Table I);
* the dropout/RNG-subsystem share that explains the ordering;
* how RNG-module count scales with network width per method.

Run:  python examples/energy_comparison.py
"""

from repro.energy import (
    dropout_subsystem_energy,
    format_energy,
    lenet_like,
    method_energy_per_image,
    method_rng_bits,
    mlp_spec,
    render_table,
    storage_bits,
)

PAPER = {
    "spindrop": ("SpinDrop", "2.00 µJ"),
    "spatial": ("Spatial-SpinDrop", "0.68 µJ"),
    "scaledrop": ("SpinScaleDropout", "0.18 µJ"),
    "subset_vi": ("Bayesian Sub-Set Parameter", "0.30 µJ"),
    "spinbayes": ("SpinBayes", "0.26 µJ"),
    "mc_dropconnect": ("MC-DropConnect (baseline)", "—"),
    "deterministic": ("Deterministic (no uncertainty)", "—"),
}


def main() -> None:
    spec = lenet_like()
    print(f"reference network: {spec.name}, "
          f"{spec.total_weights:,} weights, "
          f"{spec.total_neurons:,} neurons, 25 MC passes\n")

    rows = []
    for method, (label, paper_energy) in PAPER.items():
        total, _ = method_energy_per_image(spec, method)
        rng_share = dropout_subsystem_energy(spec, method) / total
        rows.append([
            label, paper_energy, format_energy(total),
            f"{method_rng_bits(spec, method):,}",
            f"{rng_share * 100:5.1f} %",
        ])
    print(render_table(
        ["method", "paper E/img", "model E/img", "RNG bits/pass",
         "RNG share"],
        rows, title="Per-image inference energy (analytic, Table-I view)"))

    # Storage comparison (the 158.7× memory claim of Sec. III-B.1).
    print()
    storage_rows = []
    for method in ("deterministic", "subset_vi", "conventional_vi",
                   "spinbayes", "ensemble"):
        bits = storage_bits(spec, method)
        storage_rows.append([method, f"{bits / 8 / 1024:.1f} KiB"])
    print(render_table(["method", "parameter storage"], storage_rows,
                       title="Deployed storage"))

    # RNG scaling with width (why per-neuron dropout does not scale).
    print()
    widths = (128, 256, 512, 1024)
    scale_rows = []
    for method in ("mc_dropconnect", "spindrop", "scaledrop", "affine"):
        counts = [method_rng_bits(mlp_spec(256, (w, w // 2), 10), method)
                  for w in widths]
        scale_rows.append([method] + [f"{c:,}" for c in counts])
    print(render_table(["method"] + [f"width {w}" for w in widths],
                       scale_rows,
                       title="RNG modules vs hidden width (Sec. II-D "
                             "scalability wall)"))


if __name__ == "__main__":
    main()
