"""Uncertainty-aware time-series forecasting (predictive maintenance).

The paper names industrial predictive maintenance as a target workload
(Sec. I) and reports up to 46.7 % RMSE reduction from inverted
normalization + affine dropout on recurrent time-series models
(Sec. III-A.4).  This example trains a GRU forecaster with affine
dropout on a synthetic sensor signal and shows:

* point forecasts from the MC-averaged posterior;
* predictive intervals from the MC spread;
* interval behaviour when the signal leaves the training regime.

Run:  python examples/timeseries_maintenance.py
"""

import numpy as np

from repro import nn
from repro.bayesian import make_affine_regressor, set_mc_mode
from repro.data import forecast_dataset
from repro.experiments.common import rmse, train_regressor
from repro.tensor import Tensor, no_grad


def mc_forecast(model, x: np.ndarray, n_samples: int = 30):
    """Monte-Carlo mean and std of the forecast distribution."""
    set_mc_mode(model, True)
    model.eval()
    with no_grad():
        draws = np.stack([model(Tensor(x)).data for _ in range(n_samples)])
    set_mc_mode(model, False)
    return draws.mean(axis=0), draws.std(axis=0)


def main() -> None:
    (x_train, y_train), (x_test, y_test) = forecast_dataset(
        n_points=2000, history=24, seed=0, noise=0.08)
    print(f"forecasting task: {len(x_train)} train windows, "
          f"{len(x_test)} test windows, history 24")

    affine = make_affine_regressor(1, hidden_size=32, p=0.15, seed=1)
    train_regressor(affine, x_train, y_train, epochs=25, seed=1)
    baseline = nn.SequenceRegressor(1, hidden_size=32, cell="gru",
                                    rng=np.random.default_rng(1))
    train_regressor(baseline, x_train, y_train, epochs=25, seed=1)

    mean, std = mc_forecast(affine, x_test, n_samples=30)
    with no_grad():
        base_pred = baseline(Tensor(x_test)).data

    print(f"\nRMSE  affine-dropout (MC mean): {rmse(mean, y_test):.4f}")
    print(f"RMSE  plain GRU baseline:       {rmse(base_pred, y_test):.4f}")

    # Interval calibration: how often does the 2-sigma band cover truth?
    covered = (np.abs(mean - y_test) <= 2 * std + 1e-9).mean()
    print(f"2σ interval coverage on test:   {covered * 100:.1f}%")

    # Out-of-regime inputs: amplify the signal beyond the training range.
    x_shifted = np.clip(x_test * 2.5, -1.0, 1.0)
    _, std_shifted = mc_forecast(affine, x_shifted, n_samples=30)
    print(f"\nmean predictive σ  in-regime:   {std.mean():.4f}")
    print(f"mean predictive σ  out-of-regime: {std_shifted.mean():.4f}")
    ratio = std_shifted.mean() / max(std.mean(), 1e-9)
    print(f"the posterior widens {ratio:.1f}× on out-of-regime inputs — "
          "the maintenance system can defer to a human.")


if __name__ == "__main__":
    main()
