"""Uncertainty quantification metrics.

Scoring functions over predictive distributions (entropy, mutual
information, variance), proper scoring rules (NLL, Brier), and the
calibration error used throughout the evaluation.
"""

from __future__ import annotations

import numpy as np


def predictive_entropy(probs: np.ndarray) -> np.ndarray:
    """Entropy of the mean predictive distribution (total uncertainty)."""
    p = np.clip(np.asarray(probs, dtype=np.float64), 1e-12, 1.0)
    return -(p * np.log(p)).sum(axis=-1)


def expected_entropy(samples: np.ndarray) -> np.ndarray:
    """Mean per-sample entropy (aleatoric component); samples (T, N, C)."""
    p = np.clip(np.asarray(samples, dtype=np.float64), 1e-12, 1.0)
    return -(p * np.log(p)).sum(axis=-1).mean(axis=0)


def mutual_information(samples: np.ndarray) -> np.ndarray:
    """BALD score: total − aleatoric = epistemic uncertainty."""
    mean_probs = np.asarray(samples).mean(axis=0)
    return np.maximum(
        predictive_entropy(mean_probs) - expected_entropy(samples), 0.0)


def max_probability(probs: np.ndarray) -> np.ndarray:
    """Confidence score (1 − max prob is an uncertainty score)."""
    return np.asarray(probs).max(axis=-1)


def nll(probs: np.ndarray, labels: np.ndarray) -> float:
    """Mean negative log-likelihood of the true class."""
    labels = np.asarray(labels, dtype=np.int64)
    picked = np.asarray(probs)[np.arange(len(labels)), labels]
    return float(-np.log(np.clip(picked, 1e-12, 1.0)).mean())


def brier_score(probs: np.ndarray, labels: np.ndarray) -> float:
    """Multiclass Brier score (lower is better)."""
    probs = np.asarray(probs, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    onehot = np.zeros_like(probs)
    onehot[np.arange(len(labels)), labels] = 1.0
    return float(((probs - onehot) ** 2).sum(axis=-1).mean())


def expected_calibration_error(probs: np.ndarray, labels: np.ndarray,
                               n_bins: int = 10) -> float:
    """ECE with equal-width confidence bins."""
    probs = np.asarray(probs, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    confidence = probs.max(axis=-1)
    correct = (probs.argmax(axis=-1) == labels).astype(np.float64)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    ece = 0.0
    n = len(labels)
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (confidence > lo) & (confidence <= hi)
        if not mask.any():
            continue
        gap = abs(correct[mask].mean() - confidence[mask].mean())
        ece += mask.sum() / n * gap
    return float(ece)


def mean_iou(predictions: np.ndarray, targets: np.ndarray,
             n_classes: int) -> float:
    """Mean intersection-over-union across classes (segmentation).

    Classes absent from both prediction and target are skipped (their
    IoU is undefined), matching the standard mIoU protocol.
    """
    predictions = np.asarray(predictions).reshape(-1)
    targets = np.asarray(targets).reshape(-1)
    ious = []
    for cls in range(n_classes):
        pred_cls = predictions == cls
        target_cls = targets == cls
        union = (pred_cls | target_cls).sum()
        if union == 0:
            continue
        ious.append((pred_cls & target_cls).sum() / union)
    if not ious:
        raise ValueError("no classes present in prediction or target")
    return float(np.mean(ious))


def reliability_bins(probs: np.ndarray, labels: np.ndarray,
                     n_bins: int = 10):
    """Per-bin (confidence, accuracy, count) triples for reliability plots."""
    probs = np.asarray(probs, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    confidence = probs.max(axis=-1)
    correct = (probs.argmax(axis=-1) == labels).astype(np.float64)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    rows = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (confidence > lo) & (confidence <= hi)
        if mask.any():
            rows.append((float(confidence[mask].mean()),
                         float(correct[mask].mean()),
                         int(mask.sum())))
        else:
            rows.append((float((lo + hi) / 2), float("nan"), 0))
    return rows
