"""OOD detection scoring.

The paper's headline OOD numbers ("up to 100% detection", "55.03% and
78.95% of OOD instances for uniform noise and random rotation") use
threshold-based detection on an uncertainty score.  This module
implements the standard protocol:

* threshold chosen on in-distribution data at a target true-positive
  rate (ID samples *below* threshold) — default 95 %;
* detection rate = fraction of OOD samples whose score exceeds it;
* plus threshold-free AUROC / AUPR for completeness.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class OodResult:
    """Detection metrics for one ID-vs-OOD comparison."""

    detection_rate: float     # fraction of OOD flagged at the threshold
    threshold: float
    auroc: float
    aupr: float
    mean_id_score: float
    mean_ood_score: float


def auroc(id_scores: np.ndarray, ood_scores: np.ndarray) -> float:
    """Area under ROC via the Mann–Whitney U statistic.

    Higher scores must indicate OOD.  Ties count half.
    """
    id_scores = np.asarray(id_scores, dtype=np.float64)
    ood_scores = np.asarray(ood_scores, dtype=np.float64)
    n_id, n_ood = len(id_scores), len(ood_scores)
    if n_id == 0 or n_ood == 0:
        raise ValueError("need both ID and OOD scores")
    combined = np.concatenate([id_scores, ood_scores])
    ranks = combined.argsort().argsort().astype(np.float64) + 1.0
    # Average ranks over ties.
    order = np.argsort(combined)
    sorted_vals = combined[order]
    tie_adjusted = ranks.copy()
    i = 0
    while i < len(sorted_vals):
        j = i
        while j + 1 < len(sorted_vals) and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            mean_rank = (i + j) / 2.0 + 1.0
            tie_adjusted[order[i:j + 1]] = mean_rank
        i = j + 1
    rank_sum_ood = tie_adjusted[n_id:].sum()
    u = rank_sum_ood - n_ood * (n_ood + 1) / 2.0
    return float(u / (n_id * n_ood))


def aupr(id_scores: np.ndarray, ood_scores: np.ndarray) -> float:
    """Area under precision-recall (OOD = positive class)."""
    id_scores = np.asarray(id_scores, dtype=np.float64)
    ood_scores = np.asarray(ood_scores, dtype=np.float64)
    scores = np.concatenate([id_scores, ood_scores])
    labels = np.concatenate([np.zeros(len(id_scores)),
                             np.ones(len(ood_scores))])
    order = np.argsort(-scores, kind="stable")
    labels = labels[order]
    tp = np.cumsum(labels)
    fp = np.cumsum(1.0 - labels)
    precision = tp / np.maximum(tp + fp, 1e-12)
    recall = tp / labels.sum()
    # Step-wise integration over recall increments.
    d_recall = np.diff(np.concatenate([[0.0], recall]))
    return float((precision * d_recall).sum())


def detect(id_scores: np.ndarray, ood_scores: np.ndarray,
           id_keep_rate: float = 0.95) -> OodResult:
    """Threshold-based OOD detection at a fixed ID keep rate.

    The threshold is the ``id_keep_rate`` quantile of ID scores, i.e.
    95 % of in-distribution inputs pass; the detection rate is the
    fraction of OOD inputs rejected.
    """
    id_scores = np.asarray(id_scores, dtype=np.float64)
    ood_scores = np.asarray(ood_scores, dtype=np.float64)
    threshold = float(np.quantile(id_scores, id_keep_rate))
    detection = float((ood_scores > threshold).mean())
    return OodResult(
        detection_rate=detection,
        threshold=threshold,
        auroc=auroc(id_scores, ood_scores),
        aupr=aupr(id_scores, ood_scores),
        mean_id_score=float(id_scores.mean()),
        mean_ood_score=float(ood_scores.mean()),
    )
