"""Uncertainty estimation metrics and OOD detection scoring."""

from repro.uncertainty.metrics import (
    brier_score,
    expected_calibration_error,
    expected_entropy,
    max_probability,
    mean_iou,
    mutual_information,
    nll,
    predictive_entropy,
    reliability_bins,
)
from repro.uncertainty.ood import OodResult, aupr, auroc, detect

__all__ = [
    "predictive_entropy",
    "expected_entropy",
    "mutual_information",
    "max_probability",
    "mean_iou",
    "nll",
    "brier_score",
    "expected_calibration_error",
    "reliability_bins",
    "OodResult",
    "auroc",
    "aupr",
    "detect",
]
