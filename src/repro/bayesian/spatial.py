"""Spatial-SpinDrop: feature-map dropout for CNNs (Sec. III-A.2).

Extends SpinDrop by dropping entire feature maps instead of single
neurons: "Spatial dropout drops entire feature maps, making it more
suitable for CNNs where spatial correlations are vital."  The hardware
pay-off is a 9× reduction in dropout modules (one per feature map
instead of one per neuron) and compatibility with both crossbar
mapping strategies of Fig. 1 — the module gates either a K·K wordline
group (strategy ①) or a whole sub-crossbar row (strategy ②).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bayesian.base import StochasticModule
from repro.devices.mtj import MTJParams
from repro.devices.rng import SpintronicRNG
from repro.devices.variability import DeviceVariability
from repro.tensor import Tensor


class SpatialSpinDropout(StochasticModule):
    """Channel-wise (feature-map) dropout backed by an MTJ module bank.

    One physical dropout module per channel — the factor-of-(H·W)
    module saving over neuron-wise SpinDrop on conv feature maps.
    """

    def __init__(self, n_channels: int, p: float = 0.2,
                 mtj_params: Optional[MTJParams] = None,
                 variability: Optional[DeviceVariability] = None,
                 ideal: bool = False,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 < p < 1.0:
            raise ValueError("dropout probability must be in (0, 1)")
        self.n_channels = n_channels
        self.p = p
        self.ideal = ideal
        self.rng = rng or np.random.default_rng()
        if ideal:
            self.modules_bank = None
        else:
            self.modules_bank = SpintronicRNG(
                n_channels, p=p, mtj_params=mtj_params,
                variability=variability, rng=self.rng)

    @property
    def n_dropout_modules(self) -> int:
        return self.n_channels

    def sample_channel_mask(self, batch: int) -> np.ndarray:
        """(batch, C) binary keep-mask, shared across spatial positions.

        Pure zeroing (no inverted-dropout rescale), matching the
        hardware where a dropped feature map's wordline group simply
        never fires — see :meth:`SpinDropout.sample_mask`.
        """
        if self.modules_bank is None:
            drops = self.rng.random((batch, self.n_channels)) < self.p
        else:
            bits = self.modules_bank.generate(batch * self.n_channels)
            drops = bits.reshape(batch, self.n_channels) > 0.5
        return (~drops).astype(np.float64)

    def mc_draw_pass(self, batch: int) -> np.ndarray:
        """One MC pass's (batch, C) channel keep-mask (already per-row)."""
        return self.sample_channel_mask(batch)

    def mc_draw_passes(self, batch: int, n_passes: int) -> np.ndarray:
        """Vectorized T-pass draw: (T, batch, C) keep-masks.

        One ``(T·batch, C)`` draw consumes the RNG stream (and, on the
        hardware path, cycles the module bank) exactly as T sequential
        per-pass draws would: rows fill row-major, and each pass's
        ``batch·C`` bits start at a multiple of the bank size, so the
        module round-robin phase matches pass-by-pass.
        """
        return self.sample_channel_mask(batch * n_passes).reshape(
            n_passes, batch, self.n_channels)

    def forward(self, x: Tensor) -> Tensor:
        if not self.stochastic_active:
            return x
        if x.ndim != 4:
            raise ValueError("SpatialSpinDropout expects (N, C, H, W)")
        if self._mc_bank is not None:
            mask = self._mc_bank.reshape(-1, self.n_channels)
            if mask.shape[0] != x.shape[0]:
                raise ValueError(
                    f"mask bank rows {mask.shape[0]} != batch {x.shape[0]}")
        else:
            mask = self.sample_channel_mask(x.shape[0])
        return x * Tensor(mask[:, :, None, None])


def make_spatial_spindrop_cnn(in_channels: int, image_size: int,
                              n_classes: int, p: float = 0.2,
                              widths: tuple = (8, 16),
                              ideal_rng: bool = True,
                              variability: Optional[DeviceVariability] = None,
                              seed: Optional[int] = None):
    """Binary CNN with MC-SpatialDropout before each conv block.

    Per block: SpatialSpinDropout → BinaryConv2d(3×3, pad 1) →
    BatchNorm2d → sign → MaxPool(2).  Head: flatten → BinaryLinear.
    Dropout precedes the conv so the module gates the conv layer's
    *input* feature maps — matching Fig. 1, where the dropout module
    sits on the wordline decoder of the crossbar holding the kernels.
    """
    from repro import nn

    rng = np.random.default_rng(seed)
    layers: list = []
    channels = in_channels
    size = image_size
    for i, width in enumerate(widths):
        if i > 0:
            # No dropout on the raw input image, only between blocks.
            layers.append(SpatialSpinDropout(
                channels, p=p, ideal=ideal_rng, variability=variability,
                rng=rng))
        layers.append(nn.BinaryConv2d(channels, width, 3, padding=1, rng=rng,
                                      binarize_input=(i == 0)))
        layers.append(nn.BatchNorm2d(width))
        layers.append(nn.SignActivation())
        layers.append(nn.MaxPool2d(2))
        channels = width
        size //= 2
    layers.append(nn.Flatten())
    layers.append(nn.BinaryLinear(channels * size * size, n_classes, rng=rng))
    return nn.Sequential(*layers)
