"""Bayesian sub-set parameter inference (Sec. III-B.1).

Variational inference applied to a *small* parameter subset: "Larger
parameter groups (e.g., weights) are kept deterministic, while
Bayesian treatment is only applied to the small parameter group, e.g.,
scale vector."  The weights are binary and learned by maximum
likelihood; each layer's scale vector gets a diagonal Gaussian
variational posterior q(s) = N(mu, sigma²) trained by the local
reparameterization trick against a N(1, sigma₀²) prior.

This makes the method "the first binary VI-based BayNN framework with
spintronic-based CIM implementation": deployment uses two crossbars
per layer — an XNOR crossbar for the deterministic binary weights and
a multi-level-cell column for the Bayesian scale — with the SOT
stochastic-switching RNG supplying the posterior samples.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bayesian.base import StochasticModule
from repro.nn.module import Parameter
from repro.nn.losses import gaussian_kl
from repro.tensor import Tensor, functional as F, no_grad


class BayesianScale(StochasticModule):
    """Per-feature Gaussian scale: s ~ N(mu, softplus-free sigma²).

    Training samples with the reparameterization trick (one epsilon
    per feature per pass); deterministic evaluation uses the posterior
    mean.  ``kl()`` returns the layer's KL term for the ELBO.
    """

    def __init__(self, n_features: int, spatial: bool = False,
                 prior_mu: float = 1.0, prior_sigma: float = 0.1,
                 init_log_sigma: float = -3.0,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.n_features = n_features
        self.spatial = spatial
        self.prior_mu = prior_mu
        self.prior_sigma = prior_sigma
        self.rng = rng or np.random.default_rng()
        self.mu = Parameter(np.ones(n_features))
        self.log_sigma = Parameter(np.full(n_features, init_log_sigma))

    @property
    def n_bayesian_parameters(self) -> int:
        """Parameters receiving Bayesian treatment (mu and sigma)."""
        return 2 * self.n_features

    def kl(self) -> Tensor:
        """KL(q || prior), the ELBO regularizer of this layer."""
        return gaussian_kl(self.mu, self.log_sigma,
                           prior_mu=self.prior_mu,
                           prior_sigma=self.prior_sigma)

    def sample_scale(self) -> Tensor:
        """Reparameterized posterior sample (differentiable in mu/sigma)."""
        eps = Tensor(self.rng.standard_normal(self.n_features))
        return self.mu + F.exp(self.log_sigma) * eps

    def posterior_sample_np(self) -> np.ndarray:
        """Non-differentiable posterior draw (deployment sampling)."""
        sigma = np.exp(self.log_sigma.data)
        return self.mu.data + sigma * self.rng.standard_normal(self.n_features)

    def mc_draw_pass(self, batch: int) -> np.ndarray:
        """One MC pass's posterior scale sample (shared by the batch).

        Delegates to :meth:`sample_scale` so the posterior arithmetic
        and RNG stream live in exactly one place; the stacked path
        never needs gradients, so the tape stays off.
        """
        with no_grad():
            return self.sample_scale().data

    def forward(self, x: Tensor) -> Tensor:
        if self.spatial and x.ndim != 4:
            raise ValueError("spatial BayesianScale expects (N, C, H, W)")
        if self.stochastic_active and self._mc_bank is not None:
            rows = np.repeat(self._mc_bank, self._mc_rows, axis=0)
            if rows.shape[0] != x.shape[0]:
                raise ValueError(
                    f"scale bank rows {rows.shape[0]} != batch {x.shape[0]}")
            if self.spatial:
                return x * Tensor(rows[:, :, None, None])
            return x * Tensor(rows)
        scale = self.sample_scale() if self.stochastic_active else self.mu
        if self.spatial:
            return x * F.reshape(scale, (1, -1, 1, 1))
        return x * scale


def make_subset_vi_mlp(in_features: int, hidden: tuple, n_classes: int,
                       prior_sigma: float = 0.1,
                       seed: Optional[int] = None):
    """Binary MLP with Bayesian scales (subset-parameter VI).

    Per block: BinaryLinear (no deterministic scale) → BayesianScale →
    BatchNorm → sign.  The Bayesian parameter group is two vectors per
    layer — a tiny fraction of the weight count, which is the source of
    the paper's 158.7× memory-reduction claim versus conventional VI
    (benchmark C5 computes the exact ratio for this model).
    """
    from repro import nn

    rng = np.random.default_rng(seed)
    layers: list = []
    prev = in_features
    for i, width in enumerate(hidden):
        layers.append(nn.BinaryLinear(prev, width, scale=False, rng=rng,
                                      binarize_input=(i == 0)))
        layers.append(BayesianScale(width, prior_sigma=prior_sigma, rng=rng))
        layers.append(nn.BatchNorm1d(width))
        layers.append(nn.SignActivation())
        prev = width
    layers.append(nn.BinaryLinear(prev, n_classes, rng=rng))
    return nn.Sequential(*layers)


def elbo_loss(model, logits: Tensor, labels: np.ndarray,
              n_train: int, kl_weight: float = 1.0) -> Tensor:
    """Negative ELBO: cross-entropy + KL / n_train.

    ``n_train`` scales the KL term per the standard minibatch ELBO so
    the prior's pull is independent of batch size.
    """
    from repro import nn as _nn

    loss = _nn.cross_entropy(logits, labels)
    kl_total: Optional[Tensor] = None
    for module in model.modules():
        if isinstance(module, BayesianScale):
            term = module.kl()
            kl_total = term if kl_total is None else kl_total + term
    if kl_total is not None:
        loss = loss + kl_total * (kl_weight / float(n_train))
    return loss


def bayesian_parameter_count(model) -> int:
    """Total parameters under Bayesian treatment in a subset-VI model."""
    return sum(m.n_bayesian_parameters for m in model.modules()
               if isinstance(m, BayesianScale))


def deterministic_parameter_count(model) -> int:
    """Parameters kept deterministic (binary weights, norm constants)."""
    total = model.num_parameters()
    return total - bayesian_parameter_count(model)


def memory_footprint_bits(model, weight_bits: int = 1,
                          stat_bits: int = 32) -> int:
    """Deployed storage: binary weights at 1 bit, distribution
    parameters and norm constants at ``stat_bits``.

    Conventional VI stores 2×32 bits for *every* weight; this function
    is the numerator/denominator engine of the 158.7× claim (C5).
    """
    from repro import nn as _nn

    bits = 0
    for module in model.modules():
        if isinstance(module, (_nn.BinaryLinear, _nn.BinaryConv2d)):
            bits += module.weight.size * weight_bits
            if module.scale is not None:
                bits += module.scale.size * stat_bits
            if module.bias is not None:
                bits += module.bias.size * stat_bits
        elif isinstance(module, BayesianScale):
            bits += module.n_bayesian_parameters * stat_bits
        elif isinstance(module, (_nn.BatchNorm1d, _nn.BatchNorm2d)):
            if module.affine:
                bits += (module.gamma.size + module.beta.size) * stat_bits
            bits += 2 * module.num_features * stat_bits
    return bits


def conventional_vi_footprint_bits(model, stat_bits: int = 32) -> int:
    """Storage if *every* weight had a Gaussian posterior (mu + sigma)."""
    from repro import nn as _nn

    bits = 0
    for module in model.modules():
        if isinstance(module, (_nn.BinaryLinear, _nn.BinaryConv2d)):
            bits += 2 * module.weight.size * stat_bits
            if module.bias is not None:
                bits += 2 * module.bias.size * stat_bits
        elif isinstance(module, BayesianScale):
            bits += module.n_bayesian_parameters * stat_bits
        elif isinstance(module, (_nn.BatchNorm1d, _nn.BatchNorm2d)):
            if module.affine:
                bits += (module.gamma.size + module.beta.size) * stat_bits
            bits += 2 * module.num_features * stat_bits
    return bits
