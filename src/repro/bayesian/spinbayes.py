"""SpinBayes: Bayesian in-memory approximation (Sec. III-B.2, Fig. 3).

The idea: convert a trained posterior into a *memory-friendly*
distribution — a finite set of ``N`` quantized parameter realizations
mapped onto ``N`` crossbars per layer — so that sampling at inference
time reduces to a spintronic arbiter picking one crossbar per forward
pass ("the spintronic stochastic Arbiter is implemented at the
periphery of crossbars, selecting specific crossbars for Bayesian
inference in each forward pass. The Arbiter generates a random binary
one-hot vector to determine the selection").

Pipeline implemented here:

1. Take a trained VI teacher (:mod:`repro.bayesian.subset_vi` model).
2. Draw ``n_components`` posterior samples; fold each sampled scale
   into the binary weights to get per-component effective weight
   matrices (the Bayesian in-memory approximation).
3. CIM-aware post-training quantization: quantize each component to
   the multi-level-cell grid (``n_levels`` conductance states built
   from parallel MTJs — the "design-time exploration to optimize
   bit-precision" sweeps this knob, benchmark F3).
4. Program each component into its own
   :class:`~repro.cim.crossbar.AnalogCrossbar`; attach one
   :class:`~repro.devices.arbiter.SpintronicArbiter` per layer.

Inference: every forward pass asks each layer's arbiter for a one-hot
selection, runs the MVM on the chosen crossbar, and proceeds through
shared digital periphery (frozen norm, sign).  T passes → Monte-Carlo
predictive distribution, with randomness costing only
``ceil(log2 N)`` device cycles per layer per pass.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import nn
from repro.bayesian.subset_vi import BayesianScale
from repro.cim.crossbar import AnalogCrossbar
from repro.cim.layers import CimConfig, DigitalSign, FrozenNorm
from repro.cim.ledger import OpLedger
from repro.devices.arbiter import SpintronicArbiter


class _SpinBayesMvmLayer:
    """One Fig.-3 layer: N analog crossbars + a stochastic arbiter."""

    def __init__(self, components: List[np.ndarray], bias: Optional[np.ndarray],
                 n_levels: int, config: CimConfig, ledger: OpLedger,
                 binarize_input: bool = False):
        if not components:
            raise ValueError("need at least one component")
        self.n_components = len(components)
        self.bias = bias
        self.ledger = ledger
        self.intended = [c.copy() for c in components]
        self.binarize_input = binarize_input
        v_min = float(min(c.min() for c in components))
        v_max = float(max(c.max() for c in components))
        self.crossbars: List[AnalogCrossbar] = []
        for weights in components:
            in_features = weights.shape[1]
            out_features = weights.shape[0]
            bar = AnalogCrossbar(
                in_features, out_features, n_levels=n_levels,
                mtj_params=config.mtj_params,
                variability=config.variability,
                defects=config.defects,
                rng=config.rng, ledger=ledger)
            bar.program(weights.T, v_min=v_min, v_max=v_max)
            self.crossbars.append(bar)
        if self.n_components > 1:
            self.arbiter = SpintronicArbiter(
                self.n_components, mtj_params=config.mtj_params,
                variability=config.variability, rng=config.rng)
        else:
            self.arbiter = None
        self.last_selected = 0

    def forward(self, x: np.ndarray, component: Optional[int] = None
                ) -> np.ndarray:
        if component is None:
            if self.arbiter is not None:
                component = self.arbiter.select()
                self.ledger.add("rng_cycle", self.arbiter.cycles_per_selection)
            else:
                component = 0
        self.last_selected = component
        if self.binarize_input:
            x = np.sign(x)
        out = self.crossbars[component].matvec(x)
        self.ledger.add("adc_conversion", out.size)
        if self.bias is not None:
            out = out + self.bias
            self.ledger.add("digital_op", out.size)
        return out


class SpinBayesNetwork:
    """Deployed SpinBayes model (MLP topologies).

    Built via :meth:`from_subset_vi`; inference-only, numpy-level,
    fully op-accounted.
    """

    def __init__(self, stages: list, ledger: OpLedger, config: CimConfig,
                 n_components: int, n_levels: int):
        self.stages = stages
        self.ledger = ledger
        self.config = config
        self.n_components = n_components
        self.n_levels = n_levels

    # ------------------------------------------------------------------
    @classmethod
    def from_subset_vi(cls, teacher: nn.Sequential, n_components: int = 8,
                       n_levels: int = 16,
                       config: Optional[CimConfig] = None,
                       seed: Optional[int] = None) -> "SpinBayesNetwork":
        """Approximate a subset-VI posterior with N quantized crossbars.

        Walks the teacher Sequential; for every BinaryLinear [+
        following BayesianScale] pair it draws ``n_components``
        posterior scale samples, folds each into the binary weights,
        and programs one crossbar per sample.  Norm/sign stages are
        shared (they are deterministic in the teacher).
        """
        config = config or CimConfig(seed=seed)
        ledger = OpLedger()
        rng = np.random.default_rng(seed)
        stages: list = []
        layers = list(teacher)
        i = 0
        while i < len(layers):
            layer = layers[i]
            if isinstance(layer, nn.BinaryLinear):
                binary = np.where(layer.weight.data >= 0, 1.0, -1.0)
                scale_layer = None
                if i + 1 < len(layers) and isinstance(layers[i + 1], BayesianScale):
                    scale_layer = layers[i + 1]
                components = []
                for _ in range(n_components):
                    if scale_layer is not None:
                        s = scale_layer.posterior_sample_np()
                    elif layer.scale is not None:
                        s = layer.scale.data
                    else:
                        s = np.ones(binary.shape[0])
                    components.append(binary * s[:, None])
                bias = None if layer.bias is None else layer.bias.data.copy()
                stages.append(_SpinBayesMvmLayer(
                    components, bias, n_levels, config, ledger,
                    binarize_input=layer.binarize_input))
                i += 2 if scale_layer is not None else 1
                continue
            if isinstance(layer, (nn.BatchNorm1d, nn.BatchNorm2d)):
                gamma = layer.gamma.data if layer.affine else None
                beta = layer.beta.data if layer.affine else None
                stages.append(FrozenNorm(
                    layer.running_mean, layer.running_var, gamma, beta,
                    layer.eps, spatial=isinstance(layer, nn.BatchNorm2d),
                    inverted=False, ledger=ledger))
                i += 1
                continue
            if isinstance(layer, (nn.SignActivation, nn.HardTanh, nn.Tanh)):
                stages.append(DigitalSign(ledger))
                i += 1
                continue
            if isinstance(layer, nn.Flatten):
                stages.append("flatten")
                i += 1
                continue
            if isinstance(layer, BayesianScale):
                # Orphan scale (no preceding BinaryLinear) — fold as a
                # digital multiply by the posterior mean.
                stages.append(("static_scale", layer.mu.data.copy()))
                i += 1
                continue
            raise TypeError(
                f"SpinBayes deployment does not support {type(layer).__name__}")
        return cls(stages, ledger, config, n_components, n_levels)

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray,
                components: Optional[List[int]] = None) -> np.ndarray:
        """One stochastic pass; ``components`` pins per-layer selection."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        mvm_idx = 0
        for stage in self.stages:
            if isinstance(stage, _SpinBayesMvmLayer):
                pick = None if components is None else components[mvm_idx]
                x = stage.forward(x, component=pick)
                mvm_idx += 1
            elif stage == "flatten":
                x = x.reshape(x.shape[0], -1)
            elif isinstance(stage, tuple) and stage[0] == "static_scale":
                x = x * stage[1]
            else:
                x = stage.forward(x)
        return x

    __call__ = forward

    def mvm_layers(self) -> List[_SpinBayesMvmLayer]:
        return [s for s in self.stages if isinstance(s, _SpinBayesMvmLayer)]

    @property
    def n_crossbars(self) -> int:
        return sum(layer.n_components for layer in self.mvm_layers())

    def quantization_error(self) -> float:
        """Mean |stored − intended| over all components (PTQ fidelity).

        Decodes each crossbar's programmed conductances back to the
        value scale and compares against the pre-quantization effective
        weights; shrinks as ``n_levels`` grows (the F3 bit-precision
        exploration).
        """
        errors = []
        for layer in self.mvm_layers():
            for bar, intended in zip(layer.crossbars, layer.intended):
                stored = bar.stored_values().T  # back to (out, in)
                errors.append(np.abs(stored - intended).mean())
        return float(np.mean(errors))
