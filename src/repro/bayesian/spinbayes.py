"""SpinBayes: Bayesian in-memory approximation (Sec. III-B.2, Fig. 3).

The idea: convert a trained posterior into a *memory-friendly*
distribution — a finite set of ``N`` quantized parameter realizations
mapped onto ``N`` crossbars per layer — so that sampling at inference
time reduces to a spintronic arbiter picking one crossbar per forward
pass ("the spintronic stochastic Arbiter is implemented at the
periphery of crossbars, selecting specific crossbars for Bayesian
inference in each forward pass. The Arbiter generates a random binary
one-hot vector to determine the selection").

Pipeline implemented here:

1. Take a trained VI teacher (:mod:`repro.bayesian.subset_vi` model).
2. Draw ``n_components`` posterior samples; fold each sampled scale
   into the binary weights to get per-component effective weight
   matrices (the Bayesian in-memory approximation).
3. CIM-aware post-training quantization: quantize each component to
   the multi-level-cell grid (``n_levels`` conductance states built
   from parallel MTJs — the "design-time exploration to optimize
   bit-precision" sweeps this knob, benchmark F3).
4. Program each component into its own
   :class:`~repro.cim.crossbar.AnalogCrossbar`; attach one
   :class:`~repro.devices.arbiter.SpintronicArbiter` per layer.

Inference: every forward pass asks each layer's arbiter for a one-hot
selection, runs the MVM on the chosen crossbar, and proceeds through
shared digital periphery (frozen norm, sign).  T passes → Monte-Carlo
predictive distribution, with randomness costing only
``ceil(log2 N)`` device cycles per layer per pass.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import nn
from repro.bayesian.base import PredictiveResult, mc_predict_batched, mc_predict_fn
from repro.bayesian.subset_vi import BayesianScale
from repro.cim.crossbar import AnalogCrossbar
from repro.cim.layers import CimConfig, DigitalSign, FrozenNorm
from repro.cim.ledger import OpLedger
from repro.devices.arbiter import SpintronicArbiter


class _SpinBayesMvmLayer:
    """One Fig.-3 layer: N analog crossbars + a stochastic arbiter."""

    def __init__(self, components: List[np.ndarray], bias: Optional[np.ndarray],
                 n_levels: int, config: CimConfig, ledger: OpLedger,
                 binarize_input: bool = False):
        if not components:
            raise ValueError("need at least one component")
        self.n_components = len(components)
        self.out_features = components[0].shape[0]
        self.bias = bias
        self.ledger = ledger
        self.intended = [c.copy() for c in components]
        self.binarize_input = binarize_input
        v_min = float(min(c.min() for c in components))
        v_max = float(max(c.max() for c in components))
        self.crossbars: List[AnalogCrossbar] = []
        for weights in components:
            in_features = weights.shape[1]
            out_features = weights.shape[0]
            bar = AnalogCrossbar(
                in_features, out_features, n_levels=n_levels,
                mtj_params=config.mtj_params,
                variability=config.variability,
                defects=config.defects,
                rng=config.rng, ledger=ledger)
            bar.program(weights.T, v_min=v_min, v_max=v_max)
            self.crossbars.append(bar)
        if self.n_components > 1:
            self.arbiter = SpintronicArbiter(
                self.n_components, mtj_params=config.mtj_params,
                variability=config.variability, rng=config.rng)
        else:
            self.arbiter = None
        self.last_selected = 0
        self._values_stack: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def state_dict(self):
        """Capture the layer as ``(meta, arrays)`` — the snapshot format.

        Everything stochastic (quantization noise, arbiter device
        realization) is already baked into the captured arrays, so
        :meth:`from_state` rebuilds the layer without consuming any RNG
        or booking ``mtj_write``.  The arbiter's *shared* software
        generator (``config.rng``) is not part of this state; the
        deployment snapshot owns the sharing topology.
        """
        meta = {
            "type": "spinbayes_mvm",
            "n_components": self.n_components,
            "out_features": self.out_features,
            "in_features": self.crossbars[0].n_rows,
            "n_levels": self.crossbars[0].n_levels,
            "binarize_input": self.binarize_input,
            "last_selected": self.last_selected,
            "v_min": [bar._v_min for bar in self.crossbars],
            "v_max": [bar._v_max for bar in self.crossbars],
        }
        arrays = {
            "g": np.stack([bar.state_dict()["g"] for bar in self.crossbars]),
            "intended": np.stack(self.intended),
        }
        if self.bias is not None:
            arrays["bias"] = self.bias
        if self.arbiter is not None:
            arb = self.arbiter.state_dict()
            bank = arb["stage_rng"]
            meta["arbiter"] = {
                "selections": arb["selections"],
                "stage_rng": {k: bank[k] for k in
                              ("n_modules", "target_p", "current",
                               "set_ops", "read_ops", "reset_ops")},
            }
            arrays["arbiter_weights"] = arb["weights"]
            arrays["arbiter_deltas"] = bank["deltas"]
            arrays["arbiter_effective_p"] = bank["effective_p"]
        return meta, arrays

    @classmethod
    def from_state(cls, meta: dict, arrays: dict, config: CimConfig,
                   ledger: OpLedger) -> "_SpinBayesMvmLayer":
        """Rebuild from captured state: no programming, no RNG draws."""
        self = cls.__new__(cls)
        self.n_components = int(meta["n_components"])
        self.out_features = int(meta["out_features"])
        self.bias = arrays.get("bias")
        self.ledger = ledger
        self.intended = [np.asarray(c) for c in arrays["intended"]]
        self.binarize_input = bool(meta["binarize_input"])
        in_features = int(meta["in_features"])
        n_levels = int(meta["n_levels"])
        self.crossbars = []
        for k in range(self.n_components):
            bar = AnalogCrossbar(
                in_features, self.out_features, n_levels=n_levels,
                mtj_params=config.mtj_params,
                variability=config.variability,
                defects=config.defects,
                rng=config.rng, ledger=ledger)
            bar.load_state({"g": arrays["g"][k],
                            "v_min": meta["v_min"][k],
                            "v_max": meta["v_max"][k]})
            self.crossbars.append(bar)
        if self.n_components > 1:
            # variability=None skips the constructor's delta draws; the
            # captured realization is installed right after.
            self.arbiter = SpintronicArbiter(
                self.n_components, mtj_params=config.mtj_params,
                variability=None, rng=config.rng)
            arb_meta = meta["arbiter"]
            bank = dict(arb_meta["stage_rng"])
            bank["deltas"] = arrays["arbiter_deltas"]
            bank["effective_p"] = arrays["arbiter_effective_p"]
            self.arbiter.load_state({
                "weights": arrays["arbiter_weights"],
                "selections": arb_meta["selections"],
                "stage_rng": bank,
            })
            self.arbiter._stage_rng.variability = config.variability
        else:
            self.arbiter = None
        self.last_selected = int(meta["last_selected"])
        self._values_stack = None
        return self

    def _has_read_noise(self) -> bool:
        var = self.crossbars[0].variability
        return var is not None and var.params.sigma_read > 0.0

    def _component_values(self) -> np.ndarray:
        """Cached (n_components, in, out) stack of decoded MVM operands."""
        if self._values_stack is None:
            self._values_stack = np.stack(
                [bar.mvm_values() for bar in self.crossbars])
        return self._values_stack

    def forward(self, x: np.ndarray, component: Optional[int] = None
                ) -> np.ndarray:
        if component is None:
            if self.arbiter is not None:
                component = self.arbiter.select()
                self.ledger.add("rng_cycle", self.arbiter.cycles_per_selection)
            else:
                component = 0
        self.last_selected = component
        if self.binarize_input:
            x = np.sign(x)
        out = self.crossbars[component].matvec(x)
        self.ledger.add("adc_conversion", out.size)
        if self.bias is not None:
            out = out + self.bias
            self.ledger.add("digital_op", out.size)
        return out

    def forward_banked(self, x: np.ndarray, selections: np.ndarray,
                       rows_per_pass: int) -> np.ndarray:
        """Stacked forward: ``x`` is (P·N, F) pass-major, one pre-drawn
        component selection per pass.

        Without read noise the decoded MVM operand of every component
        is deterministic and cached, so each pass is one plain
        ``(N, F) @ (F, C)`` product against its selected component's
        pre-decoded matrix — the *same shapes and operand values* the
        sequential loop feeds BLAS, hence bit-for-bit equal output
        (grouping passes into taller matmuls is faster still, but GEMM
        summation order — and therefore the last ulp — depends on the
        row count, and the downstream sign activation amplifies that
        ulp into a different network output).  Cell accesses and DAC
        drives are booked exactly as the hardware's P readouts cost.
        With read noise each pass must re-draw the conductance
        fluctuation, so the layer falls back to one
        :meth:`AnalogCrossbar.matvec` call per distinct component
        (the engine also chunks to one pass per call in that case,
        preserving the noise stream draw-for-draw).  Ledger totals
        equal P sequential :meth:`forward` calls either way because
        every booking is proportional to the rows processed; the
        arbiter's RNG cycles are booked at selection-draw time by the
        network.
        """
        selections = np.asarray(selections, dtype=np.int64)
        n_passes = selections.size
        if n_passes * rows_per_pass != x.shape[0]:
            raise ValueError(
                f"stacked batch {x.shape[0]} != "
                f"{n_passes} passes x {rows_per_pass} rows")
        if self.binarize_input:
            x = np.sign(x)
        if not self._has_read_noise():
            values = self._component_values()
            in_features = values.shape[1]
            stacked = x.reshape(n_passes, rows_per_pass, in_features)
            out3 = np.empty(
                (n_passes, rows_per_pass, self.out_features),
                dtype=np.float64)
            for t in range(n_passes):
                np.matmul(stacked[t], values[selections[t]], out=out3[t])
            out = out3.reshape(x.shape[0], self.out_features)
            self.ledger.add("crossbar_cell_access",
                            in_features * self.out_features * x.shape[0])
            self.ledger.add("dac_drive", in_features * x.shape[0])
        else:
            out = np.empty((x.shape[0], self.out_features), dtype=np.float64)
            offsets = np.arange(rows_per_pass)
            for component in np.unique(selections):
                passes = np.nonzero(selections == component)[0]
                rows = (passes[:, None] * rows_per_pass
                        + offsets[None, :]).ravel()
                out[rows] = self.crossbars[component].matvec(x[rows])
        self.last_selected = int(selections[-1])
        self.ledger.add("adc_conversion", out.size)
        if self.bias is not None:
            out = out + self.bias
            self.ledger.add("digital_op", out.size)
        return out


class SpinBayesNetwork:
    """Deployed SpinBayes model (MLP topologies).

    Built via :meth:`from_subset_vi`; inference-only, numpy-level,
    fully op-accounted.
    """

    def __init__(self, stages: list, ledger: OpLedger, config: CimConfig,
                 n_components: int, n_levels: int):
        self.stages = stages
        self.ledger = ledger
        self.config = config
        self.n_components = n_components
        self.n_levels = n_levels

    # ------------------------------------------------------------------
    @classmethod
    def from_subset_vi(cls, teacher: nn.Sequential, n_components: int = 8,
                       n_levels: int = 16,
                       config: Optional[CimConfig] = None,
                       seed: Optional[int] = None) -> "SpinBayesNetwork":
        """Approximate a subset-VI posterior with N quantized crossbars.

        Walks the teacher Sequential; for every BinaryLinear [+
        following BayesianScale] pair it draws ``n_components``
        posterior scale samples, folds each into the binary weights,
        and programs one crossbar per sample.  Norm/sign stages are
        shared (they are deterministic in the teacher).
        """
        config = config or CimConfig(seed=seed)
        ledger = OpLedger()
        rng = np.random.default_rng(seed)
        stages: list = []
        layers = list(teacher)
        i = 0
        while i < len(layers):
            layer = layers[i]
            if isinstance(layer, nn.BinaryLinear):
                binary = np.where(layer.weight.data >= 0, 1.0, -1.0)
                scale_layer = None
                if i + 1 < len(layers) and isinstance(layers[i + 1], BayesianScale):
                    scale_layer = layers[i + 1]
                components = []
                for _ in range(n_components):
                    if scale_layer is not None:
                        s = scale_layer.posterior_sample_np()
                    elif layer.scale is not None:
                        s = layer.scale.data
                    else:
                        s = np.ones(binary.shape[0])
                    components.append(binary * s[:, None])
                bias = None if layer.bias is None else layer.bias.data.copy()
                stages.append(_SpinBayesMvmLayer(
                    components, bias, n_levels, config, ledger,
                    binarize_input=layer.binarize_input))
                i += 2 if scale_layer is not None else 1
                continue
            if isinstance(layer, (nn.BatchNorm1d, nn.BatchNorm2d)):
                gamma = layer.gamma.data if layer.affine else None
                beta = layer.beta.data if layer.affine else None
                stages.append(FrozenNorm(
                    layer.running_mean, layer.running_var, gamma, beta,
                    layer.eps, spatial=isinstance(layer, nn.BatchNorm2d),
                    inverted=False, ledger=ledger))
                i += 1
                continue
            if isinstance(layer, (nn.SignActivation, nn.HardTanh, nn.Tanh)):
                stages.append(DigitalSign(ledger))
                i += 1
                continue
            if isinstance(layer, nn.Flatten):
                stages.append("flatten")
                i += 1
                continue
            if isinstance(layer, BayesianScale):
                # Orphan scale (no preceding BinaryLinear) — fold as a
                # digital multiply by the posterior mean.
                stages.append(("static_scale", layer.mu.data.copy()))
                i += 1
                continue
            raise TypeError(
                f"SpinBayes deployment does not support {type(layer).__name__}")
        return cls(stages, ledger, config, n_components, n_levels)

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray,
                components: Optional[List[int]] = None) -> np.ndarray:
        """One stochastic pass; ``components`` pins per-layer selection."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        mvm_idx = 0
        for stage in self.stages:
            if isinstance(stage, _SpinBayesMvmLayer):
                pick = None if components is None else components[mvm_idx]
                x = stage.forward(x, component=pick)
                mvm_idx += 1
            else:
                x = self._apply_static(stage, x)
        return x

    __call__ = forward

    # ------------------------------------------------------------------
    # Batched Monte-Carlo engine
    # ------------------------------------------------------------------
    @staticmethod
    def _apply_static(stage, x: np.ndarray) -> np.ndarray:
        """Evaluate one non-MVM (pass-invariant) stage."""
        if stage == "flatten":
            return x.reshape(x.shape[0], -1)
        if isinstance(stage, tuple) and stage[0] == "static_scale":
            return x * stage[1]
        return stage.forward(x)

    def _has_read_noise(self) -> bool:
        """Whether the crossbars draw fresh randomness per readout."""
        var = self.config.variability
        return var is not None and var.params.sigma_read > 0.0

    def _stochastic_split(self) -> int:
        """Index of the first arbiter-driven MVM stage.

        Stages before it — digital periphery and single-component MVM
        layers — see the same input on every MC pass and (absent read
        noise) compute the same output, so the batched engine evaluates
        them once and broadcasts.
        """
        for idx, stage in enumerate(self.stages):
            if isinstance(stage, _SpinBayesMvmLayer) and stage.arbiter is not None:
                return idx
        return len(self.stages)

    @staticmethod
    def _fast_selection_draw(arbiters: List[SpintronicArbiter]) -> bool:
        """Whether the selection block can be drawn in one RNG call.

        Requires every arbiter to (a) have a power-of-two choice count,
        so the binary search consumes a fixed two doubles per stage
        (one burned ``generate``, one ``take_upper`` comparison) and
        never resolves its interval early, and (b) share one software
        generator, so a single flat draw covers the pass-major
        interleaved stream.
        """
        rng = arbiters[0]._stage_rng.rng
        return all(
            (a.n_choices & (a.n_choices - 1)) == 0
            and a._stage_rng.rng is rng
            for a in arbiters)

    def _draw_selections(self, n_samples: int) -> np.ndarray:
        """Pre-draw all T per-layer component selections, (T, L).

        Consumes the arbiter RNG streams in exactly the order T
        sequential :meth:`forward` calls would (pass-major, then layer
        order — the MVMs between two selects draw from different
        generators, so interleaving does not shift the streams), and
        books the same ``rng_cycle`` count per selection.  A seeded
        batched run therefore reproduces the sequential selections
        bit-for-bit.

        When every arbiter has a power-of-two choice count and they
        share one generator (the :class:`CimConfig` default), the whole
        block comes from a single flat ``random()`` call and the binary
        searches are replayed vectorized over the pass axis — same
        doubles, same arithmetic, same selections, ~L·T fewer numpy
        round-trips.  Otherwise it falls back to per-select draws.
        """
        layers = self.mvm_layers()
        selections = np.zeros((n_samples, len(layers)), dtype=np.int64)
        active = [(j, layer.arbiter) for j, layer in enumerate(layers)
                  if layer.arbiter is not None]
        if not active:
            return selections
        arbiters = [a for _, a in active]
        if not self._fast_selection_draw(arbiters):
            for t in range(n_samples):
                for j, arbiter in active:
                    selections[t, j] = arbiter.select()
                    self.ledger.add("rng_cycle",
                                    arbiter.cycles_per_selection)
            return selections

        doubles_per_pass = 2 * sum(a.n_stages for a in arbiters)
        block = arbiters[0]._stage_rng.rng.random(
            n_samples * doubles_per_pass).reshape(n_samples, doubles_per_pass)
        offset = 0
        for j, arbiter in active:
            n_stages = arbiter.n_stages
            cdf = arbiter._cdf
            lo = np.zeros(n_samples, dtype=np.int64)
            hi = np.full(n_samples, arbiter.n_choices, dtype=np.int64)
            for stage in range(n_stages):
                mid = (lo + hi) // 2
                mass_total = cdf[hi] - cdf[lo]
                mass_upper = cdf[hi] - cdf[mid]
                p_upper = np.where(mass_total > 0,
                                   mass_upper / np.where(mass_total > 0,
                                                         mass_total, 1.0),
                                   0.5)
                # Odd slots are the take_upper comparisons; even slots
                # are the burned stage-device bits.
                take = block[:, offset + 2 * stage + 1] < p_upper
                lo = np.where(take, mid, lo)
                hi = np.where(take, hi, mid)
            selections[:, j] = lo
            offset += 2 * n_stages
            bank = arbiter._stage_rng
            bank.set_ops += n_samples * n_stages
            bank.read_ops += n_samples * n_stages
            bank.reset_ops += n_samples * n_stages
            arbiter.selections += n_samples
            self.ledger.add(
                "rng_cycle", n_samples * arbiter.cycles_per_selection)
        return selections

    def forward_batched(self, x: np.ndarray, n_samples: int = 20,
                        chunk_passes: Optional[int] = None) -> np.ndarray:
        """All T MC passes as stacked ndarray ops; logits (T, N, C).

        Bit-for-bit identical to T calls of :meth:`forward` under the
        same seed, with identical :class:`OpLedger` totals.  Component
        selections are pre-drawn in sequential RNG order, then the
        passes run as one flattened ``(T·N, …)`` tensor: MVM stages
        gather rows per selected component
        (:meth:`_SpinBayesMvmLayer.forward_banked`), while the
        pass-invariant prefix — FrozenNorm / DigitalSign / static-scale
        / flatten stages and single-component MVM layers before the
        first arbiter — is evaluated once and broadcast, its ledger
        delta booked T-fold.

        When cycle-to-cycle read noise is enabled the crossbars are no
        longer pass-deterministic, so the engine drops to one pass per
        stacked call and disables prefix memoization — the noise stream
        is then consumed draw-for-draw in sequential order.

        ``chunk_passes`` bounds peak memory by evaluating at most that
        many passes per stacked call (default: all at once).
        """
        if n_samples < 1:
            raise ValueError("need at least one MC sample")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        batch = x.shape[0]
        selections = self._draw_selections(n_samples)

        chunk = n_samples if chunk_passes is None else max(1, int(chunk_passes))
        split = self._stochastic_split()
        if self._has_read_noise():
            chunk = 1
            split = 0
        n_prefix_mvms = sum(
            isinstance(s, _SpinBayesMvmLayer) for s in self.stages[:split])

        # Pass-invariant prefix: run once, book T-fold.
        h = x
        if split > 0:
            with self.ledger.amortized(n_samples):
                for stage in self.stages[:split]:
                    if isinstance(stage, _SpinBayesMvmLayer):
                        h = stage.forward(h, component=0)
                    else:
                        h = self._apply_static(stage, h)

        outs = []
        for t0 in range(0, n_samples, chunk):
            t1 = min(t0 + chunk, n_samples)
            flat = np.broadcast_to(
                h[None], (t1 - t0,) + h.shape).reshape(
                    ((t1 - t0) * batch,) + h.shape[1:])
            mvm_idx = n_prefix_mvms
            for stage in self.stages[split:]:
                if isinstance(stage, _SpinBayesMvmLayer):
                    flat = stage.forward_banked(
                        flat, selections[t0:t1, mvm_idx], batch)
                    mvm_idx += 1
                else:
                    flat = self._apply_static(stage, flat)
            outs.append(flat.reshape((t1 - t0, batch) + flat.shape[1:]))
        if len(outs) == 1:
            return outs[0]
        return np.concatenate(outs, axis=0)

    def mc_forward(self, x: np.ndarray, n_samples: int = 20,
                   batched: bool = True,
                   chunk_passes: Optional[int] = None) -> PredictiveResult:
        """Monte-Carlo Bayesian inference on hardware: T passes.

        ``batched=True`` (default) evaluates all passes through the
        vectorized engine; ``batched=False`` keeps the original
        per-pass loop (the reference implementation the equivalence
        tests pin the batched engine against).
        """
        if batched:
            return self.mc_forward_batched(x, n_samples=n_samples,
                                           chunk_passes=chunk_passes)
        return mc_predict_fn(self.forward, x, n_samples=n_samples)

    def mc_forward_batched(self, x: np.ndarray, n_samples: int = 20,
                           chunk_passes: Optional[int] = None
                           ) -> PredictiveResult:
        """Batched MC inference: one stacked evaluation of all T passes."""
        return mc_predict_batched(
            lambda inp, t: self.forward_batched(inp, t,
                                                chunk_passes=chunk_passes),
            x, n_samples=n_samples)

    def mvm_layers(self) -> List[_SpinBayesMvmLayer]:
        return [s for s in self.stages if isinstance(s, _SpinBayesMvmLayer)]

    @property
    def n_crossbars(self) -> int:
        return sum(layer.n_components for layer in self.mvm_layers())

    def quantization_error(self) -> float:
        """Mean |stored − intended| over all components (PTQ fidelity).

        Decodes each crossbar's programmed conductances back to the
        value scale and compares against the pre-quantization effective
        weights; shrinks as ``n_levels`` grows (the F3 bit-precision
        exploration).
        """
        errors = []
        for layer in self.mvm_layers():
            for bar, intended in zip(layer.crossbars, layer.intended):
                stored = bar.stored_values().T  # back to (out, in)
                errors.append(np.abs(stored - intended).mean())
        return float(np.mean(errors))
