"""The six NeuSpin Bayesian methods plus baselines.

Dropout family: SpinDrop (per-neuron), Spatial-SpinDrop (per feature
map), SpinScaleDrop (scalar per layer), Affine Dropout with inverted
normalization (two scalars per layer).  VI family: Bayesian subset-
parameter inference (Gaussian scale posterior), SpinBayes (N quantized
crossbars + arbiter).  Baselines: deterministic nets (in repro.nn) and
deep ensembles.
"""

from repro.bayesian.base import (
    PredictiveResult,
    StochasticModule,
    deterministic_predict,
    mc_predict,
    mc_predict_batched,
    mc_predict_fn,
    set_mc_mode,
)
from repro.bayesian.spindrop import (
    SpinDropout,
    count_dropout_modules,
    make_binary_mlp,
    make_spindrop_mlp,
)
from repro.bayesian.spatial import SpatialSpinDropout, make_spatial_spindrop_cnn
from repro.bayesian.scale_dropout import (
    ScaleDropout,
    adaptive_dropout_probability,
    make_scaledrop_mlp,
    scale_parameters,
)
from repro.bayesian.affine import (
    AffineDropout,
    make_affine_mlp,
    make_affine_regressor,
)
from repro.bayesian.subset_vi import (
    BayesianScale,
    bayesian_parameter_count,
    conventional_vi_footprint_bits,
    deterministic_parameter_count,
    elbo_loss,
    make_subset_vi_mlp,
    memory_footprint_bits,
)
from repro.bayesian.dropconnect import DropConnectLinear, make_dropconnect_mlp
from repro.bayesian.spinbayes import SpinBayesNetwork
from repro.bayesian.segmentation import (
    SegmenterEngine,
    Upsample2d,
    make_bayesian_segmenter,
    mc_segment,
    mc_segment_batched,
    pixel_maps,
    segmentation_loss,
)
from repro.bayesian.deploy import BayesianCim
from repro.bayesian.ensemble import DeepEnsemble

__all__ = [
    "PredictiveResult",
    "StochasticModule",
    "mc_predict",
    "mc_predict_batched",
    "mc_predict_fn",
    "deterministic_predict",
    "set_mc_mode",
    "SpinDropout",
    "make_spindrop_mlp",
    "make_binary_mlp",
    "count_dropout_modules",
    "SpatialSpinDropout",
    "make_spatial_spindrop_cnn",
    "ScaleDropout",
    "adaptive_dropout_probability",
    "make_scaledrop_mlp",
    "scale_parameters",
    "AffineDropout",
    "make_affine_mlp",
    "make_affine_regressor",
    "BayesianScale",
    "make_subset_vi_mlp",
    "elbo_loss",
    "bayesian_parameter_count",
    "deterministic_parameter_count",
    "memory_footprint_bits",
    "conventional_vi_footprint_bits",
    "SpinBayesNetwork",
    "DropConnectLinear",
    "make_dropconnect_mlp",
    "BayesianCim",
    "Upsample2d",
    "SegmenterEngine",
    "make_bayesian_segmenter",
    "segmentation_loss",
    "mc_segment",
    "mc_segment_batched",
    "pixel_maps",
    "DeepEnsemble",
]
