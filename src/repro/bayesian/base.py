"""Shared Bayesian-inference machinery.

All six NeuSpin methods produce predictions the same way: ``T``
stochastic forward passes (each drawing fresh dropout masks / scale
samples / crossbar selections) whose softmax outputs are averaged into
the predictive distribution; the spread across passes carries the
epistemic uncertainty (Sec. II-C).  This module implements that Monte
Carlo loop for training-side models and leaves the deployed (CIM) loop
to :mod:`repro.bayesian.deploy`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np

from repro import nn
from repro.tensor import Tensor, no_grad
from repro.tensor.functional import _softmax_np


@dataclasses.dataclass
class PredictiveResult:
    """Output of Monte-Carlo Bayesian inference.

    ``probs``: (N, C) predictive mean probabilities.
    ``samples``: (T, N, C) per-pass probabilities (uncertainty source).
    """

    probs: np.ndarray
    samples: np.ndarray

    @classmethod
    def from_samples(cls, samples: np.ndarray) -> "PredictiveResult":
        """Build a result from a stacked (T, N, C) probability tensor."""
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim < 2:
            raise ValueError(
                "samples must have a leading MC axis: (T, N, C)")
        return cls(probs=samples.mean(axis=0), samples=samples)

    @classmethod
    def from_logits(cls, logits: np.ndarray) -> "PredictiveResult":
        """Build a result from stacked (T, N, C) raw logits."""
        return cls.from_samples(_softmax_np(
            np.asarray(logits, dtype=np.float64), axis=-1))

    @property
    def predictions(self) -> np.ndarray:
        return self.probs.argmax(axis=-1)

    @property
    def predictive_entropy(self) -> np.ndarray:
        p = np.clip(self.probs, 1e-12, 1.0)
        return -(p * np.log(p)).sum(axis=-1)

    @property
    def expected_entropy(self) -> np.ndarray:
        p = np.clip(self.samples, 1e-12, 1.0)
        return -(p * np.log(p)).sum(axis=-1).mean(axis=0)

    @property
    def mutual_information(self) -> np.ndarray:
        """BALD epistemic-uncertainty score (total − aleatoric)."""
        return np.maximum(self.predictive_entropy - self.expected_entropy, 0.0)

    @property
    def predictive_std(self) -> np.ndarray:
        """Mean per-class std-dev across passes (alternative score)."""
        return self.samples.std(axis=0).mean(axis=-1)


class StochasticModule(nn.Module):
    """Marker base for layers that stay stochastic during inference.

    ``mc_mode`` switches the layer into Monte-Carlo inference: it keeps
    sampling even when the surrounding model is in ``eval()`` mode
    (the defining trick of MC-Dropout, ref [5] of the paper).
    """

    def __init__(self) -> None:
        super().__init__()
        self.mc_mode = False

    def enable_mc(self, enabled: bool = True) -> None:
        self.mc_mode = enabled

    @property
    def stochastic_active(self) -> bool:
        return self.training or self.mc_mode


def set_mc_mode(model: nn.Module, enabled: bool = True) -> None:
    """Enable/disable MC sampling on every stochastic layer of a model."""
    for module in model.modules():
        if isinstance(module, StochasticModule):
            module.enable_mc(enabled)


def mc_predict(model: nn.Module, x: np.ndarray, n_samples: int = 20,
               batch_size: Optional[int] = None) -> PredictiveResult:
    """Monte-Carlo predictive distribution of a training-side model.

    Runs ``n_samples`` forward passes in eval mode with stochastic
    layers forced on, collecting softmax probabilities.
    """
    model.eval()
    set_mc_mode(model, True)
    try:
        samples = []
        with no_grad():
            for _ in range(n_samples):
                samples.append(_forward_probs(model, x, batch_size))
        return PredictiveResult.from_samples(np.stack(samples))
    finally:
        set_mc_mode(model, False)


def deterministic_predict(model: nn.Module, x: np.ndarray,
                          batch_size: Optional[int] = None) -> np.ndarray:
    """Single deterministic forward pass (stochastic layers off)."""
    model.eval()
    set_mc_mode(model, False)
    with no_grad():
        return _forward_probs(model, x, batch_size)


def _forward_probs(model: nn.Module, x: np.ndarray,
                   batch_size: Optional[int]) -> np.ndarray:
    if batch_size is None or len(x) <= batch_size:
        return _softmax_np(model(Tensor(x)).data, axis=-1)
    chunks = [
        _softmax_np(model(Tensor(x[i:i + batch_size])).data, axis=-1)
        for i in range(0, len(x), batch_size)
    ]
    return np.concatenate(chunks, axis=0)


def mc_predict_fn(forward: Callable[[np.ndarray], np.ndarray],
                  x: np.ndarray, n_samples: int = 20) -> PredictiveResult:
    """MC prediction over an arbitrary stochastic forward function.

    Used by the deployed (CIM) path where ``forward`` returns raw
    logits from numpy-level inference.
    """
    samples = []
    for _ in range(n_samples):
        samples.append(_softmax_np(forward(x), axis=-1))
    return PredictiveResult.from_samples(np.stack(samples))


def mc_predict_batched(forward_batched: Callable[[np.ndarray, int], np.ndarray],
                       x: np.ndarray, n_samples: int = 20) -> PredictiveResult:
    """MC prediction over a *vectorized* stochastic forward function.

    ``forward_batched(x, n_samples)`` must evaluate every Monte-Carlo
    pass in one call and return logits with a leading sample axis,
    shape ``(n_samples, N, C)`` — the batched counterpart of
    :func:`mc_predict_fn`'s T sequential calls.  Used by the deployed
    (CIM) path, where :meth:`repro.bayesian.BayesianCim.forward_batched`
    threads the sample axis through the whole analog chain as stacked
    ndarray ops.
    """
    logits = np.asarray(forward_batched(x, n_samples), dtype=np.float64)
    if logits.ndim < 3 or logits.shape[0] != n_samples:
        raise ValueError(
            f"forward_batched must return (n_samples, N, C) logits; "
            f"got shape {logits.shape} for n_samples={n_samples}")
    return PredictiveResult.from_logits(logits)
