"""Shared Bayesian-inference machinery.

All six NeuSpin methods produce predictions the same way: ``T``
stochastic forward passes (each drawing fresh dropout masks / scale
samples / crossbar selections) whose softmax outputs are averaged into
the predictive distribution; the spread across passes carries the
epistemic uncertainty (Sec. II-C).  This module implements that Monte
Carlo loop for training-side models and leaves the deployed (CIM) loop
to :mod:`repro.bayesian.deploy`.
"""

from __future__ import annotations

import dataclasses
import weakref
from typing import Callable, Optional

import numpy as np

from repro import nn
from repro.tensor import Tensor, no_grad
from repro.tensor.functional import _softmax_np


@dataclasses.dataclass
class PredictiveResult:
    """Output of Monte-Carlo Bayesian inference.

    ``probs``: (N, C) predictive mean probabilities.
    ``samples``: (T, N, C) per-pass probabilities (uncertainty source).

    ``served_samples``/``degraded`` are serving-side provenance: the
    number of MC passes actually run, and whether an SLO control
    plane shed passes below the request's asked-for T (adaptive-T
    degradation trades credible-interval width for latency — see
    :mod:`repro.serving.controlplane`).  Direct engine calls always
    serve the full requested T (``degraded`` stays ``False``).
    """

    probs: np.ndarray
    samples: np.ndarray
    served_samples: Optional[int] = None    # MC passes actually run
    degraded: bool = False                  # True when passes were shed

    @classmethod
    def from_samples(cls, samples: np.ndarray) -> "PredictiveResult":
        """Build a result from a stacked (T, N, C) probability tensor."""
        samples = np.asarray(samples, dtype=np.float64)
        if samples.ndim < 3:
            # A 2-D (T, N) array (class axis missing) must not slip
            # through: entropy/std/argmax would silently reduce over
            # the wrong axis.
            raise ValueError(
                "samples must be (T, N, C): MC axis, batch axis, class "
                f"axis — got shape {samples.shape}; add the class axis "
                "(e.g. probs[:, :, None] for a binary/regression head)")
        return cls(probs=samples.mean(axis=0), samples=samples,
                   served_samples=int(samples.shape[0]))

    @classmethod
    def from_logits(cls, logits: np.ndarray) -> "PredictiveResult":
        """Build a result from stacked (T, N, C) raw logits."""
        return cls.from_samples(_softmax_np(
            np.asarray(logits, dtype=np.float64), axis=-1))

    @property
    def predictions(self) -> np.ndarray:
        return self.probs.argmax(axis=-1)

    @property
    def predictive_entropy(self) -> np.ndarray:
        p = np.clip(self.probs, 1e-12, 1.0)
        return -(p * np.log(p)).sum(axis=-1)

    @property
    def expected_entropy(self) -> np.ndarray:
        p = np.clip(self.samples, 1e-12, 1.0)
        return -(p * np.log(p)).sum(axis=-1).mean(axis=0)

    @property
    def mutual_information(self) -> np.ndarray:
        """BALD epistemic-uncertainty score (total − aleatoric)."""
        return np.maximum(self.predictive_entropy - self.expected_entropy, 0.0)

    @property
    def predictive_std(self) -> np.ndarray:
        """Mean per-class std-dev across passes (alternative score)."""
        return self.samples.std(axis=0).mean(axis=-1)


class StochasticModule(nn.Module):
    """Marker base for layers that stay stochastic during inference.

    ``mc_mode`` switches the layer into Monte-Carlo inference: it keeps
    sampling even when the surrounding model is in ``eval()`` mode
    (the defining trick of MC-Dropout, ref [5] of the paper).

    Batched Monte-Carlo support: :func:`mc_predict` (``batched=True``)
    evaluates all T passes as one stacked ``(T·N, …)`` tensor.  For
    that, each stochastic layer pre-draws its per-pass randomness
    through :meth:`mc_draw_pass` (called T times, pass-major across the
    model's layers — the sequential draw order) and applies the
    installed bank in ``forward`` — row-wise for activation masks,
    pass-blocked (one GEMM per pass) for weight masks like
    DropConnect.  Layers that override neither simply don't implement
    :meth:`mc_draw_pass`; :func:`mc_predict` then falls back to the
    sequential loop.
    """

    def __init__(self) -> None:
        super().__init__()
        self.mc_mode = False
        self._mc_bank: Optional[np.ndarray] = None
        self._mc_rows: int = 0

    def enable_mc(self, enabled: bool = True) -> None:
        self.mc_mode = enabled

    @property
    def stochastic_active(self) -> bool:
        return self.training or self.mc_mode

    # -------------------------------------------------- batched MC
    def mc_draw_pass(self, batch: int):
        """Draw ONE MC pass's randomness (same stream as a forward).

        Returns whatever per-pass state the layer needs (a mask, a
        scalar keep bit, a posterior sample…); :func:`mc_predict`
        stacks T of these into the layer's bank.  Default: the layer
        does not support stacked evaluation.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no batched-MC support")

    def mc_draw_passes(self, batch: int, n_passes: int):
        """Draw ``n_passes`` consecutive passes' randomness in one
        vectorized call, consuming the RNG stream exactly as
        ``n_passes`` :meth:`mc_draw_pass` calls would.  Only valid
        when the draw order permits it — the stacked engines use it
        solely for models with a single stochastic layer, where
        pass-major and module-major order coincide.  Default: not
        supported (the engines fall back to the per-pass loop).
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no vectorized pass drawing")

    def mc_install_bank(self, bank: np.ndarray, rows_per_pass: int) -> None:
        """Install a (P, …) stack of pre-drawn passes; ``forward`` then
        treats its input as P passes of ``rows_per_pass`` rows each."""
        self._mc_bank = bank
        self._mc_rows = rows_per_pass

    def mc_clear_bank(self) -> None:
        self._mc_bank = None
        self._mc_rows = 0


def set_mc_mode(model: nn.Module, enabled: bool = True) -> None:
    """Enable/disable MC sampling on every stochastic layer of a model."""
    for module in model.modules():
        if isinstance(module, StochasticModule):
            module.enable_mc(enabled)


# Auto-dispatch bound for the stacked software path: below this many
# total rows (T·N) the per-pass Python overhead dominates and stacking
# wins (measured 1.3–8x on the Table-I MLP); above it the working set
# falls out of cache and the sequential loop is faster, so mc_predict
# picks it instead.
_MC_STACK_AUTO_ROWS = 4096


def mc_predict(model: nn.Module, x: np.ndarray, n_samples: int = 20,
               batch_size: Optional[int] = None,
               batched: bool = True,
               chunk_passes: Optional[int] = None) -> PredictiveResult:
    """Monte-Carlo predictive distribution of a training-side model.

    Runs ``n_samples`` forward passes in eval mode with stochastic
    layers forced on, collecting softmax probabilities.  Per-pass
    randomness is drawn in the same stream order whichever execution
    strategy runs them, so the strategies agree draw-for-draw; the
    equivalence tests additionally pin them bit-for-bit on the
    supported BLAS builds (stacked matmuls can in principle differ in
    the last ulp from per-pass ones on exotic kernels).

    ``batched=True`` (default) may evaluate the passes as stacked
    ``(T·N, …)`` tensors: every stochastic layer pre-draws its T
    per-pass randomness (pass-major, the sequential draw order) and
    applies it row-wise, so the whole prediction costs a handful of
    ndarray ops instead of T Python-level forward walks.  The stacked
    strategy is chosen when the pass-stack is small enough to stay
    cache-resident (``T·N`` under ~4k rows — the serving regime, where
    it is 1.3–8x faster); larger requests keep the sequential loop,
    which wins there.  Models containing a stochastic layer without
    bank support always fall back to the sequential loop (every
    bundled layer — including DropConnect, whose per-pass *weight*
    masks apply as a batched matmul — now supports banks).
    ``chunk_passes`` forces the stacked
    path with at most that many passes per stacked call;
    ``batch_size`` bounds row count in the sequential path.  The
    model's train/eval mode is restored on return.
    """
    state = _enter_mc_eval(model)
    try:
        n_rows = np.shape(x)[0]
        if batched and (chunk_passes is not None
                        or n_rows * n_samples <= _MC_STACK_AUTO_ROWS):
            result = _mc_predict_stacked(model, x, n_samples, chunk_passes)
            if result is not None:
                return result
        samples = []
        with no_grad():
            for _ in range(n_samples):
                samples.append(_forward_probs(model, x, batch_size))
        return PredictiveResult.from_samples(np.stack(samples))
    finally:
        _exit_mc_eval(model, state)


def split_pass_invariant_prefix(model: nn.Module):
    """Split a model into (pass-invariant prefix, stochastic suffix).

    For :class:`~repro.nn.Sequential` models, every layer before the
    first one containing a :class:`StochasticModule` is deterministic
    in eval mode and therefore identical across MC passes — the
    stacked engines evaluate that prefix ONCE on the raw batch and
    broadcast its output across the pass-stack, instead of recomputing
    it per pass (the train-side counterpart of the deployed engines'
    prefix memoization).  Non-sequential models get an empty prefix.
    """
    if not isinstance(model, nn.Sequential):
        return [], [model]
    layers = list(model)
    for i, layer in enumerate(layers):
        if any(isinstance(m, StochasticModule) for m in layer.modules()):
            return layers[:i], layers[i:]
    return layers, []


def _mc_predict_stacked(model: nn.Module, x: np.ndarray, n_samples: int,
                        chunk_passes: Optional[int]
                        ) -> Optional[PredictiveResult]:
    """Stacked evaluation of all T passes; None if unsupported.

    Pre-draws every stochastic layer's per-pass randomness in
    pass-major order (the order T sequential forwards would draw in),
    installs the banks, and pushes ``(P·N, …)`` pass-stacks through the
    model — the pass-invariant prefix evaluated once and broadcast.
    Layers raising ``NotImplementedError`` from
    :meth:`StochasticModule.mc_draw_pass` abort the stacked path before
    any randomness is consumed beyond the first failing layer — the
    caller then falls back to the sequential loop.
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[0]
    # Decide support BEFORE consuming any randomness: bailing out
    # halfway through the draws would hand the sequential fallback a
    # shifted RNG stream and break bit-for-bit parity with
    # ``batched=False``.
    _, modules, supported, prefix, suffix = _stacked_plan(model)
    if not supported:
        return None
    banks = _mc_draw_banks(modules, n, n_samples)

    chunk = n_samples if chunk_passes is None else max(1, int(chunk_passes))
    outs = []
    try:
        with no_grad():
            base = _run_layers(prefix, x)
            for t0 in range(0, n_samples, chunk):
                t1 = min(t0 + chunk, n_samples)
                for module, bank in zip(modules, banks):
                    module.mc_install_bank(bank[t0:t1], n)
                stacked = np.broadcast_to(
                    base[None], (t1 - t0,) + base.shape).reshape(
                        ((t1 - t0) * n,) + base.shape[1:])
                logits = _run_layers(suffix, stacked)
                probs = _softmax_np(logits, axis=-1)
                outs.append(probs.reshape((t1 - t0, n) + probs.shape[1:]))
    finally:
        for module in modules:
            module.mc_clear_bank()
    stacked_probs = outs[0] if len(outs) == 1 else np.concatenate(outs, axis=0)
    return PredictiveResult.from_samples(stacked_probs)


def _mc_draw_banks(modules, n_rows: int, n_samples: int):
    """Pre-draw T passes of per-layer randomness, pass-major (the
    sequential draw order), stacked into one bank per layer.

    With a single stochastic layer pass-major and module-major order
    coincide, so a vectorized :meth:`StochasticModule.mc_draw_passes`
    (when the layer provides one) replaces the T-iteration Python
    loop — same RNG stream, one draw call.
    """
    if len(modules) == 1 and (
            type(modules[0]).mc_draw_passes
            is not StochasticModule.mc_draw_passes):
        bank = modules[0].mc_draw_passes(n_rows, n_samples)
        return [np.asarray(bank, dtype=np.float64)]
    draws: list = [[] for _ in modules]
    for _ in range(n_samples):
        for slot, module in zip(draws, modules):
            slot.append(module.mc_draw_pass(n_rows))
    return [np.asarray(slot, dtype=np.float64) for slot in draws]


# Memoized per-model stacked-execution plan: the module lists, the
# batched-support verdict, and the pass-invariant prefix split.
# Keyed weakly so models die normally; rebuilt only when a new model
# object appears.  (A model whose *structure* is mutated in place
# after first use would need the cache entry dropped — none of the
# repo's models do that.)
_model_stacked_plans: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _module_lists(model: nn.Module):
    """Cached (all modules, stochastic modules) of a model — the
    recursive ``modules()`` walk is surprisingly expensive to repeat
    on every engine call."""
    return _stacked_plan(model)[:2]


def _stacked_plan(model: nn.Module):
    plan = _model_stacked_plans.get(model)
    if plan is None:
        all_modules = list(model.modules())
        modules = [m for m in all_modules
                   if isinstance(m, StochasticModule)]
        supported = not any(
            type(m).mc_draw_pass is StochasticModule.mc_draw_pass
            for m in modules)
        prefix, suffix = split_pass_invariant_prefix(model)
        plan = (all_modules, modules, supported, prefix, suffix)
        _model_stacked_plans[model] = plan
    return plan


def _enter_mc_eval(model: nn.Module, mc: bool = True):
    """Flip the model into inference mode (eval, with MC sampling on
    or off) using the cached module lists instead of four recursive
    walks.  Returns the state needed by :func:`_exit_mc_eval`."""
    all_modules, stochastic = _module_lists(model)
    # Per-module snapshot: a deliberately frozen submodule (e.g. a
    # BatchNorm pinned to eval during fine-tuning) must come back
    # frozen, not inherit the root's mode.
    prior_modes = [module.training for module in all_modules]
    for module in all_modules:
        object.__setattr__(module, "training", False)
    for module in stochastic:
        module.mc_mode = mc
    return all_modules, stochastic, prior_modes


def _exit_mc_eval(model: nn.Module, state) -> None:
    all_modules, stochastic, prior_modes = state
    for module in stochastic:
        module.mc_mode = False
    for module, mode in zip(all_modules, prior_modes):
        object.__setattr__(module, "training", mode)


def _run_layers(layers, x: np.ndarray) -> np.ndarray:
    out = Tensor(x)
    for layer in layers:
        out = layer(out)
    return out.data


def deterministic_predict(model: nn.Module, x: np.ndarray,
                          batch_size: Optional[int] = None) -> np.ndarray:
    """Single deterministic forward pass (stochastic layers off).

    The model's train/eval mode is restored on return (MC mode is
    deliberately left off — this is the explicit "turn sampling off"
    entry point).
    """
    state = _enter_mc_eval(model, mc=False)
    try:
        with no_grad():
            return _forward_probs(model, x, batch_size)
    finally:
        _exit_mc_eval(model, state)


def _forward_probs(model: nn.Module, x: np.ndarray,
                   batch_size: Optional[int]) -> np.ndarray:
    if batch_size is None or len(x) <= batch_size:
        return _softmax_np(model(Tensor(x)).data, axis=-1)
    chunks = [
        _softmax_np(model(Tensor(x[i:i + batch_size])).data, axis=-1)
        for i in range(0, len(x), batch_size)
    ]
    return np.concatenate(chunks, axis=0)


def mc_predict_fn(forward: Callable[[np.ndarray], np.ndarray],
                  x: np.ndarray, n_samples: int = 20) -> PredictiveResult:
    """MC prediction over an arbitrary stochastic forward function.

    Used by the deployed (CIM) path where ``forward`` returns raw
    logits from numpy-level inference.
    """
    samples = []
    for _ in range(n_samples):
        samples.append(_softmax_np(forward(x), axis=-1))
    return PredictiveResult.from_samples(np.stack(samples))


def mc_predict_batched(forward_batched: Callable[[np.ndarray, int], np.ndarray],
                       x: np.ndarray, n_samples: int = 20) -> PredictiveResult:
    """MC prediction over a *vectorized* stochastic forward function.

    ``forward_batched(x, n_samples)`` must evaluate every Monte-Carlo
    pass in one call and return logits with a leading sample axis,
    shape ``(n_samples, N, C)`` — the batched counterpart of
    :func:`mc_predict_fn`'s T sequential calls.  Used by the deployed
    (CIM) path, where :meth:`repro.bayesian.BayesianCim.forward_batched`
    threads the sample axis through the whole analog chain as stacked
    ndarray ops.
    """
    logits = np.asarray(forward_batched(x, n_samples), dtype=np.float64)
    if logits.ndim < 3 or logits.shape[0] != n_samples:
        raise ValueError(
            f"forward_batched must return (n_samples, N, C) logits; "
            f"got shape {logits.shape} for n_samples={n_samples}")
    return PredictiveResult.from_logits(logits)
