"""SpinDrop: neuron-wise MC-Dropout with spintronic RNG (Sec. III-A.1).

The first binary Bayesian NN (BinBayNN) of the NeuSpin project: every
neuron of a layer owns a dedicated MTJ dropout module; each Bayesian
forward pass generates the dropout mask physically via SET→read→RESET
cycles; the deterministic binary weights live in the XNOR crossbar.

Training uses the BinBayNN objective: cross-entropy of the sampled
(binarized, dropped-out) network — the standard MC-Dropout variational
interpretation (Gal & Ghahramani, ref [5]) applied to binary weights.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bayesian.base import StochasticModule
from repro.devices.mtj import MTJParams
from repro.devices.rng import SpintronicRNG
from repro.devices.variability import DeviceVariability
from repro.tensor import Tensor


class SpinDropout(StochasticModule):
    """Neuron-wise dropout whose bits come from an MTJ module bank.

    Parameters
    ----------
    n_features:
        Neuron count — also the number of physical dropout modules
        (classic SpinDrop: "each neuron in the array was equipped with
        a dedicated dropout module").
    p:
        Programmed dropout probability.
    variability:
        Device variability; shifts each module's realized probability.
    ideal:
        Use an ideal software RNG instead of the MTJ bank (training
        convenience; deployment always uses the device model).
    """

    def __init__(self, n_features: int, p: float = 0.2,
                 mtj_params: Optional[MTJParams] = None,
                 variability: Optional[DeviceVariability] = None,
                 ideal: bool = False,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 < p < 1.0:
            raise ValueError("dropout probability must be in (0, 1)")
        self.n_features = n_features
        self.p = p
        self.ideal = ideal
        self.rng = rng or np.random.default_rng()
        if ideal:
            self.modules_bank = None
        else:
            self.modules_bank = SpintronicRNG(
                n_features, p=p, mtj_params=mtj_params,
                variability=variability, rng=self.rng)

    @property
    def n_dropout_modules(self) -> int:
        return self.n_features

    def sample_mask(self, batch: int) -> np.ndarray:
        """Sample a (batch, n_features) binary keep-mask.

        Pure zeroing, no 1/(1−p) compensation: a dropped neuron's
        wordline simply never fires in hardware, and Bayesian inference
        always samples (there is no "dropout off" rescaling moment).
        Batch-norm statistics are learned under the same masking, so
        train-time and deployed activations match bit-for-bit.
        """
        if self.modules_bank is None:
            drops = self.rng.random((batch, self.n_features)) < self.p
        else:
            bits = self.modules_bank.generate(batch * self.n_features)
            drops = bits.reshape(batch, self.n_features) > 0.5
        return (~drops).astype(np.float64)

    def mc_draw_pass(self, batch: int) -> np.ndarray:
        """One MC pass's (batch, F) keep-mask — the masks are per-row
        already, so the stacked path just concatenates T of them."""
        return self.sample_mask(batch)

    def forward(self, x: Tensor) -> Tensor:
        if not self.stochastic_active:
            return x
        if x.ndim != 2:
            raise ValueError("SpinDropout expects (N, F) activations; use "
                             "SpatialSpinDropout for feature maps")
        if self._mc_bank is not None:
            mask = self._mc_bank.reshape(-1, self.n_features)
            if mask.shape[0] != x.shape[0]:
                raise ValueError(
                    f"mask bank rows {mask.shape[0]} != batch {x.shape[0]}")
        else:
            mask = self.sample_mask(x.shape[0])
        return x * Tensor(mask)


def make_spindrop_mlp(in_features: int, hidden: tuple, n_classes: int,
                      p: float = 0.2, ideal_rng: bool = True,
                      variability: Optional[DeviceVariability] = None,
                      seed: Optional[int] = None):
    """Binary MLP with per-neuron SpinDrop after every hidden block.

    Architecture per hidden block: BinaryLinear → BatchNorm → sign
    (HardTanh at train time keeps gradients; deployment maps it to a
    sense-amp sign) → SpinDropout.  The classifier head stays binary
    with a real-valued scale.
    """
    from repro import nn

    rng = np.random.default_rng(seed)
    layers: list = []
    prev = in_features
    for i, width in enumerate(hidden):
        layers.append(nn.BinaryLinear(prev, width, rng=rng,
                                      binarize_input=(i == 0)))
        layers.append(nn.BatchNorm1d(width))
        layers.append(nn.SignActivation())
        layers.append(SpinDropout(width, p=p, ideal=ideal_rng,
                                  variability=variability, rng=rng))
        prev = width
    layers.append(nn.BinaryLinear(prev, n_classes, rng=rng))
    return nn.Sequential(*layers)


def make_binary_mlp(in_features: int, hidden: tuple, n_classes: int,
                    seed: Optional[int] = None):
    """Deterministic binary MLP — the point-estimate baseline.

    Identical topology to :func:`make_spindrop_mlp` minus the dropout
    layers; the comparison point for the "~2 % accuracy improvement"
    and corrupted-data claims (C1).
    """
    from repro import nn

    rng = np.random.default_rng(seed)
    layers: list = []
    prev = in_features
    for i, width in enumerate(hidden):
        layers.append(nn.BinaryLinear(prev, width, rng=rng,
                                      binarize_input=(i == 0)))
        layers.append(nn.BatchNorm1d(width))
        layers.append(nn.SignActivation())
        prev = width
    layers.append(nn.BinaryLinear(prev, n_classes, rng=rng))
    return nn.Sequential(*layers)


def count_dropout_modules(model) -> int:
    """Total physical dropout modules a model instantiates."""
    total = 0
    for module in model.modules():
        if isinstance(module, SpinDropout):
            total += module.n_dropout_modules
        elif hasattr(module, "n_dropout_modules") and module is not model:
            total += module.n_dropout_modules
    return total
