"""SpinScaleDrop: scale dropout with one RNG per layer (Sec. III-A.3).

The scale-dropout idea: instead of zeroing information (neurons /
feature maps), apply a *scalar* Bernoulli mask to the layer's
learnable scale vector — "a scalar dropout mask is applied to the
scale vector by scale modulation rather than information zeroing for
each layer. Thus, only a single dropout module is per layer."

When the scalar mask drops (m=0), the scale vector is replaced by its
dropout-mode value (down-modulated by ``drop_scale``); when it keeps
(m=1) the learned scale applies unchanged.  Randomness in the scale
vector perturbs the whole layer activation, reducing co-adaptation
between scale and binary weights, and multiple forward passes yield
Monte-Carlo uncertainty exactly like conventional MC-Dropout.

Device awareness: manufacturing variation makes the physical module's
dropout probability itself stochastic; the layer models it as a
Gaussian-distributed p (fitted via
:func:`repro.devices.variability.effective_dropout_probabilities`),
re-sampled every forward pass — "the dropout probability is defined as
a stochastic variable, and the dropout probability is fitted to a
Gaussian distribution."
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bayesian.base import StochasticModule
from repro.devices.mtj import MTJParams
from repro.devices.rng import SpintronicRNG
from repro.devices.variability import DeviceVariability
from repro.nn.module import Parameter
from repro.tensor import Tensor


def adaptive_dropout_probability(n_parameters: int,
                                 p_min: float = 0.05,
                                 p_max: float = 0.25,
                                 pivot: int = 50_000) -> float:
    """Layer-size-adaptive dropout probability.

    The paper proposes selecting p per layer from its parameter count
    (bigger layers tolerate more dropout), removing the design-space
    search: small layers get ``p_min``, layers around ``pivot``
    parameters interpolate logarithmically toward ``p_max``.
    """
    if n_parameters <= 0:
        raise ValueError("parameter count must be positive")
    t = np.clip(np.log10(n_parameters) / np.log10(pivot), 0.0, 1.0)
    return float(p_min + (p_max - p_min) * t)


class ScaleDropout(StochasticModule):
    """Learnable scale vector with a scalar stochastic mask.

    Parameters
    ----------
    n_features:
        Scale vector length (output features / channels of the layer
    spatial:
        ``True`` if the input is NCHW (scale applies per channel).
    p:
        Programmed dropout probability; ``None`` selects it adaptively
        from ``n_parameters``.
    drop_scale:
        Multiplier applied to the scale vector in the dropped state.
    stochastic_p_sigma:
        Std-dev of the Gaussian dropout-rate model (device-variability
        aware mode).  0 = ideal module.
    """

    def __init__(self, n_features: int, spatial: bool = False,
                 p: Optional[float] = None,
                 n_parameters: Optional[int] = None,
                 drop_scale: float = 0.5,
                 stochastic_p_sigma: float = 0.0,
                 mtj_params: Optional[MTJParams] = None,
                 variability: Optional[DeviceVariability] = None,
                 ideal: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if p is None:
            p = adaptive_dropout_probability(n_parameters or n_features)
        if not 0.0 < p < 1.0:
            raise ValueError("dropout probability must be in (0, 1)")
        self.n_features = n_features
        self.spatial = spatial
        self.p = p
        self.drop_scale = drop_scale
        self.stochastic_p_sigma = stochastic_p_sigma
        self.rng = rng or np.random.default_rng()
        # The scale vector is a learnable parameter trained by gradient
        # descent, regularized toward one (losses.scale_regularizer).
        self.scale = Parameter(np.ones(n_features))
        if ideal:
            self.module_bank = None
        else:
            self.module_bank = SpintronicRNG(
                1, p=p, mtj_params=mtj_params, variability=variability,
                rng=self.rng)
            mu, sigma = self.module_bank.fitted_probability()
            self.p = float(mu)
            self.stochastic_p_sigma = float(max(sigma, stochastic_p_sigma))

    @property
    def n_dropout_modules(self) -> int:
        return 1  # the whole point of the method

    def _current_p(self) -> float:
        """Per-pass dropout probability (Gaussian device model)."""
        if self.stochastic_p_sigma <= 0.0:
            return self.p
        return float(np.clip(
            self.rng.normal(self.p, self.stochastic_p_sigma), 0.01, 0.99))

    def sample_mask(self) -> float:
        """One scalar Bernoulli keep-decision for the entire layer."""
        p = self._current_p()
        if self.module_bank is not None:
            dropped = bool(self.module_bank.generate(1)[0])
        else:
            dropped = bool(self.rng.random() < p)
        return 0.0 if dropped else 1.0

    def effective_scale(self, keep: float) -> Tensor:
        """Scale vector under the sampled mask.

        Dropped state modulates the scale by ``drop_scale`` rather than
        zeroing — scale *modulation*, not information zeroing.
        """
        if keep >= 1.0:
            return self.scale
        return self.scale * self.drop_scale

    def mc_draw_pass(self, batch: int) -> float:
        """One MC pass's scalar keep-decision (shared by the whole
        batch, exactly as in a sequential pass)."""
        return self.sample_mask()

    def _banked_scale(self, x: Tensor) -> Tensor:
        """Per-row effective scale from the installed (P,) keep bank."""
        keeps = np.repeat(self._mc_bank, self._mc_rows)
        if keeps.shape[0] != x.shape[0]:
            raise ValueError(
                f"scale bank rows {keeps.shape[0]} != batch {x.shape[0]}")
        modulation = np.where(keeps >= 1.0, 1.0, self.drop_scale)
        column = modulation.reshape((-1,) + (1,) * (x.ndim - 1))
        base = self.scale
        if self.spatial:
            from repro.tensor import functional as F
            base = F.reshape(base, (1, -1, 1, 1))
        return base * Tensor(column)

    def forward(self, x: Tensor) -> Tensor:
        if self.spatial and x.ndim != 4:
            raise ValueError("spatial ScaleDropout expects (N, C, H, W)")
        if self.stochastic_active and self._mc_bank is not None:
            return x * self._banked_scale(x)
        if self.stochastic_active:
            scale = self.effective_scale(self.sample_mask())
        else:
            scale = self.scale
        if self.spatial:
            from repro.tensor import functional as F
            return x * F.reshape(scale, (1, -1, 1, 1))
        return x * scale


def make_scaledrop_mlp(in_features: int, hidden: tuple, n_classes: int,
                       drop_scale: float = 0.5,
                       stochastic_p_sigma: float = 0.0,
                       seed: Optional[int] = None):
    """Binary MLP with one ScaleDropout (single RNG) per hidden layer.

    Per block: BinaryLinear (scale disabled — the ScaleDropout layer
    owns the scale) → ScaleDropout → BatchNorm → sign.
    """
    from repro import nn

    rng = np.random.default_rng(seed)
    layers: list = []
    prev = in_features
    for i, width in enumerate(hidden):
        layers.append(nn.BinaryLinear(prev, width, scale=False, rng=rng,
                                      binarize_input=(i == 0)))
        layers.append(ScaleDropout(
            width, n_parameters=prev * width, drop_scale=drop_scale,
            stochastic_p_sigma=stochastic_p_sigma, rng=rng))
        layers.append(nn.BatchNorm1d(width))
        layers.append(nn.SignActivation())
        prev = width
    layers.append(nn.BinaryLinear(prev, n_classes, rng=rng))
    return nn.Sequential(*layers)


def scale_parameters(model) -> list:
    """Collect the scale vectors of all ScaleDropout layers (for the
    regularizer term of the training objective)."""
    return [m.scale for m in model.modules() if isinstance(m, ScaleDropout)]
