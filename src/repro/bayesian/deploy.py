"""Deployed Bayesian inference on the CIM fabric.

:class:`BayesianCim` compiles a trained stochastic model into a
:class:`~repro.cim.layers.CimNetwork` and re-creates its stochastic
behaviour at the *hardware* level: dropout masks come from
:class:`~repro.devices.rng.SpintronicRNG` banks and gate crossbar
wordlines / enables; scale-dropout modulates the SRAM scale path;
affine-dropout masks the frozen inverted-norm parameters; Bayesian
scales are re-sampled per pass.

This is the object the Table-I benchmark measures: ``mc_forward``
runs T passes through the accounted analog chain, and the ledger
afterwards holds every crossbar access, ADC conversion and RNG cycle
the method consumed.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro import nn
from repro.bayesian.affine import AffineDropout
from repro.bayesian.base import PredictiveResult, mc_predict_fn
from repro.bayesian.scale_dropout import ScaleDropout
from repro.bayesian.spatial import SpatialSpinDropout
from repro.bayesian.spindrop import SpinDropout
from repro.bayesian.subset_vi import BayesianScale
from repro.cim.compile import _deploy_layer
from repro.cim.layers import (
    CimConfig,
    CimConv2d,
    CimLinear,
    CimNetwork,
    DigitalScale,
    DropoutGate,
    FrozenNorm,
)
from repro.cim.ledger import OpLedger
from repro.devices.rng import SpintronicRNG
from repro.devices.variability import DeviceVariability


@dataclasses.dataclass
class _MaskBinding:
    """Links one trained stochastic layer to its deployed mechanism."""

    kind: str                      # neuron | channel | scale | affine | vi
    p: float
    rng_bank: Optional[SpintronicRNG]
    target: object                 # the CIM stage driven by the mask
    source: object                 # the trained stochastic layer
    software_rng: np.random.Generator


class BayesianCim:
    """A trained Bayesian model deployed to spintronic CIM hardware.

    Parameters
    ----------
    model:
        Trained :class:`~repro.nn.Sequential` containing stochastic
        layers (SpinDropout / SpatialSpinDropout / ScaleDropout /
        AffineDropout / BayesianScale).
    config:
        CIM deployment configuration (variability, defects, ADC bits,
        array size, mapping strategy).
    rng_variability:
        Separate variability model for the *dropout modules* (their Δ
        spread shifts realized dropout rates); defaults to the
        config's variability.
    """

    def __init__(self, model: nn.Sequential,
                 config: Optional[CimConfig] = None,
                 rng_variability: Optional[DeviceVariability] = None,
                 seed: Optional[int] = None):
        self.config = config or CimConfig(seed=seed)
        self.ledger = OpLedger()
        self._rng = np.random.default_rng(seed)
        rng_var = rng_variability or self.config.variability

        stages: list = []
        self.bindings: List[_MaskBinding] = []

        for layer in model:
            stage = _deploy_layer(layer, self.config, self.ledger)
            if stage is None:
                continue
            stages.append(stage)
            if isinstance(stage, DropoutGate) and isinstance(
                    layer, (SpinDropout, SpatialSpinDropout)):
                self._bind_mask(layer, stage, rng_var)
            if isinstance(stage, DigitalScale) and isinstance(
                    layer, (ScaleDropout, BayesianScale)):
                self._bind_scale(layer, stage, rng_var)
            if isinstance(stage, FrozenNorm) and isinstance(layer, AffineDropout):
                self._bind_affine(layer, stage, rng_var)
        self.network = CimNetwork(stages, self.ledger, self.config)

    # ------------------------------------------------------------------
    def _bind_mask(self, layer, gate: DropoutGate, rng_var) -> None:
        if isinstance(layer, SpinDropout):
            kind, n_modules = "neuron", layer.n_features
        else:
            kind, n_modules = "channel", layer.n_channels
        bank = SpintronicRNG(n_modules, p=layer.p,
                             mtj_params=self.config.mtj_params,
                             variability=rng_var, rng=self._rng)
        self.bindings.append(_MaskBinding(
            kind=kind, p=layer.p, rng_bank=bank, target=gate,
            source=layer, software_rng=self._rng))

    def _bind_scale(self, layer, stage, rng_var) -> None:
        if isinstance(layer, ScaleDropout):
            bank = SpintronicRNG(1, p=layer.p,
                                 mtj_params=self.config.mtj_params,
                                 variability=rng_var, rng=self._rng)
            self.bindings.append(_MaskBinding(
                kind="scale", p=layer.p, rng_bank=bank, target=stage,
                source=layer, software_rng=self._rng))
        else:  # BayesianScale: posterior sampling per pass
            self.bindings.append(_MaskBinding(
                kind="vi", p=0.0, rng_bank=None, target=stage,
                source=layer, software_rng=self._rng))

    def _bind_affine(self, layer, stage, rng_var) -> None:
        bank = SpintronicRNG(2, p=layer.p,
                             mtj_params=self.config.mtj_params,
                             variability=rng_var, rng=self._rng)
        self.bindings.append(_MaskBinding(
            kind="affine", p=layer.p, rng_bank=bank, target=stage,
            source=layer, software_rng=self._rng))

    # ------------------------------------------------------------------
    def _resample(self, batch: int) -> None:
        """Draw fresh hardware randomness for one forward pass."""
        for binding in self.bindings:
            if binding.kind in ("neuron", "channel"):
                bits = binding.rng_bank.generate(binding.rng_bank.n_modules)
                binding.target.mask = (bits < 0.5).astype(np.float64)
            elif binding.kind == "scale":
                bit = binding.rng_bank.generate(1)[0]
                layer: ScaleDropout = binding.source
                binding.target.multiplier = (
                    layer.drop_scale if bit > 0.5 else 1.0)
            elif binding.kind == "affine":
                bits = binding.rng_bank.generate(2)
                binding.target.gamma_multiplier = 0.0 if bits[0] > 0.5 else 1.0
                binding.target.beta_multiplier = 0.0 if bits[1] > 0.5 else 1.0
            elif binding.kind == "vi":
                layer: BayesianScale = binding.source
                sample = layer.posterior_sample_np()
                binding.target.multiplier = sample / np.where(
                    layer.mu.data == 0, 1.0, layer.mu.data)

    def _clear(self) -> None:
        for binding in self.bindings:
            if binding.kind in ("neuron", "channel"):
                binding.target.mask = None
            elif binding.kind in ("scale", "vi"):
                binding.target.multiplier = 1.0
            elif binding.kind == "affine":
                binding.target.gamma_multiplier = 1.0
                binding.target.beta_multiplier = 1.0

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, stochastic: bool = True) -> np.ndarray:
        """One pass through the analog chain; raw logits."""
        batch = x.shape[0]
        if stochastic:
            self._resample(batch)
            # Book the RNG cycles each image's mask generation costs.
            # In hardware every image draws fresh bits; the behavioural
            # model shares one mask per pass but accounts per image.
            for binding in self.bindings:
                if binding.kind in ("neuron", "channel"):
                    bits = binding.rng_bank.n_modules
                elif binding.kind == "scale":
                    bits = 1
                elif binding.kind == "affine":
                    bits = 2
                else:  # vi: one stochastic-SOT draw per scale element
                    bits = binding.source.n_features
                self.ledger.add("rng_cycle", bits * batch)
        else:
            self._clear()
        return self.network.forward(x)

    __call__ = forward

    def mc_forward(self, x: np.ndarray, n_samples: int = 20
                   ) -> PredictiveResult:
        """Monte-Carlo Bayesian inference on hardware: T passes."""
        return mc_predict_fn(lambda inp: self.forward(inp, stochastic=True),
                             x, n_samples=n_samples)

    def deterministic_forward(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x, stochastic=False)

    # ------------------------------------------------------------------
    @property
    def n_dropout_modules(self) -> int:
        """Physical RNG module count of the deployment."""
        total = 0
        for binding in self.bindings:
            if binding.rng_bank is not None:
                total += binding.rng_bank.n_modules
        return total
