"""Deployed Bayesian inference on the CIM fabric.

:class:`BayesianCim` compiles a trained stochastic model into a
:class:`~repro.cim.layers.CimNetwork` and re-creates its stochastic
behaviour at the *hardware* level: dropout masks come from
:class:`~repro.devices.rng.SpintronicRNG` banks and gate crossbar
wordlines / enables; scale-dropout modulates the SRAM scale path;
affine-dropout masks the frozen inverted-norm parameters; Bayesian
scales are re-sampled per pass.

This is the object the Table-I benchmark measures: ``mc_forward``
runs T passes through the accounted analog chain, and the ledger
afterwards holds every crossbar access, ADC conversion and RNG cycle
the method consumed.

Two execution strategies produce those T passes:

* **sequential** (``mc_forward(..., batched=False)``) — the original
  per-pass Python loop: re-draw hardware randomness, walk the stage
  list, repeat T times;
* **batched** (default) — :meth:`BayesianCim.forward_batched`
  pre-draws all T per-pass mask banks (consuming the RNG streams in
  exactly the sequential order), installs them as per-row banks on the
  stochastic stages, and pushes one flattened ``(T·N, …)`` tensor
  through the analog chain as stacked ndarray ops.  Ledger totals are
  identical by construction, and with no cycle-to-cycle read noise the
  outputs are bit-for-bit identical to the sequential path.

Underneath, the analog chain runs on the shared kernel substrate of
:mod:`repro.tensor.functional`: :class:`~repro.cim.layers.CimConv2d`
gathers its im2col patches through the memoized conv-plan cache into
per-thread scratch arenas (zero index-plan rebuilds and near-zero
fresh allocation once warm) and, on an ideal chain, takes the
exact-integer float32 crossbar route — so both strategies share the
same fast kernels and stay bit-for-bit comparable.  The ``cim_conv``
entry of ``scripts/bench_ci.py`` gates all of that in CI.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from repro import nn
from repro.bayesian.affine import AffineDropout
from repro.bayesian.base import (
    PredictiveResult,
    mc_predict_batched,
    mc_predict_fn,
)
from repro.bayesian.scale_dropout import ScaleDropout
from repro.bayesian.spatial import SpatialSpinDropout
from repro.bayesian.spindrop import SpinDropout
from repro.bayesian.subset_vi import BayesianScale
from repro.cim.compile import _deploy_layer
from repro.cim.layers import (
    CimConfig,
    CimNetwork,
    DigitalScale,
    DropoutGate,
    FrozenNorm,
)
from repro.cim.ledger import OpLedger
from repro.devices.rng import SpintronicRNG
from repro.devices.variability import DeviceVariability


@dataclasses.dataclass
class _MaskBinding:
    """Links one trained stochastic layer to its deployed mechanism."""

    kind: str                      # neuron | channel | scale | affine | vi
    p: float
    rng_bank: Optional[SpintronicRNG]
    target: object                 # the CIM stage driven by the mask
    source: object                 # the trained stochastic layer
    software_rng: np.random.Generator


class BayesianCim:
    """A trained Bayesian model deployed to spintronic CIM hardware.

    Parameters
    ----------
    model:
        Trained :class:`~repro.nn.Sequential` containing stochastic
        layers (SpinDropout / SpatialSpinDropout / ScaleDropout /
        AffineDropout / BayesianScale).
    config:
        CIM deployment configuration (variability, defects, ADC bits,
        array size, mapping strategy).
    rng_variability:
        Separate variability model for the *dropout modules* (their Δ
        spread shifts realized dropout rates); defaults to the
        config's variability.
    """

    def __init__(self, model: nn.Sequential,
                 config: Optional[CimConfig] = None,
                 rng_variability: Optional[DeviceVariability] = None,
                 seed: Optional[int] = None):
        self.config = config or CimConfig(seed=seed)
        self.ledger = OpLedger()
        self._rng = np.random.default_rng(seed)
        rng_var = rng_variability or self.config.variability

        stages: list = []
        self.bindings: List[_MaskBinding] = []

        for layer in model:
            stage = _deploy_layer(layer, self.config, self.ledger)
            if stage is None:
                continue
            stages.append(stage)
            if isinstance(stage, DropoutGate) and isinstance(
                    layer, (SpinDropout, SpatialSpinDropout)):
                self._bind_mask(layer, stage, rng_var)
            if isinstance(stage, DigitalScale) and isinstance(
                    layer, (ScaleDropout, BayesianScale)):
                self._bind_scale(layer, stage, rng_var)
            if isinstance(stage, FrozenNorm) and isinstance(layer, AffineDropout):
                self._bind_affine(layer, stage, rng_var)
        self.network = CimNetwork(stages, self.ledger, self.config)
        if self.config.use_bitpack:
            # Pay the XNOR-kernel pack cost at deploy time, not on the
            # first serving call (mirrors compile_to_cim).
            for stage in self.network.mvm_layers():
                for row in stage.crossbars:
                    for bar in row:
                        bar.packed_weights_t()

    # ------------------------------------------------------------------
    @classmethod
    def from_parts(cls, network: CimNetwork,
                   bindings: List[_MaskBinding],
                   rng: np.random.Generator) -> "BayesianCim":
        """Wire a deployment from pre-built parts (snapshot restore).

        ``network`` carries the already-installed crossbar state and
        the shared ledger; ``bindings`` link rebuilt RNG banks and
        stand-in sources to the network's stages.  Nothing is
        programmed or drawn here — :mod:`repro.cim.snapshot` restores
        every generator's bit state afterwards, so the first MC pass
        continues the captured streams exactly.
        """
        self = cls.__new__(cls)
        self.config = network.config
        self.ledger = network.ledger
        self._rng = rng
        self.bindings = list(bindings)
        self.network = network
        return self

    # ------------------------------------------------------------------
    def _bind_mask(self, layer, gate: DropoutGate, rng_var) -> None:
        if isinstance(layer, SpinDropout):
            kind, n_modules = "neuron", layer.n_features
        else:
            kind, n_modules = "channel", layer.n_channels
        bank = SpintronicRNG(n_modules, p=layer.p,
                             mtj_params=self.config.mtj_params,
                             variability=rng_var, rng=self._rng)
        self.bindings.append(_MaskBinding(
            kind=kind, p=layer.p, rng_bank=bank, target=gate,
            source=layer, software_rng=self._rng))

    def _bind_scale(self, layer, stage, rng_var) -> None:
        if isinstance(layer, ScaleDropout):
            bank = SpintronicRNG(1, p=layer.p,
                                 mtj_params=self.config.mtj_params,
                                 variability=rng_var, rng=self._rng)
            self.bindings.append(_MaskBinding(
                kind="scale", p=layer.p, rng_bank=bank, target=stage,
                source=layer, software_rng=self._rng))
        else:  # BayesianScale: posterior sampling per pass
            self.bindings.append(_MaskBinding(
                kind="vi", p=0.0, rng_bank=None, target=stage,
                source=layer, software_rng=self._rng))

    def _bind_affine(self, layer, stage, rng_var) -> None:
        bank = SpintronicRNG(2, p=layer.p,
                             mtj_params=self.config.mtj_params,
                             variability=rng_var, rng=self._rng)
        self.bindings.append(_MaskBinding(
            kind="affine", p=layer.p, rng_bank=bank, target=stage,
            source=layer, software_rng=self._rng))

    # ------------------------------------------------------------------
    def _resample(self, batch: int) -> None:
        """Draw fresh hardware randomness for one forward pass."""
        for binding in self.bindings:
            if binding.kind in ("neuron", "channel"):
                bits = binding.rng_bank.generate(binding.rng_bank.n_modules)
                binding.target.mask = (bits < 0.5).astype(np.float64)
            elif binding.kind == "scale":
                bit = binding.rng_bank.generate(1)[0]
                layer: ScaleDropout = binding.source
                binding.target.multiplier = (
                    layer.drop_scale if bit > 0.5 else 1.0)
            elif binding.kind == "affine":
                bits = binding.rng_bank.generate(2)
                binding.target.gamma_multiplier = 0.0 if bits[0] > 0.5 else 1.0
                binding.target.beta_multiplier = 0.0 if bits[1] > 0.5 else 1.0
            elif binding.kind == "vi":
                layer: BayesianScale = binding.source
                sample = layer.posterior_sample_np()
                binding.target.multiplier = sample / np.where(
                    layer.mu.data == 0, 1.0, layer.mu.data)

    def _clear(self) -> None:
        for binding in self.bindings:
            if binding.kind in ("neuron", "channel"):
                binding.target.mask = None
            elif binding.kind in ("scale", "vi"):
                binding.target.multiplier = 1.0
            elif binding.kind == "affine":
                binding.target.gamma_multiplier = 1.0
                binding.target.beta_multiplier = 1.0

    # ------------------------------------------------------------------
    # Batched Monte-Carlo engine
    # ------------------------------------------------------------------
    def _draw_sample_banks(self, n_samples: int) -> List[np.ndarray]:
        """Pre-draw T passes of hardware randomness, one bank per binding.

        Draws consume the RNG streams in exactly the order T sequential
        :meth:`_resample` calls would (pass-major, then binding order),
        so a seeded batched run reproduces the sequential masks
        bit-for-bit.  Returns one ``(T, …)`` array per binding:
        keep-masks for neuron/channel, scalar multipliers for scale,
        (gamma, beta) multiplier pairs for affine, per-feature
        multiplier vectors for VI.
        """
        draws: List[list] = [[] for _ in self.bindings]
        for _ in range(n_samples):
            for slot, binding in zip(draws, self.bindings):
                if binding.kind in ("neuron", "channel"):
                    bits = binding.rng_bank.generate(binding.rng_bank.n_modules)
                    slot.append((bits < 0.5).astype(np.float64))
                elif binding.kind == "scale":
                    bit = binding.rng_bank.generate(1)[0]
                    layer: ScaleDropout = binding.source
                    slot.append(layer.drop_scale if bit > 0.5 else 1.0)
                elif binding.kind == "affine":
                    bits = binding.rng_bank.generate(2)
                    slot.append((0.0 if bits[0] > 0.5 else 1.0,
                                 0.0 if bits[1] > 0.5 else 1.0))
                else:  # vi
                    layer: BayesianScale = binding.source
                    sample = layer.posterior_sample_np()
                    slot.append(sample / np.where(
                        layer.mu.data == 0, 1.0, layer.mu.data))
        return [np.asarray(slot, dtype=np.float64) for slot in draws]

    def _install_banks(self, banks: List[np.ndarray], t0: int, t1: int,
                       batch: int) -> None:
        """Expand pass-level banks [t0, t1) into per-row stage state.

        Every per-pass draw is repeated ``batch`` times so row
        ``t * batch + i`` of the flattened tensor sees pass ``t``'s
        mask — the same sharing the sequential path applies within one
        pass.
        """
        for binding, bank in zip(self.bindings, banks):
            rows = bank[t0:t1]
            if binding.kind in ("neuron", "channel"):
                binding.target.mask = np.repeat(rows, batch, axis=0)
            elif binding.kind == "scale":
                binding.target.multiplier = np.repeat(rows, batch)[:, None]
            elif binding.kind == "affine":
                binding.target.gamma_multiplier = np.repeat(rows[:, 0], batch)
                binding.target.beta_multiplier = np.repeat(rows[:, 1], batch)
            else:  # vi
                binding.target.multiplier = np.repeat(rows, batch, axis=0)

    def _set_passes_per_call(self, passes: int) -> None:
        for stage in self.network.stages:
            if isinstance(stage, DigitalScale):
                stage.passes_per_call = passes

    def _rng_bits_per_image(self, binding: _MaskBinding) -> int:
        """RNG cycles one image's mask generation costs for a binding."""
        if binding.kind in ("neuron", "channel"):
            return binding.rng_bank.n_modules
        if binding.kind == "scale":
            return 1
        if binding.kind == "affine":
            return 2
        return binding.source.n_features  # vi: one draw per scale element

    def _has_read_noise(self) -> bool:
        """Whether the analog chain draws fresh randomness per forward."""
        var = self.config.variability
        return var is not None and var.params.sigma_read > 0.0

    def _stochastic_split(self) -> int:
        """Index of the first stage driven by a mask binding.

        Stages before it are pass-invariant: they see the same input on
        every MC pass and (absent read noise) compute the same output,
        so the batched engine evaluates them once and broadcasts.
        """
        bound = {id(binding.target) for binding in self.bindings}
        for idx, stage in enumerate(self.network.stages):
            if id(stage) in bound:
                return idx
        return len(self.network.stages)

    def forward_batched(self, x: np.ndarray, n_samples: int = 20,
                        chunk_passes: Optional[int] = None) -> np.ndarray:
        """All T MC passes as stacked ndarray ops; logits (T, N, C).

        Bit-for-bit identical to T calls of ``forward(x,
        stochastic=True)`` under the same seed, with identical ledger
        totals (crossbar accesses, ADC conversions, RNG cycles, SRAM
        reads).  Mask banks are pre-drawn in sequential RNG order, then
        the passes run as one flattened ``(T·N, …)`` tensor.  Two
        refinements keep that equivalence exact while going fast:

        * the *pass-invariant prefix* — every stage before the first
          stochastic stage — is evaluated once and broadcast across
          passes, its ledger delta multiplied by T (the hardware still
          performs T passes; the simulator memoizes deterministic
          recomputation);
        * when cycle-to-cycle read noise is enabled the chain is no
          longer pass-deterministic, so the engine drops to one pass
          per stacked call and disables prefix memoization — the noise
          stream is then consumed draw-for-draw in sequential order.

        ``chunk_passes`` bounds peak memory by evaluating at most that
        many passes per stacked forward (default: all at once).
        """
        if n_samples < 1:
            raise ValueError("need at least one MC sample")
        x = np.asarray(x, dtype=np.float64)
        batch = x.shape[0]
        banks = self._draw_sample_banks(n_samples)
        # Per-image RNG-cycle accounting, identical to the sequential
        # path's per-pass booking.
        for binding in self.bindings:
            self.ledger.add(
                "rng_cycle",
                self._rng_bits_per_image(binding) * batch * n_samples)

        chunk = n_samples if chunk_passes is None else max(1, int(chunk_passes))
        split = self._stochastic_split()
        if self._has_read_noise():
            chunk = 1
            split = 0
        stages = self.network.stages

        # Pass-invariant prefix: run once, book T-fold.
        h = x
        if split > 0:
            with self.ledger.amortized(n_samples):
                for stage in stages[:split]:
                    h = stage(h)

        outs = []
        try:
            for t0 in range(0, n_samples, chunk):
                t1 = min(t0 + chunk, n_samples)
                self._install_banks(banks, t0, t1, batch)
                self._set_passes_per_call(t1 - t0)
                flat = np.broadcast_to(
                    h[None], (t1 - t0,) + h.shape).reshape(
                        ((t1 - t0) * batch,) + h.shape[1:])
                for stage in stages[split:]:
                    flat = stage(flat)
                outs.append(flat.reshape((t1 - t0, batch) + flat.shape[1:]))
        finally:
            self._clear()
            self._set_passes_per_call(1)
        if len(outs) == 1:
            return outs[0]
        return np.concatenate(outs, axis=0)

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, stochastic: bool = True) -> np.ndarray:
        """One pass through the analog chain; raw logits."""
        batch = x.shape[0]
        if stochastic:
            self._resample(batch)
            # Book the RNG cycles each image's mask generation costs.
            # In hardware every image draws fresh bits; the behavioural
            # model shares one mask per pass but accounts per image.
            for binding in self.bindings:
                self.ledger.add(
                    "rng_cycle", self._rng_bits_per_image(binding) * batch)
        else:
            self._clear()
        return self.network.forward(x)

    __call__ = forward

    def mc_forward(self, x: np.ndarray, n_samples: int = 20,
                   batched: bool = True,
                   chunk_passes: Optional[int] = None) -> PredictiveResult:
        """Monte-Carlo Bayesian inference on hardware: T passes.

        ``batched=True`` (default) evaluates all passes through the
        vectorized engine; ``batched=False`` keeps the original
        per-pass loop (the reference implementation the equivalence
        tests pin the batched engine against).
        """
        if batched:
            return self.mc_forward_batched(x, n_samples=n_samples,
                                           chunk_passes=chunk_passes)
        return mc_predict_fn(lambda inp: self.forward(inp, stochastic=True),
                             x, n_samples=n_samples)

    def mc_forward_batched(self, x: np.ndarray, n_samples: int = 20,
                           chunk_passes: Optional[int] = None
                           ) -> PredictiveResult:
        """Batched MC inference: one stacked evaluation of all T passes."""
        return mc_predict_batched(
            lambda inp, t: self.forward_batched(inp, t,
                                                chunk_passes=chunk_passes),
            x, n_samples=n_samples)

    def deterministic_forward(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x, stochastic=False)

    # ------------------------------------------------------------------
    @property
    def n_dropout_modules(self) -> int:
        """Physical RNG module count of the deployment."""
        total = 0
        for binding in self.bindings:
            if binding.rng_bank is not None:
                total += binding.rng_bank.n_modules
        return total
