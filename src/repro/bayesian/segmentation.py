"""Bayesian semantic segmentation (the §III-B.2 segmentation tasks).

A compact binary encoder–decoder: two conv blocks downsample, two
upsample stages restore resolution, and a 1×1 binary conv head emits
per-pixel class logits.  Spatial-SpinDrop between the encoder blocks
makes it Bayesian — T forward passes give a per-pixel predictive
distribution whose entropy is the uncertainty *map* the safety-
critical applications consume (flagging unknown objects pixel-wise).

Training uses per-pixel cross-entropy; see
:func:`segmentation_loss` / :func:`repro.uncertainty.metrics.mean_iou`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.bayesian.base import PredictiveResult, set_mc_mode
from repro.bayesian.spatial import SpatialSpinDropout
from repro.tensor import Tensor, functional as F, no_grad


class Upsample2d(nn.Module):
    """Nearest-neighbour ×factor upsampling (decoder stage)."""

    def __init__(self, factor: int = 2):
        super().__init__()
        self.factor = factor

    def forward(self, x: Tensor) -> Tensor:
        return F.upsample2d(x, self.factor)


def make_bayesian_segmenter(in_channels: int = 1, n_classes: int = 3,
                            width: int = 8, p: float = 0.15,
                            seed: Optional[int] = None) -> nn.Sequential:
    """Binary Bayesian encoder–decoder for per-pixel classification.

    enc: conv(→w) → BN → sign → pool → [SpatialSpinDrop] →
         conv(→2w) → BN → sign → pool
    dec: up ×2 → conv(→w) → BN → sign → up ×2 → conv(→classes)
    """
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.BinaryConv2d(in_channels, width, 3, padding=1, rng=rng,
                        binarize_input=True),
        nn.BatchNorm2d(width),
        nn.SignActivation(),
        nn.MaxPool2d(2),
        SpatialSpinDropout(width, p=p, ideal=True, rng=rng),
        nn.BinaryConv2d(width, 2 * width, 3, padding=1, rng=rng),
        nn.BatchNorm2d(2 * width),
        nn.SignActivation(),
        nn.MaxPool2d(2),
        Upsample2d(2),
        nn.BinaryConv2d(2 * width, width, 3, padding=1, rng=rng),
        nn.BatchNorm2d(width),
        nn.SignActivation(),
        Upsample2d(2),
        nn.BinaryConv2d(width, n_classes, 3, padding=1, rng=rng),
    )


def segmentation_loss(logits: Tensor, masks: np.ndarray) -> Tensor:
    """Mean per-pixel cross-entropy.

    ``logits`` (N, C, H, W), ``masks`` (N, H, W) integer labels.
    """
    n, c, h, w = logits.shape
    flat = F.reshape(F.transpose(logits, (0, 2, 3, 1)), (n * h * w, c))
    return F.softmax_cross_entropy(flat, np.asarray(masks).reshape(-1))


def mc_segment(model: nn.Module, images: np.ndarray,
               n_samples: int = 10) -> PredictiveResult:
    """Monte-Carlo per-pixel predictive distribution.

    Returns a :class:`PredictiveResult` whose ``probs`` has shape
    (N·H·W, C) — reshape with :func:`pixel_maps` for visualization.
    """
    from repro.tensor.functional import _softmax_np

    model.eval()
    set_mc_mode(model, True)
    try:
        samples = []
        with no_grad():
            for _ in range(n_samples):
                logits = model(Tensor(images)).data      # (N, C, H, W)
                n, c, h, w = logits.shape
                probs = _softmax_np(
                    logits.transpose(0, 2, 3, 1).reshape(-1, c), axis=-1)
                samples.append(probs)
        stacked = np.stack(samples)
        return PredictiveResult(probs=stacked.mean(axis=0), samples=stacked)
    finally:
        set_mc_mode(model, False)


def pixel_maps(result: PredictiveResult, image_shape: tuple):
    """Reshape a segmentation result to (N, H, W) prediction and
    entropy maps."""
    n, h, w = image_shape
    predictions = result.predictions.reshape(n, h, w)
    entropy = result.predictive_entropy.reshape(n, h, w)
    return predictions, entropy
