"""Bayesian semantic segmentation (the §III-B.2 segmentation tasks).

A compact binary encoder–decoder: two conv blocks downsample, two
upsample stages restore resolution, and a 1×1 binary conv head emits
per-pixel class logits.  Spatial-SpinDrop between the encoder blocks
makes it Bayesian — T forward passes give a per-pixel predictive
distribution whose entropy is the uncertainty *map* the safety-
critical applications consume (flagging unknown objects pixel-wise).

Inference runs through the **pass-stacked engine** by default:
:func:`mc_segment_batched` pre-draws every stochastic layer's T
per-pass spatial mask banks in sequential RNG order and evaluates all
passes as one ``(T·N, C, H, W)`` tensor, so one prediction costs a
handful of ndarray ops instead of T Python-level decoder walks — and
every conv/pool forward inside it reuses the memoized im2col index
plans in :mod:`repro.tensor.functional`.  Outputs are bit-for-bit
identical to the sequential loop (``batched=False``).

Training uses per-pixel cross-entropy; see
:func:`segmentation_loss` / :func:`repro.uncertainty.metrics.mean_iou`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.bayesian.base import (
    PredictiveResult,
    _enter_mc_eval,
    _exit_mc_eval,
    _mc_draw_banks,
    _run_layers,
    _stacked_plan,
)
from repro.bayesian.spatial import SpatialSpinDropout
from repro.nn.layers import Upsample2d
from repro.tensor import Tensor, functional as F, no_grad
from repro.tensor.functional import (
    _im2col_indices,
    _is_exact_ternary,
    _softmax_np,
)

__all__ = [
    "Upsample2d",
    "SegmenterEngine",
    "make_bayesian_segmenter",
    "mc_segment",
    "mc_segment_batched",
    "pixel_maps",
    "segmentation_loss",
]


def make_bayesian_segmenter(in_channels: int = 1, n_classes: int = 3,
                            width: int = 8, p: float = 0.15,
                            seed: Optional[int] = None) -> nn.Sequential:
    """Binary Bayesian encoder–decoder for per-pixel classification.

    enc: conv(→w) → BN → sign → pool → [SpatialSpinDrop] →
         conv(→2w) → BN → sign → pool
    dec: up ×2 → conv(→w) → BN → sign → up ×2 → conv(→classes)
    """
    rng = np.random.default_rng(seed)
    return nn.Sequential(
        nn.BinaryConv2d(in_channels, width, 3, padding=1, rng=rng,
                        binarize_input=True),
        nn.BatchNorm2d(width),
        nn.SignActivation(),
        nn.MaxPool2d(2),
        SpatialSpinDropout(width, p=p, ideal=True, rng=rng),
        nn.BinaryConv2d(width, 2 * width, 3, padding=1, rng=rng),
        nn.BatchNorm2d(2 * width),
        nn.SignActivation(),
        nn.MaxPool2d(2),
        Upsample2d(2),
        nn.BinaryConv2d(2 * width, width, 3, padding=1, rng=rng),
        nn.BatchNorm2d(width),
        nn.SignActivation(),
        Upsample2d(2),
        nn.BinaryConv2d(width, n_classes, 3, padding=1, rng=rng),
    )


def segmentation_loss(logits: Tensor, masks: np.ndarray) -> Tensor:
    """Mean per-pixel cross-entropy.

    ``logits`` (N, C, H, W), ``masks`` (N, H, W) integer labels.
    """
    n, c, h, w = logits.shape
    flat = F.reshape(F.transpose(logits, (0, 2, 3, 1)), (n * h * w, c))
    return F.softmax_cross_entropy(flat, np.asarray(masks).reshape(-1))


def mc_segment(model: nn.Module, images: np.ndarray,
               n_samples: int = 10, batched: bool = True,
               chunk_passes: Optional[int] = None) -> PredictiveResult:
    """Monte-Carlo per-pixel predictive distribution.

    Returns a :class:`PredictiveResult` whose ``probs`` has shape
    (N·H·W, C) — reshape with :func:`pixel_maps` for visualization.

    ``batched=True`` (default) evaluates all T passes as one stacked
    ``(T·N, C, H, W)`` tensor when every stochastic layer supports
    per-row mask banks (see :func:`mc_segment_batched`); otherwise —
    or with ``batched=False`` — it runs the sequential per-pass loop.
    Both strategies draw the per-pass randomness in the same stream
    order, so the outputs are bit-for-bit identical either way.  The
    model's train/eval mode is restored on return.
    """
    state = _enter_mc_eval(model)
    try:
        if batched:
            result = _mc_segment_stacked(model, images, n_samples,
                                         chunk_passes)
            if result is not None:
                return result
        samples = []
        with no_grad():
            for _ in range(n_samples):
                logits = model(Tensor(images)).data      # (N, C, H, W)
                n, c, h, w = logits.shape
                probs = _softmax_np(
                    logits.transpose(0, 2, 3, 1).reshape(-1, c), axis=-1)
                samples.append(probs)
        stacked = np.stack(samples)
        return PredictiveResult(probs=stacked.mean(axis=0), samples=stacked)
    finally:
        _exit_mc_eval(model, state)


def mc_segment_batched(model: nn.Module, images: np.ndarray,
                       n_samples: int = 10,
                       chunk_passes: Optional[int] = None
                       ) -> PredictiveResult:
    """Pass-stacked Monte-Carlo segmentation engine.

    Pre-draws every stochastic layer's T per-pass mask banks in
    sequential RNG order (pass-major across the model's layers — the
    order T sequential forwards would draw in), installs them as
    per-row banks, and pushes one ``(T·N, C, H, W)`` pass-stack
    through the model.  Bit-for-bit identical to the sequential loop
    (:func:`mc_segment` with ``batched=False``) — same probs, same
    per-pass samples — while paying the Python-level layer walk and
    im2col plan lookups once instead of T times.

    ``chunk_passes`` bounds peak memory by stacking at most that many
    passes per forward.  Models containing a stochastic layer without
    per-row bank support fall back to the sequential loop (identical
    outputs, just slower).  The model's train/eval mode is restored on
    return.
    """
    return mc_segment(model, images, n_samples=n_samples, batched=True,
                      chunk_passes=chunk_passes)


def _mc_segment_stacked(model: nn.Module, images: np.ndarray,
                        n_samples: int, chunk_passes: Optional[int]
                        ) -> Optional[PredictiveResult]:
    """Stacked evaluation of all T segmentation passes; None if
    unsupported.

    Mirrors :func:`repro.bayesian.base._mc_predict_stacked`, with the
    segmentation-specific output handling: per-pass ``(N, C, H, W)``
    logits flatten to ``(N·H·W, C)`` pixel rows before the softmax,
    exactly as the sequential loop does per pass.
    """
    x = np.asarray(images, dtype=np.float64)
    if x.ndim != 4:
        raise ValueError(f"mc_segment expects (N, C, H, W) images; "
                         f"got shape {x.shape}")
    n = x.shape[0]
    # Decide support BEFORE consuming any randomness, so an aborted
    # stacked attempt leaves the RNG streams untouched for the
    # sequential fallback (bit-for-bit parity).
    _, modules, supported, prefix, suffix = _stacked_plan(model)
    if not supported:
        return None
    banks = _mc_draw_banks(modules, n, n_samples)

    chunk = n_samples if chunk_passes is None else max(1, int(chunk_passes))
    outs = []
    try:
        with no_grad():
            # The encoder stage before the first Spatial-SpinDrop is
            # pass-invariant: evaluate it once on the raw images and
            # broadcast across the pass-stack.
            base = _run_layers(prefix, x)
            # Fuse a leading dropout→conv pair into pass-invariant
            # per-channel partial convs where exactness allows.
            gated = _channel_gated_conv_plan(suffix, modules, base)
            if gated is not None:
                suffix = suffix[2:]
            for t0 in range(0, n_samples, chunk):
                t1 = min(t0 + chunk, n_samples)
                p = t1 - t0
                for module, bank in zip(modules, banks):
                    module.mc_install_bank(bank[t0:t1], n)
                if gated is not None:
                    stacked = _channel_gated_conv_apply(
                        gated, banks[gated[0]][t0:t1])
                else:
                    stacked = np.broadcast_to(
                        base[None], (p,) + base.shape).reshape(
                            (p * n,) + base.shape[1:])
                logits = _run_layers(suffix, stacked)  # (P·N, C, H, W)
                _, c, h, w = logits.shape
                pixel_rows = logits.reshape(p, n, c, h, w).transpose(
                    0, 1, 3, 4, 2).reshape(p, n * h * w, c)
                # In-place softmax on the fresh pixel-row copy: the
                # same sub/exp/div sequence as _softmax_np, without
                # its three temporaries.
                pixel_rows -= pixel_rows.max(axis=-1, keepdims=True)
                np.exp(pixel_rows, out=pixel_rows)
                pixel_rows /= pixel_rows.sum(axis=-1, keepdims=True)
                outs.append(pixel_rows)
    finally:
        for module in modules:
            module.mc_clear_bank()
    samples = outs[0] if len(outs) == 1 else np.concatenate(outs, axis=0)
    return PredictiveResult.from_samples(samples)


def _channel_gated_conv_plan(suffix, modules, base: np.ndarray):
    """Fuse a leading [SpatialSpinDrop → BinaryConv2d] pair into
    per-channel partial convolutions.

    Spatial dropout gates whole input feature maps, and convolution is
    linear over them: ``conv(x ⊙ m) = Σ_c m[c] · conv(x_c)``.  The
    per-channel partials ``conv(x_c)`` are pass-invariant, so the
    engine computes them once and reduces every MC pass to a
    mask-weighted sum — the software mirror of the paper's wordline
    gating, where a dropped feature map's crossbar rows simply never
    fire.  Grouped kernels decompose the same way *within* each group
    (output-channel block g sums only its own group's input maps), so
    the plan holds one partial slab per group and the apply step
    contracts each group's mask slice against its slab.  Exactness:
    with ±1 kernels and {−1, 0, +1} activations all partial sums are
    small integers, so the regrouped summation (and its float32
    storage) is bit-identical to the fused GEMM the sequential loop
    runs.

    Returns ``(bank_index, conv, per-group partials, out_hw)`` or None
    when the suffix does not start with the gated pair (or the
    activations are not exact-integer, where regrouping could round
    differently).
    """
    from repro.nn.binary import BinaryConv2d

    if len(suffix) < 2:
        return None
    drop, conv = suffix[0], suffix[1]
    if not isinstance(drop, SpatialSpinDropout):
        return None
    if not isinstance(conv, BinaryConv2d) or conv.binarize_input:
        return None
    if drop not in modules:
        return None
    if not _is_exact_ternary(base):
        return None
    n, c, h0, w0 = base.shape
    groups = conv.groups
    c_per = c // groups
    o_per = conv.out_channels // groups
    kh = kw = conv.kernel_size
    pad = conv.padding
    h, w = h0 + 2 * pad, w0 + 2 * pad
    padded = np.zeros((n, c, h, w), dtype=np.float32)
    padded[:, :, pad:h - pad, pad:w - pad] = base
    rows, cols_idx, out_h, out_w = _im2col_indices(h, w, kh, kw, conv.stride,
                                                   conv.dilation)
    w_bin = np.where(conv.weight.data >= 0, np.float32(1), np.float32(-1))
    w_bin = w_bin.reshape(conv.out_channels, c_per, kh * kw)
    partials = []
    for g in range(groups):
        # (N, C/G, KH·KW, L) patches of this group's input maps ×
        # (C/G, O/G, KH·KW) kernels → (N, C/G, O/G, L) partials.
        patches = padded[:, g * c_per:(g + 1) * c_per, rows, cols_idx]
        w_g = np.ascontiguousarray(
            w_bin[g * o_per:(g + 1) * o_per].transpose(1, 0, 2))
        partials.append(np.matmul(w_g[None], patches))
    return modules.index(drop), conv, partials, (out_h, out_w)


def _channel_gated_conv_apply(plan, bank_slice: np.ndarray) -> np.ndarray:
    """Contract one chunk of keep-mask banks against the per-group
    partials, then apply the conv's scale/bias exactly as its
    inference forward does."""
    _, conv, partials, (out_h, out_w) = plan
    p = bank_slice.shape[0]
    blocks = []
    c0 = 0
    for slab in partials:
        n, cg, og, length = slab.shape
        masks = bank_slice[:, :, c0:c0 + cg].reshape(
            p, n, 1, cg).astype(np.float32)
        out_g = np.matmul(masks, slab.reshape(n, cg, og * length))
        blocks.append(out_g.reshape(p, n, og, out_h, out_w))
        c0 += cg
    out = blocks[0] if len(blocks) == 1 else np.concatenate(blocks, axis=2)
    out = out.astype(np.float64).reshape(
        p * bank_slice.shape[1], conv.out_channels, out_h, out_w)
    if conv.scale is not None:
        out *= conv.scale.data.reshape(1, -1, 1, 1)
    if conv.bias is not None:
        out += conv.bias.data.reshape(1, -1, 1, 1)
    return out


class SegmenterEngine:
    """Serving adapter: a Bayesian segmenter as a batched MC engine.

    Exposes the ``mc_forward_batched(x, n_samples=..., chunk_passes=
    ...)`` contract the schedulers expect, returning the *per-pixel*
    predictive distribution — ``samples`` has shape (T, N·H·W, C), so
    each input image contributes H·W result rows.  The schedulers
    detect that expansion and hand every request back exactly its own
    pixels; construct them with ``feature_shape=(C, H, W)`` so
    image-shaped requests coalesce:

    >>> engine = SegmenterEngine(make_bayesian_segmenter(seed=0))
    >>> scheduler = BatchScheduler(engine, feature_shape=(1, 16, 16))
    >>> maps = pixel_maps(scheduler.submit(images).result(),
    ...                   (len(images), 16, 16))

    ``use_bitpack`` (None = leave each conv on auto, True/False =
    force/disable) propagates the bit-packed XNOR/popcount kernel
    toggle to every :class:`~repro.nn.binary.BinaryConv2d` in the
    model; the packed route is bit-identical to the float one.
    """

    def __init__(self, model: nn.Module, use_bitpack: Optional[bool] = None):
        self.model = model
        if use_bitpack is not None:
            from repro.nn.binary import BinaryConv2d
            for sub in model.modules():
                if isinstance(sub, BinaryConv2d):
                    sub.use_bitpack = use_bitpack
                    sub.invalidate_bitpack()

    def mc_forward_batched(self, x: np.ndarray, n_samples: int = 10,
                           chunk_passes: Optional[int] = None
                           ) -> PredictiveResult:
        """Pass-stacked MC segmentation in the scheduler contract.

        Parameters
        ----------
        x:
            Images, shape ``(N, C, H, W)``.
        n_samples:
            Monte-Carlo passes T.
        chunk_passes:
            Evaluate the pass-stack in chunks of this many passes to
            bound peak memory (``None`` = all at once).

        Returns
        -------
        PredictiveResult
            Per-*pixel* distribution: ``samples`` is
            ``(T, N·H·W, C)``, i.e. H·W result rows per input image.
        """
        return mc_segment_batched(self.model, x, n_samples=n_samples,
                                  chunk_passes=chunk_passes)

    def mc_forward(self, x: np.ndarray, n_samples: int = 10,
                   batched: bool = True,
                   chunk_passes: Optional[int] = None) -> PredictiveResult:
        """Like :meth:`mc_forward_batched`, with an escape hatch.

        ``batched=False`` runs the sequential per-pass loop instead
        of the stacked engine — same results bit for bit, useful for
        cross-checking.  Arguments and return shape otherwise match
        :meth:`mc_forward_batched`.
        """
        return mc_segment(self.model, x, n_samples=n_samples,
                          batched=batched, chunk_passes=chunk_passes)


def pixel_maps(result: PredictiveResult, image_shape: tuple):
    """Reshape a per-pixel result into per-image maps.

    Parameters
    ----------
    result:
        A segmentation :class:`PredictiveResult` whose rows are
        pixels (as produced by :func:`mc_segment` or a scheduler
        serving a :class:`SegmenterEngine`).
    image_shape:
        ``(N, H, W)`` — the batch and spatial dims to restore.

    Returns
    -------
    (predictions, entropy):
        ``(N, H, W)`` integer class map and ``(N, H, W)`` predictive
        entropy map (the paper's unknown-object detector).
    """
    n, h, w = image_shape
    predictions = result.predictions.reshape(n, h, w)
    entropy = result.predictive_entropy.reshape(n, h, w)
    return predictions, entropy
