"""Deep-ensemble baseline.

The paper compares VI/ensemble memory costs ("the memory consumption
of certain VI and ensemble implementations can be 2−10× higher",
Sec. III) — this small ensemble provides that comparison point for the
C5 memory benchmark and an accuracy/uncertainty baseline elsewhere.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from repro import nn
from repro.bayesian.base import PredictiveResult
from repro.tensor import Tensor, no_grad
from repro.tensor.functional import _softmax_np


class DeepEnsemble:
    """An ensemble of independently trained models.

    ``members`` may be passed pre-trained, or built from a factory and
    trained by the caller.  Prediction averages member softmaxes; the
    member spread is the uncertainty source (one "posterior sample"
    per member).
    """

    def __init__(self, members: Sequence[nn.Module]):
        if not members:
            raise ValueError("ensemble needs at least one member")
        self.members: List[nn.Module] = list(members)

    @classmethod
    def from_factory(cls, factory: Callable[[int], nn.Module],
                     n_members: int = 5) -> "DeepEnsemble":
        return cls([factory(i) for i in range(n_members)])

    def __len__(self) -> int:
        return len(self.members)

    def predict(self, x: np.ndarray) -> PredictiveResult:
        samples = []
        with no_grad():
            for member in self.members:
                member.eval()
                samples.append(_softmax_np(member(Tensor(x)).data, axis=-1))
        stacked = np.stack(samples)
        return PredictiveResult(probs=stacked.mean(axis=0), samples=stacked)

    def num_parameters(self) -> int:
        return sum(m.num_parameters() for m in self.members)

    def memory_footprint_bits(self, bits_per_parameter: int = 32) -> int:
        """Ensembles store every member's full parameter set."""
        return self.num_parameters() * bits_per_parameter
