"""MC-DropConnect baseline (per-weight dropout).

The paper repeatedly uses MC-DropConnect [17] as the scalability
antagonist: "another approach (MC-DropConnect) applies [dropout] to
each weight. Since the number of neurons and weights in an NN can be
millions, the number of Dropout modules in the hardware can be huge
and the overall sampling latency can be long" (Sec. II-D).

This module implements that baseline so the RNG-count / latency /
energy comparisons in the ablations run against real code, not just
analytic counts.  The hardware realization re-uses a per-neuron module
bank serially across the weight matrix rows (the paper's latency
argument), which :mod:`repro.energy.latency` prices.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.bayesian.base import StochasticModule
from repro.devices.mtj import MTJParams
from repro.devices.rng import SpintronicRNG
from repro.devices.variability import DeviceVariability
from repro.nn.module import Parameter
from repro.tensor import Tensor, functional as F


class DropConnectLinear(StochasticModule):
    """Binary linear layer with per-weight Bernoulli masks.

    Each stochastic forward pass samples a fresh mask over the *weight
    matrix* (not the activations); dropped weights contribute nothing
    to the MAC.  Training uses the straight-through estimator exactly
    like :class:`~repro.nn.BinaryLinear`.
    """

    def __init__(self, in_features: int, out_features: int, p: float = 0.1,
                 bias: bool = True, binarize_input: bool = False,
                 mtj_params: Optional[MTJParams] = None,
                 variability: Optional[DeviceVariability] = None,
                 ideal: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 < p < 1.0:
            raise ValueError("dropout probability must be in (0, 1)")
        self.in_features = in_features
        self.out_features = out_features
        self.p = p
        self.binarize_input = binarize_input
        self.rng = rng or np.random.default_rng()
        bound = math.sqrt(6.0 / in_features)
        self.weight = Parameter(self.rng.uniform(
            -bound, bound, size=(out_features, in_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        if ideal:
            self.module_bank = None
        else:
            # Hardware: one physical module per output neuron, re-used
            # across the in_features rows (serial mask generation).
            self.module_bank = SpintronicRNG(
                out_features, p=p, mtj_params=mtj_params,
                variability=variability, rng=self.rng)

    @property
    def n_dropout_modules(self) -> int:
        """Physical modules (per-neuron bank, serially re-used)."""
        return self.out_features

    @property
    def mask_bits_per_pass(self) -> int:
        """Bernoulli bits one forward pass consumes (= #weights)."""
        return self.in_features * self.out_features

    def sample_weight_mask(self) -> np.ndarray:
        """(out, in) keep-mask over the weight matrix."""
        if self.module_bank is None:
            drops = self.rng.random(
                (self.out_features, self.in_features)) < self.p
        else:
            bits = self.module_bank.generate(self.mask_bits_per_pass)
            drops = bits.reshape(self.out_features, self.in_features) > 0.5
        return (~drops).astype(np.float64)

    def mc_draw_pass(self, batch: int) -> np.ndarray:
        """One MC pass's (out, in) weight keep-mask.

        DropConnect's randomness lives on the *weights*, not the
        activations, so the bank is a stack of weight masks rather
        than per-row masks; ``forward`` applies pass ``p``'s mask to
        rows ``p·N … (p+1)·N`` of the stacked input through a batched
        matmul (one GEMM per pass — the same GEMMs the sequential
        loop runs, so results stay bit-identical).
        """
        return self.sample_weight_mask()

    def forward(self, x: Tensor) -> Tensor:
        if self.binarize_input:
            x = F.sign_ste(x)
        weight = F.sign_ste(self.weight)
        if self.stochastic_active:
            if self._mc_bank is not None:
                return self._forward_banked(x, weight)
            weight = weight * Tensor(self.sample_weight_mask())
        out = F.matmul(x, F.transpose(weight))
        if self.bias is not None:
            out = out + self.bias
        return out

    def _forward_banked(self, x: Tensor, weight: Tensor) -> Tensor:
        """Stacked-MC forward: per-pass weight masks over a pass-
        stacked input ``(P·N, in)``."""
        bank = self._mc_bank                       # (P, out, in)
        passes = bank.shape[0]
        if x.shape[0] != passes * self._mc_rows:
            raise ValueError(
                f"pass-stack rows {x.shape[0]} != "
                f"{passes} passes x {self._mc_rows} rows")
        masked = weight * Tensor(bank)             # (P, out, in)
        x3 = F.reshape(x, (passes, self._mc_rows, self.in_features))
        out = F.matmul(x3, F.transpose(masked, (0, 2, 1)))
        out = F.reshape(out, (passes * self._mc_rows, self.out_features))
        if self.bias is not None:
            out = out + self.bias
        return out


def make_dropconnect_mlp(in_features: int, hidden: tuple, n_classes: int,
                         p: float = 0.1, ideal_rng: bool = True,
                         variability: Optional[DeviceVariability] = None,
                         seed: Optional[int] = None):
    """Binary MLP with MC-DropConnect on every hidden layer."""
    from repro import nn

    rng = np.random.default_rng(seed)
    layers: list = []
    prev = in_features
    for i, width in enumerate(hidden):
        layers.append(DropConnectLinear(
            prev, width, p=p, binarize_input=(i == 0), ideal=ideal_rng,
            variability=variability, rng=rng))
        layers.append(nn.BatchNorm1d(width))
        layers.append(nn.SignActivation())
        prev = width
    layers.append(nn.BinaryLinear(prev, n_classes, rng=rng))
    return nn.Sequential(*layers)
