"""Inverted normalization with Affine Dropout (Sec. III-A.4).

The self-healing BayNN: the :class:`~repro.nn.InvertedNorm` layer
applies its learned affine transform *before* normalization, and
Affine Dropout adds stochasticity by randomly dropping the affine
weight and bias with probability ``p`` — "sampling two binary dropout
masks, one for weight and the other for bias ... Dropout masks are
kept at a scalar value (vector-wise dropout) instead of a vector
(element-wise dropout) to reduce the number of RNGs in the model."

Dropped weight → replaced by one (identity), dropped bias → replaced
by zero.  Two RNG bits per layer per pass; multiple forward passes
with independently sampled masks give the Bayesian predictive
distribution (treated as a Gaussian-process approximation following
Gal & Ghahramani, ref [5]).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.bayesian.base import StochasticModule
from repro.devices.mtj import MTJParams
from repro.devices.rng import SpintronicRNG
from repro.devices.variability import DeviceVariability
from repro.nn.normalization import InvertedNorm
from repro.tensor import Tensor


class AffineDropout(StochasticModule):
    """Inverted normalization with scalar Bernoulli masks on gamma/beta.

    Wraps an :class:`InvertedNorm` and installs fresh scalar masks each
    stochastic forward pass.  Exactly two dropout modules per layer
    (weight mask + bias mask).
    """

    def __init__(self, num_features: int, spatial: bool = False,
                 p: float = 0.2,
                 mtj_params: Optional[MTJParams] = None,
                 variability: Optional[DeviceVariability] = None,
                 ideal: bool = True,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 < p < 1.0:
            raise ValueError("dropout probability must be in (0, 1)")
        self.p = p
        self.rng = rng or np.random.default_rng()
        self.norm = InvertedNorm(num_features, spatial=spatial)
        if ideal:
            self.module_bank = None
        else:
            self.module_bank = SpintronicRNG(
                2, p=p, mtj_params=mtj_params, variability=variability,
                rng=self.rng)

    @property
    def n_dropout_modules(self) -> int:
        return 2

    def sample_masks(self) -> tuple[float, float]:
        """(gamma_mask, beta_mask): 1 keeps the parameter, 0 drops it."""
        if self.module_bank is not None:
            bits = self.module_bank.generate(2)
            dropped_w, dropped_b = bool(bits[0]), bool(bits[1])
        else:
            dropped_w = bool(self.rng.random() < self.p)
            dropped_b = bool(self.rng.random() < self.p)
        return (0.0 if dropped_w else 1.0), (0.0 if dropped_b else 1.0)

    def mc_draw_pass(self, batch: int) -> np.ndarray:
        """One MC pass's (gamma_mask, beta_mask) scalar pair."""
        return np.asarray(self.sample_masks(), dtype=np.float64)

    def forward(self, x: Tensor) -> Tensor:
        if self.stochastic_active:
            if self._mc_bank is not None:
                # (P, 2) bank of scalar pairs, expanded to one mask per
                # row of the stacked (P·N, …) batch.
                gamma_mask = np.repeat(self._mc_bank[:, 0], self._mc_rows)
                beta_mask = np.repeat(self._mc_bank[:, 1], self._mc_rows)
                if gamma_mask.shape[0] != x.shape[0]:
                    raise ValueError(
                        f"affine bank rows {gamma_mask.shape[0]} != "
                        f"batch {x.shape[0]}")
                self.norm.set_affine_masks(gamma_mask, beta_mask)
            else:
                gamma_mask, beta_mask = self.sample_masks()
                self.norm.set_affine_masks(gamma_mask, beta_mask)
        else:
            self.norm.set_affine_masks(None, None)
        try:
            return self.norm(x)
        finally:
            self.norm.set_affine_masks(None, None)


def make_affine_mlp(in_features: int, hidden: tuple, n_classes: int,
                    p: float = 0.2, seed: Optional[int] = None):
    """Binary MLP using inverted normalization + affine dropout.

    Per block: BinaryLinear → AffineDropout(InvertedNorm) → sign.
    This is the self-healing architecture evaluated under CIM faults
    in experiment C4.
    """
    from repro import nn

    rng = np.random.default_rng(seed)
    layers: list = []
    prev = in_features
    for i, width in enumerate(hidden):
        layers.append(nn.BinaryLinear(prev, width, rng=rng,
                                      binarize_input=(i == 0)))
        layers.append(AffineDropout(width, p=p, rng=rng))
        layers.append(nn.SignActivation())
        prev = width
    layers.append(nn.BinaryLinear(prev, n_classes, rng=rng))
    return nn.Sequential(*layers)


def make_affine_regressor(input_size: int, hidden_size: int = 32,
                          p: float = 0.2, cell: str = "gru",
                          seed: Optional[int] = None):
    """Sequence regressor with affine dropout on the encoder output.

    The time-series configuration of experiment C4 (the paper's
    LSTM-based RMSE claim, substituted with a GRU per DESIGN.md).
    """
    from repro import nn

    rng = np.random.default_rng(seed)

    class _AffineRegressor(nn.Module):
        def __init__(self) -> None:
            super().__init__()
            if cell == "gru":
                self.cell = nn.GRUCell(input_size, hidden_size, rng=rng)
            else:
                self.cell = nn.RNNCell(input_size, hidden_size, rng=rng)
            self.hidden_size = hidden_size
            self.affine = AffineDropout(hidden_size, p=p, rng=rng)
            self.head = nn.Linear(hidden_size, 1, rng=rng)

        def forward(self, x: Tensor) -> Tensor:
            n, t, _ = x.shape
            h = Tensor(np.zeros((n, self.hidden_size)))
            for step in range(t):
                h = self.cell(x[:, step, :], h)
            h = self.affine(h)
            return self.head(h)

    return _AffineRegressor()
