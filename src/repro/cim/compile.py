"""Compile a trained :mod:`repro.nn` model to a deployed CIM network.

``compile_to_cim`` walks a :class:`~repro.nn.Sequential` model,
converting every layer into its deployed equivalent:

=====================  =========================================
trained layer          deployed stage
=====================  =========================================
BinaryLinear           CimLinear (XNOR crossbars + ADC + scale)
BinaryConv2d           CimConv2d (mapping plan per Fig. 1)
BatchNorm1d/2d         FrozenNorm (running statistics, digital)
InvertedNorm           FrozenNorm (inverted order)
ReLU / HardTanh        DigitalReLU / DigitalSign
Tanh                   DigitalSign (binary regime)
MaxPool2d              DigitalMaxPool
Flatten                DigitalFlatten
Dropout (any kind)     skipped — stochastic masks are re-applied
                       by the Bayesian wrapper at inference time
=====================  =========================================

Deployment is where non-idealities enter: the config's variability,
defects and ADC resolution are applied when each crossbar is
programmed.  Compiling the same trained model twice with different
configs is how the fault-injection / self-healing experiments (C4)
compare ideal vs. faulty deployments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.cim.layers import (
    CimConfig,
    CimConv2d,
    CimLayer,
    CimLinear,
    CimNetwork,
    DigitalFlatten,
    DigitalMaxPool,
    DigitalReLU,
    DigitalScale,
    DigitalSign,
    DropoutGate,
    FrozenNorm,
)
from repro.cim.ledger import OpLedger

# The state/wiring split: every deployed stage knows how to capture its
# own (meta, arrays) state and rebuild itself from it; this table maps
# the manifest type tag back to the class.  ``repro.cim.snapshot``
# drives both directions.
STAGE_TYPES = {
    "cim_linear": CimLinear,
    "cim_conv2d": CimConv2d,
    "frozen_norm": FrozenNorm,
    "dropout_gate": DropoutGate,
    "digital_scale": DigitalScale,
    "digital_sign": DigitalSign,
    "digital_relu": DigitalReLU,
    "digital_maxpool": DigitalMaxPool,
    "digital_flatten": DigitalFlatten,
}


def stage_state(stage: CimLayer):
    """Capture one deployed stage as ``(meta, arrays)``."""
    state = getattr(stage, "state_dict", None)
    if state is None:
        raise TypeError(
            f"{type(stage).__name__} does not support state capture")
    return state()


def stage_from_state(meta: dict, arrays: dict, config: CimConfig,
                     ledger: OpLedger) -> CimLayer:
    """Rebuild one deployed stage from captured state (no programming)."""
    try:
        cls = STAGE_TYPES[meta["type"]]
    except KeyError:
        raise ValueError(f"unknown deployed stage type {meta.get('type')!r}")
    return cls.from_state(meta, arrays, config, ledger)


def _deploy_binary_linear(layer: nn.BinaryLinear, config: CimConfig,
                          ledger: OpLedger) -> CimLinear:
    weights = np.where(layer.weight.data >= 0, 1.0, -1.0)
    scale = None if layer.scale is None else layer.scale.data
    bias = None if layer.bias is None else layer.bias.data
    return CimLinear(weights, scale, bias, config, ledger)


def _deploy_binary_conv(layer: nn.BinaryConv2d, config: CimConfig,
                        ledger: OpLedger) -> CimConv2d:
    weights = np.where(layer.weight.data >= 0, 1.0, -1.0)
    scale = None if layer.scale is None else layer.scale.data
    bias = None if layer.bias is None else layer.bias.data
    return CimConv2d(weights, scale, bias, layer.stride, layer.padding,
                     config, ledger,
                     dilation=layer.dilation, groups=layer.groups)


def compile_to_cim(model: nn.Sequential,
                   config: Optional[CimConfig] = None) -> CimNetwork:
    """Deploy a trained Sequential model onto the CIM fabric.

    Raises ``TypeError`` for layers with no deployed equivalent (e.g.
    full-precision ``Linear`` — spintronic CIM stores binary weights
    only, paper Sec. II-D).

    With ``config.use_bitpack`` set, the bit-packed weight planes of
    every crossbar are built here, once, so serving never pays the
    pack cost (reprogramming a crossbar invalidates its planes and the
    next packed MVM rebuilds them).
    """
    config = config or CimConfig()
    ledger = OpLedger()
    stages: list[CimLayer] = []
    for layer in model:
        stage = _deploy_layer(layer, config, ledger)
        if stage is not None:
            stages.append(stage)
    network = CimNetwork(stages, ledger, config)
    if config.use_bitpack:
        for stage in network.mvm_layers():
            for row in stage.crossbars:
                for bar in row:
                    bar.packed_weights_t()
    return network


def _deploy_layer(layer: nn.Module, config: CimConfig,
                  ledger: OpLedger) -> Optional[CimLayer]:
    # Local import: the Bayesian layers subclass/wrap standard ones and
    # are deployed by their own wrappers, but plain compile() must
    # recognize the stochastic layers it encounters and deploy their
    # deterministic (eval-mode) equivalents.
    from repro.bayesian.affine import AffineDropout
    from repro.bayesian.scale_dropout import ScaleDropout
    from repro.bayesian.spatial import SpatialSpinDropout
    from repro.bayesian.spindrop import SpinDropout
    from repro.bayesian.subset_vi import BayesianScale
    from repro.cim.layers import DigitalScale, DropoutGate

    if isinstance(layer, nn.BinaryLinear):
        return _deploy_binary_linear(layer, config, ledger)
    if isinstance(layer, nn.BinaryConv2d):
        return _deploy_binary_conv(layer, config, ledger)
    if isinstance(layer, (nn.BatchNorm1d, nn.BatchNorm2d)):
        gamma = layer.gamma.data if layer.affine else None
        beta = layer.beta.data if layer.affine else None
        return FrozenNorm(layer.running_mean, layer.running_var,
                          gamma, beta, layer.eps,
                          spatial=isinstance(layer, nn.BatchNorm2d),
                          inverted=False, ledger=ledger)
    if isinstance(layer, nn.InvertedNorm):
        return FrozenNorm(layer.running_mean, layer.running_var,
                          layer.gamma.data, layer.beta.data, layer.eps,
                          spatial=layer.spatial, inverted=True,
                          ledger=ledger)
    if isinstance(layer, nn.ReLU):
        return DigitalReLU(ledger)
    if isinstance(layer, (nn.SignActivation, nn.HardTanh, nn.Tanh)):
        return DigitalSign(ledger)
    if isinstance(layer, nn.MaxPool2d):
        return DigitalMaxPool(layer.kernel_size, ledger)
    if isinstance(layer, nn.Flatten):
        return DigitalFlatten(ledger)
    if isinstance(layer, nn.Dropout):
        return None  # identity in eval mode
    if isinstance(layer, SpinDropout):
        # Mask stays None (deterministic) until a Bayesian wrapper
        # binds an RNG bank to this gate.
        return DropoutGate(layer.p, channelwise=False, ledger=ledger)
    if isinstance(layer, SpatialSpinDropout):
        return DropoutGate(layer.p, channelwise=True, ledger=ledger)
    if isinstance(layer, ScaleDropout):
        # The learned scale vector survives deployment (SRAM multiply);
        # only the stochastic modulation is added back by the wrapper.
        return DigitalScale(layer.scale.data, layer.spatial, ledger)
    if isinstance(layer, BayesianScale):
        # Deterministic deployment uses the posterior mean.
        return DigitalScale(layer.mu.data, layer.spatial, ledger)
    if isinstance(layer, AffineDropout):
        norm = layer.norm
        return FrozenNorm(norm.running_mean, norm.running_var,
                          norm.gamma.data, norm.beta.data, norm.eps,
                          spatial=norm.spatial, inverted=True, ledger=ledger)
    if isinstance(layer, nn.Linear):
        raise TypeError(
            "full-precision Linear cannot be deployed to binary CIM; "
            "train with BinaryLinear instead")
    raise TypeError(f"no CIM deployment rule for {type(layer).__name__}")
