"""Computing-in-memory (CIM) crossbar simulation.

Crossbar arrays (XNOR binary + analog multi-level), ADC/sense-amp
periphery, the two Fig.-1 convolution mapping strategies, deployed
inference layers, and the ``compile_to_cim`` entry point that turns a
trained model into an accounted CIM network.
"""

from repro.cim.ledger import OpLedger
from repro.cim.crossbar import AnalogCrossbar, XnorCrossbar
from repro.cim.adc import ADC, PopcountADC, SenseAmplifier
from repro.cim.mapping import (
    ConvShape,
    MappingPlan,
    MappingStrategy,
    dropconnect_module_count,
    plan_conv_mapping,
    scale_module_count,
    spatial_module_count,
    spindrop_module_count,
)
from repro.cim.layers import (
    CimConfig,
    CimConv2d,
    CimLayer,
    CimLinear,
    CimNetwork,
    DigitalFlatten,
    DigitalMaxPool,
    DigitalReLU,
    DigitalScale,
    DigitalSign,
    DropoutGate,
    FrozenNorm,
)
from repro.cim.compile import compile_to_cim
from repro.cim.optimize import FoldedAffine, fold_norm_into_scale
from repro.cim.snapshot import (
    DeploymentSnapshot,
    SnapshotError,
    read_artifact,
    snapshot_engine_factory,
    write_artifact,
)

__all__ = [
    "OpLedger",
    "XnorCrossbar",
    "AnalogCrossbar",
    "ADC",
    "PopcountADC",
    "SenseAmplifier",
    "ConvShape",
    "MappingPlan",
    "MappingStrategy",
    "plan_conv_mapping",
    "spindrop_module_count",
    "spatial_module_count",
    "scale_module_count",
    "dropconnect_module_count",
    "CimConfig",
    "CimLayer",
    "CimLinear",
    "CimConv2d",
    "CimNetwork",
    "FrozenNorm",
    "DigitalSign",
    "DigitalScale",
    "DropoutGate",
    "DigitalReLU",
    "DigitalMaxPool",
    "DigitalFlatten",
    "compile_to_cim",
    "FoldedAffine",
    "fold_norm_into_scale",
    "DeploymentSnapshot",
    "SnapshotError",
    "snapshot_engine_factory",
    "write_artifact",
    "read_artifact",
]
