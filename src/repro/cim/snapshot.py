"""Compiled-deployment snapshots: a deployment as a *value*.

Compiling a model onto the CIM fabric is stochastic — programming
draws conductance variability and defect realizations, dropout banks
draw per-module Δ spreads — and stateful: every generator's stream
position matters for the bit-exact batched/sequential equivalence the
test suite pins.  A :class:`DeploymentSnapshot` captures the whole
post-compile state:

* per-stage crossbar conductances, decoded operands, bit-packed
  XNOR-kernel weight planes (uint64, see :mod:`repro.tensor.bitpack`),
  scale/bias/norm constants (via each stage's ``state_dict``),
* the dropout/arbiter device realizations (Δ draws, effective
  probabilities, cycle counters),
* the full RNG *sharing topology* — which objects share which
  ``numpy`` generator, plus every generator's bit-level stream state,
* the deployment config (MTJ parameters, variability, defects, ADC
  resolution, mapping strategy) and the op-ledger totals.

Restoring (:meth:`DeploymentSnapshot.build`) rebuilds the engine
without re-programming anything: no RNG is consumed, no ``mtj_write``
is booked, and the first ``mc_forward_batched`` call continues the
captured streams exactly — bit-identical outputs and ledger totals to
the engine the snapshot was taken from, in the same or a fresh
interpreter.

On disk a snapshot is a directory artifact: a canonical-JSON
``manifest.json`` (which indexes every array by dtype/shape/offset)
plus one packed ``arrays.bin`` blob, sealed by a SHA-256 content hash
and an integer ``format_version``.  The generic
:func:`write_artifact` / :func:`read_artifact` pair is shared with the
experiment sweeps' trained-model cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import zlib
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.cim.compile import stage_from_state, stage_state
from repro.cim.layers import CimConfig, CimNetwork
from repro.cim.ledger import OpLedger
from repro.cim.mapping import MappingStrategy
from repro.devices.defects import DefectModel, DefectRates
from repro.devices.mtj import MTJParams, SwitchingType
from repro.devices.rng import SpintronicRNG
from repro.devices.variability import DeviceVariability, VariabilityParams

FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.bin"

# Array offsets inside the packed blob are padded to this boundary so
# every zero-copy view is aligned for any numpy dtype.
_ALIGN = 64

_BANK_SCALARS = ("n_modules", "target_p", "current",
                 "set_ops", "read_ops", "reset_ops")


class SnapshotError(RuntimeError):
    """A snapshot artifact is missing, corrupted, or incompatible."""


# ----------------------------------------------------------------------
# Generic artifact layer: canonical-JSON manifest indexing one packed
# array blob, content-hashed.
# ----------------------------------------------------------------------
def _canonical_json(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _encode_array(arr: np.ndarray) -> np.ndarray:
    """Canonical storage form: C-contiguous, with ternary float64
    arrays (every deployed ±1 weight matrix — a third of a snapshot's
    bytes) narrowed losslessly to int8.  ``x·x == |x|`` exactly
    characterizes {-1, 0, 1}, and int8 → float64 restores the exact
    same values, so the round trip is bit-identical."""
    if arr.ndim and not arr.flags.c_contiguous:
        arr = np.ascontiguousarray(arr)
    if (arr.dtype == np.float64 and arr.ndim
            and bool((arr * arr == np.abs(arr)).all())):
        return arr.astype(np.int8)
    return arr


def _array_index(arrays: Dict[str, np.ndarray]) -> Dict[str, dict]:
    """Per-array dtype/shape plus a CRC-32 checksum of its stored
    bytes.  The same index is computed at capture and at write; at
    load the checksums are verified straight against the blob slices.
    The manifest's SHA-256 content hash covers the index, so any byte
    flip or metadata edit changes the verification outcome.  CRC-32
    runs at several GB/s in one C pass — hashing every byte with
    SHA-256 made artifact loads slower than the compile they
    replace."""
    index = {}
    for key in sorted(arrays):
        arr = arrays[key]
        stored = _encode_array(arr)
        entry = {
            "dtype": np.lib.format.dtype_to_descr(arr.dtype),
            "shape": list(arr.shape),
            "crc32": zlib.crc32(stored.data if stored.ndim
                                else stored.tobytes()),
        }
        if stored.dtype != arr.dtype:
            entry["store"] = np.lib.format.dtype_to_descr(stored.dtype)
        index[key] = entry
    return index


def _content_hash(manifest: dict, arrays: Dict[str, np.ndarray]) -> str:
    """SHA-256 over the canonical manifest (minus the hash and any
    stale index field) plus the freshly computed array index."""
    payload = {k: v for k, v in manifest.items()
               if k not in ("content_hash", "arrays")}
    payload["arrays"] = _array_index(arrays)
    return hashlib.sha256(
        _canonical_json(payload).encode("utf-8")).hexdigest()


def _blob_offset(pos: int) -> int:
    return pos + (-pos % _ALIGN)


def write_artifact(path: str, manifest: dict,
                   arrays: Dict[str, np.ndarray]) -> str:
    """Persist a (manifest, arrays) pair as a sealed directory artifact.

    The arrays are packed, C-order and ``_ALIGN``-padded in sorted key
    order, into one ``arrays.bin`` blob; the manifest gains an
    ``arrays`` index (dtype/shape/CRC-32 per key — offsets are implied
    by the packing rule), ``format_version``, and ``content_hash``.
    ``manifest`` must carry a ``kind`` tag.  Returns the content hash.
    """
    if "kind" not in manifest:
        raise ValueError("artifact manifest needs a 'kind' tag")
    manifest = dict(manifest)
    manifest["arrays"] = _array_index(arrays)
    manifest["format_version"] = FORMAT_VERSION
    manifest["content_hash"] = _content_hash(manifest, arrays)
    chunks = []
    pos = 0
    for key in sorted(arrays):
        arr = _encode_array(arrays[key])
        pad = -pos % _ALIGN
        if pad:
            chunks.append(b"\x00" * pad)
        data = arr.tobytes()
        chunks.append(data)
        pos += pad + len(data)
    os.makedirs(path, exist_ok=True)
    with open(os.path.join(path, MANIFEST_NAME), "w", encoding="utf-8") as fh:
        fh.write(_canonical_json(manifest))
    with open(os.path.join(path, ARRAYS_NAME), "wb") as fh:
        fh.write(b"".join(chunks))
    return manifest["content_hash"]


def read_artifact(path: str, kind: Optional[str] = None
                  ) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Load and verify a directory artifact written by :func:`write_artifact`.

    The returned arrays are read-only zero-copy views into the blob —
    one file read, one CRC pass per array, no per-array copies; this
    is what keeps snapshot load on the serving replica spin-up path
    fast.  Raises :class:`SnapshotError` with a specific message for
    every failure mode: missing files, unparseable manifest,
    format-version mismatch, wrong ``kind``, undecodable blob, or a
    content hash that no longer matches the stored bytes.
    """
    manifest_path = os.path.join(path, MANIFEST_NAME)
    arrays_path = os.path.join(path, ARRAYS_NAME)
    if not os.path.isfile(manifest_path) or not os.path.isfile(arrays_path):
        raise SnapshotError(
            f"no artifact at {path!r}: expected {MANIFEST_NAME} and "
            f"{ARRAYS_NAME}")
    try:
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SnapshotError(
            f"corrupted artifact manifest at {manifest_path!r}: {exc}"
        ) from exc
    if not isinstance(manifest, dict):
        raise SnapshotError(
            f"corrupted artifact manifest at {manifest_path!r}: "
            "not a JSON object")
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"artifact format version {version!r} is not supported "
            f"(this build reads version {FORMAT_VERSION})")
    if kind is not None and manifest.get("kind") != kind:
        raise SnapshotError(
            f"artifact kind {manifest.get('kind')!r} != expected {kind!r}")
    index = manifest.get("arrays")
    if not isinstance(index, dict):
        raise SnapshotError(
            f"corrupted artifact manifest at {manifest_path!r}: "
            "missing the array index")
    try:
        with open(arrays_path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise SnapshotError(
            f"corrupted artifact arrays at {arrays_path!r}: {exc}") from exc
    arrays: Dict[str, np.ndarray] = {}
    bytes_ok = True
    pos = 0
    try:
        for key in sorted(index):
            entry = index[key]
            dtype = np.dtype(entry["dtype"])
            stored = np.dtype(entry.get("store", entry["dtype"]))
            shape = tuple(int(dim) for dim in entry["shape"])
            count = 1
            for dim in shape:
                count *= dim
            pos = _blob_offset(pos)
            arr = np.frombuffer(
                blob, dtype=stored, count=count, offset=pos).reshape(shape)
            bytes_ok = bytes_ok and zlib.crc32(
                arr.data if arr.ndim else arr.tobytes()) == entry["crc32"]
            arrays[key] = arr if stored == dtype else arr.astype(dtype)
            pos += count * stored.itemsize
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(
            f"corrupted artifact arrays at {arrays_path!r}: {exc}") from exc
    if pos != len(blob):
        raise SnapshotError(
            f"corrupted artifact arrays at {arrays_path!r}: blob holds "
            f"{len(blob)} bytes but the index accounts for {pos}")
    # Two-part seal: the SHA-256 covers the manifest including the
    # array index; each array's stored bytes are checked against the
    # index's CRC-32 — together any byte or metadata change trips one
    # of them.
    expected = manifest.get("content_hash")
    actual = hashlib.sha256(_canonical_json(
        {k: v for k, v in manifest.items()
         if k != "content_hash"}).encode("utf-8")).hexdigest()
    if expected != actual or not bytes_ok:
        raise SnapshotError(
            f"artifact content hash mismatch at {path!r}: the artifact "
            "was modified or truncated after it was written")
    return manifest, arrays


def _sub_arrays(arrays: Dict[str, np.ndarray], prefix: str
                ) -> Dict[str, np.ndarray]:
    n = len(prefix)
    return {key[n:]: value for key, value in arrays.items()
            if key.startswith(prefix)}


# ----------------------------------------------------------------------
# RNG sharing topology
# ----------------------------------------------------------------------
class _RngRegistry:
    """Identity-groups every generator seen during capture.

    Two objects holding the *same* generator (e.g. every dropout bank
    sharing the engine's ``_rng``, or every SpinBayes arbiter sharing
    ``config.rng`` — a hard requirement of the fast selection draw) get
    the same ref, so the restore rebuilds one generator per group and
    the sharing topology survives the round trip.
    """

    def __init__(self):
        self._refs: Dict[int, str] = {}
        self.states: Dict[str, dict] = {}

    def ref(self, gen: Optional[np.random.Generator]) -> Optional[str]:
        if gen is None:
            return None
        key = id(gen)
        if key not in self._refs:
            name = f"rng{len(self._refs)}"
            self._refs[key] = name
            self.states[name] = gen.bit_generator.state
        return self._refs[key]


def _resolve_rngs(states: Dict[str, dict]
                  ) -> Dict[str, np.random.Generator]:
    resolved = {}
    for name, state in states.items():
        gen = np.random.default_rng()
        gen.bit_generator.state = state
        resolved[name] = gen
    return resolved


# ----------------------------------------------------------------------
# Config (de)serialization
# ----------------------------------------------------------------------
def _config_state(config: CimConfig,
                  rng_ref: Callable[[Optional[np.random.Generator]],
                                    Optional[str]]) -> dict:
    mtj = dataclasses.asdict(config.mtj_params)
    mtj["switching_type"] = config.mtj_params.switching_type.value
    variability = None
    if config.variability is not None:
        variability = {
            "params": dataclasses.asdict(config.variability.params),
            "temperature": config.variability.temperature,
            "rng": rng_ref(config.variability.rng),
        }
    defects = None
    if config.defects is not None:
        defects = {
            "rates": dataclasses.asdict(config.defects.rates),
            "rng": rng_ref(config.defects.rng),
        }
    return {
        "mtj_params": mtj,
        "variability": variability,
        "defects": defects,
        "adc_bits": config.adc_bits,
        "max_rows": config.max_rows,
        "max_cols": config.max_cols,
        "wire_resistance": config.wire_resistance,
        "mapping_strategy": config.mapping_strategy.value,
        "rng": rng_ref(config.rng),
    }


def _build_config(state: dict,
                  resolved: Dict[str, np.random.Generator]) -> CimConfig:
    mtj_state = dict(state["mtj_params"])
    mtj_state["switching_type"] = SwitchingType(mtj_state["switching_type"])
    variability = None
    if state["variability"] is not None:
        v = state["variability"]
        variability = DeviceVariability(
            VariabilityParams(**v["params"]),
            rng=resolved[v["rng"]], temperature=v["temperature"])
    defects = None
    if state["defects"] is not None:
        d = state["defects"]
        defects = DefectModel(DefectRates(**d["rates"]),
                              rng=resolved[d["rng"]])
    config = CimConfig(
        mtj_params=MTJParams(**mtj_state),
        variability=variability,
        defects=defects,
        adc_bits=state["adc_bits"],
        max_rows=state["max_rows"],
        max_cols=state["max_cols"],
        wire_resistance=state["wire_resistance"],
        mapping_strategy=MappingStrategy(state["mapping_strategy"]))
    config.rng = resolved[state["rng"]]
    return config


def _rebuild_bank(entry: dict, b_prefix: str,
                  arrays: Dict[str, np.ndarray], config: CimConfig,
                  resolved: Dict[str, np.random.Generator]) -> SpintronicRNG:
    """Rebuild one dropout bank; variability=None skips the
    constructor's Δ draws, then the captured realization is installed."""
    bank_meta = entry["bank"]
    bank = SpintronicRNG(
        bank_meta["n_modules"], p=bank_meta["target_p"],
        mtj_params=config.mtj_params, variability=None,
        rng=resolved[entry["bank_rng"]])
    state = dict(bank_meta)
    state["deltas"] = arrays[f"{b_prefix}deltas"]
    state["effective_p"] = arrays[f"{b_prefix}effective_p"]
    bank.load_state(state)
    return bank


class _ScaleSource:
    """Stand-in for a ScaleDropout source: only ``drop_scale`` is read
    at draw time."""

    def __init__(self, drop_scale: float):
        self.drop_scale = drop_scale


# ----------------------------------------------------------------------
# BayesianCim capture / rebuild
# ----------------------------------------------------------------------
def _capture_bayesian_cim(engine) -> Tuple[dict, Dict[str, np.ndarray]]:
    rngs = _RngRegistry()
    arrays: Dict[str, np.ndarray] = {}
    stages_meta = []
    for idx, stage in enumerate(engine.network.stages):
        meta, stage_arrays = stage_state(stage)
        stages_meta.append(meta)
        for key, value in stage_arrays.items():
            arrays[f"s{idx}.{key}"] = value
    stage_index = {id(s): i for i, s in enumerate(engine.network.stages)}
    bindings_meta = []
    for b_idx, binding in enumerate(engine.bindings):
        entry = {
            "kind": binding.kind,
            "p": binding.p,
            "target": stage_index[id(binding.target)],
            "software_rng": rngs.ref(binding.software_rng),
        }
        if binding.rng_bank is not None:
            bank = binding.rng_bank.state_dict()
            entry["bank"] = {k: bank[k] for k in _BANK_SCALARS}
            entry["bank_rng"] = rngs.ref(binding.rng_bank.rng)
            arrays[f"b{b_idx}.deltas"] = bank["deltas"]
            arrays[f"b{b_idx}.effective_p"] = bank["effective_p"]
        if binding.kind == "scale":
            entry["drop_scale"] = float(binding.source.drop_scale)
        elif binding.kind == "vi":
            source = binding.source
            entry["source"] = {
                "n_features": source.n_features,
                "spatial": source.spatial,
                "rng": rngs.ref(source.rng),
            }
            arrays[f"b{b_idx}.mu"] = source.mu.data
            arrays[f"b{b_idx}.log_sigma"] = source.log_sigma.data
        bindings_meta.append(entry)
    manifest = {
        "kind": "deployment",
        "engine": "bayesian_cim",
        "config": _config_state(engine.config, rngs.ref),
        "engine_rng": rngs.ref(engine._rng),
        "stages": stages_meta,
        "bindings": bindings_meta,
        "ledger": {k: int(v) for k, v in engine.ledger.as_dict().items()},
        "rngs": rngs.states,
    }
    return manifest, arrays


def _build_bayesian_cim(manifest: dict, arrays: Dict[str, np.ndarray]):
    from repro.bayesian.deploy import BayesianCim, _MaskBinding
    from repro.bayesian.subset_vi import BayesianScale

    resolved = _resolve_rngs(manifest["rngs"])
    config = _build_config(manifest["config"], resolved)
    ledger = OpLedger()
    ledger.counts.update(manifest["ledger"])
    stages = [stage_from_state(meta, _sub_arrays(arrays, f"s{idx}."),
                               config, ledger)
              for idx, meta in enumerate(manifest["stages"])]
    network = CimNetwork(stages, ledger, config)
    bindings = []
    for b_idx, entry in enumerate(manifest["bindings"]):
        bank = None
        if "bank" in entry:
            bank = _rebuild_bank(entry, f"b{b_idx}.", arrays, config,
                                 resolved)
        source = None
        if entry["kind"] == "scale":
            source = _ScaleSource(entry["drop_scale"])
        elif entry["kind"] == "vi":
            src_meta = entry["source"]
            source = BayesianScale(src_meta["n_features"],
                                   spatial=src_meta["spatial"],
                                   rng=resolved[src_meta["rng"]])
            source.mu.data = np.asarray(arrays[f"b{b_idx}.mu"],
                                        dtype=np.float64)
            source.log_sigma.data = np.asarray(
                arrays[f"b{b_idx}.log_sigma"], dtype=np.float64)
        bindings.append(_MaskBinding(
            kind=entry["kind"], p=entry["p"], rng_bank=bank,
            target=stages[entry["target"]], source=source,
            software_rng=resolved[entry["software_rng"]]))
    return BayesianCim.from_parts(network, bindings,
                                  resolved[manifest["engine_rng"]])


# ----------------------------------------------------------------------
# SpinBayesNetwork capture / rebuild
# ----------------------------------------------------------------------
def _capture_spinbayes(engine) -> Tuple[dict, Dict[str, np.ndarray]]:
    from repro.bayesian.spinbayes import _SpinBayesMvmLayer

    rngs = _RngRegistry()
    arrays: Dict[str, np.ndarray] = {}
    stages_meta = []
    for idx, stage in enumerate(engine.stages):
        if isinstance(stage, _SpinBayesMvmLayer):
            meta, stage_arrays = stage.state_dict()
            # Every crossbar and arbiter shares config.rng by
            # construction; record it so restore keeps the sharing the
            # fast selection draw requires.
            if stage.arbiter is not None:
                meta["arbiter"]["rng"] = rngs.ref(stage.arbiter._stage_rng.rng)
        elif isinstance(stage, str) and stage == "flatten":
            meta, stage_arrays = {"type": "flatten"}, {}
        elif isinstance(stage, tuple) and stage[0] == "static_scale":
            meta, stage_arrays = {"type": "static_scale"}, {"scale": stage[1]}
        else:
            meta, stage_arrays = stage_state(stage)
        stages_meta.append(meta)
        for key, value in stage_arrays.items():
            arrays[f"s{idx}.{key}"] = value
    manifest = {
        "kind": "deployment",
        "engine": "spinbayes",
        "config": _config_state(engine.config, rngs.ref),
        "n_components": engine.n_components,
        "n_levels": engine.n_levels,
        "stages": stages_meta,
        "ledger": {k: int(v) for k, v in engine.ledger.as_dict().items()},
        "rngs": rngs.states,
    }
    return manifest, arrays


def _build_spinbayes(manifest: dict, arrays: Dict[str, np.ndarray]):
    from repro.bayesian.spinbayes import SpinBayesNetwork, _SpinBayesMvmLayer

    resolved = _resolve_rngs(manifest["rngs"])
    config = _build_config(manifest["config"], resolved)
    ledger = OpLedger()
    ledger.counts.update(manifest["ledger"])
    stages = []
    for idx, meta in enumerate(manifest["stages"]):
        stage_arrays = _sub_arrays(arrays, f"s{idx}.")
        kind = meta["type"]
        if kind == "spinbayes_mvm":
            stages.append(_SpinBayesMvmLayer.from_state(
                meta, stage_arrays, config, ledger))
        elif kind == "flatten":
            stages.append("flatten")
        elif kind == "static_scale":
            stages.append(("static_scale",
                           np.asarray(stage_arrays["scale"])))
        else:
            stages.append(stage_from_state(meta, stage_arrays, config,
                                           ledger))
    return SpinBayesNetwork(stages, ledger, config,
                            manifest["n_components"], manifest["n_levels"])


# ----------------------------------------------------------------------
# Public value type
# ----------------------------------------------------------------------
# Process-local verified-load cache: abspath -> (manifest mtime_ns,
# DeploymentSnapshot).  See DeploymentSnapshot.load_cached.
_LOAD_CACHE: Dict[str, Tuple[Optional[int], "DeploymentSnapshot"]] = {}


class DeploymentSnapshot:
    """A compiled deployment as an immutable value.

    ``capture`` freezes a live engine, ``save``/``load`` round-trip it
    through the sealed directory artifact, and ``build`` rehydrates a
    fresh engine that is bit-identical to the captured one — outputs
    *and* ledger totals.  One snapshot can be built any number of
    times; every build gets independent generators initialized to the
    captured stream positions, so N replicas built from one snapshot
    produce identical prediction streams.
    """

    def __init__(self, manifest: dict, arrays: Dict[str, np.ndarray]):
        self.manifest = manifest
        self.arrays = arrays

    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, engine) -> "DeploymentSnapshot":
        """Freeze a live :class:`~repro.bayesian.deploy.BayesianCim` or
        :class:`~repro.bayesian.spinbayes.SpinBayesNetwork`."""
        from repro.bayesian.deploy import BayesianCim
        from repro.bayesian.spinbayes import SpinBayesNetwork

        if isinstance(engine, BayesianCim):
            manifest, arrays = _capture_bayesian_cim(engine)
        elif isinstance(engine, SpinBayesNetwork):
            manifest, arrays = _capture_spinbayes(engine)
        else:
            raise TypeError(
                f"cannot snapshot {type(engine).__name__}; expected "
                "BayesianCim or SpinBayesNetwork")
        manifest["format_version"] = FORMAT_VERSION
        manifest["content_hash"] = _content_hash(manifest, arrays)
        return cls(manifest, arrays)

    @property
    def engine_kind(self) -> str:
        return self.manifest["engine"]

    @property
    def content_hash(self) -> str:
        return self.manifest["content_hash"]

    # ------------------------------------------------------------------
    def save(self, path: str) -> str:
        """Write the sealed artifact directory; returns the content hash."""
        return write_artifact(path, self.manifest, self.arrays)

    @classmethod
    def load(cls, path: str) -> "DeploymentSnapshot":
        """Load and verify a saved snapshot (see :func:`read_artifact`)."""
        manifest, arrays = read_artifact(path, kind="deployment")
        return cls(manifest, arrays)

    @classmethod
    def load_cached(cls, path: str) -> "DeploymentSnapshot":
        """:meth:`load`, memoized per process.

        The worker-side fast path for the process-backed replica pool:
        a worker hosting several model ids backed by the same artifact
        (or respawned onto one it already verified) pays the CRC +
        content-hash verification once, then rehydrates engines from
        the resident arrays.  The cache key is the absolute path plus
        the manifest's mtime, so an artifact rewritten in place is
        re-verified.  Snapshots are immutable values — sharing one
        across :meth:`build` calls is safe by design.
        """
        key = os.path.abspath(path)
        try:
            stamp = os.stat(os.path.join(key, MANIFEST_NAME)).st_mtime_ns
        except OSError:
            stamp = None
        hit = _LOAD_CACHE.get(key)
        if hit is not None and hit[0] == stamp:
            return hit[1]
        snapshot = cls.load(path)
        _LOAD_CACHE[key] = (stamp, snapshot)
        return snapshot

    # ------------------------------------------------------------------
    def build(self):
        """Rehydrate a fresh engine from the captured state."""
        if self.engine_kind == "bayesian_cim":
            return _build_bayesian_cim(self.manifest, self.arrays)
        if self.engine_kind == "spinbayes":
            return _build_spinbayes(self.manifest, self.arrays)
        raise SnapshotError(
            f"unknown engine kind {self.engine_kind!r} in snapshot")


def snapshot_engine_factory(path: str) -> Callable[[], object]:
    """An engine factory backed by a saved snapshot.

    Loads and verifies the artifact once; every call rehydrates a fresh,
    independent engine — the cheap replica spin-up path the autoscaler
    and model registry use instead of recompiling.
    """
    snapshot = DeploymentSnapshot.load(path)
    return snapshot.build
