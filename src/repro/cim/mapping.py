"""Convolution-to-crossbar mapping strategies (Fig. 1).

The paper explores two prevalent strategies for mapping a conv layer
with kernels shaped (C_out, C_in, K, K) onto crossbars:

* **Strategy ①** (Gokmen et al. [21]): every kernel is unfolded into
  one crossbar *column* of height K·K·C_in; the layer occupies one
  logical crossbar of (K·K·C_in) × C_out (tiled to the physical array
  size).  Spatial dropout of an *input* feature map gates K·K
  consecutive rows — one dropout module per input channel group.
* **Strategy ②** (Peng et al. [22]): each kernel is decomposed into
  K×K sub-kernels mapped onto small K×K crossbars arranged as a
  C_in × C_out grid; partial sums are accumulated across the C_in
  axis.  Spatial dropout gates entire sub-crossbars — the dropout
  module drives a crossbar-enable rather than a wordline group.

Both strategies compute the same convolution; they differ in crossbar
count, ADC conversions per output, dropout-module placement and
partial-sum accumulation — precisely the trade-offs the F1 benchmark
quantifies.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Tuple


class MappingStrategy(enum.Enum):
    """The two Fig.-1 mapping strategies."""

    UNFOLDED_COLUMN = 1   # strategy ①
    TILED_KXK = 2         # strategy ②


@dataclasses.dataclass(frozen=True)
class ConvShape:
    """Static shape of a convolutional layer.

    ``groups`` splits the layer into that many independent
    convolutions (channel counts are totals, not per-group): each
    group's kernels see only ``in_channels / groups`` input maps, so
    the crossbar grid of one group shrinks accordingly and is
    replicated per group.
    """

    in_channels: int
    out_channels: int
    kernel_size: int
    groups: int = 1

    def __post_init__(self):
        if self.groups < 1:
            raise ValueError("groups must be >= 1")
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ValueError("channel counts must be divisible by groups")

    @property
    def weights_per_kernel(self) -> int:
        return self.kernel_size ** 2 * self.in_channels // self.groups


@dataclasses.dataclass(frozen=True)
class MappingPlan:
    """Materialized mapping of one conv layer onto physical crossbars.

    ``row_chunks`` lists, per logical crossbar, the (start, stop) row
    interval of the unfolded K·K·C_in input axis it covers — partial
    sums across chunks are accumulated digitally after the ADC.
    """

    strategy: MappingStrategy
    shape: ConvShape
    crossbar_rows: int
    crossbar_cols: int
    n_crossbars: int
    row_chunks: Tuple[Tuple[int, int], ...]
    col_chunks: Tuple[Tuple[int, int], ...]
    dropout_modules: int
    groups: int = 1

    @property
    def cells_total(self) -> int:
        return self.n_crossbars * self.crossbar_rows * self.crossbar_cols

    @property
    def cells_used(self) -> int:
        used = 0
        for r0, r1 in self.row_chunks:
            for c0, c1 in self.col_chunks:
                used += (r1 - r0) * (c1 - c0)
        # row/col chunks describe one group's grid; every group
        # replicates it.
        return used * self.groups

    @property
    def utilization(self) -> float:
        return self.cells_used / max(self.cells_total, 1)

    @property
    def adc_conversions_per_output(self) -> int:
        """ADC conversions needed per output activation.

        Every row chunk produces a separately converted partial sum.
        """
        return len(self.row_chunks)


def _chunk(total: int, size: int) -> List[Tuple[int, int]]:
    return [(i, min(i + size, total)) for i in range(0, total, size)]


def plan_conv_mapping(shape: ConvShape,
                      strategy: MappingStrategy,
                      max_rows: int = 128,
                      max_cols: int = 128) -> MappingPlan:
    """Build the crossbar plan for a conv layer under a strategy.

    ``max_rows``/``max_cols`` is the physical array size; logical
    matrices larger than that are tiled.
    """
    k2 = shape.kernel_size ** 2
    # Chunk lists describe ONE group's crossbar grid (the whole layer
    # for groups == 1); each group replicates the grid on its own
    # crossbars, so n_crossbars scales with the group count.
    in_pg = shape.in_channels // shape.groups
    out_pg = shape.out_channels // shape.groups
    total_rows = k2 * in_pg
    total_cols = out_pg

    if strategy is MappingStrategy.UNFOLDED_COLUMN:
        row_chunks = _chunk(total_rows, max_rows)
        col_chunks = _chunk(total_cols, max_cols)
        n_crossbars = len(row_chunks) * len(col_chunks) * shape.groups
        # One dropout module gates the K·K wordline group of each input
        # channel (enabled via the multi-address WL decoder); module
        # count = input channels (feature maps), NOT neurons.
        dropout_modules = shape.in_channels
        return MappingPlan(
            strategy=strategy, shape=shape,
            crossbar_rows=max_rows, crossbar_cols=max_cols,
            n_crossbars=n_crossbars,
            row_chunks=tuple(row_chunks), col_chunks=tuple(col_chunks),
            dropout_modules=dropout_modules, groups=shape.groups)

    if strategy is MappingStrategy.TILED_KXK:
        # One K×K crossbar per (c_in, c_out) pair; rows chunked per
        # input channel (each chunk is k2 rows of the unfolded axis).
        row_chunks = _chunk(total_rows, k2)
        col_chunks = _chunk(total_cols, 1)
        n_crossbars = in_pg * out_pg * shape.groups
        # Dropout gates a whole row of sub-crossbars (one input feature
        # map) via a crossbar-enable: one module per input channel.
        dropout_modules = shape.in_channels
        return MappingPlan(
            strategy=strategy, shape=shape,
            crossbar_rows=shape.kernel_size, crossbar_cols=shape.kernel_size,
            n_crossbars=n_crossbars,
            row_chunks=tuple(row_chunks), col_chunks=tuple(col_chunks),
            dropout_modules=dropout_modules, groups=shape.groups)

    raise ValueError(f"unknown strategy {strategy!r}")


def spindrop_module_count(neurons_per_layer: List[int]) -> int:
    """Dropout modules for classic SpinDrop: one per neuron."""
    return sum(neurons_per_layer)


def spatial_module_count(channels_per_conv: List[int]) -> int:
    """Dropout modules for MC-SpatialDropout: one per feature map."""
    return sum(channels_per_conv)


def scale_module_count(n_layers: int) -> int:
    """Dropout modules for Scale-Dropout: a single module per layer."""
    return n_layers


def dropconnect_module_count(weights_per_layer: List[int]) -> int:
    """Dropout modules for MC-DropConnect: one per weight."""
    return sum(weights_per_layer)
