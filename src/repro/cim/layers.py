"""Deployed CIM layers: inference-only, numpy-level, fully accounted.

After training (with :mod:`repro.nn`), a model is *deployed*: binary
weights are programmed into XNOR crossbars (with variability and
defects applied at programming time), scales/batch-norm constants are
frozen into digital periphery, and inference runs through the analog
chain: wordline drive → current summation → ADC → digital
accumulate/scale/normalize → sign.  This mirrors the Fig. 2
architecture one-to-one.

All layers book operations on a shared :class:`OpLedger`, which the
energy model prices to regenerate Table I.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cim.adc import ADC, PopcountADC
from repro.cim.crossbar import (
    XnorCrossbar,
    merge_leading_axes,
    split_leading_axes,
)
from repro.cim.ledger import OpLedger
from repro.cim.mapping import ConvShape, MappingPlan, MappingStrategy, plan_conv_mapping
from repro.devices.defects import DefectModel
from repro.devices.mtj import MTJParams
from repro.devices.variability import DeviceVariability
from repro.tensor import bitpack
from repro.tensor.functional import (
    _conv_scratch_buffers,
    _gather_padded_patches,
)


class CimConfig:
    """Deployment configuration shared by all layers of a network."""

    def __init__(self,
                 mtj_params: Optional[MTJParams] = None,
                 variability: Optional[DeviceVariability] = None,
                 defects: Optional[DefectModel] = None,
                 adc_bits: int = 6,
                 max_rows: int = 128,
                 max_cols: int = 128,
                 wire_resistance: float = 0.0,
                 mapping_strategy: MappingStrategy = MappingStrategy.UNFOLDED_COLUMN,
                 use_bitpack: Optional[bool] = None,
                 seed: Optional[int] = None):
        self.mtj_params = mtj_params or MTJParams()
        self.variability = variability
        self.defects = defects
        self.adc_bits = adc_bits
        self.max_rows = max_rows
        self.max_cols = max_cols
        self.wire_resistance = wire_resistance
        self.mapping_strategy = mapping_strategy
        # Deployment-wide default for the layers' bit-packed XNOR
        # route: None = auto (per-shape heuristic), True = force the
        # packed kernel, False = always the float32 exact route.
        self.use_bitpack = use_bitpack
        self.rng = np.random.default_rng(seed)


class CimLayer:
    """Base class: every deployed stage shares the network ledger."""

    def __init__(self, ledger: OpLedger):
        self.ledger = ledger

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class CimLinear(CimLayer):
    """Binary linear layer on tiled XNOR crossbars.

    The logical (in_features × out_features) weight matrix is tiled
    onto physical arrays of at most (max_rows × max_cols); each row
    tile's partial MAC is ADC-converted and accumulated digitally.

    ``input_mask`` (settable per pass) gates wordlines — the hardware
    realization of neuron dropout from the preceding layer.

    When the analog chain is ideal and every row chunk's
    :class:`PopcountADC` has an odd integer step, the layer takes the
    same *exact-integer float32* route as :class:`CimConv2d`: an ideal
    crossbar's decoded MAC is a small integer, float32 represents it
    exactly, and an odd step means ``rint(mac / step)`` can never land
    on a rounding tie — so the float32 GEMM is bit-identical to the
    analog simulation (and books the same ledger entries).  Set
    ``exact_route = False`` to force the analog path.

    Inside the exact route, ``use_bitpack`` selects the bit-packed
    XNOR/popcount kernel (:mod:`repro.tensor.bitpack`): ``None``
    defers to a per-shape heuristic (packed wins only on small-batch
    × wide-matrix MVMs), ``True`` forces it, ``False`` pins the
    float32 GEMM.  Both produce bit-identical outputs and identical
    ledger totals — the packed kernel computes the same integer MAC
    the float route does, just 64 weights per word of traffic.

    ``program=False`` builds the crossbar grid without programming it
    (no RNG draws, no ``mtj_write`` bookings) so captured conductance
    state can be installed verbatim — the snapshot restore path.
    """

    def __init__(self, binary_weights: np.ndarray,
                 scale: Optional[np.ndarray],
                 bias: Optional[np.ndarray],
                 config: CimConfig, ledger: OpLedger,
                 program: bool = True):
        super().__init__(ledger)
        weights = np.asarray(binary_weights, dtype=np.float64)  # (out, in)
        if program and not np.all(np.isin(weights, (-1.0, 1.0))):
            raise ValueError("CimLinear requires ±1 weights")
        self.out_features, self.in_features = weights.shape
        self.scale = None if scale is None else np.asarray(scale, dtype=np.float64)
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        self.config = config
        self.input_mask: Optional[np.ndarray] = None
        self.scale_multiplier: float | np.ndarray = 1.0

        w = weights.T                                   # rows=in, cols=out
        self.row_chunks = [(i, min(i + config.max_rows, self.in_features))
                           for i in range(0, self.in_features, config.max_rows)]
        self.col_chunks = [(j, min(j + config.max_cols, self.out_features))
                           for j in range(0, self.out_features, config.max_cols)]
        self.crossbars: List[List[XnorCrossbar]] = []
        self.adcs: List[ADC] = []
        for (r0, r1) in self.row_chunks:
            row_bars = []
            for (c0, c1) in self.col_chunks:
                bar = XnorCrossbar(
                    r1 - r0, c1 - c0,
                    mtj_params=config.mtj_params,
                    variability=config.variability,
                    defects=config.defects,
                    wire_resistance=config.wire_resistance,
                    rng=config.rng, ledger=ledger)
                if program:
                    bar.program(w[r0:r1, c0:c1])
                row_bars.append(bar)
            self.crossbars.append(row_bars)
            self.adcs.append(PopcountADC(config.adc_bits, r1 - r0,
                                         ledger=ledger))

        self.exact_route = True      # opt-out switch (tests, benches)
        # Bit-packed XNOR route inside the exact route: None defers to
        # the per-shape heuristic, True forces the packed kernel,
        # False pins the float32 GEMM.  Mirrors ``exact_route`` so the
        # differential tests can flip it per layer.
        self.use_bitpack: Optional[bool] = config.use_bitpack
        self._exact_ok = (
            all(bar.is_ideal for row in self.crossbars for bar in row)
            and all(adc.step % 2 == 1 for adc in self.adcs))

    @property
    def n_crossbars(self) -> int:
        return len(self.row_chunks) * len(self.col_chunks)

    # ------------------------------------------------------------------
    def state_dict(self):
        """(meta, arrays) split of the programmed layer state."""
        meta = {
            "type": "cim_linear",
            "out_features": self.out_features,
            "in_features": self.in_features,
            "exact_route": bool(self.exact_route),
            "use_bitpack": self.use_bitpack,
        }
        arrays = {}
        if self.scale is not None:
            arrays["scale"] = self.scale
        if self.bias is not None:
            arrays["bias"] = self.bias
        for i, row in enumerate(self.crossbars):
            for j, bar in enumerate(row):
                for key, value in bar.state_dict().items():
                    arrays[f"xb{i}_{j}_{key}"] = value
        return meta, arrays

    @classmethod
    def from_state(cls, meta, arrays, config: CimConfig,
                   ledger: OpLedger) -> "CimLinear":
        """Rebuild the layer around captured crossbar state (no
        programming: no RNG consumption, no ``mtj_write``)."""
        weights = np.empty((meta["out_features"], meta["in_features"]))
        self = cls(weights, arrays.get("scale"), arrays.get("bias"),
                   config, ledger, program=False)
        for i, row in enumerate(self.crossbars):
            for j, bar in enumerate(row):
                bar.load_state({
                    "weights": arrays[f"xb{i}_{j}_weights"],
                    "g_direct": arrays[f"xb{i}_{j}_g_direct"],
                    "g_complement": arrays[f"xb{i}_{j}_g_complement"],
                    "w_packed_t": arrays.get(f"xb{i}_{j}_w_packed_t"),
                })
        self.exact_route = bool(meta["exact_route"])
        self.use_bitpack = meta.get("use_bitpack")
        return self

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        lead, x = split_leading_axes(x, 1)   # e.g. (T, N, F) sample axis
        bits = np.sign(x)     # binarize; exact zeros stay gated (dropout)
        exact = self.exact_route and self._exact_ok
        out = np.zeros((x.shape[0], self.out_features))
        partial = np.zeros_like(out)
        for i, (r0, r1) in enumerate(self.row_chunks):
            # Drive masks are shared by every column tile of the row
            # chunk — prepared once instead of per crossbar.
            chunk = bits[:, r0:r1]
            if self.input_mask is not None:
                gate = (np.asarray(self.input_mask,
                                   dtype=np.float64)[r0:r1] > 0
                        ).astype(np.float64)
                chunk = chunk * gate
            if exact:
                packed = self.use_bitpack
                if packed is None:
                    packed = bitpack.packed_route_beneficial(
                        chunk.shape[0], r1 - r0, self.out_features)
                if packed:
                    planes = bitpack.pack_ternary_rows(chunk)
                    for j, (c0, c1) in enumerate(self.col_chunks):
                        self.crossbars[i][j].mvm_packed(
                            planes, out=partial[:, c0:c1])
                else:
                    chunk32 = chunk.astype(np.float32)
                    total_active = int(np.count_nonzero(chunk32))
                    for j, (c0, c1) in enumerate(self.col_chunks):
                        bar = self.crossbars[i][j]
                        partial[:, c0:c1] = chunk32 @ bar.signed_weights_t().T
                        bar.book_mvm(total_active)
            else:
                pos = (chunk > 0).astype(np.float64)
                neg = (chunk < 0).astype(np.float64)
                n_active = (pos + neg).sum(axis=1, keepdims=True)
                for j, (c0, c1) in enumerate(self.col_chunks):
                    partial[:, c0:c1] = self.crossbars[i][j].mvm_prepared(
                        pos, neg, n_active)
            out += self.adcs[i].convert(partial)
        if self.scale is not None:
            out = out * (self.scale * self.scale_multiplier)
            self.ledger.add("digital_mac", out.size)
        elif not np.isscalar(self.scale_multiplier) or self.scale_multiplier != 1.0:
            out = out * self.scale_multiplier
            self.ledger.add("digital_mac", out.size)
        if self.bias is not None:
            out = out + self.bias
            self.ledger.add("digital_op", out.size)
        return merge_leading_axes(lead, out)


class CimConv2d(CimLayer):
    """Binary convolution on crossbars under a Fig.-1 mapping plan.

    Uses im2col so the analog MAC is the same XNOR popcount as
    :class:`CimLinear`; the mapping plan controls row chunking (and
    therefore partial-sum count, ADC conversions, and where the
    spatial-dropout modules sit).  ``groups`` replicates the plan's
    crossbar grid per independent channel group, ``dilation`` only
    changes the im2col geometry feeding the wordlines.

    The im2col gather runs through the shared conv-plan cache and the
    per-thread scratch arenas of :mod:`repro.tensor.functional`, so a
    warm engine (batched MC, serving flushes) performs zero index-plan
    rebuilds and near-zero fresh allocation.  When the analog chain is
    ideal (see :attr:`XnorCrossbar.is_ideal`) and every row chunk's
    :class:`PopcountADC` has an odd integer step, the layer takes an
    *exact-integer float32* route: the decoded MAC of an ideal XNOR
    crossbar is a small integer (|MAC| <= rows << 2^24), float32
    represents it exactly, and with an odd step the ADC's
    ``rint(mac / step)`` can never land on a rounding tie — so the
    route is bit-identical to the analog simulation, whose only
    deviation from the integer is ~1e-13 of float64 decode noise.
    (An even step *can* tie exactly at odd MACs, where that noise
    would decide the rounding — such layers stay on the analog path.)
    Set ``exact_route = False`` to force the analog path; within the
    exact route ``use_bitpack`` (None/True/False, as in
    :class:`CimLinear`) selects the bit-packed XNOR kernel, which
    packs the im2col patch slab column-major and yields the same
    integer partial sums bit for bit.

    ``channel_mask`` (settable per pass, shape (C_in,)) gates all
    wordline groups / sub-crossbars belonging to an input feature map —
    the MC-SpatialDropout hardware mechanism.
    """

    def __init__(self, binary_weights: np.ndarray,
                 scale: Optional[np.ndarray],
                 bias: Optional[np.ndarray],
                 stride: int, padding: int,
                 config: CimConfig, ledger: OpLedger,
                 dilation: int = 1, groups: int = 1,
                 program: bool = True):
        super().__init__(ledger)
        weights = np.asarray(binary_weights, dtype=np.float64)
        if program and not np.all(np.isin(weights, (-1.0, 1.0))):
            raise ValueError("CimConv2d requires ±1 weights")
        self.c_out, c_in_pg, self.kh, self.kw = weights.shape
        if self.kh != self.kw:
            raise ValueError("only square kernels supported")
        if groups < 1 or dilation < 1:
            raise ValueError("groups and dilation must be >= 1")
        if self.c_out % groups:
            raise ValueError(f"out_channels {self.c_out} not divisible "
                             f"by groups {groups}")
        self.c_in = c_in_pg * groups
        self.scale = None if scale is None else np.asarray(scale, dtype=np.float64)
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        self.stride = stride
        self.padding = padding
        self.dilation = dilation
        self.groups = groups
        self.config = config
        self.channel_mask: Optional[np.ndarray] = None
        self.scale_multiplier: float | np.ndarray = 1.0

        self.plan: MappingPlan = plan_conv_mapping(
            ConvShape(self.c_in, self.c_out, self.kh, groups=groups),
            config.mapping_strategy,
            max_rows=config.max_rows, max_cols=config.max_cols)

        # One crossbar grid per group; the flat lists interleave
        # group-major so ``crossbars[g * n_row_chunks + i][j]`` is row
        # chunk i, column chunk j of group g (groups == 1 keeps the
        # historical [i][j] layout).
        w_groups = weights.reshape(
            groups, self.c_out // groups, -1)           # (G, Cout/g, K2*Cin/g)
        self.crossbars: List[List[XnorCrossbar]] = []
        self.adcs: List[ADC] = []
        for g in range(groups):
            w = w_groups[g].T                           # (K2*Cin/g, Cout/g)
            for (r0, r1) in self.plan.row_chunks:
                row_bars = []
                for (c0, c1) in self.plan.col_chunks:
                    bar = XnorCrossbar(
                        r1 - r0, c1 - c0,
                        mtj_params=config.mtj_params,
                        variability=config.variability,
                        defects=config.defects,
                        wire_resistance=config.wire_resistance,
                        rng=config.rng, ledger=ledger)
                    if program:
                        bar.program(w[r0:r1, c0:c1])
                    row_bars.append(bar)
                self.crossbars.append(row_bars)
                self.adcs.append(PopcountADC(config.adc_bits, r1 - r0,
                                             ledger=ledger))

        self.exact_route = True      # opt-out switch (tests, benches)
        # Same tri-state as CimLinear.use_bitpack (None/True/False).
        self.use_bitpack: Optional[bool] = config.use_bitpack
        self._exact_ok = (
            all(bar.is_ideal for row in self.crossbars for bar in row)
            and all(adc.step % 2 == 1 for adc in self.adcs))

    # ------------------------------------------------------------------
    def state_dict(self):
        """(meta, arrays) split of the programmed layer state."""
        meta = {
            "type": "cim_conv2d",
            "c_out": self.c_out,
            "c_in": self.c_in,
            "kh": self.kh,
            "stride": self.stride,
            "padding": self.padding,
            "dilation": self.dilation,
            "groups": self.groups,
            "exact_route": bool(self.exact_route),
            "use_bitpack": self.use_bitpack,
        }
        arrays = {}
        if self.scale is not None:
            arrays["scale"] = self.scale
        if self.bias is not None:
            arrays["bias"] = self.bias
        for f, row in enumerate(self.crossbars):
            for j, bar in enumerate(row):
                for key, value in bar.state_dict().items():
                    arrays[f"xb{f}_{j}_{key}"] = value
        return meta, arrays

    @classmethod
    def from_state(cls, meta, arrays, config: CimConfig,
                   ledger: OpLedger) -> "CimConv2d":
        """Rebuild the layer around captured crossbar state."""
        groups = meta["groups"]
        weights = np.empty((meta["c_out"], meta["c_in"] // groups,
                            meta["kh"], meta["kh"]))
        self = cls(weights, arrays.get("scale"), arrays.get("bias"),
                   meta["stride"], meta["padding"], config, ledger,
                   dilation=meta["dilation"], groups=groups,
                   program=False)
        for f, row in enumerate(self.crossbars):
            for j, bar in enumerate(row):
                bar.load_state({
                    "weights": arrays[f"xb{f}_{j}_weights"],
                    "g_direct": arrays[f"xb{f}_{j}_g_direct"],
                    "g_complement": arrays[f"xb{f}_{j}_g_complement"],
                    "w_packed_t": arrays.get(f"xb{f}_{j}_w_packed_t"),
                })
        self.exact_route = bool(meta["exact_route"])
        self.use_bitpack = meta.get("use_bitpack")
        return self

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        lead, x = split_leading_axes(x, 3)   # (T, N, C, H, W) sample axis
        n = x.shape[0]
        kh = self.kh
        k2 = kh * kh
        exact = self.exact_route and self._exact_ok
        dtype = np.dtype(np.float32 if exact else np.float64)

        # Binarize in float64 (a denormal that underflows to 0.0 in
        # float32 must still drive its wordline) before the arena
        # gather casts to the route dtype; zeros (dropped maps) stay
        # gated.
        gather_buf, out_h, out_w = _gather_padded_patches(
            np.sign(x), kh, kh, self.stride, self.padding, self.dilation,
            dtype, tag="cim_conv")
        length = out_h * out_w
        ln = length * n
        if self.channel_mask is not None:
            # A dropped input feature map's wordline group never fires:
            # zero its whole patch slab once, instead of re-deriving a
            # per-chunk row mask (im2col rows are channel-major).
            keep = np.asarray(self.channel_mask, dtype=np.float64) > 0
            if not keep.all():
                gather_buf[~keep] = 0.0
        patches = gather_buf.reshape(self.c_in * k2, ln)

        out = np.zeros((self.c_out, ln))
        n_rc = len(self.plan.row_chunks)
        cog = self.c_out // self.groups
        rows_pg = (self.c_in // self.groups) * k2
        (partial,) = _conv_scratch_buffers(
            ("cim_conv_partial", cog, ln, dtype.str),
            lambda: (np.empty((cog, ln), dtype=dtype),))
        for g in range(self.groups):
            out_g = out[g * cog:(g + 1) * cog]
            for i, (r0, r1) in enumerate(self.plan.row_chunks):
                chunk = patches[g * rows_pg + r0:g * rows_pg + r1]
                bars = self.crossbars[g * n_rc + i]
                if exact:
                    packed = self.use_bitpack
                    if packed is None:
                        packed = bitpack.packed_route_beneficial(
                            ln, r1 - r0, cog)
                    if packed:
                        planes = bitpack.pack_ternary_cols(chunk)
                        for j, (c0, c1) in enumerate(self.plan.col_chunks):
                            bars[j].mvm_packed(planes, out=partial[c0:c1],
                                               col_major=True)
                    else:
                        total_active = int(np.count_nonzero(chunk))
                        for j, (c0, c1) in enumerate(self.plan.col_chunks):
                            np.matmul(bars[j].signed_weights_t(), chunk,
                                      out=partial[c0:c1])
                            bars[j].book_mvm(total_active)
                else:
                    pos_t = (chunk > 0).astype(np.float64)
                    neg_t = (chunk < 0).astype(np.float64)
                    n_active = (pos_t + neg_t).sum(axis=0)
                    for j, (c0, c1) in enumerate(self.plan.col_chunks):
                        partial[c0:c1] = bars[j].mvm_cols(pos_t, neg_t,
                                                          n_active)
                out_g += self.adcs[g * n_rc + i].convert(partial)

        out = out.reshape(self.c_out, length, n)
        if self.scale is not None:
            out = out * (self.scale * np.asarray(self.scale_multiplier)
                         ).reshape(-1, 1, 1)
            self.ledger.add("digital_mac", out.size)
        if self.bias is not None:
            out = out + self.bias.reshape(-1, 1, 1)
            self.ledger.add("digital_op", out.size)
        out = np.ascontiguousarray(out.transpose(2, 0, 1)).reshape(
            n, self.c_out, out_h, out_w)
        return merge_leading_axes(lead, out)


class FrozenNorm(CimLayer):
    """Batch/inverted normalization frozen to running statistics.

    Deployment form of both BatchNorm and InvertedNorm: a per-feature
    affine ``(x · g + b − mu) / sigma`` (inverted order) or
    ``(x − mu) / sigma · g + b`` (standard order), computed digitally.
    Affine-dropout masks are applied by the Bayesian wrapper through
    ``gamma_multiplier`` / ``beta_multiplier`` — scalars for one MC
    pass, or 1-D arrays of per-row values (one entry per sample of a
    flattened ``(T·N, …)`` batch) in the batched MC engine.
    """

    def __init__(self, mean: np.ndarray, var: np.ndarray,
                 gamma: Optional[np.ndarray], beta: Optional[np.ndarray],
                 eps: float, spatial: bool, inverted: bool,
                 ledger: OpLedger):
        super().__init__(ledger)
        self.mean = np.asarray(mean, dtype=np.float64)
        self.std = np.sqrt(np.asarray(var, dtype=np.float64) + eps)
        self.gamma = None if gamma is None else np.asarray(gamma, np.float64)
        self.beta = None if beta is None else np.asarray(beta, np.float64)
        self.spatial = spatial
        self.inverted = inverted
        self.gamma_multiplier: float | np.ndarray = 1.0
        self.beta_multiplier: float | np.ndarray = 1.0

    def state_dict(self):
        meta = {"type": "frozen_norm", "spatial": self.spatial,
                "inverted": self.inverted}
        arrays = {"mean": self.mean, "std": self.std}
        if self.gamma is not None:
            arrays["gamma"] = self.gamma
        if self.beta is not None:
            arrays["beta"] = self.beta
        return meta, arrays

    @classmethod
    def from_state(cls, meta, arrays, config: CimConfig,
                   ledger: OpLedger) -> "FrozenNorm":
        self = cls(arrays["mean"], np.zeros_like(arrays["mean"]),
                   arrays.get("gamma"), arrays.get("beta"), 0.0,
                   meta["spatial"], meta["inverted"], ledger)
        # Install the captured std verbatim — sqrt(var + eps) need not
        # round-trip bit-exactly through var = std².
        self.std = np.asarray(arrays["std"], dtype=np.float64)
        return self

    def _shape(self, x: np.ndarray) -> tuple:
        return (1, -1, 1, 1) if x.ndim == 4 else (1, -1)

    @staticmethod
    def _per_row(multiplier, x: np.ndarray):
        """Align a per-row multiplier bank against the batch axis."""
        if np.ndim(multiplier) == 0:
            return multiplier
        return np.asarray(multiplier, dtype=np.float64).reshape(
            (-1,) + (1,) * (x.ndim - 1))

    def forward(self, x: np.ndarray) -> np.ndarray:
        shape = self._shape(x)
        mean = self.mean.reshape(shape)
        std = self.std.reshape(shape)
        gamma = None if self.gamma is None else self.gamma.reshape(shape)
        beta = None if self.beta is None else self.beta.reshape(shape)
        if gamma is not None:
            # Affine-dropout semantics: dropped gamma -> identity (1),
            # dropped beta -> zero.
            gm = self._per_row(self.gamma_multiplier, x)
            gamma = gamma * gm + (1.0 - gm)
        if beta is not None:
            beta = beta * self._per_row(self.beta_multiplier, x)
        if self.inverted:
            out = x
            if gamma is not None:
                out = out * gamma
            if beta is not None:
                out = out + beta
            out = (out - mean) / std
        else:
            out = (x - mean) / std
            if gamma is not None:
                out = out * gamma
            if beta is not None:
                out = out + beta
        self.ledger.add("digital_mac", x.size)
        return out


class DropoutGate(CimLayer):
    """Dropout mask stage between CIM layers.

    A dropped neuron/feature-map outputs zero, which the next
    crossbar's wordline decoder interprets as "do not assert this row"
    (see :meth:`XnorCrossbar.matvec`), so masking here *is* the
    hardware gating of Fig. 1.  Pure zeroing — no inverted-dropout
    rescale — matching the training-side semantics.

    ``mask`` is set per pass by the Bayesian wrapper: shape (F,) for
    neuron masks, (C,) for channel masks (broadcast over H, W);
    ``None`` = deterministic pass-through.  The batched MC engine
    instead installs a 2-D mask *bank* — one row per sample of the
    flattened ``(T·N, …)`` batch — so all T per-pass masks apply in a
    single stacked multiply.
    """

    def __init__(self, p: float, channelwise: bool, ledger: OpLedger):
        super().__init__(ledger)
        self.p = p
        self.channelwise = channelwise
        self.mask: Optional[np.ndarray] = None

    def state_dict(self):
        return ({"type": "dropout_gate", "p": self.p,
                 "channelwise": self.channelwise}, {})

    @classmethod
    def from_state(cls, meta, arrays, config: CimConfig,
                   ledger: OpLedger) -> "DropoutGate":
        return cls(meta["p"], meta["channelwise"], ledger)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.mask is None:
            return x
        keep = (np.asarray(self.mask, dtype=np.float64) > 0).astype(np.float64)
        if self.channelwise and x.ndim != 4:
            raise ValueError("channelwise DropoutGate expects NCHW")
        if keep.ndim == 1:
            # One gating op per (sample, masked unit), as in hardware.
            self.ledger.add("digital_op", x.shape[0] * keep.size)
            if self.channelwise:
                return x * keep.reshape(1, -1, 1, 1)
            return x * keep
        if keep.shape[0] != x.shape[0]:
            raise ValueError(
                f"mask bank rows {keep.shape[0]} != batch {x.shape[0]}")
        self.ledger.add("digital_op", keep.size)
        if self.channelwise:
            return x * keep[:, :, None, None]
        return x * keep


class DigitalScale(CimLayer):
    """Scale-vector multiply from SRAM (the Fig. 2 scale path).

    Deployment form of ScaleDropout / BayesianScale: the scale vector
    is fetched from the 32-bit scale SRAM and multiplied into the
    accumulated MAC digitally.  ``multiplier`` is the per-pass
    stochastic modulation (scalar for Scale-Dropout, vector for a
    Bayesian-scale posterior sample) set by the Bayesian wrapper; the
    batched MC engine installs a 2-D bank instead — ``(rows, 1)`` for
    Scale-Dropout, ``(rows, F)`` for posterior samples, one row per
    sample of the flattened ``(T·N, …)`` batch.

    ``passes_per_call`` declares how many MC passes one forward call
    represents, so the SRAM re-read each hardware pass performs stays
    booked identically whether the passes run sequentially or stacked.
    """

    def __init__(self, scale: np.ndarray, spatial: bool, ledger: OpLedger):
        super().__init__(ledger)
        self.scale = np.asarray(scale, dtype=np.float64)
        self.spatial = spatial
        self.multiplier: float | np.ndarray = 1.0
        self.passes_per_call: int = 1

    def state_dict(self):
        return ({"type": "digital_scale", "spatial": self.spatial},
                {"scale": self.scale})

    @classmethod
    def from_state(cls, meta, arrays, config: CimConfig,
                   ledger: OpLedger) -> "DigitalScale":
        return cls(arrays["scale"], meta["spatial"], ledger)

    def forward(self, x: np.ndarray) -> np.ndarray:
        effective = self.scale * self.multiplier
        self.ledger.add("sram_read", self.scale.size * self.passes_per_call)
        self.ledger.add("digital_mac", x.size)
        if effective.ndim > 1:        # per-row multiplier bank
            if effective.shape[0] != x.shape[0]:
                raise ValueError(
                    f"multiplier bank rows {effective.shape[0]} != "
                    f"batch {x.shape[0]}")
            if self.spatial:
                return x * effective[:, :, None, None]
            return x * effective
        if self.spatial:
            return x * effective.reshape(1, -1, 1, 1)
        return x * effective


class DigitalSign(CimLayer):
    """Sign activation taken by sense amplifiers (1-bit readout)."""

    def state_dict(self):
        return {"type": "digital_sign"}, {}

    @classmethod
    def from_state(cls, meta, arrays, config: CimConfig,
                   ledger: OpLedger) -> "DigitalSign":
        return cls(ledger)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.ledger.add("sa_read", x.size)
        return np.where(x >= 0, 1.0, -1.0)


class DigitalReLU(CimLayer):
    def state_dict(self):
        return {"type": "digital_relu"}, {}

    @classmethod
    def from_state(cls, meta, arrays, config: CimConfig,
                   ledger: OpLedger) -> "DigitalReLU":
        return cls(ledger)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.ledger.add("digital_op", x.size)
        return np.maximum(x, 0.0)


class DigitalMaxPool(CimLayer):
    def __init__(self, kernel: int, ledger: OpLedger):
        super().__init__(ledger)
        self.kernel = kernel

    def state_dict(self):
        return {"type": "digital_maxpool", "kernel": self.kernel}, {}

    @classmethod
    def from_state(cls, meta, arrays, config: CimConfig,
                   ledger: OpLedger) -> "DigitalMaxPool":
        return cls(meta["kernel"], ledger)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError("DigitalMaxPool expects (N, C, H, W)")
        k = self.kernel
        h2, w2 = x.shape[2] // k, x.shape[3] // k
        self.ledger.add("digital_op", x.size)
        # Pairwise maximum over the k² strided window slices: an order
        # of magnitude faster than a multi-axis reduce over the 6-D
        # window view on pass-stacked batches, and exact either way
        # (max is order-independent).
        out: Optional[np.ndarray] = None
        for u in range(k):
            for v in range(k):
                s = x[:, :, u:h2 * k:k, v:w2 * k:k]
                out = s.copy() if out is None else np.maximum(out, s, out=out)
        return out


class DigitalFlatten(CimLayer):
    def state_dict(self):
        return {"type": "digital_flatten"}, {}

    @classmethod
    def from_state(cls, meta, arrays, config: CimConfig,
                   ledger: OpLedger) -> "DigitalFlatten":
        return cls(ledger)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1)


class CimNetwork:
    """A deployed network: an ordered list of CIM stages + one ledger.

    The Bayesian wrappers drive stochastic behaviour by setting stage
    attributes (``input_mask``, ``channel_mask``, ``scale_multiplier``,
    ``gamma_multiplier``) between forward passes.
    """

    def __init__(self, stages: Sequence[CimLayer], ledger: OpLedger,
                 config: CimConfig):
        self.stages = list(stages)
        self.ledger = ledger
        self.config = config

    def forward(self, x: np.ndarray) -> np.ndarray:
        for stage in self.stages:
            x = stage(x)
        return x

    __call__ = forward

    def mvm_layers(self) -> List[CimLayer]:
        """The analog (crossbar-backed) stages, in order."""
        return [s for s in self.stages
                if isinstance(s, (CimLinear, CimConv2d))]

    @property
    def n_crossbars(self) -> int:
        total = 0
        for stage in self.stages:
            if isinstance(stage, CimLinear):
                total += stage.n_crossbars
            elif isinstance(stage, CimConv2d):
                total += stage.plan.n_crossbars
        return total
