"""Analog SOT-MRAM crossbar array model.

The crossbar computes a matrix-vector product in one shot: input
voltages drive the rows (wordlines), each cell's conductance
multiplies its row voltage, and Kirchhoff current summation on every
column (bitline) yields the dot products (Sec. II-A: SOT-MRAM's
"tunable resistances ... hold significant promise, especially in
Matrix-Vector Multiplication operations within crossbar arrays").

Two cell organizations are modelled:

* :class:`XnorCrossbar` — binary weights in complementary 1T-1MTJ
  pairs ("each trained weight is stored in a unit represented by two
  1T-1MTJ cells", Sec. III-A.1), inputs are ±1, the column current
  encodes the XNOR-popcount MAC.
* :class:`AnalogCrossbar` — multi-level cells storing quantized real
  values (SpinBayes / Bayesian-scale crossbars), inputs are analog
  row voltages.

Both apply device-to-device conductance variability at programming
time, optional stuck-at defects, cycle-to-cycle read noise, and a
first-order IR-drop attenuation; both book their operations on an
:class:`~repro.cim.ledger.OpLedger`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cim.ledger import OpLedger
from repro.devices.defects import DefectModel
from repro.devices.mtj import MTJParams
from repro.devices.variability import DeviceVariability
from repro.tensor import bitpack


def split_leading_axes(x: np.ndarray, feature_ndim: int):
    """Flatten every axis before the last ``feature_ndim`` into one batch.

    The sample-axis plumbing shared by crossbars and CIM layers: a
    stacked Monte-Carlo tensor (e.g. ``(T, N, features…)``) becomes a
    flat ``(T·N, features…)`` batch.  Returns ``(lead, flat)`` where
    ``lead`` is ``None`` when ``x`` already had a single batch axis.
    """
    if x.ndim == feature_ndim + 1:
        return None, x
    lead = x.shape[:-feature_ndim]
    return lead, x.reshape((-1,) + x.shape[-feature_ndim:])


def merge_leading_axes(lead, out: np.ndarray) -> np.ndarray:
    """Inverse of :func:`split_leading_axes` on the produced output."""
    if lead is None:
        return out
    return out.reshape(lead + out.shape[1:])


class XnorCrossbar:
    """Binary-weight crossbar with complementary bit-cell pairs.

    Each logical weight w ∈ {−1, +1} occupies two cells: the *direct*
    cell (read when the input bit is +1) and the *complement* cell
    (read when the input bit is −1).  A cell in the P state contributes
    g_p to the column current, AP contributes g_ap; the XNOR truth
    table falls out of programming direct=w, complement=−w.

    The decoded MAC for column j is ``2·matches − n_active``, exactly
    the popcount arithmetic of a digital XNOR BNN, but the *analog*
    current is what the ADC sees — so variability, defects, IR drop
    and read noise all land on the result before decoding.
    """

    def __init__(self, n_rows: int, n_cols: int,
                 mtj_params: Optional[MTJParams] = None,
                 variability: Optional[DeviceVariability] = None,
                 defects: Optional[DefectModel] = None,
                 wire_resistance: float = 0.0,
                 rng: Optional[np.random.Generator] = None,
                 ledger: Optional[OpLedger] = None):
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.params = mtj_params or MTJParams()
        self.variability = variability
        self.rng = rng or np.random.default_rng()
        self.ledger = ledger if ledger is not None else OpLedger()
        self.wire_resistance = wire_resistance
        self._defects = defects
        self._weights: Optional[np.ndarray] = None
        self._g_direct: Optional[np.ndarray] = None
        self._g_complement: Optional[np.ndarray] = None
        self._w_signed_t: Optional[np.ndarray] = None
        self._w_packed_t: Optional[bitpack.PackedWeights] = None

    @property
    def is_ideal(self) -> bool:
        """True when the analog chain is deterministic and lossless.

        No conductance variability (which also rules out read noise)
        and no IR drop means the decoded MAC equals the exact integer
        XNOR popcount up to float64 rounding noise (~1e-13) — the
        precondition for the exact-integer fast route in the CIM conv
        layers.  Programming defects are fine: they change *which* ±1
        matrix is stored, not the exactness of its readout.
        """
        return self.variability is None and self.wire_resistance <= 0.0

    # ------------------------------------------------------------------
    def program(self, weights: np.ndarray) -> None:
        """Program a ±1 weight matrix (rows=inputs, cols=outputs)."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (self.n_rows, self.n_cols):
            raise ValueError(
                f"weight shape {weights.shape} != ({self.n_rows}, {self.n_cols})")
        if not np.all(np.isin(weights, (-1.0, 1.0))):
            raise ValueError("XnorCrossbar stores ±1 weights only")

        stored = weights
        if self._defects is not None:
            stored = self._defects.apply_to_binary_weights(stored)
        self._weights = stored

        g_p, g_ap = self.params.g_p, self.params.g_ap
        g_direct = np.where(stored > 0, g_p, g_ap)
        g_complement = np.where(stored > 0, g_ap, g_p)
        if self.variability is not None:
            g_direct = self.variability.perturb_conductances(g_direct)
            g_complement = self.variability.perturb_conductances(g_complement)
        self._g_direct = g_direct
        self._g_complement = g_complement
        self._invalidate_operand_caches()
        # Two MTJ writes per logical weight (direct + complement cell).
        self.ledger.add("mtj_write", 2 * weights.size)

    def _invalidate_operand_caches(self) -> None:
        """Drop every operand derived from the stored matrix.

        MUST be called by anything that changes conductance state
        (programming, state install, post-deployment fault injection):
        the float32 signed operand and the packed sign planes are both
        pure functions of ``_weights``, and a stale cached copy would
        silently serve the *pre-mutation* matrix on the fast routes.
        """
        self._w_signed_t = None
        self._w_packed_t = None

    @property
    def programmed_weights(self) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("crossbar not programmed")
        return self._weights

    def signed_weights_t(self) -> np.ndarray:
        """Cached float32 (n_cols, n_rows) ±1 operand of the stored
        weights — what an ideal readout decodes to, transposed for the
        column-major GEMMs of the exact-integer conv route.  Derived
        from the *post-defect* stored matrix, so stuck cells are
        reflected exactly."""
        if self._w_signed_t is None:
            w = np.where(self.programmed_weights > 0,
                         np.float32(1.0), np.float32(-1.0))
            self._w_signed_t = np.ascontiguousarray(w.T)
        return self._w_signed_t

    def packed_weights_t(self) -> bitpack.PackedWeights:
        """Cached bit-packed sign planes of the stored weights —
        ``(ceil(n_rows/64), n_cols)`` uint64, the operand of
        :meth:`mvm_packed`.  Packed once per programming (or installed
        verbatim from a snapshot) and invalidated alongside the float
        operand whenever conductance state changes."""
        if self._w_packed_t is None:
            self._w_packed_t = bitpack.pack_weights(self.programmed_weights)
        return self._w_packed_t

    def mvm_packed(self, planes: "bitpack.PackedPlanes",
                   out: Optional[np.ndarray] = None,
                   col_major: bool = False) -> np.ndarray:
        """Exact-integer XNOR MVM on pre-packed wordline planes.

        The bit-packed twin of :meth:`mvm_prepared` / :meth:`mvm_cols`:
        ``planes`` holds the packed sign/active bitplanes of the drive
        batch (see :func:`repro.tensor.bitpack.pack_ternary_rows`), and
        the popcount kernel returns the decoded integer MAC directly —
        valid only on an ideal array, where that integer is exactly
        what the analog chain would decode (the same precondition as
        the layers' exact-integer route).  Ledger bookings match the
        analog entry points: one :meth:`book_mvm` of the summed
        asserted-wordline count.
        """
        if not self.is_ideal:
            raise RuntimeError(
                "packed XNOR route requires an ideal array "
                "(no variability, no wire resistance)")
        mac = bitpack.packed_mvm(planes, self.packed_weights_t(),
                                 out=out, col_major=col_major)
        self.book_mvm(int(planes.n_active.sum()))
        return mac

    def inject_defects(self, defects: DefectModel) -> None:
        """Corrupt the already-programmed array in place.

        Post-deployment fault injection (retention failures over a
        deployment lifetime, the self-healing experiments' mutation):
        the stored ±1 matrix is re-drawn through the defect model and
        the affected cells' conductances are pinned to their nominal
        stuck values; unaffected cells keep their programmed
        (variability-perturbed) conductances.  Invalidate-on-mutate:
        the cached fast-route operands are dropped so the float32 and
        packed routes re-derive the *post-fault* matrix.
        """
        if self._weights is None:
            raise RuntimeError("crossbar not programmed")
        corrupted = defects.apply_to_binary_weights(self._weights)
        flipped = corrupted != self._weights
        g_p, g_ap = self.params.g_p, self.params.g_ap
        self._weights = corrupted
        self._g_direct = np.where(
            flipped, np.where(corrupted > 0, g_p, g_ap), self._g_direct)
        self._g_complement = np.where(
            flipped, np.where(corrupted > 0, g_ap, g_p), self._g_complement)
        self._invalidate_operand_caches()

    def book_mvm(self, total_active: int) -> None:
        """Book one batched MVM's ledger entries.

        ``total_active`` is the number of asserted wordline pairs
        summed over the batch — exactly what :meth:`matvec` books, so
        fast routes that bypass the analog simulation keep ledger
        totals identical.
        """
        self.ledger.add("crossbar_cell_access", total_active * self.n_cols)
        self.ledger.add("dac_drive", total_active)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The programmed analog state (post-defect, post-variability).

        Everything :meth:`program` produced, with the stochastic draws
        already baked in — installing it via :meth:`load_state` skips
        re-programming entirely, so no RNG is consumed and no
        ``mtj_write`` is booked.
        """
        if self._weights is None:
            raise RuntimeError("crossbar not programmed")
        state = {
            "weights": self._weights,
            "g_direct": self._g_direct,
            "g_complement": self._g_complement,
        }
        if self._w_packed_t is not None:
            # Packed sign planes ride along — but only when the packed
            # route materialized them — so a snapshot restore installs
            # the fast-route operand instead of re-packing, while
            # float-route deployments don't pay for an operand they
            # never use (the planes would cost load time per array).
            state["w_packed_t"] = self._w_packed_t.sign_t
        return state

    def load_state(self, state: dict) -> None:
        """Install captured conductance state without re-programming."""
        weights = np.asarray(state["weights"], dtype=np.float64)
        if weights.shape != (self.n_rows, self.n_cols):
            raise ValueError(
                f"state shape {weights.shape} != ({self.n_rows}, {self.n_cols})")
        self._weights = weights
        self._g_direct = np.asarray(state["g_direct"], dtype=np.float64)
        self._g_complement = np.asarray(state["g_complement"],
                                        dtype=np.float64)
        self._invalidate_operand_caches()
        packed = state.get("w_packed_t")
        if packed is not None:
            planes = np.ascontiguousarray(packed, dtype=np.uint64)
            expected = ((self.n_rows + bitpack.LANE - 1) // bitpack.LANE,
                        self.n_cols)
            if planes.shape != expected:
                raise ValueError(
                    f"packed plane shape {planes.shape} != {expected}")
            self._w_packed_t = bitpack.PackedWeights(planes, self.n_rows)

    # ------------------------------------------------------------------
    def _ir_drop_factor(self, n_active: np.ndarray) -> np.ndarray:
        """First-order IR-drop attenuation.

        Column current is attenuated proportionally to the total
        conductance load on the line; the linear model
        ``1 / (1 + R_wire · n_active · g_p)`` captures the worst-case
        trend without solving the full resistive mesh.
        """
        if self.wire_resistance <= 0.0:
            return np.ones_like(n_active, dtype=np.float64)
        load = self.wire_resistance * n_active * self.params.g_p
        return 1.0 / (1.0 + load)

    def matvec(self, inputs: np.ndarray,
               row_mask: Optional[np.ndarray] = None) -> np.ndarray:
        """Batched XNOR MAC: inputs (..., n_rows) in {−1, 0, +1} → (..., n_cols).

        Any leading axes are treated as one flat batch of MVMs — in
        particular a stacked Monte-Carlo tensor ``(T, N, n_rows)``
        evaluates all T passes in a single ndarray operation; the
        ledger counts are identical to T separate calls because every
        booking is per asserted wordline.

        A zero input means the wordline pair is *not asserted* — the
        row contributes no current, which is exactly how neuron dropout
        reaches the crossbar (a dropped neuron's activation is zero, so
        its wordline never fires).  ``row_mask`` of {0,1} additionally
        gates rows — the Fig.-1 mechanism where the dropout module
        drives the WL decoder directly (Spatial-SpinDrop feature-map
        gating).  Shape ``(n_rows,)`` gates layer-wide; a mask with the
        same leading axes as ``inputs`` gates per sample (e.g. a
        different wordline mask per stacked MC pass).

        Returns the *decoded integer MAC* (2·matches − n_active, per
        sample), already corrected for the analog chain; amplitude
        quantization is applied by the ADC stage, not here.
        """
        if self._g_direct is None:
            raise RuntimeError("crossbar not programmed")
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim == 1:
            inputs = inputs[None, :]
        lead, inputs = split_leading_axes(inputs, 1)
        if inputs.shape[1] != self.n_rows:
            raise ValueError(f"input width {inputs.shape[1]} != {self.n_rows}")
        if not np.all((inputs == 0.0) | (np.abs(inputs) == 1.0)):
            raise ValueError("XnorCrossbar inputs must be in {-1, 0, +1}")

        if row_mask is None:
            gate = np.ones(self.n_rows)
        else:
            gate = np.asarray(row_mask, dtype=np.float64)
            if gate.ndim > 2:
                gate = gate.reshape(-1, gate.shape[-1])
            if gate.shape != (self.n_rows,) and \
                    gate.shape != (inputs.shape[0], self.n_rows):
                raise ValueError(
                    "row_mask must have shape (n_rows,) or match the "
                    "flattened input batch: "
                    f"got {np.shape(row_mask)} for inputs {inputs.shape}")
            gate = (gate > 0).astype(np.float64)

        pos = (inputs > 0).astype(np.float64) * gate     # rows driven "true"
        neg = (inputs < 0).astype(np.float64) * gate     # rows driven "false"
        n_active = (pos + neg).sum(axis=1, keepdims=True)  # per sample
        return merge_leading_axes(lead, self.mvm_prepared(pos, neg, n_active))

    def _analog_mac(self, pos: np.ndarray, neg: np.ndarray,
                    n_active: np.ndarray, transposed: bool) -> np.ndarray:
        """The analog physics shared by every MVM entry point.

        Read noise, current summation, IR-drop attenuation, decode and
        ledger bookings live only here so the row-major and
        column-major routes can never drift apart.  ``n_active`` must
        broadcast against the current matrix ((B, 1) row-major,
        (1, B) column-major).
        """
        v = self.params.read_voltage
        g_direct = self._g_direct
        g_complement = self._g_complement
        if self.variability is not None:
            g_direct = self.variability.read_noise(g_direct)
            g_complement = self.variability.read_noise(g_complement)

        if transposed:
            current = v * (g_direct.T @ pos + g_complement.T @ neg)
        else:
            current = v * (pos @ g_direct + neg @ g_complement)
        current = current * self._ir_drop_factor(n_active)

        # Decode matches from analog current using nominal conductances:
        # I = V (m g_p + (n_active - m) g_ap)  =>  m.
        g_p, g_ap = self.params.g_p, self.params.g_ap
        matches = (current / v - n_active * g_ap) / (g_p - g_ap)
        mac = 2.0 * matches - n_active
        self.book_mvm(int(n_active.sum()))
        return mac

    def mvm_prepared(self, pos: np.ndarray, neg: np.ndarray,
                     n_active: np.ndarray) -> np.ndarray:
        """Analog MVM on pre-computed drive masks: (B, n_rows) → (B, n_cols).

        ``pos``/``neg`` are the already-gated {0, 1} wordline drive
        masks and ``n_active`` their per-sample row count ``(B, 1)``.
        Layers that tile one logical matrix across several column
        chunks share one (pos, neg) preparation across every crossbar
        of a row chunk instead of re-deriving it per call — the same
        current/decode math and ledger bookings as :meth:`matvec`.
        """
        return self._analog_mac(pos, neg, n_active, transposed=False)

    def mvm_cols(self, pos_t: np.ndarray, neg_t: np.ndarray,
                 n_active: np.ndarray) -> np.ndarray:
        """Column-major analog MVM: (n_rows, B) drives → (n_cols, B) MAC.

        The transposed twin of :meth:`mvm_prepared` for the CIM conv
        layers, whose patch buffers are channel-first ``(rows, L·N)``
        slabs gathered straight from the plan cache — consuming them
        without a transpose copy keeps the warm path allocation-free.
        ``n_active`` has shape ``(B,)``; physics, decode and ledger
        bookings are identical.
        """
        return self._analog_mac(pos_t, neg_t, n_active[None, :],
                                transposed=True)


class AnalogCrossbar:
    """Multi-level-cell crossbar for quantized analog weights.

    Used by the SpinBayes posterior crossbars and the Bayesian-scale
    crossbar of subset-parameter inference.  Weights are quantized to
    ``n_levels`` conductance steps between g_ap (most negative value)
    and g_p·n_parallel (most positive); inputs are analog row voltages.
    """

    def __init__(self, n_rows: int, n_cols: int, n_levels: int = 16,
                 mtj_params: Optional[MTJParams] = None,
                 variability: Optional[DeviceVariability] = None,
                 defects: Optional[DefectModel] = None,
                 rng: Optional[np.random.Generator] = None,
                 ledger: Optional[OpLedger] = None):
        if n_levels < 2:
            raise ValueError("need at least two conductance levels")
        self.n_rows = n_rows
        self.n_cols = n_cols
        self.n_levels = n_levels
        self.params = mtj_params or MTJParams()
        self.variability = variability
        self.rng = rng or np.random.default_rng()
        self.ledger = ledger if ledger is not None else OpLedger()
        self._defects = defects
        self._g: Optional[np.ndarray] = None
        self._v_min = 0.0
        self._v_max = 1.0

    def program(self, values: np.ndarray,
                v_min: Optional[float] = None,
                v_max: Optional[float] = None) -> None:
        """Quantize real ``values`` onto the conductance grid and store."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.n_rows, self.n_cols):
            raise ValueError(
                f"value shape {values.shape} != ({self.n_rows}, {self.n_cols})")
        self._v_min = float(values.min()) if v_min is None else v_min
        self._v_max = float(values.max()) if v_max is None else v_max
        if self._v_max <= self._v_min:
            self._v_max = self._v_min + 1e-9

        span = self._v_max - self._v_min
        levels = np.rint(
            (np.clip(values, self._v_min, self._v_max) - self._v_min)
            / span * (self.n_levels - 1))
        g_lo, g_hi = self.params.g_ap, self.params.g_p
        g = g_lo + levels / (self.n_levels - 1) * (g_hi - g_lo)
        if self.variability is not None:
            g = self.variability.perturb_conductances(g)
        if self._defects is not None:
            g = self._defects.apply_to_conductances(g, g_hi, g_lo)
        self._g = g
        # Each multi-level cell programs ceil(log2(levels)) junction writes.
        writes_per_cell = max(1, int(np.ceil(np.log2(self.n_levels))))
        self.ledger.add("mtj_write", values.size * writes_per_cell)

    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The programmed analog state (quantization + noise baked in)."""
        if self._g is None:
            raise RuntimeError("crossbar not programmed")
        return {"g": self._g, "v_min": self._v_min, "v_max": self._v_max}

    def load_state(self, state: dict) -> None:
        """Install captured conductance state without re-programming."""
        g = np.asarray(state["g"], dtype=np.float64)
        if g.shape != (self.n_rows, self.n_cols):
            raise ValueError(
                f"state shape {g.shape} != ({self.n_rows}, {self.n_cols})")
        self._g = g
        self._v_min = float(state["v_min"])
        self._v_max = float(state["v_max"])

    def stored_values(self) -> np.ndarray:
        """Decode current conductances back to the value scale."""
        if self._g is None:
            raise RuntimeError("crossbar not programmed")
        g_lo, g_hi = self.params.g_ap, self.params.g_p
        frac = (self._g - g_lo) / (g_hi - g_lo)
        return self._v_min + np.clip(frac, 0.0, 1.0) * (self._v_max - self._v_min)

    def _decode(self, g: np.ndarray) -> np.ndarray:
        """Conductances → value-scale MVM operand.

        The offset term (g_lo) is removed by the reference column in
        hardware; the generous clip keeps noise-perturbed conductances
        on the decode line instead of saturating them.
        """
        g_lo, g_hi = self.params.g_ap, self.params.g_p
        return (self._v_min
                + np.clip((g - g_lo) / (g_hi - g_lo), -0.5, 1.5)
                * (self._v_max - self._v_min))

    def mvm_values(self) -> np.ndarray:
        """The noise-free MVM operand: decoded (n_rows, n_cols) values.

        Exactly the matrix :meth:`matvec` multiplies by when no read
        noise is configured — exposed so batched engines can reuse
        crossbar operands without re-decoding conductances per call.
        """
        if self._g is None:
            raise RuntimeError("crossbar not programmed")
        return self._decode(self._g)

    def matvec(self, inputs: np.ndarray) -> np.ndarray:
        """Analog MVM: (..., n_rows) voltages → (..., n_cols) decoded values.

        Leading axes (e.g. a stacked MC sample axis) are flattened into
        one batch of MVMs and restored on the output.
        """
        if self._g is None:
            raise RuntimeError("crossbar not programmed")
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim == 1:
            inputs = inputs[None, :]
        lead, inputs = split_leading_axes(inputs, 1)
        g = self._g
        if self.variability is not None:
            g = self.variability.read_noise(g)
        values = self._decode(g)
        out = inputs @ values
        batch = inputs.shape[0]
        self.ledger.add("crossbar_cell_access", self.n_rows * self.n_cols * batch)
        self.ledger.add("dac_drive", self.n_rows * batch)
        return merge_leading_axes(lead, out)
