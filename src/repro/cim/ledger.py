"""Operation ledger: the accounting backbone of the energy model.

Every CIM component (crossbar, ADC, sense amp, RNG, SRAM, digital
peripheral) books its operations here during simulation.  The energy
model (:mod:`repro.energy`) prices a ledger with per-operation
constants — this separation is what lets the reproduction regenerate
the paper's energy *ratios* from op counts rather than hard-coding
outcomes.
"""

from __future__ import annotations

import contextlib
from collections import Counter
from typing import Dict, Iterable


class OpLedger:
    """Counter of named operations.

    Canonical operation names used across the package:

    ``crossbar_cell_access``  one cell contributing to one MVM readout
    ``adc_conversion``        one column ADC conversion
    ``sa_read``               one sense-amplifier binary readout
    ``mtj_write``             one deterministic MTJ programming pulse
    ``rng_cycle``             one SET-read-RESET stochastic cycle
    ``sram_read`` / ``sram_write``  32-bit SRAM word accesses
    ``digital_mac``           one digital multiply-accumulate (periphery)
    ``digital_op``            one misc. digital operation (add, compare)
    ``dac_drive``             one input-line drive event
    """

    def __init__(self) -> None:
        self.counts: Counter = Counter()

    def add(self, op: str, n: int = 1) -> None:
        if n < 0:
            raise ValueError("operation count cannot be negative")
        self.counts[op] += int(n)

    def merge(self, other: "OpLedger") -> None:
        self.counts.update(other.counts)

    @contextlib.contextmanager
    def amortized(self, repeats: int):
        """Book the operations of the enclosed block ``repeats`` times.

        The memoization primitive of the batched MC engines: a
        pass-invariant network prefix is *evaluated* once but the
        hardware still performs it on every pass, so the ops booked
        inside the block are re-added ``repeats - 1`` extra times.
        """
        before = dict(self.counts)
        yield
        if repeats > 1:
            for op, count in list(self.counts.items()):
                delta = count - before.get(op, 0)
                if delta > 0:
                    self.add(op, delta * (repeats - 1))

    def scaled(self, factor: float) -> "OpLedger":
        """Return a copy with all counts multiplied (e.g. per-image)."""
        out = OpLedger()
        for op, count in self.counts.items():
            out.counts[op] = int(round(count * factor))
        return out

    def reset(self) -> None:
        self.counts.clear()

    def __getitem__(self, op: str) -> int:
        return self.counts.get(op, 0)

    def total(self, ops: Iterable[str] | None = None) -> int:
        if ops is None:
            return sum(self.counts.values())
        return sum(self.counts.get(op, 0) for op in ops)

    def as_dict(self) -> Dict[str, int]:
        return dict(self.counts)

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return f"OpLedger({body})"
