"""ADC and sense-amplifier models (the Fig. 2 periphery).

The Scale-Dropout inference architecture (Fig. 2) reads crossbar
columns through sense amplifiers and an ADC, accumulates partial sums,
multiplies by the scale from SRAM, applies batch norm and the sign
activation.  This module models the two readout primitives:

* :class:`ADC` — uniform mid-rise quantizer with configurable bit
  width over a calibrated input range; each conversion is booked.
* :class:`SenseAmplifier` — 1-bit comparator against a reference, used
  for reading MTJ states (dropout bit readout) and for sign
  activations taken directly in the analog domain.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cim.ledger import OpLedger


class ADC:
    """Uniform quantizer with ``bits`` resolution over [lo, hi]."""

    def __init__(self, bits: int = 6, lo: float = -1.0, hi: float = 1.0,
                 ledger: Optional[OpLedger] = None):
        if bits < 1:
            raise ValueError("ADC needs at least 1 bit")
        self.bits = bits
        self.ledger = ledger if ledger is not None else OpLedger()
        self.calibrate(lo, hi)

    @property
    def n_codes(self) -> int:
        return 2 ** self.bits

    def calibrate(self, lo: float, hi: float) -> None:
        """Retarget the conversion range (per-layer calibration)."""
        if hi <= lo:
            raise ValueError("hi must exceed lo")
        self.lo, self.hi = lo, hi
        # Precomputed once: convert() sits on the per-MVM hot path of
        # the batched MC engine.
        self._step = (hi - lo) / (self.n_codes - 1)

    def convert(self, values: np.ndarray) -> np.ndarray:
        """Quantize ``values``; books one conversion per element.

        Shape-agnostic: any leading axes (batch, stacked MC samples)
        pass through unchanged, each element booking one conversion —
        so a batched (T·N, cols) call costs exactly T sequential
        (N, cols) calls.
        """
        values = np.asarray(values, dtype=np.float64)
        codes = np.rint((np.clip(values, self.lo, self.hi) - self.lo)
                        / self._step)
        self.ledger.add("adc_conversion", values.size)
        return self.lo + codes * self._step

    def quantization_rmse(self, values: np.ndarray) -> float:
        """RMS quantization error on a sample batch (no ledger booking)."""
        values = np.asarray(values, dtype=np.float64)
        codes = np.rint((np.clip(values, self.lo, self.hi) - self.lo)
                        / self._step)
        quantized = self.lo + codes * self._step
        return float(np.sqrt(np.mean((quantized - values) ** 2)))


class PopcountADC(ADC):
    """ADC with reference levels aligned to integer MAC counts.

    In an XNOR/popcount crossbar the column current takes discrete
    values (one step per matching row), so the natural flash/SAR
    reference ladder sits *on* those integer steps.  With enough bits
    every count gets its own code (exact readout); with fewer bits
    adjacent counts share codes (quantization), the step growing as
    ``ceil((2·rows) / (2^bits − 1))`` counts per code.
    """

    def __init__(self, bits: int, rows: int,
                 ledger: Optional[OpLedger] = None):
        super().__init__(bits=bits, lo=-float(rows), hi=float(rows),
                         ledger=ledger)
        span = 2 * rows
        self.step = max(1, int(np.ceil(span / (self.n_codes - 1))))

    def convert(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        codes = np.rint(np.clip(values, self.lo, self.hi) / self.step)
        self.ledger.add("adc_conversion", values.size)
        return codes * self.step


class SenseAmplifier:
    """1-bit comparator: output = value > reference.

    Models both the MTJ state readout in the SpinDrop module ("the
    MTJ's state was read using a sense amplifier to verify the
    occurrence of the switch") and analog sign activations.
    """

    def __init__(self, reference: float = 0.0, offset_sigma: float = 0.0,
                 rng: Optional[np.random.Generator] = None,
                 ledger: Optional[OpLedger] = None):
        self.reference = reference
        self.offset_sigma = offset_sigma
        self.rng = rng or np.random.default_rng()
        self.ledger = ledger if ledger is not None else OpLedger()

    def compare(self, values: np.ndarray) -> np.ndarray:
        """Binary readout (+1 / −1) with optional input-referred offset."""
        values = np.asarray(values, dtype=np.float64)
        ref = self.reference
        if self.offset_sigma > 0.0:
            ref = ref + self.rng.normal(0.0, self.offset_sigma, size=values.shape)
        self.ledger.add("sa_read", values.size)
        return np.where(values > ref, 1.0, -1.0)
