"""Deployment-graph optimizations.

Real CIM compilers fold adjacent digital stages so the periphery does
less work per inference.  Implemented passes:

* :func:`fold_norm_into_scale` — a FrozenNorm (standard order)
  directly following a DigitalScale collapses into a single affine
  stage: ``((x·s)−µ)/σ·γ+β = x·(sγ/σ) + (β−µγ/σ)``.  Halves the
  digital MAC count of every scale+norm pair (e.g. the Fig.-2
  Scale-Dropout pipeline) without changing any output, *provided* the
  scale multiplier is deterministic — stochastic stages (a live
  scale-dropout binding) are left untouched so Bayesian behaviour is
  preserved.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cim.layers import CimLayer, CimNetwork, DigitalScale, FrozenNorm
from repro.cim.ledger import OpLedger


class FoldedAffine(CimLayer):
    """A single digital affine stage: ``y = x · a + b``."""

    def __init__(self, a: np.ndarray, b: np.ndarray, spatial: bool,
                 ledger: OpLedger):
        super().__init__(ledger)
        self.a = np.asarray(a, dtype=np.float64)
        self.b = np.asarray(b, dtype=np.float64)
        self.spatial = spatial

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.ledger.add("digital_mac", x.size)
        if self.spatial:
            return x * self.a.reshape(1, -1, 1, 1) \
                + self.b.reshape(1, -1, 1, 1)
        return x * self.a + self.b


def _can_fold(scale: DigitalScale, norm: FrozenNorm) -> bool:
    """Folding is valid only for deterministic, standard-order pairs."""
    if norm.inverted:
        return False
    if not np.isscalar(scale.multiplier) or scale.multiplier != 1.0:
        return False
    if norm.gamma_multiplier != 1.0 or norm.beta_multiplier != 1.0:
        return False
    return True


def fold_norm_into_scale(network: CimNetwork,
                         bound_stages: Optional[set] = None) -> int:
    """Fold DigitalScale→FrozenNorm pairs in place; returns fold count.

    ``bound_stages`` lists stages driven by a Bayesian wrapper (their
    multipliers change per pass) — those are never folded.
    """
    bound = bound_stages or set()
    stages: List[CimLayer] = network.stages
    folded = 0
    i = 0
    while i < len(stages) - 1:
        scale, norm = stages[i], stages[i + 1]
        if (isinstance(scale, DigitalScale) and isinstance(norm, FrozenNorm)
                and id(scale) not in bound and id(norm) not in bound
                and _can_fold(scale, norm)):
            gamma = norm.gamma if norm.gamma is not None \
                else np.ones_like(norm.mean)
            beta = norm.beta if norm.beta is not None \
                else np.zeros_like(norm.mean)
            a = scale.scale * gamma / norm.std
            b = beta - norm.mean * gamma / norm.std
            stages[i:i + 2] = [FoldedAffine(a, b, scale.spatial,
                                            network.ledger)]
            folded += 1
            continue
        i += 1
    return folded
