"""Experiment A1 — ablations over the design choices DESIGN.md calls out.

* RNG-count scaling versus model width for every dropout flavour
  (the Sec. II-D scalability argument in numbers).
* Quantization error / accuracy versus cell bit-precision (the
  SpinBayes design-time exploration).
* Robustness of each Bayesian method versus stuck-at defect rate
  (key takeaway #8: inherent robustness / self-healing).
* STE clip-width ablation for binary training.
* Mapping strategy ① vs ② crossbar utilization across kernel shapes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from repro import nn
from repro.bayesian import (
    BayesianCim,
    make_affine_mlp,
    make_binary_mlp,
    make_scaledrop_mlp,
    make_spindrop_mlp,
    mc_predict,
)
from repro.cim import CimConfig, ConvShape, MappingStrategy, plan_conv_mapping
from repro.data import batches
from repro.devices import DefectModel, DefectRates
from repro.energy import mlp_spec, method_rng_bits
from repro.experiments.common import (
    TrainConfig,
    digits_dataset,
    mc_accuracy,
    train_classifier,
)
from repro.tensor import Tensor, functional as F


# ----------------------------------------------------------------------
# RNG-count scaling
# ----------------------------------------------------------------------
def rng_scaling(widths: Tuple[int, ...] = (64, 128, 256, 512, 1024),
                in_features: int = 256, n_classes: int = 10
                ) -> Dict[str, List[int]]:
    """Dropout-module count versus hidden width, per method.

    Shows the scalability wall of MC-Dropout / DropConnect versus the
    constant-per-layer cost of Scale/Affine dropout (Sec. III intro).
    """
    out: Dict[str, List[int]] = {m: [] for m in (
        "spindrop", "mc_dropconnect", "spatial", "scaledrop", "affine")}
    for width in widths:
        spec = mlp_spec(in_features, (width, width // 2), n_classes)
        for method in out:
            out[method].append(method_rng_bits(spec, method))
    return out


# ----------------------------------------------------------------------
# Defect robustness
# ----------------------------------------------------------------------
@dataclasses.dataclass
class DefectPoint:
    method: str
    fault_rate: float
    accuracy: float


def defect_robustness(fast: bool = True, seed: int = 0,
                      fault_rates: Tuple[float, ...] = (0.0, 0.02, 0.05, 0.1)
                      ) -> List[DefectPoint]:
    """Deployed accuracy versus stuck-at rate for three methods.

    Expected shape (key takeaway #8): Bayesian methods degrade more
    gracefully than the deterministic baseline, and the affine
    (self-healing) model degrades least.
    """
    config = TrainConfig.preset(fast)
    data = digits_dataset(n_samples=1500 if fast else 4000, seed=seed)
    hidden = (128, 64) if fast else (256, 128)
    n_eval = 200 if fast else 600
    x_eval, y_eval = data.x_test[:n_eval], data.y_test[:n_eval]

    models = {
        "deterministic": train_classifier(
            make_binary_mlp(data.n_features, hidden, data.n_classes,
                            seed=seed), data, config),
        "spindrop": train_classifier(
            make_spindrop_mlp(data.n_features, hidden, data.n_classes,
                              p=0.1, seed=seed), data, config),
        "affine": train_classifier(
            make_affine_mlp(data.n_features, hidden, data.n_classes,
                            p=0.15, seed=seed), data, config),
    }

    points: List[DefectPoint] = []
    for rate in fault_rates:
        rates = DefectRates(stuck_at_p=rate / 2, stuck_at_ap=rate / 2)
        for name, model in models.items():
            cim_config = CimConfig(
                defects=DefectModel(rates,
                                    rng=np.random.default_rng(seed + 13))
                if rate > 0 else None,
                seed=seed + 17)
            deployed = BayesianCim(model, cim_config)
            if name == "deterministic":
                logits = deployed.deterministic_forward(x_eval)
                acc = float((logits.argmax(-1) == y_eval).mean())
            else:
                acc = mc_accuracy(
                    deployed.mc_forward(x_eval, config.mc_samples), y_eval)
            points.append(DefectPoint(name, rate, acc))
    return points


# ----------------------------------------------------------------------
# STE clip ablation
# ----------------------------------------------------------------------
def ste_clip_ablation(clips: Tuple[float, ...] = (0.05, 0.25, 1.0),
                      seed: int = 0, epochs: int = 6) -> Dict[float, float]:
    """Training accuracy versus the STE pass-through window width.

    Note: with Kaiming-scale latent weights (|w| ≈ 0.15 at init) and
    short budgets, windows ≥ 0.5 never bind and results coincide; the
    grid therefore reaches down to 0.05 where the clip actively
    constrains training.
    """
    data = digits_dataset(n_samples=1200, seed=seed)
    results: Dict[float, float] = {}
    for clip in clips:
        rng = np.random.default_rng(seed)

        class _ClippedBinary(nn.BinaryLinear):
            def binary_weight(self):
                return F.sign_ste(self.weight, clip=clip)

        model = nn.Sequential(
            _ClippedBinary(data.n_features, 128, rng=rng,
                           binarize_input=True),
            nn.BatchNorm1d(128),
            nn.SignActivation(),
            _ClippedBinary(128, data.n_classes, rng=rng),
        )
        opt = nn.Adam(model.parameters(), lr=1e-2)
        for epoch in range(epochs):
            model.train()
            for xb, yb in batches(data.x_train, data.y_train, 64,
                                  seed=epoch):
                loss = nn.cross_entropy(model(Tensor(xb)), yb)
                opt.zero_grad()
                loss.backward()
                opt.step()
                nn.clip_latent_weights(model, bound=clip)
        model.eval()
        from repro.tensor import no_grad
        with no_grad():
            logits = model(Tensor(data.x_test)).data
        results[clip] = float((logits.argmax(-1) == data.y_test).mean())
    return results


# ----------------------------------------------------------------------
# Mapping utilization sweep
# ----------------------------------------------------------------------
def mapping_utilization(kernel_sizes: Tuple[int, ...] = (3, 5, 7),
                        channels: Tuple[Tuple[int, int], ...] = (
                            (8, 16), (16, 32), (32, 64))
                        ) -> List[dict]:
    """Crossbar utilization of both strategies across layer shapes."""
    rows = []
    for k in kernel_sizes:
        for c_in, c_out in channels:
            shape = ConvShape(c_in, c_out, k)
            p1 = plan_conv_mapping(shape, MappingStrategy.UNFOLDED_COLUMN)
            p2 = plan_conv_mapping(shape, MappingStrategy.TILED_KXK)
            rows.append({
                "kernel": k, "c_in": c_in, "c_out": c_out,
                "s1_crossbars": p1.n_crossbars,
                "s1_utilization": p1.utilization,
                "s2_crossbars": p2.n_crossbars,
                "s2_utilization": p2.utilization,
            })
    return rows


# ----------------------------------------------------------------------
# Operating-temperature sweep (device model, key takeaway #4)
# ----------------------------------------------------------------------
def temperature_sweep(temperatures: Tuple[float, ...] = (250.0, 300.0,
                                                         350.0, 400.0),
                      target_p: float = 0.25, n_modules: int = 256,
                      seed: int = 0) -> List[dict]:
    """Realized dropout probability versus operating temperature.

    Higher temperature lowers the thermal stability factor Δ, so a
    module programmed at 300 K fires more often when hot — the drift
    the Scale-Dropout Gaussian-p model absorbs and the calibration
    loop can trim out.
    """
    from repro.devices import (
        DeviceVariability,
        SpintronicRNG,
        VariabilityParams,
    )

    rows = []
    for temp in temperatures:
        var = DeviceVariability(
            VariabilityParams(sigma_delta=0.03), temperature=temp,
            rng=np.random.default_rng(seed))
        bank = SpintronicRNG(n_modules, p=target_p,
                             variability=var,
                             rng=np.random.default_rng(seed))
        raw_mu, raw_sigma = bank.fitted_probability()
        calibrated = bank.calibrate(n_samples=4000, tolerance=0.02)
        rows.append({
            "temperature_k": temp,
            "target_p": target_p,
            "raw_p_mu": raw_mu,
            "raw_p_sigma": raw_sigma,
            "calibrated_p": calibrated,
        })
    return rows


# ----------------------------------------------------------------------
# ADC-resolution and wire-resistance sweeps (CIM non-idealities)
# ----------------------------------------------------------------------
def adc_resolution_sweep(fast: bool = True, seed: int = 0,
                         bit_grid: Tuple[int, ...] = (2, 4, 6, 10)
                         ) -> Dict[int, float]:
    """Deployed accuracy versus ADC bit width (quantization error)."""
    from repro.bayesian import BayesianCim, make_spindrop_mlp, mc_predict
    from repro.cim import CimConfig

    config = TrainConfig.preset(fast)
    data = digits_dataset(n_samples=1200 if fast else 4000, seed=seed)
    model = train_classifier(
        make_spindrop_mlp(data.n_features, (64,) if fast else (256, 128),
                          data.n_classes, p=0.15, seed=seed),
        data, config)
    n_eval = 150 if fast else 500
    x, y = data.x_test[:n_eval], data.y_test[:n_eval]
    out: Dict[int, float] = {}
    for bits in bit_grid:
        deployed = BayesianCim(model, CimConfig(adc_bits=bits, seed=seed))
        result = deployed.mc_forward(x, config.mc_samples)
        out[bits] = mc_accuracy(result, y)
    return out


def wire_resistance_sweep(fast: bool = True, seed: int = 0,
                          resistances: Tuple[float, ...] = (0.0, 1.0, 5.0)
                          ) -> Dict[float, float]:
    """Deployed accuracy versus wordline wire resistance (IR drop)."""
    from repro.bayesian import BayesianCim, make_spindrop_mlp
    from repro.cim import CimConfig

    config = TrainConfig.preset(fast)
    data = digits_dataset(n_samples=1200 if fast else 4000, seed=seed)
    model = train_classifier(
        make_spindrop_mlp(data.n_features, (64,) if fast else (256, 128),
                          data.n_classes, p=0.15, seed=seed),
        data, config)
    n_eval = 150 if fast else 500
    x, y = data.x_test[:n_eval], data.y_test[:n_eval]
    out: Dict[float, float] = {}
    for r_wire in resistances:
        deployed = BayesianCim(model, CimConfig(wire_resistance=r_wire,
                                                seed=seed))
        result = deployed.mc_forward(x, config.mc_samples)
        out[r_wire] = mc_accuracy(result, y)
    return out


# ----------------------------------------------------------------------
# Retention aging (deployment-lifetime reliability)
# ----------------------------------------------------------------------
def retention_aging(fast: bool = True, seed: int = 0,
                    ages_years: Tuple[float, ...] = (0.0, 1.0, 5.0, 10.0),
                    storage_delta: float = 50.0,
                    delta_sigma: float = 0.1) -> List[dict]:
    """Deployed accuracy versus time since programming.

    Ages every crossbar cell with the Néel–Brown retention law using
    per-device Δ realizations.  Storage cells are engineered for
    retention (Δ ≈ 50–60, unlike the Δ ≈ 40 write-friendly RNG
    devices), so the nominal device never flips on a deployment
    timescale — the failures come from the low-Δ manufacturing tail,
    which is exactly the in-field reliability concern of key
    takeaway #4.
    """
    from repro.bayesian import make_spindrop_mlp, mc_predict
    from repro.devices import DeviceVariability, VariabilityParams
    from repro.tensor import Tensor, no_grad

    config = TrainConfig.preset(fast)
    data = digits_dataset(n_samples=1200 if fast else 4000, seed=seed)
    model = train_classifier(
        make_spindrop_mlp(data.n_features, (64,) if fast else (256, 128),
                          data.n_classes, p=0.15, seed=seed),
        data, config)
    n_eval = 200 if fast else 600
    x, y = data.x_test[:n_eval], data.y_test[:n_eval]

    variability = DeviceVariability(
        VariabilityParams(sigma_delta=delta_sigma),
        rng=np.random.default_rng(seed + 3))
    defects = DefectModel(rng=np.random.default_rng(seed + 5))

    # Snapshot trained binary weights; age copies per time point.
    binary_layers = [m for m in model.modules()
                     if isinstance(m, nn.BinaryLinear)]
    originals = [np.where(m.weight.data >= 0, 1.0, -1.0)
                 for m in binary_layers]
    deltas = [variability.sample_deltas(storage_delta, w.shape)
              for w in originals]

    results = []
    year = 365.25 * 24 * 3600
    for age in ages_years:
        for layer, w0, d in zip(binary_layers, originals, deltas):
            aged = defects.age_binary_weights(w0, age * year, deltas=d)
            layer.weight.data = aged.copy()
        result = mc_predict(model, x, n_samples=config.mc_samples)
        flipped = float(np.mean([
            (np.where(layer.weight.data >= 0, 1, -1) != w0).mean()
            for layer, w0 in zip(binary_layers, originals)]))
        results.append({
            "age_years": age,
            "accuracy": mc_accuracy(result, y),
            "flipped_fraction": flipped,
        })
    # Restore the un-aged weights.
    for layer, w0 in zip(binary_layers, originals):
        layer.weight.data = w0.copy()
    return results


# ----------------------------------------------------------------------
# Calibration quality across methods (uncertainty-quality claim)
# ----------------------------------------------------------------------
def calibration_comparison(fast: bool = True, seed: int = 0
                           ) -> Dict[str, Dict[str, float]]:
    """ECE and NLL of Bayesian methods vs the deterministic baseline.

    The paper claims uncertainty-estimation improvements (SpinBayes:
    "up to 20.16%"); proper scoring rules on the predictive
    distribution are the measurable form of that claim.
    """
    from repro.bayesian import (
        deterministic_predict,
        make_scaledrop_mlp,
        make_spindrop_mlp,
        make_subset_vi_mlp,
        mc_predict,
    )
    from repro.bayesian.spindrop import make_binary_mlp
    from repro.uncertainty import expected_calibration_error, nll

    config = TrainConfig.preset(fast)
    data = digits_dataset(n_samples=1500 if fast else 4000, seed=seed)
    hidden = (128, 64) if fast else (256, 128)

    out: Dict[str, Dict[str, float]] = {}

    det = train_classifier(
        make_binary_mlp(data.n_features, hidden, data.n_classes,
                        seed=seed), data, config)
    probs = deterministic_predict(det, data.x_test)
    out["deterministic"] = {
        "accuracy": float((probs.argmax(-1) == data.y_test).mean()),
        "ece": expected_calibration_error(probs, data.y_test),
        "nll": nll(probs, data.y_test),
    }

    factories = {
        "spindrop": lambda: make_spindrop_mlp(
            data.n_features, hidden, data.n_classes, p=0.15, seed=seed),
        "scaledrop": lambda: make_scaledrop_mlp(
            data.n_features, hidden, data.n_classes, seed=seed),
        "subset_vi": lambda: make_subset_vi_mlp(
            data.n_features, hidden, data.n_classes, seed=seed),
    }
    for name, factory in factories.items():
        model = train_classifier(
            factory(), data, config,
            loss_kind="elbo" if name == "subset_vi" else "ce",
            scale_reg_strength=1e-3 if name == "scaledrop" else 0.0)
        result = mc_predict(model, data.x_test,
                            n_samples=config.mc_samples)
        out[name] = {
            "accuracy": mc_accuracy(result, data.y_test),
            "ece": expected_calibration_error(result.probs, data.y_test),
            "nll": nll(result.probs, data.y_test),
        }
    return out


# ----------------------------------------------------------------------
# Scalar vs vector dropout masks (ScaleDrop design choice)
# ----------------------------------------------------------------------
def scalar_vs_vector_masks(fast: bool = True, seed: int = 0
                           ) -> Dict[str, float]:
    """Accuracy of scalar-mask ScaleDrop vs element-wise SpinDrop.

    The RNG-count difference is orders of magnitude (1 vs #neurons per
    layer); the claim is that predictive performance stays comparable.
    """
    config = TrainConfig.preset(fast)
    data = digits_dataset(n_samples=1500 if fast else 4000, seed=seed)
    hidden = (128, 64) if fast else (256, 128)
    scale = train_classifier(
        make_scaledrop_mlp(data.n_features, hidden, data.n_classes,
                           seed=seed),
        data, config, scale_reg_strength=1e-3)
    spin = train_classifier(
        make_spindrop_mlp(data.n_features, hidden, data.n_classes,
                          p=0.1, seed=seed),
        data, config)
    return {
        "scalar_mask_accuracy": mc_accuracy(
            mc_predict(scale, data.x_test, n_samples=config.mc_samples),
            data.y_test),
        "vector_mask_accuracy": mc_accuracy(
            mc_predict(spin, data.x_test, n_samples=config.mc_samples),
            data.y_test),
    }
