"""Experiment harnesses regenerating every table, figure and claim.

One module per paper artifact: ``table1`` (Table I), ``figures``
(Figs. 1–3), ``claims`` (the per-method text claims C1–C6),
``ablations`` (design-choice ablations A1).  The mapping from paper
artifact to module is indexed in DESIGN.md §3.
"""

from repro.experiments import ablations, claims, common, extended, figures, table1

__all__ = ["common", "table1", "figures", "claims", "ablations", "extended"]
