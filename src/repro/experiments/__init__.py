"""Experiment harnesses regenerating every table, figure and claim.

One module per paper artifact: ``table1`` (Table I), ``figures``
(Figs. 1–3), ``claims`` (the per-method text claims C1–C6),
``ablations`` (design-choice ablations A1).  The mapping from paper
artifact to module is indexed in DESIGN.md §3.

On top of the artifact harnesses sits the scenario-sweep subsystem
(``docs/experiments.md``): ``sweeps`` expands a declarative
model-family × corruption × defect × variability × OOD matrix into
seeded runs through the batched engines, ``results_store`` persists
per-run metrics, ``report`` renders them, and ``trend`` holds the
shared CI trend-gate logic (speed via ``scripts/bench_ci.py``,
accuracy/calibration via the ``quality-gate`` job).
"""

from repro.experiments import (
    ablations,
    claims,
    common,
    extended,
    figures,
    report,
    results_store,
    sweeps,
    table1,
    trend,
)
from repro.experiments.report import (
    format_metrics_markdown,
    format_metrics_report,
)
from repro.experiments.results_store import ResultsStore, RunSummary, load_results
from repro.experiments.sweeps import (
    MATRICES,
    PRESETS,
    MatrixBlock,
    MatrixSpec,
    Scenario,
    SweepPreset,
    expand_matrix,
    run_scenario,
    run_sweep,
)

__all__ = [
    "common", "table1", "figures", "claims", "ablations", "extended",
    "sweeps", "results_store", "report", "trend",
    "Scenario", "MatrixBlock", "MatrixSpec", "SweepPreset",
    "MATRICES", "PRESETS", "expand_matrix", "run_scenario", "run_sweep",
    "ResultsStore", "RunSummary", "load_results",
    "format_metrics_report", "format_metrics_markdown",
]
