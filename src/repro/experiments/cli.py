"""The ``repro-experiments`` console command.

Subcommands::

    repro-experiments sweep --matrix smoke --store results_store
        Expand a scenario matrix, run it through the batched engines,
        persist per-run metrics to a results store, print the report.
        ``--bank FILE`` additionally writes the banked-baseline JSON
        (``BENCH_scenarios.json``) the CI quality gate compares
        against.

    repro-experiments report --store results_store
        Render the metrics report from an existing results store.

    repro-experiments compare --matrix smoke --baseline BENCH_scenarios.json
        The CI quality gate: run the matrix fresh, diff every banked
        scenario's accuracy/NLL/ECE/OOD-AUROC/energy against the
        baseline, exit 1 on any regression beyond tolerance.

    repro-experiments full
        The legacy full experiment suite behind EXPERIMENTS.md
        (~10–20 min; also ``python scripts/run_full_experiments.py``).

Unknown subcommands (and a missing subcommand) print usage and exit
with status 2.  When ``GITHUB_STEP_SUMMARY`` is set, ``sweep``,
``report`` and ``compare`` append a Markdown metrics table to the job
summary.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.experiments.report import (
    format_metrics_markdown,
    format_metrics_report,
    markdown_table,
    summaries_from_metrics,
)
from repro.experiments.results_store import ResultsStore
from repro.experiments.sweeps import MATRICES, ModelCache, run_sweep
from repro.experiments.trend import (
    QUALITY_METRICS,
    compare_quality,
    quality_summary_rows,
    resolve_specs,
)


def _github_summary(markdown: str) -> None:
    """Append Markdown to the GitHub Actions job summary (if any)."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if path:
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(markdown + "\n")


def _write_bank(path: str, matrix: str, scenarios: dict) -> None:
    """Write the banked-baseline document for the quality gate."""
    document = {
        "matrix": matrix,
        "preset": MATRICES[matrix].preset,
        "tolerances": {spec.name: spec.tolerance
                       for spec in QUALITY_METRICS},
        "scenarios": scenarios,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")


def cmd_sweep(args: argparse.Namespace) -> int:
    store = ResultsStore(args.store) if args.store else None
    cache = ModelCache(cache_dir=args.cache_dir, log=print)
    records = run_sweep(args.matrix, store=store, markers=args.markers,
                        progress=print, cache=cache)
    scenarios = {r["scenario"]["name"]: r["metrics"] for r in records}
    summaries = summaries_from_metrics(scenarios)
    title = f"Scenario sweep ({args.matrix} matrix)"
    print(format_metrics_report(summaries, title=title))
    stats = cache.stats()
    cache_line = (f"model cache: {stats['hits']} hit(s), "
                  f"{stats['misses']} miss(es), "
                  f"{stats['invalidations']} invalidation(s)")
    print(cache_line)
    _github_summary(format_metrics_markdown(summaries, title=title)
                    + f"\n{cache_line}\n")
    if args.bank:
        _write_bank(args.bank, args.matrix, scenarios)
        print(f"banked baseline written to {args.bank}")
    if store is not None:
        print(f"results store: {store.root} "
              f"({len(records)} run(s) appended)")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    store = ResultsStore(args.store)
    summaries = store.summarize()
    if not summaries:
        print(f"no runs recorded under {store.root}")
        return 1
    title = f"Scenario sweep report ({store.root})"
    print(format_metrics_report(summaries, title=title))
    _github_summary(format_metrics_markdown(summaries, title=title))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)
    matrix = args.matrix or baseline.get("matrix", "smoke")
    store = ResultsStore(args.store) if args.store else None
    records = run_sweep(matrix, store=store, progress=print,
                        cache_dir=args.cache_dir)
    fresh = {r["scenario"]["name"]: r["metrics"] for r in records}

    specs = resolve_specs(baseline.get("tolerances"))
    failures = compare_quality(fresh, baseline, specs=specs)
    rows = quality_summary_rows(fresh, baseline)
    verdict = ("❌ quality gate FAILED" if failures
               else "✅ quality gate passed")
    _github_summary(
        f"### Quality gate ({matrix} matrix vs {args.baseline})\n\n"
        + markdown_table(["scenario", "accuracy", "ECE", "OOD-AUROC"],
                         rows)
        + f"\n{verdict}\n")
    for message in failures:
        print(f"FAIL: {message}")
    if failures:
        print(f"quality gate: {len(failures)} regression(s) vs "
              f"{args.baseline}")
        return 1
    print(f"PASS: no accuracy/calibration regression vs {args.baseline}")
    return 0


def cmd_full(args: argparse.Namespace) -> int:
    from repro.experiments.full_suite import run_full

    run_full(cache_dir=args.cache_dir)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Scenario sweeps, metrics reports and the full "
                    "experiment suite.")
    sub = parser.add_subparsers(dest="command", metavar="command")

    sweep = sub.add_parser(
        "sweep", help="run a scenario matrix through the batched engines")
    sweep.add_argument("--matrix", default="smoke",
                       choices=sorted(MATRICES),
                       help="scenario matrix to expand (default: smoke)")
    sweep.add_argument("--store", default=None,
                       help="results-store directory to append runs to")
    sweep.add_argument("--markers", nargs="*", default=None,
                       help="keep only scenarios carrying one of these "
                            "markers")
    sweep.add_argument("--bank", default=None, metavar="FILE",
                       help="also write the banked-baseline JSON for "
                            "the CI quality gate")
    sweep.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persist trained models here; repeated "
                            "sweeps restore them and skip retraining")
    sweep.set_defaults(func=cmd_sweep)

    report = sub.add_parser(
        "report", help="render the metrics report from a results store")
    report.add_argument("--store", required=True,
                        help="results-store directory to read")
    report.set_defaults(func=cmd_report)

    compare = sub.add_parser(
        "compare", help="CI quality gate: fresh sweep vs banked baseline")
    compare.add_argument("--baseline", default="BENCH_scenarios.json",
                         help="banked baseline JSON (default: "
                              "BENCH_scenarios.json)")
    compare.add_argument("--matrix", default=None,
                         choices=sorted(MATRICES),
                         help="matrix to run (default: the baseline's)")
    compare.add_argument("--store", default=None,
                         help="optionally persist the fresh runs here")
    compare.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="trained-model cache directory (see "
                              "sweep --cache-dir)")
    compare.set_defaults(func=cmd_compare)

    full = sub.add_parser(
        "full", help="the legacy full experiment suite (~10-20 min)")
    full.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="trained-model cache for the sweep section")
    full.set_defaults(func=cmd_full)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "func", None) is None:
        # No subcommand: print usage and exit 2 (argparse already does
        # this for unknown subcommands).
        parser.print_usage(sys.stderr)
        parser.exit(2, f"{parser.prog}: error: a subcommand is required "
                       f"(choose from sweep, report, compare, full)\n")
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
