"""Extended experiments: the §III-B.2 evaluation scopes.

The SpinBayes section evaluates on "classification tasks with up to
100 classes and semantic segmentation tasks".  These harnesses
regenerate both scopes on the synthetic substitutes:

* :func:`run_seg_experiment` — Bayesian encoder–decoder on the scene
  dataset: mIoU, pixel accuracy, per-pixel uncertainty, and behaviour
  on scenes containing unknown (OOD) objects.
* :func:`run_100class_experiment` — subset-VI MLP + SpinBayes
  deployment on the 100-class paired-glyph task.
* :func:`latency_area_table` — the latency/area companion to Table I
  (key takeaway #3: energy *and switching speed*; conclusion:
  "greatly reduce hardware footprint").
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

import numpy as np

from repro import nn
from repro.bayesian import (
    SpinBayesNetwork,
    make_bayesian_segmenter,
    make_subset_vi_mlp,
    mc_predict,
    mc_segment,
    pixel_maps,
    segmentation_loss,
)
from repro.cim import CimConfig
from repro.data import (
    N_SEG_CLASSES,
    batches,
    segmentation_scenes,
    synth_pairs,
    train_test_split,
)
from repro.energy import (
    lenet_like,
    method_area,
    method_latency_per_image,
)
from repro.experiments.common import TrainConfig, mc_accuracy
from repro.tensor import Tensor
from repro.uncertainty import mean_iou


# ----------------------------------------------------------------------
# Semantic segmentation
# ----------------------------------------------------------------------
@dataclasses.dataclass
class SegmentationResult:
    miou: float
    pixel_accuracy: float
    object_accuracy_id: float       # object pixels, known classes
    object_accuracy_ood: float      # object pixels, unknown objects
    object_entropy_id: float
    object_entropy_ood: float


def run_seg_experiment(fast: bool = True, seed: int = 0
                       ) -> SegmentationResult:
    """Train the Bayesian segmenter; evaluate ID and OOD scenes."""
    n_train = 400 if fast else 1500
    epochs = 6 if fast else 25
    mc_samples = 8 if fast else 20
    x_train, m_train = segmentation_scenes(n_train, seed=seed)
    x_test, m_test = segmentation_scenes(150 if fast else 400,
                                         seed=seed + 1)
    x_ood, m_ood = segmentation_scenes(150 if fast else 400,
                                       seed=seed + 2, ood_objects=True)

    model = make_bayesian_segmenter(width=8, p=0.15, seed=seed)
    opt = nn.Adam(model.parameters(), lr=1e-2)
    sched = nn.CosineLR(opt, epochs)
    for epoch in range(epochs):
        model.train()
        for xb, yb in batches(x_train, m_train, 32, seed=epoch):
            loss = segmentation_loss(model(Tensor(xb)), yb)
            opt.zero_grad()
            loss.backward()
            opt.step()
            nn.clip_latent_weights(model)
        sched.step()

    # Evaluation runs through the pass-stacked segmentation engine
    # (mc_segment's default) — all T passes in one stacked forward,
    # bit-identical to the sequential loop.
    shape = (len(x_test), x_test.shape[2], x_test.shape[3])
    result = mc_segment(model, x_test, n_samples=mc_samples)
    pred, entropy = pixel_maps(result, shape)
    ood_shape = (len(x_ood), x_ood.shape[2], x_ood.shape[3])
    ood_result = mc_segment(model, x_ood, n_samples=mc_samples)
    ood_pred, ood_entropy = pixel_maps(ood_result, ood_shape)

    id_obj = m_test > 0
    ood_obj = m_ood > 0
    return SegmentationResult(
        miou=mean_iou(pred, m_test, N_SEG_CLASSES),
        pixel_accuracy=float((pred == m_test).mean()),
        object_accuracy_id=float((pred[id_obj] == m_test[id_obj]).mean()),
        object_accuracy_ood=float(
            (ood_pred[ood_obj] == m_ood[ood_obj]).mean()),
        object_entropy_id=float(entropy[id_obj].mean()),
        object_entropy_ood=float(ood_entropy[ood_obj].mean()),
    )


# ----------------------------------------------------------------------
# 100-class classification
# ----------------------------------------------------------------------
@dataclasses.dataclass
class HundredClassResult:
    teacher_accuracy: float
    spinbayes_accuracy: float
    top5_accuracy: float
    n_classes_seen: int


def run_100class_experiment(fast: bool = True, seed: int = 0
                            ) -> HundredClassResult:
    """Subset-VI on 100 classes, then SpinBayes deployment."""
    n = 4000 if fast else 10000
    x, y = synth_pairs(n, jitter=0.4, seed=seed)
    (xtr, ytr), (xte, yte) = train_test_split(x, y, 0.2, seed=seed + 1)
    config = TrainConfig(epochs=10 if fast else 30, lr=1e-2,
                         mc_samples=8 if fast else 20, seed=seed)

    model = make_subset_vi_mlp(x.shape[1], (256,) if fast else (512, 256),
                               100, seed=seed)
    from repro.experiments.common import Dataset, train_classifier
    data = Dataset(xtr, ytr, xte, yte, n_classes=100, image_size=16)
    train_classifier(model, data, config, loss_kind="elbo")

    teacher_result = mc_predict(model, xte, n_samples=config.mc_samples)
    teacher_acc = mc_accuracy(teacher_result, yte)

    net = SpinBayesNetwork.from_subset_vi(
        model, n_components=8, n_levels=16,
        config=CimConfig(seed=seed + 2), seed=seed + 2)
    n_eval = 400 if fast else 1000
    result = net.mc_forward(xte[:n_eval], n_samples=config.mc_samples)
    spin_acc = mc_accuracy(result, yte[:n_eval])
    top5 = np.argsort(-result.probs, axis=1)[:, :5]
    top5_acc = float(np.any(top5 == yte[:n_eval, None], axis=1).mean())

    return HundredClassResult(
        teacher_accuracy=teacher_acc,
        spinbayes_accuracy=spin_acc,
        top5_accuracy=top5_acc,
        n_classes_seen=int(len(np.unique(ytr))),
    )


# ----------------------------------------------------------------------
# Latency / area companion table
# ----------------------------------------------------------------------
def latency_area_table(methods=("deterministic", "spindrop", "spatial",
                                "scaledrop", "subset_vi", "spinbayes",
                                "mc_dropconnect")) -> List[Dict]:
    """Per-method latency and silicon area on the Table-I spec."""
    spec = lenet_like()
    rows = []
    for method in methods:
        latency, _ = method_latency_per_image(spec, method)
        area = method_area(spec, method)
        rows.append({
            "method": method,
            "latency_us": latency * 1e6,
            "area_mm2": area["total"] / 1e6,
            "module_area_um2": area["dropout_modules"],
        })
    return rows
