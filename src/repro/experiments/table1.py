"""Experiment T1 — regenerate Table I (method comparison).

Paper's Table I:

    Method                     Inference accuracy   Energy
    SpinDrop                   91.95 %              2.00 µJ/Image
    Spatial-SpinDrop           90.34 %              0.68 µJ/Image
    SpinScaleDropout           90.45 %              0.18 µJ/Image
    Bayesian Sub-Set Parameter 90.62 %              0.30 µJ/Image
    SpinBayes                  —                    0.26 µJ/Image

Our reproduction reports, per method:

* **accuracy (software MC)** — trained on SynthDigits, T-pass Monte
  Carlo (the substitution for the paper's MNIST-class task);
* **accuracy (deployed)** — the same model through the simulated CIM
  chain with device variability;
* **energy (paper-scale, analytic)** — the op-count energy model
  applied to a LeNet-style reference spec with T=25 MC passes, which
  regenerates the µJ/image scale and the method ordering;
* **energy (measured, simulated net)** — priced from the actual op
  ledger of the deployed small network.

Shape targets: accuracy ordering within ~2 % of each other with
SpinDrop slightly ahead; energy ordering SpinDrop ≫ Spatial >
Sub-Set ≈ SpinBayes > ScaleDrop.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

import numpy as np
from repro.bayesian import (
    BayesianCim,
    SpinBayesNetwork,
    make_scaledrop_mlp,
    make_spatial_spindrop_cnn,
    make_spindrop_mlp,
    make_subset_vi_mlp,
    mc_predict,
)
from repro.cim import CimConfig
from repro.devices import DeviceVariability, VariabilityParams
from repro.energy import (
    format_energy,
    lenet_like,
    method_energy_per_image,
    price_ledger,
    render_table,
)
from repro.experiments.common import (
    TrainConfig,
    digits_dataset,
    mc_accuracy,
    train_classifier,
)


@dataclasses.dataclass
class Table1Row:
    """One method's row in the reproduced Table I."""

    method: str
    family: str
    accuracy_software: float
    accuracy_deployed: float
    energy_paper_scale: float      # J/image, analytic LeNet-like spec
    energy_measured: float         # J/image, simulated small net


def _deploy_config(seed: int) -> CimConfig:
    variability = DeviceVariability(
        VariabilityParams(sigma_r=0.03, sigma_delta=0.03, sigma_read=0.01),
        rng=np.random.default_rng(seed))
    return CimConfig(variability=variability, adc_bits=6, seed=seed)


def _mlp_energy_measured(deployed: BayesianCim, x: np.ndarray,
                         mc_samples: int) -> float:
    deployed.ledger.reset()
    deployed.mc_forward(x, n_samples=mc_samples)
    joules, _ = price_ledger(deployed.ledger)
    return joules / (len(x) * 1.0)


def run_table1(fast: bool = True, seed: int = 0,
               include_spatial: bool = True) -> List[Table1Row]:
    """Train, deploy and price all five Table-I methods."""
    config = TrainConfig.preset(fast)
    data = digits_dataset(n_samples=1500 if fast else 4000, seed=seed)
    hidden = (128, 64) if fast else (256, 128)
    spec = lenet_like()
    n_eval = 200 if fast else 1000
    x_eval, y_eval = data.x_test[:n_eval], data.y_test[:n_eval]
    rows: List[Table1Row] = []

    # ------------------------------------------------------ SpinDrop
    model = make_spindrop_mlp(data.n_features, hidden, data.n_classes,
                              p=0.1, seed=seed)
    train_classifier(model, data, config)
    sw = mc_accuracy(mc_predict(model, data.x_test,
                                n_samples=config.mc_samples), data.y_test)
    deployed = BayesianCim(model, _deploy_config(seed))
    dep = mc_accuracy(deployed.mc_forward(x_eval, config.mc_samples), y_eval)
    e_measured = _mlp_energy_measured(deployed, x_eval, config.mc_samples)
    e_paper, _ = method_energy_per_image(spec, "spindrop")
    rows.append(Table1Row("SpinDrop", "Dropout Based", sw, dep,
                          e_paper, e_measured))

    # ----------------------------------------------- Spatial-SpinDrop
    if include_spatial:
        data_img = digits_dataset(n_samples=1000 if fast else 3000,
                                  seed=seed, flat=False)
        cnn_config = TrainConfig(epochs=4 if fast else 15, lr=1e-2,
                                 batch_size=64,
                                 mc_samples=config.mc_samples, seed=seed)
        cnn = make_spatial_spindrop_cnn(1, data_img.image_size,
                                        data_img.n_classes, p=0.15,
                                        widths=(8, 16), seed=seed)
        train_classifier(cnn, data_img, cnn_config)
        sw = mc_accuracy(mc_predict(cnn, data_img.x_test,
                                    n_samples=config.mc_samples),
                         data_img.y_test)
        deployed_cnn = BayesianCim(cnn, _deploy_config(seed + 1))
        n_cnn_eval = 100 if fast else 500
        dep = mc_accuracy(
            deployed_cnn.mc_forward(data_img.x_test[:n_cnn_eval],
                                    config.mc_samples),
            data_img.y_test[:n_cnn_eval])
        deployed_cnn.ledger.reset()
        deployed_cnn.mc_forward(data_img.x_test[:n_cnn_eval],
                                n_samples=config.mc_samples)
        joules, _ = price_ledger(deployed_cnn.ledger)
        e_measured = joules / n_cnn_eval
        e_paper, _ = method_energy_per_image(spec, "spatial")
        rows.append(Table1Row("Spatial-SpinDrop", "Dropout Based", sw, dep,
                              e_paper, e_measured))

    # ------------------------------------------------- SpinScaleDrop
    model = make_scaledrop_mlp(data.n_features, hidden, data.n_classes,
                               seed=seed)
    train_classifier(model, data, config, scale_reg_strength=1e-3)
    sw = mc_accuracy(mc_predict(model, data.x_test,
                                n_samples=config.mc_samples), data.y_test)
    deployed = BayesianCim(model, _deploy_config(seed + 2))
    dep = mc_accuracy(deployed.mc_forward(x_eval, config.mc_samples), y_eval)
    e_measured = _mlp_energy_measured(deployed, x_eval, config.mc_samples)
    e_paper, _ = method_energy_per_image(spec, "scaledrop")
    rows.append(Table1Row("SpinScaleDropout", "Dropout Based", sw, dep,
                          e_paper, e_measured))

    # -------------------------------------- Bayesian Sub-Set Parameter
    vi = make_subset_vi_mlp(data.n_features, hidden, data.n_classes,
                            seed=seed)
    train_classifier(vi, data, config, loss_kind="elbo")
    sw = mc_accuracy(mc_predict(vi, data.x_test,
                                n_samples=config.mc_samples), data.y_test)
    deployed = BayesianCim(vi, _deploy_config(seed + 3))
    dep = mc_accuracy(deployed.mc_forward(x_eval, config.mc_samples), y_eval)
    e_measured = _mlp_energy_measured(deployed, x_eval, config.mc_samples)
    e_paper, _ = method_energy_per_image(spec, "subset_vi")
    rows.append(Table1Row("Bayesian Sub-Set Parameter",
                          "Variational Inference Based", sw, dep,
                          e_paper, e_measured))

    # ---------------------------------------------------- SpinBayes
    spin = SpinBayesNetwork.from_subset_vi(
        vi, n_components=8, n_levels=16,
        config=_deploy_config(seed + 4), seed=seed + 4)
    # Batched engine: bit-for-bit the sequential mc_predict_fn loop,
    # one stacked evaluation instead of T stage walks.
    result = spin.mc_forward(x_eval, n_samples=config.mc_samples)
    dep = mc_accuracy(result, y_eval)
    spin.ledger.reset()
    spin.mc_forward(x_eval, n_samples=config.mc_samples)
    joules, _ = price_ledger(spin.ledger)
    e_measured = joules / len(x_eval)
    e_paper, _ = method_energy_per_image(spec, "spinbayes")
    rows.append(Table1Row("SpinBayes", "Variational Inference Based",
                          float("nan"), dep, e_paper, e_measured))

    return rows


PAPER_TABLE1: Dict[str, tuple] = {
    "SpinDrop": (91.95, 2.00e-6),
    "Spatial-SpinDrop": (90.34, 0.68e-6),
    "SpinScaleDropout": (90.45, 0.18e-6),
    "Bayesian Sub-Set Parameter": (90.62, 0.30e-6),
    "SpinBayes": (float("nan"), 0.26e-6),
}


def render_table1(rows: List[Table1Row]) -> str:
    """Side-by-side paper-vs-measured rendering."""
    table_rows = []
    for row in rows:
        paper_acc, paper_e = PAPER_TABLE1.get(
            row.method, (float("nan"), float("nan")))
        table_rows.append([
            row.method,
            f"{paper_acc:.2f}%" if paper_acc == paper_acc else "-",
            f"{row.accuracy_software * 100:.2f}%"
            if row.accuracy_software == row.accuracy_software else "-",
            f"{row.accuracy_deployed * 100:.2f}%",
            format_energy(paper_e),
            format_energy(row.energy_paper_scale),
            format_energy(row.energy_measured),
        ])
    return render_table(
        ["Method", "acc(paper)", "acc(sw)", "acc(CIM)",
         "E(paper)", "E(analytic)", "E(measured)"],
        table_rows, title="Table I — method comparison (reproduction)")


def main(fast: bool = True) -> None:
    rows = run_table1(fast=fast)
    print(render_table1(rows))


if __name__ == "__main__":
    main()
