"""Shared experiment harness: data, training loops, evaluation.

Every benchmark (Table I, Fig. 1–3, claims C1–C6, ablations A1) goes
through these helpers so that methods are compared under identical
data, training budget and Monte-Carlo settings.

Two presets exist: ``fast=True`` (benchmark-friendly: ~1 minute per
method on a laptop CPU) and ``fast=False`` (the settings used for the
EXPERIMENTS.md numbers).
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from repro import nn
from repro.bayesian import elbo_loss, scale_parameters
from repro.data import batches, synth_digits, train_test_split
from repro.tensor import Tensor


@dataclasses.dataclass(frozen=True)
class TrainConfig:
    """Training budget shared across methods in one experiment."""

    epochs: int = 25
    lr: float = 1e-2
    batch_size: int = 64
    mc_samples: int = 20
    seed: int = 0

    @classmethod
    def preset(cls, fast: bool) -> "TrainConfig":
        if fast:
            return cls(epochs=8, lr=1e-2, batch_size=64, mc_samples=8)
        return cls(epochs=25, lr=1e-2, batch_size=64, mc_samples=20)


@dataclasses.dataclass
class Dataset:
    """A train/test split plus metadata."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    n_classes: int
    image_size: int

    @property
    def n_features(self) -> int:
        return self.image_size * self.image_size


_DATA_CACHE: Dict[tuple, Dataset] = {}


def digits_dataset(n_samples: int = 4000, jitter: float = 0.6,
                   seed: int = 0, flat: bool = True,
                   size: int = 16) -> Dataset:
    """The standard SynthDigits split (cached per configuration)."""
    key = (n_samples, jitter, seed, flat, size)
    if key not in _DATA_CACHE:
        x, y = synth_digits(n_samples, size=size, jitter=jitter,
                            seed=seed, flat=flat)
        (xtr, ytr), (xte, yte) = train_test_split(x, y, 0.2, seed=seed + 1)
        _DATA_CACHE[key] = Dataset(xtr, ytr, xte, yte,
                                   n_classes=10, image_size=size)
    return _DATA_CACHE[key]


def train_classifier(model: nn.Module, data: Dataset,
                     config: TrainConfig,
                     loss_kind: str = "ce",
                     scale_reg_strength: float = 0.0) -> nn.Module:
    """Train a (possibly stochastic) classifier.

    ``loss_kind``: "ce" for cross-entropy, "elbo" for the subset-VI
    objective.  ``scale_reg_strength`` adds the SpinScaleDrop scale
    regularizer when non-zero.
    """
    opt = nn.Adam(model.parameters(), lr=config.lr)
    sched = nn.CosineLR(opt, config.epochs)
    n_train = len(data.x_train)
    for epoch in range(config.epochs):
        model.train()
        for xb, yb in batches(data.x_train, data.y_train,
                              config.batch_size, seed=config.seed + epoch):
            logits = model(Tensor(xb))
            if loss_kind == "elbo":
                loss = elbo_loss(model, logits, yb, n_train=n_train)
            else:
                loss = nn.cross_entropy(logits, yb)
            if scale_reg_strength > 0.0:
                scales = scale_parameters(model)
                if scales:
                    loss = loss + nn.scale_regularizer(
                        scales, strength=scale_reg_strength)
            opt.zero_grad()
            loss.backward()
            opt.step()
            nn.clip_latent_weights(model)
        sched.step()
    model.eval()
    return model


def train_regressor(model: nn.Module, x_train: np.ndarray,
                    y_train: np.ndarray, epochs: int = 30,
                    lr: float = 5e-3, batch_size: int = 64,
                    seed: int = 0) -> nn.Module:
    """Train a sequence regressor with MSE."""
    opt = nn.Adam(model.parameters(), lr=lr)
    for epoch in range(epochs):
        model.train()
        for xb, yb in batches(x_train, y_train, batch_size,
                              seed=seed + epoch):
            pred = model(Tensor(xb))
            loss = nn.mse(pred, yb)
            opt.zero_grad()
            loss.backward()
            opt.step()
    model.eval()
    return model


def mc_accuracy(result, labels: np.ndarray) -> float:
    """Accuracy of a :class:`PredictiveResult` against labels."""
    return float((result.predictions == np.asarray(labels)).mean())


def rmse(pred: np.ndarray, target: np.ndarray) -> float:
    return float(np.sqrt(np.mean((np.asarray(pred) - np.asarray(target)) ** 2)))
