"""Shared CI trend-gate logic: banked baseline vs fresh run.

Two consumers:

* ``scripts/bench_ci.py`` — speed trend: every engine speedup (and the
  serving throughput ratio) in the fresh benchmark record is diffed
  against the committed ``BENCH_mc_forward.json``; a regression beyond
  the relative tolerance fails CI (:func:`compare_bench_record`).
* the ``quality-gate`` CI job — accuracy/calibration trend: the fresh
  smoke-matrix sweep is diffed against the committed
  ``BENCH_scenarios.json``; an ECE / OOD-AUROC / accuracy / NLL
  regression beyond its per-metric tolerance fails CI
  (:func:`compare_quality`).

Both gates share one philosophy: entries present only in the fresh run
or only in the baseline are skipped — the comparison protects banked
results, it does not pin the record's schema.  A change can therefore
add scenarios or engines freely, but can never silently give back a
banked speedup or a banked calibration number.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple


@dataclasses.dataclass(frozen=True)
class MetricSpec:
    """Direction and tolerance for one gated quality metric.

    ``relative=False``: fail when the fresh value falls outside
    ``banked ± tolerance`` in the bad direction (absolute margin —
    right for bounded scores like accuracy, ECE, AUROC).
    ``relative=True``: fail when fresh/banked drifts more than
    ``tolerance`` in the bad direction (right for scale-free values
    like energy per image).
    """

    name: str
    higher_is_better: bool
    tolerance: float
    relative: bool = False


# Default quality gates.  ECE and OOD-AUROC are the headline paper
# claims (calibration under defects, shift detection); accuracy and
# NLL back them up; energy guards the ledger totals.  Sweeps are
# seeded end-to-end, so the margins only need to absorb cross-platform
# float jitter, not run-to-run noise.
QUALITY_METRICS: Tuple[MetricSpec, ...] = (
    MetricSpec("accuracy", higher_is_better=True, tolerance=0.03),
    MetricSpec("nll", higher_is_better=False, tolerance=0.15),
    MetricSpec("ece", higher_is_better=False, tolerance=0.02),
    MetricSpec("ood_auroc", higher_is_better=True, tolerance=0.03),
    MetricSpec("energy_j_per_image", higher_is_better=False,
               tolerance=0.20, relative=True),
)


def metric_regression(name: str, fresh: Optional[float],
                      banked: Optional[float],
                      spec: MetricSpec) -> Optional[str]:
    """Failure message if ``fresh`` regressed past ``banked``'s margin,
    else None.  Missing values on either side are skipped."""
    if fresh is None or banked is None:
        return None
    if spec.relative:
        if banked == 0.0:
            return None
        drift = fresh / banked - 1.0
        regressed = (drift < -spec.tolerance if spec.higher_is_better
                     else drift > spec.tolerance)
        if regressed:
            return (f"{name} regressed to {fresh:.4g} from banked "
                    f"{banked:.4g} (> {spec.tolerance:.0%} drift)")
        return None
    delta = fresh - banked
    regressed = (delta < -spec.tolerance if spec.higher_is_better
                 else delta > spec.tolerance)
    if regressed:
        return (f"{name} regressed to {fresh:.4f} from banked "
                f"{banked:.4f} (margin {spec.tolerance:g})")
    return None


def resolve_specs(tolerances: Optional[Dict[str, float]] = None,
                  specs: Sequence[MetricSpec] = QUALITY_METRICS
                  ) -> List[MetricSpec]:
    """Apply per-metric tolerance overrides (e.g. from the bank file)."""
    if not tolerances:
        return list(specs)
    return [dataclasses.replace(s, tolerance=tolerances[s.name])
            if s.name in tolerances else s for s in specs]


def compare_quality(fresh: Dict[str, Dict[str, Optional[float]]],
                    baseline: dict,
                    specs: Optional[Sequence[MetricSpec]] = None,
                    printer: Callable[[str], None] = print) -> List[str]:
    """Quality trend gate: fresh sweep metrics vs a banked baseline.

    ``fresh`` maps scenario name → metrics; ``baseline`` is the bank
    document (``{"scenarios": {...}, "tolerances": {...}}`` — the
    ``tolerances`` block overrides the default margins).  Returns the
    list of failure messages (empty = gate passes).
    """
    if specs is None:
        specs = resolve_specs(baseline.get("tolerances"))
    failures: List[str] = []
    for name, banked_metrics in sorted(baseline.get("scenarios", {}).items()):
        fresh_metrics = fresh.get(name)
        if fresh_metrics is None:
            continue        # scenario removed/renamed: not gated
        deltas = []
        for spec in specs:
            fresh_v = fresh_metrics.get(spec.name)
            banked_v = banked_metrics.get(spec.name)
            if fresh_v is not None and banked_v is not None:
                deltas.append(f"{spec.name} {fresh_v:.4g} "
                              f"(banked {banked_v:.4g})")
            message = metric_regression(spec.name, fresh_v, banked_v, spec)
            if message is not None:
                failures.append(f"{name}: {message}")
        printer(f"[compare] {name}: " + ", ".join(deltas))
    return failures


def quality_summary_rows(fresh: Dict[str, Dict[str, Optional[float]]],
                         baseline: dict,
                         metrics: Sequence[str] = ("accuracy", "ece",
                                                   "ood_auroc")
                         ) -> List[List[str]]:
    """banked-vs-fresh rows for the quality gate's job-summary table."""
    rows = []
    for name, banked_metrics in sorted(baseline.get("scenarios", {}).items()):
        fresh_metrics = fresh.get(name)
        if fresh_metrics is None:
            continue
        row = [name]
        for metric in metrics:
            fresh_v = fresh_metrics.get(metric)
            banked_v = banked_metrics.get(metric)
            fresh_s = "-" if fresh_v is None else f"{fresh_v:.3f}"
            banked_s = "-" if banked_v is None else f"{banked_v:.3f}"
            row.append(f"{fresh_s} (banked {banked_s})")
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Speed trend (the bench_ci --compare gate)
# ----------------------------------------------------------------------
def compare_bench_record(record: dict, baseline: dict, tolerance: float,
                         printer: Callable[[str], None] = print
                         ) -> List[str]:
    """Trend gate: fail on a >tolerance regression of any entry that
    exists in both the fresh record and the committed baseline.

    New entries (a gate added by the same change) and removed ones are
    skipped — the comparison protects banked speedups, it does not pin
    the record's schema.  Returns the list of failure messages.
    """
    failures: List[str] = []
    floor = 1.0 - tolerance
    base_engines = baseline.get("engines", {})
    for name, entry in record["engines"].items():
        base = base_engines.get(name)
        if base is None or "speedup" not in base:
            continue
        if "speedup" not in entry:
            # Hardware-skipped on this host (e.g. the procpool gate
            # below its core floor): there is no fresh measurement to
            # regress, and the banked number stays protected in the
            # committed baseline.
            printer(f"[compare] {name}: skipped on this host "
                    f"({entry.get('skipped', 'no measurement')})")
            continue
        ratio = entry["speedup"] / base["speedup"]
        printer(f"[compare] {name}: {entry['speedup']:.2f}x vs baseline "
                f"{base['speedup']:.2f}x ({ratio:.2f} of banked)")
        if ratio < floor:
            failures.append(
                f"{name} speedup regressed to {entry['speedup']:.2f}x "
                f"from banked {base['speedup']:.2f}x "
                f"(> {tolerance:.0%} regression)")
    base_serving = baseline.get("serving", {})
    if "throughput_ratio" in base_serving:
        fresh = record["serving"]["throughput_ratio"]
        banked = base_serving["throughput_ratio"]
        ratio = fresh / banked
        printer(f"[compare] serving: {fresh:.2f}x vs baseline "
                f"{banked:.2f}x ({ratio:.2f} of banked)")
        if ratio < floor:
            failures.append(
                f"serving throughput ratio regressed to {fresh:.2f}x "
                f"from banked {banked:.2f}x (> {tolerance:.0%} regression)")
    base_degradation = base_serving.get("degradation", {})
    fresh_degradation = record.get("serving", {}).get("degradation", {})
    if "recovery_ratio" in base_degradation \
            and "recovery_ratio" in fresh_degradation:
        # target_p95 / post-burst p95: >= 1 means the fleet recovered
        # under its SLO; shrinking toward 0 means recovery got slower.
        fresh = fresh_degradation["recovery_ratio"]
        banked = base_degradation["recovery_ratio"]
        ratio = fresh / banked
        printer(f"[compare] serving.degradation: {fresh:.2f}x vs baseline "
                f"{banked:.2f}x ({ratio:.2f} of banked)")
        if ratio < floor:
            failures.append(
                f"serving.degradation recovery ratio regressed to "
                f"{fresh:.2f}x from banked {banked:.2f}x "
                f"(> {tolerance:.0%} regression)")
    return failures


def bench_summary_rows(record: dict, baseline: dict) -> List[List[str]]:
    """banked-vs-fresh speedup rows for the bench job-summary table."""
    rows = []
    base_engines = baseline.get("engines", {})
    for name, entry in record["engines"].items():
        base = base_engines.get(name, {})
        banked = base.get("speedup")
        fresh = entry.get("speedup")
        banked_s = f"{banked:.2f}x" if banked is not None else "-"
        fresh_s = f"{fresh:.2f}x" if fresh is not None else "skipped"
        ratio_s = (f"{fresh / banked:.2f}"
                   if banked and fresh is not None else "-")
        rows.append([name, banked_s, fresh_s, ratio_s])
    fresh_serving = record.get("serving", {}).get("throughput_ratio")
    banked_serving = baseline.get("serving", {}).get("throughput_ratio")
    if fresh_serving is not None:
        banked_s = (f"{banked_serving:.2f}x"
                    if banked_serving is not None else "-")
        ratio_s = (f"{fresh_serving / banked_serving:.2f}"
                   if banked_serving else "-")
        rows.append(["serving", banked_s, f"{fresh_serving:.2f}x", ratio_s])
    fresh_rec = record.get("serving", {}) \
        .get("degradation", {}).get("recovery_ratio")
    banked_rec = baseline.get("serving", {}) \
        .get("degradation", {}).get("recovery_ratio")
    if fresh_rec is not None:
        banked_s = f"{banked_rec:.2f}x" if banked_rec is not None else "-"
        ratio_s = f"{fresh_rec / banked_rec:.2f}" if banked_rec else "-"
        rows.append(["serving.degradation", banked_s,
                     f"{fresh_rec:.2f}x", ratio_s])
    return rows
