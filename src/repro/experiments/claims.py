"""Experiments C1–C6 — the paper's per-method headline claims.

Each ``run_*`` function trains/evaluates what the corresponding claim
needs and returns a structured result; the benchmarks assert the
claim's *shape* (orderings, bands) and EXPERIMENTS.md records
paper-vs-measured values.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from repro import nn
from repro.bayesian import (
    BayesianCim,
    SpinBayesNetwork,
    conventional_vi_footprint_bits,
    count_dropout_modules,
    make_affine_mlp,
    make_affine_regressor,
    make_binary_mlp,
    make_scaledrop_mlp,
    make_spindrop_mlp,
    make_subset_vi_mlp,
    mc_predict,
    memory_footprint_bits,
    deterministic_predict,
    set_mc_mode,
)
from repro.cim import CimConfig, compile_to_cim
from repro.data import corrupt, forecast_dataset, ood
from repro.devices import DefectModel, DefectRates
from repro.energy import (
    dropout_subsystem_energy,
    lenet_like,
    method_energy_per_image,
    method_rng_bits,
)
from repro.experiments.common import (
    TrainConfig,
    digits_dataset,
    mc_accuracy,
    rmse,
    train_classifier,
    train_regressor,
)
from repro.tensor import Tensor, no_grad
from repro.uncertainty import detect, nll


# ----------------------------------------------------------------------
# C1 — SpinDrop: OOD detection, accuracy gain, corruption robustness
# ----------------------------------------------------------------------
@dataclasses.dataclass
class SpinDropClaims:
    accuracy_bayesian: float
    accuracy_deterministic: float
    ood_detection_letters: float
    ood_detection_noise: float
    ood_auroc_letters: float
    corrupted_bayesian: Dict[str, float]
    corrupted_deterministic: Dict[str, float]

    @property
    def accuracy_gain(self) -> float:
        return self.accuracy_bayesian - self.accuracy_deterministic

    @property
    def mean_corruption_gain(self) -> float:
        gains = [self.corrupted_bayesian[k] - self.corrupted_deterministic[k]
                 for k in self.corrupted_bayesian]
        return float(np.mean(gains))


def run_c1_spindrop(fast: bool = True, seed: int = 0) -> SpinDropClaims:
    """SpinDrop vs deterministic binary NN (Sec. III-A.1 claims).

    Uses the low-jitter dataset variant: the paper's OOD protocol
    assumes a model near its accuracy ceiling (MNIST-like regime), and
    detection rates collapse when the in-distribution entropy tail is
    fat (see EXPERIMENTS.md).
    """
    config = TrainConfig.preset(fast)
    data = digits_dataset(n_samples=1500 if fast else 4000, jitter=0.4,
                          seed=seed)
    hidden = (128, 64) if fast else (256, 128)

    bayes = make_spindrop_mlp(data.n_features, hidden, data.n_classes,
                              p=0.2, seed=seed)
    train_classifier(bayes, data, config)
    det = make_binary_mlp(data.n_features, hidden, data.n_classes, seed=seed)
    train_classifier(det, data, config)

    result = mc_predict(bayes, data.x_test, n_samples=config.mc_samples)
    det_probs = deterministic_predict(det, data.x_test)
    acc_bayes = mc_accuracy(result, data.y_test)
    acc_det = float((det_probs.argmax(-1) == data.y_test).mean())

    # OOD detection via predictive entropy at 95 % ID keep rate.
    id_scores = result.predictive_entropy
    n_ood = 300 if fast else 1000
    letters = ood.letters(n_ood, size=data.image_size, seed=seed + 7)
    noise = ood.uniform_noise(n_ood, data.n_features, seed=seed + 8)
    letters_result = mc_predict(bayes, letters, n_samples=config.mc_samples)
    noise_result = mc_predict(bayes, noise, n_samples=config.mc_samples)
    det_letters = detect(id_scores, letters_result.predictive_entropy)
    det_noise = detect(id_scores, noise_result.predictive_entropy)

    # Corruption robustness (severity 3) for both models.
    rng = np.random.default_rng(seed + 9)
    corrupted_b: Dict[str, float] = {}
    corrupted_d: Dict[str, float] = {}
    names = ("gaussian_noise", "salt_and_pepper", "occlusion")
    n_corr = 300 if fast else 800
    for name in names:
        x_corr = corrupt(data.x_test[:n_corr], name, severity=3, rng=rng)
        y_corr = data.y_test[:n_corr]
        rb = mc_predict(bayes, x_corr, n_samples=config.mc_samples)
        corrupted_b[name] = mc_accuracy(rb, y_corr)
        pd = deterministic_predict(det, x_corr)
        corrupted_d[name] = float((pd.argmax(-1) == y_corr).mean())

    return SpinDropClaims(
        accuracy_bayesian=acc_bayes,
        accuracy_deterministic=acc_det,
        ood_detection_letters=det_letters.detection_rate,
        ood_detection_noise=det_noise.detection_rate,
        ood_auroc_letters=det_letters.auroc,
        corrupted_bayesian=corrupted_b,
        corrupted_deterministic=corrupted_d,
    )


# ----------------------------------------------------------------------
# C2 — Spatial-SpinDrop: module & energy reductions
# ----------------------------------------------------------------------
@dataclasses.dataclass
class SpatialClaims:
    spindrop_modules: int
    spatial_modules: int
    dropout_energy_ratio: float    # SpinDrop / Spatial (dropout subsystem)
    total_energy_ratio: float      # SpinDrop / Spatial (whole inference)

    @property
    def module_reduction(self) -> float:
        return self.spindrop_modules / max(self.spatial_modules, 1)


def run_c2_spatial(seed: int = 0) -> SpatialClaims:
    """Module-count and energy ratios on the paper-scale reference CNN.

    Pure op-count arithmetic — no training needed; the ratios are
    structural (paper: 9× modules, 94.11× dropout energy, 2.94× total
    vs SpinDrop).
    """
    spec = lenet_like()
    spindrop_modules = method_rng_bits(spec, "spindrop")
    spatial_modules = method_rng_bits(spec, "spatial")
    e_drop_spin = dropout_subsystem_energy(spec, "spindrop")
    e_drop_spatial = dropout_subsystem_energy(spec, "spatial")
    e_spin, _ = method_energy_per_image(spec, "spindrop")
    e_spatial, _ = method_energy_per_image(spec, "spatial")
    return SpatialClaims(
        spindrop_modules=spindrop_modules,
        spatial_modules=spatial_modules,
        dropout_energy_ratio=e_drop_spin / e_drop_spatial,
        total_energy_ratio=e_spin / e_spatial,
    )


# ----------------------------------------------------------------------
# C3 — SpinScaleDrop: 1 RNG/layer, >100× dropout-energy saving
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ScaleDropClaims:
    accuracy_scaledrop: float
    accuracy_spindrop: float
    rng_modules_scaledrop: int
    rng_modules_spindrop: int
    dropout_energy_saving: float   # SpinDrop dropout E / ScaleDrop dropout E
    stochastic_p_mu: float
    stochastic_p_sigma: float


def run_c3_scaledrop(fast: bool = True, seed: int = 0) -> ScaleDropClaims:
    config = TrainConfig.preset(fast)
    data = digits_dataset(n_samples=1500 if fast else 4000, seed=seed)
    hidden = (128, 64) if fast else (256, 128)

    scale_model = make_scaledrop_mlp(data.n_features, hidden,
                                     data.n_classes, seed=seed)
    train_classifier(scale_model, data, config, scale_reg_strength=1e-3)
    spin_model = make_spindrop_mlp(data.n_features, hidden, data.n_classes,
                                   p=0.1, seed=seed)
    train_classifier(spin_model, data, config)

    acc_scale = mc_accuracy(
        mc_predict(scale_model, data.x_test, n_samples=config.mc_samples),
        data.y_test)
    acc_spin = mc_accuracy(
        mc_predict(spin_model, data.x_test, n_samples=config.mc_samples),
        data.y_test)

    spec = lenet_like()
    e_spin = dropout_subsystem_energy(spec, "spindrop")
    e_scale = dropout_subsystem_energy(spec, "scaledrop")

    # Device-variability-fitted dropout probability (Gaussian model).
    from repro.devices import (
        DeviceVariability,
        MTJParams,
        effective_dropout_probabilities,
        fit_gaussian,
    )
    probs = effective_dropout_probabilities(
        0.2, MTJParams(),
        DeviceVariability(rng=np.random.default_rng(seed)), 256)
    mu, sigma = fit_gaussian(probs)

    return ScaleDropClaims(
        accuracy_scaledrop=acc_scale,
        accuracy_spindrop=acc_spin,
        rng_modules_scaledrop=count_dropout_modules(scale_model),
        rng_modules_spindrop=count_dropout_modules(spin_model),
        dropout_energy_saving=e_spin / e_scale,
        stochastic_p_mu=mu,
        stochastic_p_sigma=sigma,
    )


# ----------------------------------------------------------------------
# C4 — Inverted normalization + affine dropout: self-healing & RMSE
# ----------------------------------------------------------------------
@dataclasses.dataclass
class AffineClaims:
    clean_affine: float
    clean_baseline: float
    faulty_affine: float           # accuracy under CIM defects
    faulty_baseline: float
    ood_detection_noise: float
    ood_detection_rotation: float
    rmse_affine: float
    rmse_baseline: float

    @property
    def fault_recovery(self) -> float:
        """Accuracy advantage under faults (the self-healing headline)."""
        return self.faulty_affine - self.faulty_baseline

    @property
    def rmse_reduction(self) -> float:
        return 1.0 - self.rmse_affine / self.rmse_baseline


def run_c4_affine(fast: bool = True, seed: int = 0) -> AffineClaims:
    config = TrainConfig.preset(fast)
    data = digits_dataset(n_samples=1500 if fast else 4000, jitter=0.4,
                          seed=seed)
    hidden = (128, 64) if fast else (256, 128)

    affine = make_affine_mlp(data.n_features, hidden, data.n_classes,
                             p=0.15, seed=seed)
    train_classifier(affine, data, config)
    baseline = make_binary_mlp(data.n_features, hidden, data.n_classes,
                               seed=seed)
    train_classifier(baseline, data, config)

    n_eval = 200 if fast else 600
    x_eval, y_eval = data.x_test[:n_eval], data.y_test[:n_eval]

    result = mc_predict(affine, data.x_test, n_samples=config.mc_samples)
    clean_affine = mc_accuracy(result, data.y_test)
    clean_base = float(
        (deterministic_predict(baseline, data.x_test).argmax(-1)
         == data.y_test).mean())

    # Fault injection: deploy both to CIM with aggressive stuck-at
    # defects; the affine model keeps sampling (self-healing MC mode).
    rates = DefectRates(stuck_at_p=0.05, stuck_at_ap=0.05)
    def _faulty_config(s):
        return CimConfig(
            defects=DefectModel(rates, rng=np.random.default_rng(s)),
            seed=s)
    dep_affine = BayesianCim(affine, _faulty_config(seed + 1))
    faulty_affine = mc_accuracy(
        dep_affine.mc_forward(x_eval, config.mc_samples), y_eval)
    dep_base = compile_to_cim(baseline, _faulty_config(seed + 1))
    logits = dep_base.forward(x_eval)
    faulty_base = float((logits.argmax(-1) == y_eval).mean())

    # OOD detection: uniform noise vs random rotation.
    id_scores = result.predictive_entropy
    n_ood = 300 if fast else 1000
    noise = ood.uniform_noise(n_ood, data.n_features, seed=seed + 2)
    rotated = ood.random_rotation(data.x_test[:n_ood], seed=seed + 3)
    det_noise = detect(id_scores, mc_predict(
        affine, noise, n_samples=config.mc_samples).predictive_entropy)
    det_rot = detect(id_scores, mc_predict(
        affine, rotated, n_samples=config.mc_samples).predictive_entropy)

    # Time-series RMSE: GRU + affine dropout vs plain GRU.  Note:
    # this is the one claim our substitute does NOT reproduce — the
    # affine masks on a small GRU's final hidden state are too violent
    # a perturbation and the MC mean trails the plain baseline (see
    # EXPERIMENTS.md C4 for the analysis).  We keep p low here to
    # bound the damage and record the measured ratio honestly.
    (xtr, ytr), (xte, yte) = forecast_dataset(
        n_points=600 if fast else 2000, seed=seed + 4, noise=0.08)
    epochs = 8 if fast else 30
    reg_affine = make_affine_regressor(1, hidden_size=16 if fast else 32,
                                       p=0.05, seed=seed)
    train_regressor(reg_affine, xtr, ytr, epochs=epochs, seed=seed)
    reg_base = nn.SequenceRegressor(1, hidden_size=16 if fast else 32,
                                    cell="gru",
                                    rng=np.random.default_rng(seed))
    train_regressor(reg_base, xtr, ytr, epochs=epochs, seed=seed)

    set_mc_mode(reg_affine, True)
    with no_grad():
        preds = np.mean([reg_affine(Tensor(xte)).data
                         for _ in range(config.mc_samples)], axis=0)
    set_mc_mode(reg_affine, False)
    rmse_affine = rmse(preds, yte)
    with no_grad():
        rmse_base = rmse(reg_base(Tensor(xte)).data, yte)

    return AffineClaims(
        clean_affine=clean_affine,
        clean_baseline=clean_base,
        faulty_affine=faulty_affine,
        faulty_baseline=faulty_base,
        ood_detection_noise=det_noise.detection_rate,
        ood_detection_rotation=det_rot.detection_rate,
        rmse_affine=rmse_affine,
        rmse_baseline=rmse_base,
    )


# ----------------------------------------------------------------------
# C5 — Subset-VI: NLL under shift, 70× power, 158.7× memory
# ----------------------------------------------------------------------
@dataclasses.dataclass
class SubsetViClaims:
    accuracy: float
    nll_in_distribution: float
    nll_shifted: float
    memory_ratio: float            # conventional VI / subset VI
    power_ratio: float             # conventional-VI-style energy / subset
    bayesian_fraction: float       # Bayesian params / total params


def run_c5_subset_vi(fast: bool = True, seed: int = 0) -> SubsetViClaims:
    from repro.bayesian import bayesian_parameter_count

    config = TrainConfig.preset(fast)
    data = digits_dataset(n_samples=1500 if fast else 4000, seed=seed)
    hidden = (128, 64) if fast else (256, 128)
    model = make_subset_vi_mlp(data.n_features, hidden, data.n_classes,
                               seed=seed)
    train_classifier(model, data, config, loss_kind="elbo")

    result = mc_predict(model, data.x_test, n_samples=config.mc_samples)
    accuracy = mc_accuracy(result, data.y_test)
    nll_id = nll(result.probs, data.y_test)

    shifted = ood.amplitude_shift(data.x_test)
    nll_shift = nll(mc_predict(model, shifted,
                               n_samples=config.mc_samples).probs,
                    data.y_test)

    mem_subset = memory_footprint_bits(model)
    mem_conventional = conventional_vi_footprint_bits(model)

    # Power: conventional VI needs a Gaussian draw per *weight* per
    # pass; subset VI per scale element.  Use the analytic spec.
    spec = lenet_like()
    e_subset, _ = method_energy_per_image(spec, "subset_vi")
    conventional_bits = spec.total_weights   # one draw per weight per pass
    from repro.energy import DEFAULT_ENERGY, forward_pass_ledger, price_ledger
    per_pass = forward_pass_ledger(spec)
    per_pass.add("rng_cycle", conventional_bits)
    e_conventional, _ = price_ledger(per_pass.scaled(25), DEFAULT_ENERGY)

    return SubsetViClaims(
        accuracy=accuracy,
        nll_in_distribution=nll_id,
        nll_shifted=nll_shift,
        memory_ratio=mem_conventional / mem_subset,
        power_ratio=e_conventional / e_subset,
        bayesian_fraction=bayesian_parameter_count(model)
        / model.num_parameters(),
    )


# ----------------------------------------------------------------------
# C6 — SpinBayes: teacher-fidelity accuracy + OOD detection
# ----------------------------------------------------------------------
@dataclasses.dataclass
class SpinBayesClaims:
    teacher_accuracy: float
    spinbayes_accuracy: float
    ood_detection_letters: float
    ood_detection_noise: float
    uncertainty_ratio: float   # mean OOD entropy / mean ID entropy

    @property
    def accuracy_delta(self) -> float:
        return self.spinbayes_accuracy - self.teacher_accuracy


def run_c6_spinbayes(fast: bool = True, seed: int = 0) -> SpinBayesClaims:
    config = TrainConfig.preset(fast)
    data = digits_dataset(n_samples=1500 if fast else 4000, jitter=0.4,
                          seed=seed)
    hidden = (128, 64) if fast else (256, 128)
    teacher = make_subset_vi_mlp(data.n_features, hidden, data.n_classes,
                                 seed=seed)
    train_classifier(teacher, data, config, loss_kind="elbo")

    n_eval = 300 if fast else 1000
    x_eval, y_eval = data.x_test[:n_eval], data.y_test[:n_eval]
    teacher_result = mc_predict(teacher, x_eval,
                                n_samples=config.mc_samples)

    net = SpinBayesNetwork.from_subset_vi(
        teacher, n_components=8, n_levels=16,
        config=CimConfig(seed=seed + 1), seed=seed + 1)
    result = net.mc_forward(x_eval, n_samples=config.mc_samples)

    id_scores = result.predictive_entropy
    letters = ood.letters(n_eval, size=data.image_size, seed=seed + 2)
    noise = ood.uniform_noise(n_eval, data.n_features, seed=seed + 3)
    letters_scores = net.mc_forward(
        letters, n_samples=config.mc_samples).predictive_entropy
    noise_scores = net.mc_forward(
        noise, n_samples=config.mc_samples).predictive_entropy

    return SpinBayesClaims(
        teacher_accuracy=mc_accuracy(teacher_result, y_eval),
        spinbayes_accuracy=mc_accuracy(result, y_eval),
        ood_detection_letters=detect(id_scores, letters_scores).detection_rate,
        ood_detection_noise=detect(id_scores, noise_scores).detection_rate,
        uncertainty_ratio=float(
            np.mean(np.concatenate([letters_scores, noise_scores]))
            / max(np.mean(id_scores), 1e-9)),
    )
