"""Experiments F1–F3 — regenerate the paper's figures.

The paper's figures are architecture diagrams; "regenerating" them
computationally means exercising the architecture each figure shows
and reporting its characteristic quantities:

* **F1 (Fig. 1)** — the two conv-mapping strategies: crossbar count,
  utilization, ADC conversions per output, dropout-module count and
  per-image energy under each strategy, plus functional equivalence of
  the two mappings.
* **F2 (Fig. 2)** — the Scale-Dropout inference architecture:
  component-wise energy breakdown (crossbar array, SA, ADC,
  accumulator/adder, scale SRAM, dropout module) for one deployed
  inference.
* **F3 (Fig. 3)** — the SpinBayes layer architecture: arbiter one-hot
  selection statistics, and accuracy / energy / quantization-error
  versus the number of crossbars N and the cell bit-precision.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

import numpy as np

from repro.bayesian import (
    BayesianCim,
    SpinBayesNetwork,
    make_scaledrop_mlp,
    make_subset_vi_mlp,
)
from repro.cim import (
    CimConfig,
    ConvShape,
    MappingStrategy,
    plan_conv_mapping,
)
from repro.devices import SpintronicArbiter
from repro.energy import (
    DEFAULT_ENERGY,
    price_ledger,
)
from repro.experiments.common import (
    TrainConfig,
    digits_dataset,
    mc_accuracy,
    train_classifier,
)


# ----------------------------------------------------------------------
# F1 — mapping strategies
# ----------------------------------------------------------------------
@dataclasses.dataclass
class MappingReport:
    """Characteristics of one conv layer under one mapping strategy."""

    strategy: str
    n_crossbars: int
    crossbar_shape: tuple
    utilization: float
    adc_per_output: int
    dropout_modules: int


def run_fig1_mapping(conv_shapes: List[ConvShape] | None = None,
                     max_rows: int = 128,
                     max_cols: int = 128) -> Dict[str, List[MappingReport]]:
    """Compare strategy ① and ② across representative conv layers."""
    if conv_shapes is None:
        conv_shapes = [
            ConvShape(8, 16, 3),      # small CNN block
            ConvShape(16, 32, 3),
            ConvShape(6, 16, 5),      # LeNet-style
        ]
    out: Dict[str, List[MappingReport]] = {"strategy1": [], "strategy2": []}
    for shape in conv_shapes:
        for strategy, key in ((MappingStrategy.UNFOLDED_COLUMN, "strategy1"),
                              (MappingStrategy.TILED_KXK, "strategy2")):
            plan = plan_conv_mapping(shape, strategy,
                                     max_rows=max_rows, max_cols=max_cols)
            out[key].append(MappingReport(
                strategy=key,
                n_crossbars=plan.n_crossbars,
                crossbar_shape=(plan.crossbar_rows, plan.crossbar_cols),
                utilization=plan.utilization,
                adc_per_output=plan.adc_conversions_per_output,
                dropout_modules=plan.dropout_modules,
            ))
    return out


def mapping_equivalence_check(seed: int = 0) -> float:
    """Max |output(strategy ①) − output(strategy ②)| on one conv layer.

    With ideal devices and a fine ADC both mappings must compute the
    same convolution; the residual should be at most ADC quantization.
    """
    from repro.cim.layers import CimConv2d
    from repro.cim.ledger import OpLedger

    rng = np.random.default_rng(seed)
    weights = rng.choice([-1.0, 1.0], size=(4, 3, 3, 3))
    x = rng.choice([-1.0, 1.0], size=(2, 3, 8, 8))

    outputs = []
    for strategy in (MappingStrategy.UNFOLDED_COLUMN,
                     MappingStrategy.TILED_KXK):
        config = CimConfig(adc_bits=10, mapping_strategy=strategy, seed=seed)
        layer = CimConv2d(weights, None, None, stride=1, padding=1,
                          config=config, ledger=OpLedger())
        outputs.append(layer.forward(x))
    return float(np.abs(outputs[0] - outputs[1]).max())


# ----------------------------------------------------------------------
# F2 — Scale-Dropout architecture breakdown
# ----------------------------------------------------------------------
def run_fig2_breakdown(fast: bool = True, seed: int = 0) -> Dict[str, float]:
    """Component-wise energy of one Scale-Dropout CIM inference.

    Returns the per-image energy (J) of each Fig.-2 component:
    crossbar array, sense amplifiers, ADC, scale SRAM, dropout module,
    digital periphery.
    """
    config = TrainConfig.preset(fast)
    data = digits_dataset(n_samples=1000 if fast else 4000, seed=seed)
    model = make_scaledrop_mlp(data.n_features, (64,) if fast else (256, 128),
                               data.n_classes, seed=seed)
    train_classifier(model, data, config, scale_reg_strength=1e-3)
    deployed = BayesianCim(model, CimConfig(seed=seed))
    n = 50 if fast else 200
    deployed.ledger.reset()
    deployed.mc_forward(data.x_test[:n], n_samples=config.mc_samples)
    _, breakdown = price_ledger(deployed.ledger, DEFAULT_ENERGY)
    grouped = {
        "crossbar_array": breakdown.get("crossbar_cell_access", 0.0)
        + breakdown.get("dac_drive", 0.0),
        "sense_amplifiers": breakdown.get("sa_read", 0.0),
        "adc": breakdown.get("adc_conversion", 0.0),
        "scale_sram": breakdown.get("sram_read", 0.0)
        + breakdown.get("sram_write", 0.0),
        "dropout_module": breakdown.get("rng_cycle", 0.0),
        "digital_periphery": breakdown.get("digital_mac", 0.0)
        + breakdown.get("digital_op", 0.0),
        "weight_programming": breakdown.get("mtj_write", 0.0),
    }
    return {k: v / n for k, v in grouped.items()}


# ----------------------------------------------------------------------
# F3 — SpinBayes architecture
# ----------------------------------------------------------------------
@dataclasses.dataclass
class SpinBayesPoint:
    """One (N components, n_levels) design point."""

    n_components: int
    n_levels: int
    accuracy: float
    energy_per_image: float
    quantization_error: float
    arbiter_uniformity: float     # max deviation from uniform selection


def run_fig3_spinbayes(fast: bool = True, seed: int = 0,
                       component_grid: tuple = (2, 4, 8),
                       level_grid: tuple = (4, 16)) -> List[SpinBayesPoint]:
    """Sweep arbiter fan-out N and cell precision for SpinBayes."""
    config = TrainConfig.preset(fast)
    data = digits_dataset(n_samples=1000 if fast else 4000, seed=seed)
    teacher = make_subset_vi_mlp(data.n_features,
                                 (64,) if fast else (256, 128),
                                 data.n_classes, seed=seed)
    train_classifier(teacher, data, config, loss_kind="elbo")

    n_eval = 100 if fast else 500
    x_eval = data.x_test[:n_eval]
    y_eval = data.y_test[:n_eval]
    points: List[SpinBayesPoint] = []
    for n_comp in component_grid:
        for n_levels in level_grid:
            net = SpinBayesNetwork.from_subset_vi(
                teacher, n_components=n_comp, n_levels=n_levels,
                config=CimConfig(seed=seed + n_comp), seed=seed + n_comp)
            net.ledger.reset()
            result = net.mc_forward(x_eval, n_samples=config.mc_samples)
            joules, _ = price_ledger(net.ledger)
            selections = [layer.arbiter.empirical_distribution(512)
                          for layer in net.mvm_layers()
                          if layer.arbiter is not None]
            if selections:
                uniformity = float(max(
                    np.abs(dist - 1.0 / len(dist)).max()
                    for dist in selections))
            else:
                uniformity = 0.0
            points.append(SpinBayesPoint(
                n_components=n_comp,
                n_levels=n_levels,
                accuracy=mc_accuracy(result, y_eval),
                energy_per_image=joules / n_eval,
                quantization_error=net.quantization_error(),
                arbiter_uniformity=uniformity,
            ))
    return points


def arbiter_statistics(n_choices: int = 8, n_draws: int = 8192,
                       seed: int = 0) -> Dict[str, float]:
    """Standalone Fig.-3 arbiter characterization."""
    arbiter = SpintronicArbiter(n_choices, rng=np.random.default_rng(seed))
    dist = arbiter.empirical_distribution(n_draws)
    return {
        "n_choices": float(n_choices),
        "cycles_per_selection": float(arbiter.cycles_per_selection),
        "max_abs_deviation": float(np.abs(dist - 1.0 / n_choices).max()),
        "entropy_bits": float(-(dist * np.log2(np.maximum(dist, 1e-12))).sum()),
    }
