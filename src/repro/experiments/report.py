"""Render scenario-sweep results as text and Markdown reports.

``format_metrics_report`` is the human-facing view printed by
``repro-experiments sweep`` / ``report``; the Markdown variant feeds
GitHub job summaries (the nightly sweep and the quality gate publish
it as the run's front page).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.energy import format_energy, render_table
from repro.experiments.results_store import RunSummary

COLUMNS = ("accuracy", "nll", "ece", "brier", "ood_auroc",
           "energy_j_per_image")
HEADERS = ("scenario", "runs", "acc", "NLL", "ECE", "Brier",
           "OOD-AUROC", "E/img")


def _format_metric(name: str, value: Optional[float]) -> str:
    if value is None:
        return "-"
    if name == "accuracy":
        return f"{value * 100:.1f}%"
    if name == "energy_j_per_image":
        return format_energy(value)
    return f"{value:.3f}"


def _rows(summaries: Iterable[RunSummary]) -> List[List[str]]:
    rows = []
    for summary in summaries:
        row = [summary.name, str(summary.n_runs)]
        row.extend(_format_metric(c, summary.metrics.get(c))
                   for c in COLUMNS)
        rows.append(row)
    return rows


def format_metrics_report(summaries: Sequence[RunSummary],
                          title: str = "Scenario sweep") -> str:
    """Fixed-width table of the latest metrics per scenario."""
    if not summaries:
        return f"{title}: no runs recorded"
    return render_table(list(HEADERS), _rows(summaries), title=title)


def markdown_table(headers: Sequence[str],
                   rows: Sequence[Sequence[str]]) -> str:
    """A GitHub-flavoured Markdown table."""
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join(" --- " for _ in headers) + "|"]
    lines.extend("| " + " | ".join(str(c) for c in row) + " |"
                 for row in rows)
    return "\n".join(lines) + "\n"


def format_metrics_markdown(summaries: Sequence[RunSummary],
                            title: str = "Scenario sweep") -> str:
    """Markdown rendering for GitHub job summaries."""
    if not summaries:
        return f"**{title}**: no runs recorded\n"
    return (f"### {title}\n\n"
            + markdown_table(HEADERS, _rows(summaries)))


def summaries_from_metrics(scenarios: Dict[str, Dict[str, Optional[float]]]
                           ) -> List[RunSummary]:
    """Adapt a {name: metrics} mapping (e.g. a banked baseline or a
    fresh in-memory sweep) to the report's RunSummary rows."""
    return [RunSummary(name=name, family=name.split("/", 1)[0],
                       metrics=metrics, n_runs=1, preset="")
            for name, metrics in scenarios.items()]
