"""Append-only results store for scenario-sweep runs.

Layout (one directory per store)::

    <root>/
      runs.jsonl     append-only, one canonical-JSON run record per line
                     (scenario key + seed + metrics; fully deterministic
                     — two identical sweeps append byte-identical lines)
      meta.jsonl     non-deterministic sidecar (wall-clock per run,
                     sweep timestamps) kept OUT of runs.jsonl so the
                     results file stays byte-reproducible
      summary.json   latest metrics per scenario plus matrix name —
                     the comparable artifact; ``BENCH_scenarios.json``
                     is this document plus gate tolerances

The store is append-only: re-running a sweep appends fresh records and
``summary.json`` resolves each scenario to its latest run (the
``n_runs`` count preserves the history depth).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time
from typing import Dict, List, Optional


@dataclasses.dataclass(frozen=True)
class RunSummary:
    """Latest metrics for one scenario plus how many runs it has."""

    name: str
    family: str
    metrics: Dict[str, Optional[float]]
    n_runs: int
    preset: str


def _canonical(record: dict) -> str:
    """Stable JSON encoding (sorted keys, no whitespace drift)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class ResultsStore:
    """Append-only JSON store under one directory."""

    def __init__(self, root) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.runs_path = self.root / "runs.jsonl"
        self.meta_path = self.root / "meta.jsonl"
        self.summary_path = self.root / "summary.json"

    # ------------------------------------------------------------ write
    def append(self, record: dict) -> None:
        """Append one run record (must carry scenario.name + metrics)."""
        if "scenario" not in record or "metrics" not in record:
            raise ValueError("run record needs 'scenario' and 'metrics'")
        with open(self.runs_path, "a", encoding="utf-8") as fh:
            fh.write(_canonical(record) + "\n")

    def append_meta(self, meta: dict) -> None:
        """Append timing/provenance info (never read for comparisons)."""
        stamped = dict(meta)
        stamped.setdefault("timestamp", time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()))
        with open(self.meta_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(stamped, sort_keys=True) + "\n")

    # ------------------------------------------------------------- read
    def runs(self) -> List[dict]:
        if not self.runs_path.exists():
            return []
        with open(self.runs_path, encoding="utf-8") as fh:
            return [json.loads(line) for line in fh if line.strip()]

    def summarize(self) -> List[RunSummary]:
        """Latest run per scenario, in first-seen order."""
        latest: Dict[str, dict] = {}
        counts: Dict[str, int] = {}
        order: List[str] = []
        for record in self.runs():
            name = record["scenario"]["name"]
            if name not in latest:
                order.append(name)
            latest[name] = record
            counts[name] = counts.get(name, 0) + 1
        return [RunSummary(name=name,
                           family=latest[name]["scenario"]["family"],
                           metrics=latest[name]["metrics"],
                           n_runs=counts[name],
                           preset=latest[name].get("preset", ""))
                for name in order]

    def scenario_metrics(self) -> Dict[str, Dict[str, Optional[float]]]:
        """{scenario name: latest metrics} — the compare-gate view."""
        return {s.name: s.metrics for s in self.summarize()}

    # ---------------------------------------------------------- summary
    def write_summary(self, matrix: str = "") -> dict:
        """Write (and return) summary.json from the current runs."""
        summaries = self.summarize()
        document = {
            "matrix": matrix,
            "n_runs": sum(s.n_runs for s in summaries),
            "scenarios": {s.name: s.metrics for s in summaries},
        }
        with open(self.summary_path, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return document


def load_results(root) -> List[dict]:
    """Load every run record from a store directory."""
    return ResultsStore(root).runs()
