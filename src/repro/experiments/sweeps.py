"""Declarative scenario-sweep engine over the batched MC engines.

The paper's central claim is robustness of Bayesian-CIM inference under
device defects, variability, corruption and distribution shift.  The
one-off table1/claims harnesses each probe a single slice of that
space; this module turns the slices into a declarative **scenario
matrix**

    model family × corruption × device defect × variability × OOD set

expanded into seeded, deterministic runs.  Every run evaluates one
trained model family through its batched engine
(:meth:`BayesianCim.mc_forward_batched`,
:meth:`SpinBayesNetwork.mc_forward_batched`, or
:func:`mc_segment_batched`) under the scenario's deployment and data
conditions and reports accuracy, NLL, ECE, Brier, OOD-AUROC and ledger
energy totals.

Determinism contract: a scenario's metrics depend only on its own key
(and the preset), never on which other scenarios ran before it.
Model training is cached per (family, preset) with a fixed training
seed; the deployment (crossbar programming, defect maps, variability
draws, MC masks) is rebuilt fresh for every scenario from the
scenario's stable seed — the SHA-256 of its canonical name — so
re-running any subset of the matrix reproduces identical numbers.
``repro-experiments sweep --matrix smoke`` twice writes byte-identical
``runs.jsonl`` files; the CI quality gate leans on this.

Matrix names: ``smoke`` (the PR-gate matrix banked in
``BENCH_scenarios.json``), ``full`` (the nightly matrix), ``tiny``
(micro settings for the test suite).  See ``docs/experiments.md``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.bayesian import (
    BayesianCim,
    SpinBayesNetwork,
    make_bayesian_segmenter,
    make_scaledrop_mlp,
    make_spindrop_mlp,
    make_subset_vi_mlp,
    mc_segment_batched,
    segmentation_loss,
)
from repro.cim import CimConfig
from repro.data import CORRUPTIONS, batches, corrupt, ood, segmentation_scenes
from repro.devices import (
    DefectModel,
    DefectRates,
    DeviceVariability,
    VariabilityParams,
)
from repro.energy import price_ledger
from repro.experiments.common import TrainConfig, digits_dataset, train_classifier
from repro.tensor import Tensor
from repro.uncertainty import (
    auroc,
    brier_score,
    expected_calibration_error,
    nll,
)

MLP_FAMILIES = ("spindrop", "scaledrop", "subset_vi", "spinbayes")
FAMILIES = MLP_FAMILIES + ("segmenter",)
OOD_SETS = ("letters", "uniform_noise", "random_rotation",
            "amplitude_shift", "ood_objects")
# Serving routes a scenario's engine calls can take: None = direct
# in-process calls; "procpool" = through a one-worker process-backed
# replica pool booted from a snapshot of the deployed engine (the
# worker continues the captured RNG streams, so metrics are identical
# to the in-process route by construction — what the axis verifies).
SERVING_MODES = (None, "procpool")


# ----------------------------------------------------------------------
# Scenario and matrix expansion
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Scenario:
    """One point of the sweep matrix (identity = canonical name).

    ``markers`` tag scenarios for filtering (``smoke``, ``full``,
    ``conv`` …) and are NOT part of the identity: two blocks producing
    the same scenario key are deduplicated with their markers merged.
    """

    family: str
    corruption: Optional[str] = None
    severity: int = 3
    defect_rate: float = 0.0
    variability: float = 0.0
    ood: Optional[str] = None
    serving: Optional[str] = None
    markers: Tuple[str, ...] = ()

    @property
    def name(self) -> str:
        """Canonical, order-stable scenario key.

        The ``serving`` axis only appears when set, so every scenario
        banked before the axis existed keeps its exact name (and the
        byte-reproducibility of ``BENCH_scenarios.json``).
        """
        base = self.base_name
        if self.serving is not None:
            base += f"/serving={self.serving}"
        return base

    @property
    def base_name(self) -> str:
        """The name without the serving route — the *physics* identity."""
        corr = f"{self.corruption}@{self.severity}" if self.corruption else "clean"
        ood_part = self.ood or "none"
        return (f"{self.family}/{corr}/d{self.defect_rate:g}"
                f"/v{self.variability:g}/{ood_part}")

    @property
    def seed(self) -> int:
        """Stable per-scenario seed (first 4 bytes of SHA-256 of the
        *base* name).  The serving route is deliberately excluded: it
        changes how engine calls are transported, never the deployment
        realization, so a scenario and its ``serving="procpool"`` twin
        deploy identical hardware and must report identical metrics —
        the differential the procpool matrix checks.
        """
        digest = hashlib.sha256(self.base_name.encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big")

    def key(self) -> dict:
        """JSON-ready identity record (markers sorted for stability).

        ``serving`` is emitted only when set — banked records predating
        the axis stay byte-identical.
        """
        out = {
            "name": self.name,
            "family": self.family,
            "corruption": self.corruption,
            "severity": self.severity,
            "defect_rate": self.defect_rate,
            "variability": self.variability,
            "ood": self.ood,
            "markers": sorted(self.markers),
        }
        if self.serving is not None:
            out["serving"] = self.serving
        return out


def _normalize(scenario: Scenario) -> Scenario:
    """Collapse fields that cannot affect the scenario's metrics.

    No corruption → severity 0; the software segmenter has no CIM
    deployment, so defect/variability collapse to 0 (axis values that
    only differ there become duplicates and are removed by dedup).
    The segmenter likewise collapses ``serving`` to None: its software
    model has no snapshot artifact to boot a worker from, so the
    default in-process route is the only one it can take.
    """
    severity = scenario.severity if scenario.corruption else 0
    defect, var = scenario.defect_rate, scenario.variability
    serving = scenario.serving
    if scenario.family == "segmenter":
        defect, var = 0.0, 0.0
        serving = None
    return dataclasses.replace(scenario, severity=severity,
                               defect_rate=float(defect),
                               variability=float(var), serving=serving)


def _validate(scenario: Scenario) -> None:
    if scenario.family not in FAMILIES:
        raise ValueError(f"unknown model family {scenario.family!r}; "
                         f"choose from {sorted(FAMILIES)}")
    if scenario.corruption is not None:
        if scenario.corruption not in CORRUPTIONS:
            raise ValueError(f"unknown corruption {scenario.corruption!r}")
        if not 1 <= scenario.severity <= 5:
            raise ValueError("corruption severity must be in 1..5")
    if scenario.ood is not None and scenario.ood not in OOD_SETS:
        raise ValueError(f"unknown OOD set {scenario.ood!r}; "
                         f"choose from {sorted(OOD_SETS)}")
    if scenario.serving not in SERVING_MODES:
        raise ValueError(f"unknown serving mode {scenario.serving!r}; "
                         f"choose from {sorted(m for m in SERVING_MODES if m)}")
    if scenario.family == "segmenter":
        if scenario.ood not in (None, "ood_objects"):
            raise ValueError("segmenter scenarios support only the "
                             "'ood_objects' OOD set")
    elif scenario.ood == "ood_objects":
        raise ValueError("'ood_objects' is a segmentation-only OOD set")


@dataclasses.dataclass(frozen=True)
class MatrixBlock:
    """One product block of axis values; a matrix is a union of blocks."""

    families: Tuple[str, ...]
    corruptions: Tuple[Optional[Tuple[str, int]], ...] = (None,)
    defect_rates: Tuple[float, ...] = (0.0,)
    variabilities: Tuple[float, ...] = (0.0,)
    ood_sets: Tuple[Optional[str], ...] = (None,)
    servings: Tuple[Optional[str], ...] = (None,)
    markers: Tuple[str, ...] = ()

    def scenarios(self) -> List[Scenario]:
        out = []
        for family, corr, defect, var, ood_set, serving in itertools.product(
                self.families, self.corruptions, self.defect_rates,
                self.variabilities, self.ood_sets, self.servings):
            name, severity = corr if corr is not None else (None, 0)
            out.append(Scenario(
                family=family, corruption=name, severity=severity,
                defect_rate=defect, variability=var, ood=ood_set,
                serving=serving, markers=self.markers))
        return out


@dataclasses.dataclass(frozen=True)
class MatrixSpec:
    """A named matrix: blocks to expand plus the run preset to use."""

    blocks: Tuple[MatrixBlock, ...]
    preset: str


def expand_matrix(spec: MatrixSpec,
                  markers: Optional[Sequence[str]] = None) -> List[Scenario]:
    """Expand a matrix spec into normalized, deduplicated scenarios.

    Dedup is by canonical name; duplicates merge their marker sets.
    ``markers`` (if given) keeps only scenarios carrying at least one
    of the requested markers.  Order is the blocks' expansion order
    (deterministic), first occurrence wins.
    """
    by_name: Dict[str, Scenario] = {}
    for block in spec.blocks:
        for scenario in block.scenarios():
            scenario = _normalize(scenario)
            _validate(scenario)
            prior = by_name.get(scenario.name)
            if prior is not None:
                merged = tuple(sorted(set(prior.markers) | set(scenario.markers)))
                by_name[scenario.name] = dataclasses.replace(
                    prior, markers=merged)
            else:
                by_name[scenario.name] = scenario
    scenarios = list(by_name.values())
    if markers:
        wanted = set(markers)
        scenarios = [s for s in scenarios if wanted & set(s.markers)]
    return scenarios


# ----------------------------------------------------------------------
# Presets (training budget + evaluation sizes per matrix tier)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class SweepPreset:
    """Per-tier budgets; the training seed is fixed so every scenario
    of a family stresses the SAME trained model."""

    name: str
    n_train: int
    hidden: Tuple[int, ...]
    epochs: int
    mc_samples: int
    n_eval: int
    n_ood: int
    spin_components: int
    spin_levels: int
    seg_scenes: int
    seg_epochs: int
    seg_eval_scenes: int
    seg_samples: int
    train_seed: int = 0


PRESETS: Dict[str, SweepPreset] = {
    "tiny": SweepPreset("tiny", n_train=300, hidden=(24,), epochs=2,
                        mc_samples=4, n_eval=64, n_ood=64,
                        spin_components=2, spin_levels=8,
                        seg_scenes=32, seg_epochs=1, seg_eval_scenes=16,
                        seg_samples=4),
    "smoke": SweepPreset("smoke", n_train=1200, hidden=(64, 32), epochs=8,
                         mc_samples=8, n_eval=200, n_ood=200,
                         spin_components=4, spin_levels=16,
                         seg_scenes=160, seg_epochs=3, seg_eval_scenes=48,
                         seg_samples=6),
    "full": SweepPreset("full", n_train=4000, hidden=(128, 64), epochs=20,
                        mc_samples=20, n_eval=500, n_ood=500,
                        spin_components=8, spin_levels=16,
                        seg_scenes=400, seg_epochs=8, seg_eval_scenes=120,
                        seg_samples=10),
}


MATRICES: Dict[str, MatrixSpec] = {
    # Test-suite fixture: two scenarios, micro budgets.
    "tiny": MatrixSpec(preset="tiny", blocks=(
        MatrixBlock(families=("spindrop",),
                    corruptions=(None, ("gaussian_noise", 3)),
                    ood_sets=("letters",),
                    markers=("tiny",)),
    )),
    # PR-gate matrix: banked in BENCH_scenarios.json, run on every PR.
    "smoke": MatrixSpec(preset="smoke", blocks=(
        MatrixBlock(families=("spindrop", "spinbayes"),
                    corruptions=(None, ("gaussian_noise", 3)),
                    defect_rates=(0.0, 0.02),
                    ood_sets=("letters",),
                    markers=("smoke",)),
        MatrixBlock(families=("spindrop",),
                    variabilities=(0.05,),
                    ood_sets=("uniform_noise",),
                    markers=("smoke",)),
        MatrixBlock(families=("segmenter",),
                    corruptions=(None, ("gaussian_noise", 3)),
                    ood_sets=("ood_objects",),
                    markers=("smoke", "segmentation")),
    )),
    # Serving-route differential: the same scenario evaluated directly
    # and through a one-worker process-backed replica pool (snapshot
    # boot + shared-memory transport); the two runs must agree bit for
    # bit on every metric.
    "procpool": MatrixSpec(preset="tiny", blocks=(
        MatrixBlock(families=("spindrop",),
                    corruptions=(None, ("gaussian_noise", 3)),
                    ood_sets=("letters",),
                    servings=(None, "procpool"),
                    markers=("procpool",)),
    )),
    # Nightly matrix: every family crossed with the robustness axes.
    "full": MatrixSpec(preset="full", blocks=(
        MatrixBlock(families=MLP_FAMILIES,
                    corruptions=(None, ("gaussian_noise", 3),
                                 ("salt_and_pepper", 3), ("box_blur", 3),
                                 ("contrast", 3), ("rotation", 2)),
                    defect_rates=(0.0, 0.02, 0.05),
                    variabilities=(0.0, 0.05),
                    ood_sets=("letters", "uniform_noise"),
                    markers=("full",)),
        MatrixBlock(families=MLP_FAMILIES,
                    ood_sets=("random_rotation", "amplitude_shift"),
                    markers=("full",)),
        MatrixBlock(families=("segmenter",),
                    corruptions=(None, ("gaussian_noise", 3),
                                 ("salt_and_pepper", 3)),
                    ood_sets=("ood_objects",),
                    markers=("full", "segmentation")),
    )),
}


# ----------------------------------------------------------------------
# Model training cache (per family × preset; fixed training seed)
# ----------------------------------------------------------------------
def preset_hash(preset: SweepPreset) -> str:
    """SHA-256 of the preset's canonical JSON — the cache-validity key.

    Any preset field change (budgets, seeds, architecture) changes the
    hash, so a stale disk entry is detected rather than silently
    served (or, worse, silently retrained over).
    """
    payload = json.dumps(dataclasses.asdict(preset), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ModelCache:
    """Trains each model family once per preset and memoizes it.

    With ``cache_dir`` set, trained parameters also persist to disk as
    versioned, content-hashed artifacts (the same
    :func:`repro.cim.snapshot.write_artifact` substrate deployment
    snapshots use, ``kind="trained_model"``), keyed
    ``<family>-<preset name>`` with the full :func:`preset_hash` in
    the manifest.  A later sweep — same interpreter or not — restores
    the trained weights and skips retraining entirely; the scenario's
    CIM deployment is still rebuilt from the scenario seed, preserving
    the determinism contract.  An entry whose stored preset hash no
    longer matches (the preset definition changed underneath it) is
    *invalidated with a log line* and retrained, never silently
    reused; ``hits`` / ``misses`` / ``invalidations`` counters surface
    in the sweep report.
    """

    def __init__(self, cache_dir: Optional[str] = None,
                 log: Optional[Callable[[str], None]] = None) -> None:
        self._models: Dict[Tuple[str, str], object] = {}
        self.cache_dir = cache_dir
        self._log = log if log is not None else (lambda message: None)
        self.hits = 0             # disk restores (retraining skipped)
        self.misses = 0           # trained fresh
        self.invalidations = 0    # stale/unreadable entries discarded

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "invalidations": self.invalidations}

    def get(self, family: str, preset: SweepPreset):
        key = (family, preset.name)
        if key in self._models:
            return self._models[key]
        model = self._load_disk(family, preset)
        if model is None:
            self.misses += 1
            model = _train_family(family, preset)
            self._store_disk(family, preset, model)
        else:
            self.hits += 1
        self._models[key] = model
        return model

    # ------------------------------------------------------------------
    def _entry_path(self, family: str, preset: SweepPreset) -> str:
        return os.path.join(self.cache_dir, f"{family}-{preset.name}")

    def _invalidate(self, family: str, preset: SweepPreset,
                    reason: str) -> None:
        self.invalidations += 1
        self._log(f"cache-invalidate {family}/{preset.name}: {reason}; "
                  f"retraining")

    def _load_disk(self, family: str, preset: SweepPreset):
        if self.cache_dir is None:
            return None
        path = self._entry_path(family, preset)
        if not os.path.exists(os.path.join(path, "manifest.json")):
            return None
        from repro.cim.snapshot import SnapshotError, read_artifact
        try:
            manifest, arrays = read_artifact(path, kind="trained_model")
        except SnapshotError as exc:
            self._invalidate(family, preset, f"unreadable entry ({exc})")
            return None
        expected = preset_hash(preset)
        stored = manifest.get("preset_hash")
        if stored != expected:
            self._invalidate(
                family, preset,
                f"preset hash changed ({str(stored)[:12]} -> "
                f"{expected[:12]})")
            return None
        model = _build_family(family, preset)
        expected_keys = set(model.state_dict())
        if set(arrays) != expected_keys:
            self._invalidate(family, preset, "state keys mismatch")
            return None
        try:
            # Full module state: trained parameters AND buffers
            # (batch-norm running statistics), so the restored model
            # is bit-identical to the one that was trained.
            model.load_state_dict(dict(arrays))
        except (KeyError, ValueError) as exc:
            self._invalidate(family, preset, f"state mismatch ({exc})")
            return None
        model.eval()
        return model

    def _store_disk(self, family: str, preset: SweepPreset,
                    model) -> None:
        if self.cache_dir is None:
            return
        from repro.cim.snapshot import write_artifact
        manifest = {
            "kind": "trained_model",
            "family": family,
            "preset": preset.name,
            "preset_hash": preset_hash(preset),
        }
        write_artifact(self._entry_path(family, preset), manifest,
                       model.state_dict())


def _train_config(preset: SweepPreset) -> TrainConfig:
    return TrainConfig(epochs=preset.epochs, lr=1e-2, batch_size=64,
                       mc_samples=preset.mc_samples,
                       seed=preset.train_seed)


def _build_family(family: str, preset: SweepPreset):
    """Untrained architecture for one family — the shape the disk
    cache restores trained parameters into."""
    if family == "segmenter":
        return make_bayesian_segmenter(width=8, p=0.15,
                                       seed=preset.train_seed)
    data = digits_dataset(n_samples=preset.n_train, seed=preset.train_seed)
    if family == "spindrop":
        return make_spindrop_mlp(data.n_features, preset.hidden,
                                 data.n_classes, p=0.1,
                                 seed=preset.train_seed)
    if family == "scaledrop":
        return make_scaledrop_mlp(data.n_features, preset.hidden,
                                  data.n_classes, seed=preset.train_seed)
    if family in ("subset_vi", "spinbayes"):
        return make_subset_vi_mlp(data.n_features, preset.hidden,
                                  data.n_classes, seed=preset.train_seed)
    raise ValueError(f"unknown model family {family!r}")


def _train_family(family: str, preset: SweepPreset):
    """Train the software model behind one family (spinbayes reuses
    the subset-VI teacher, matching the paper's distillation)."""
    if family == "segmenter":
        return _train_segmenter(preset)
    model = _build_family(family, preset)
    data = digits_dataset(n_samples=preset.n_train, seed=preset.train_seed)
    config = _train_config(preset)
    if family == "spindrop":
        return train_classifier(model, data, config)
    if family == "scaledrop":
        return train_classifier(model, data, config,
                                scale_reg_strength=1e-3)
    return train_classifier(model, data, config, loss_kind="elbo")


def _train_segmenter(preset: SweepPreset) -> nn.Sequential:
    x_train, m_train = segmentation_scenes(preset.seg_scenes,
                                           seed=preset.train_seed)
    model = make_bayesian_segmenter(width=8, p=0.15, seed=preset.train_seed)
    opt = nn.Adam(model.parameters(), lr=1e-2)
    sched = nn.CosineLR(opt, preset.seg_epochs)
    for epoch in range(preset.seg_epochs):
        model.train()
        for xb, yb in batches(x_train, m_train, 32,
                              seed=preset.train_seed + epoch):
            loss = segmentation_loss(model(Tensor(xb)), yb)
            opt.zero_grad()
            loss.backward()
            opt.step()
            nn.clip_latent_weights(model)
        sched.step()
    model.eval()
    return model


# ----------------------------------------------------------------------
# Scenario execution
# ----------------------------------------------------------------------
def _deploy_config(scenario: Scenario, seed: int) -> CimConfig:
    """Deployment realization drawn entirely from the scenario seed."""
    defects = None
    if scenario.defect_rate > 0.0:
        half = scenario.defect_rate / 2.0
        defects = DefectModel(
            DefectRates(stuck_at_p=half, stuck_at_ap=half),
            rng=np.random.default_rng(seed + 1))
    variability = None
    if scenario.variability > 0.0:
        v = scenario.variability
        variability = DeviceVariability(
            VariabilityParams(sigma_r=v, sigma_delta=v, sigma_read=v / 3.0),
            rng=np.random.default_rng(seed + 2))
    return CimConfig(defects=defects, variability=variability,
                     adc_bits=6, seed=seed + 3)


def _ood_inputs(scenario: Scenario, preset: SweepPreset,
                x_eval: np.ndarray, image_size: int,
                n_features: int) -> np.ndarray:
    seed = scenario.seed + 5
    n = min(preset.n_ood, len(x_eval))
    if scenario.ood == "letters":
        return ood.letters(preset.n_ood, size=image_size, seed=seed)
    if scenario.ood == "uniform_noise":
        return ood.uniform_noise(preset.n_ood, n_features, seed=seed)
    if scenario.ood == "random_rotation":
        return ood.random_rotation(x_eval[:n], seed=seed)
    if scenario.ood == "amplitude_shift":
        return ood.amplitude_shift(x_eval[:n])
    raise ValueError(f"unknown OOD set {scenario.ood!r}")


def _classifier_metrics(scenario: Scenario, preset: SweepPreset,
                        model) -> Dict[str, Optional[float]]:
    """Deploy one MLP family and evaluate it under the scenario."""
    seed = scenario.seed
    data = digits_dataset(n_samples=preset.n_train, seed=preset.train_seed)
    x_eval = np.array(data.x_test[:preset.n_eval])
    y_eval = data.y_test[:preset.n_eval]
    if scenario.corruption:
        x_eval = corrupt(x_eval, scenario.corruption,
                         severity=scenario.severity,
                         rng=np.random.default_rng(seed + 4))

    config = _deploy_config(scenario, seed)
    if scenario.family == "spinbayes":
        engine = SpinBayesNetwork.from_subset_vi(
            model, n_components=preset.spin_components,
            n_levels=preset.spin_levels, config=config, seed=seed + 6)
    else:
        engine = BayesianCim(model, config, seed=seed + 6)

    engine.ledger.reset()
    if scenario.serving == "procpool":
        return _procpool_classifier_metrics(scenario, preset, engine,
                                            x_eval, y_eval, data)
    result = engine.mc_forward_batched(x_eval, n_samples=preset.mc_samples)
    joules, _ = price_ledger(engine.ledger)
    metrics = {
        "accuracy": float((result.predictions == y_eval).mean()),
        "nll": nll(result.probs, y_eval),
        "ece": expected_calibration_error(result.probs, y_eval),
        "brier": brier_score(result.probs, y_eval),
        "energy_j_per_image": joules / len(x_eval),
        "ops_total": int(engine.ledger.total()),
        "ood_auroc": None,
    }
    if scenario.ood:
        x_ood = _ood_inputs(scenario, preset, x_eval,
                            data.image_size, data.n_features)
        ood_result = engine.mc_forward_batched(
            x_ood, n_samples=preset.mc_samples)
        metrics["ood_auroc"] = auroc(result.predictive_entropy,
                                     ood_result.predictive_entropy)
    return metrics


def _procpool_classifier_metrics(scenario: Scenario, preset: SweepPreset,
                                 engine, x_eval: np.ndarray,
                                 y_eval: np.ndarray,
                                 data) -> Dict[str, Optional[float]]:
    """The ``serving="procpool"`` route of :func:`_classifier_metrics`.

    The freshly deployed engine is snapshotted and served through a
    one-worker :class:`~repro.serving.procpool.ProcReplicaPool`: the
    single worker rehydrates the snapshot in its own interpreter and
    continues the captured RNG streams, so every metric — including
    the op-ledger energy totals read back over the pool's ledger RPC —
    is bit-identical to the in-process route.  (One worker, because
    multi-replica sharding gives each replica its own mask draws; the
    equivalence claim is per-engine.)
    """
    import shutil
    import tempfile

    from repro.cim.ledger import OpLedger
    from repro.cim.snapshot import DeploymentSnapshot
    from repro.serving.procpool import ProcReplicaPool

    tempdir = tempfile.mkdtemp(prefix="repro-sweep-procpool-")
    try:
        path = os.path.join(tempdir, "snapshot")
        DeploymentSnapshot.capture(engine).save(path)
        with ProcReplicaPool.from_snapshot(path, workers=1) as pool:
            replica = pool.replicas[0]
            result = replica.mc_forward_batched(
                x_eval, n_samples=preset.mc_samples)
            # Ledger state is read before the OOD call, matching the
            # in-process route's pricing point.
            ledger = OpLedger()
            ledger.counts.update(replica.ledger_totals() or {})
            joules, _ = price_ledger(ledger)
            metrics = {
                "accuracy": float((result.predictions == y_eval).mean()),
                "nll": nll(result.probs, y_eval),
                "ece": expected_calibration_error(result.probs, y_eval),
                "brier": brier_score(result.probs, y_eval),
                "energy_j_per_image": joules / len(x_eval),
                "ops_total": int(ledger.total()),
                "ood_auroc": None,
            }
            if scenario.ood:
                x_ood = _ood_inputs(scenario, preset, x_eval,
                                    data.image_size, data.n_features)
                ood_result = replica.mc_forward_batched(
                    x_ood, n_samples=preset.mc_samples)
                metrics["ood_auroc"] = auroc(
                    result.predictive_entropy,
                    ood_result.predictive_entropy)
    finally:
        shutil.rmtree(tempdir, ignore_errors=True)
    return metrics


def _object_entropy(result, masks: np.ndarray) -> np.ndarray:
    """Per-scene mean predictive entropy over object (mask>0) pixels."""
    n, h, w = masks.shape
    entropy = result.predictive_entropy.reshape(n, h * w)
    flat_obj = masks.reshape(n, h * w) > 0
    counts = np.maximum(flat_obj.sum(axis=1), 1)
    return (entropy * flat_obj).sum(axis=1) / counts


def _segmenter_metrics(scenario: Scenario, preset: SweepPreset,
                       model) -> Dict[str, Optional[float]]:
    """Per-pixel metrics through the pass-stacked segmentation engine."""
    seed = scenario.seed
    x_eval, m_eval = segmentation_scenes(preset.seg_eval_scenes,
                                         seed=preset.train_seed + 1)
    if scenario.corruption:
        x_eval = corrupt(x_eval, scenario.corruption,
                         severity=scenario.severity,
                         rng=np.random.default_rng(seed + 4))
    result = mc_segment_batched(model, x_eval,
                                n_samples=preset.seg_samples)
    labels = m_eval.reshape(-1)
    metrics = {
        "accuracy": float((result.predictions == labels).mean()),
        "nll": nll(result.probs, labels),
        "ece": expected_calibration_error(result.probs, labels),
        "brier": brier_score(result.probs, labels),
        "energy_j_per_image": None,     # software engine: no op ledger
        "ops_total": None,
        "ood_auroc": None,
    }
    if scenario.ood == "ood_objects":
        x_ood, m_ood = segmentation_scenes(preset.seg_eval_scenes,
                                           seed=preset.train_seed + 2,
                                           ood_objects=True)
        ood_result = mc_segment_batched(model, x_ood,
                                        n_samples=preset.seg_samples)
        # Per-image mean entropy over OBJECT pixels (background pixels
        # are trivially certain for both groups and would swamp the
        # score) — the §III-B.2 object-uncertainty protocol.
        metrics["ood_auroc"] = auroc(
            _object_entropy(result, m_eval),
            _object_entropy(ood_result, m_ood))
    return metrics


def run_scenario(scenario: Scenario, preset: SweepPreset,
                 cache: Optional[ModelCache] = None) -> dict:
    """Execute one scenario; returns the (deterministic) run record."""
    cache = cache or ModelCache()
    model = cache.get(scenario.family, preset)
    if scenario.family == "segmenter":
        metrics = _segmenter_metrics(scenario, preset, model)
    else:
        metrics = _classifier_metrics(scenario, preset, model)
    return {
        "scenario": scenario.key(),
        "seed": scenario.seed,
        "preset": preset.name,
        "n_samples": (preset.seg_samples if scenario.family == "segmenter"
                      else preset.mc_samples),
        "metrics": metrics,
    }


def run_sweep(matrix: str, store=None,
              markers: Optional[Sequence[str]] = None,
              progress: Optional[Callable[[str], None]] = None,
              cache: Optional[ModelCache] = None,
              cache_dir: Optional[str] = None) -> List[dict]:
    """Expand and run a named matrix; optionally persist to a store.

    Run records (scenario key + metrics) are fully deterministic;
    wall-clock timings go to the store's meta sidecar so the results
    file stays byte-reproducible.  ``cache`` (or a fresh
    :class:`ModelCache` over ``cache_dir``) supplies the trained
    models; with a cache directory, repeated sweeps restore trained
    weights from disk instead of retraining, and the hit/miss/
    invalidation counts are reported through ``progress`` and the
    store's meta sidecar.
    """
    if matrix not in MATRICES:
        raise KeyError(f"unknown matrix {matrix!r}; "
                       f"choose from {sorted(MATRICES)}")
    spec = MATRICES[matrix]
    preset = PRESETS[spec.preset]
    scenarios = expand_matrix(spec, markers=markers)
    if cache is None:
        cache = ModelCache(cache_dir=cache_dir, log=progress)
    records = []
    for i, scenario in enumerate(scenarios):
        t0 = time.perf_counter()
        record = run_scenario(scenario, preset, cache)
        wall_s = time.perf_counter() - t0
        records.append(record)
        if store is not None:
            store.append(record)
            store.append_meta({"name": scenario.name, "wall_s": wall_s})
        if progress is not None:
            m = record["metrics"]
            aur = (f"{m['ood_auroc']:.3f}" if m["ood_auroc"] is not None
                   else "-")
            progress(f"[{i + 1}/{len(scenarios)}] {scenario.name}: "
                     f"acc={m['accuracy']:.3f} ece={m['ece']:.3f} "
                     f"nll={m['nll']:.3f} auroc={aur} ({wall_s:.1f}s)")
    stats = cache.stats()
    if progress is not None:
        progress(f"model cache: {stats['hits']} hit(s), "
                 f"{stats['misses']} miss(es), "
                 f"{stats['invalidations']} invalidation(s)")
    if store is not None:
        store.append_meta({"model_cache": stats})
        store.write_summary(matrix=matrix)
    return records
