"""Run every experiment at full (non-fast) settings and print a report.

This regenerates all numbers recorded in EXPERIMENTS.md.  Reached via
``repro-experiments full``; also runnable as
``python scripts/run_full_experiments.py | tee results_full.txt``.

Takes ~10–20 minutes on a laptop CPU (everything trains from scratch).
The final section routes through the scenario-sweep engine
(:mod:`repro.experiments.sweeps`): the smoke matrix replaces the old
ad-hoc robustness spot checks with the same declarative scenarios the
CI quality gate banks.
"""

import time

from repro.energy import format_energy, render_table
from repro.experiments.ablations import (
    defect_robustness,
    rng_scaling,
    scalar_vs_vector_masks,
    ste_clip_ablation,
)
from repro.experiments.claims import (
    run_c1_spindrop,
    run_c2_spatial,
    run_c3_scaledrop,
    run_c4_affine,
    run_c5_subset_vi,
    run_c6_spinbayes,
)
from repro.experiments.figures import (
    arbiter_statistics,
    mapping_equivalence_check,
    run_fig1_mapping,
    run_fig2_breakdown,
    run_fig3_spinbayes,
)
from repro.experiments.table1 import render_table1, run_table1


def banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def run_full(cache_dir=None) -> None:
    """The complete EXPERIMENTS.md regeneration suite.

    ``cache_dir`` persists the sweep section's trained models across
    invocations (see :class:`repro.experiments.sweeps.ModelCache`), so
    a re-run after an evaluation-only change skips the retraining.
    """
    t0 = time.time()

    banner("T1 — Table I")
    print(render_table1(run_table1(fast=False, seed=0)))

    banner("F1 — Fig. 1 mapping strategies")
    reports = run_fig1_mapping()
    rows = []
    for r1, r2 in zip(reports["strategy1"], reports["strategy2"]):
        rows.append([f"{r1.crossbar_shape}", r1.n_crossbars,
                     f"{r1.utilization:.2f}", r1.adc_per_output,
                     r1.dropout_modules, f"{r2.crossbar_shape}",
                     r2.n_crossbars, f"{r2.utilization:.2f}",
                     r2.adc_per_output])
    print(render_table(
        ["S1 xbar", "S1 #", "S1 util", "S1 adc/out", "drop mods",
         "S2 xbar", "S2 #", "S2 util", "S2 adc/out"], rows))
    print(f"functional equivalence residual: "
          f"{mapping_equivalence_check():.3f}")

    banner("F2 — Fig. 2 Scale-Dropout architecture breakdown")
    breakdown = run_fig2_breakdown(fast=False, seed=0)
    total = sum(v for k, v in breakdown.items()
                if k != "weight_programming")
    for name, value in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        share = value / total * 100 if name != "weight_programming" else 0
        print(f"  {name:20s} {format_energy(value):>12s}  {share:5.1f}%")

    banner("F3 — Fig. 3 SpinBayes design space")
    for p in run_fig3_spinbayes(fast=False, seed=0,
                                component_grid=(2, 4, 8, 16),
                                level_grid=(4, 16, 32)):
        print(f"  N={p.n_components:2d} levels={p.n_levels:2d} "
              f"acc={p.accuracy * 100:5.1f}% "
              f"E={format_energy(p.energy_per_image):>10s} "
              f"qerr={p.quantization_error:.4f} "
              f"arb_dev={p.arbiter_uniformity:.3f}")
    print("  arbiter:", arbiter_statistics(8, 16384, seed=0))

    banner("C1 — SpinDrop")
    c1 = run_c1_spindrop(fast=False, seed=0)
    print(f"  accuracy bayes/det: {c1.accuracy_bayesian * 100:.2f}% / "
          f"{c1.accuracy_deterministic * 100:.2f}% "
          f"(gain {c1.accuracy_gain * 100:+.2f}%)")
    print(f"  OOD detection letters/noise: "
          f"{c1.ood_detection_letters * 100:.1f}% / "
          f"{c1.ood_detection_noise * 100:.1f}% "
          f"(AUROC letters {c1.ood_auroc_letters:.3f})")
    for name in c1.corrupted_bayesian:
        print(f"  corrupted {name}: bayes "
              f"{c1.corrupted_bayesian[name] * 100:.1f}% vs det "
              f"{c1.corrupted_deterministic[name] * 100:.1f}%")
    print(f"  mean corruption gain: {c1.mean_corruption_gain * 100:+.2f}%")

    banner("C2 — Spatial-SpinDrop")
    c2 = run_c2_spatial(seed=0)
    print(f"  modules {c2.spindrop_modules} -> {c2.spatial_modules} "
          f"({c2.module_reduction:.1f}x; paper 9x)")
    print(f"  dropout-energy ratio {c2.dropout_energy_ratio:.1f}x "
          f"(paper 94.11x)   total ratio {c2.total_energy_ratio:.2f}x "
          f"(paper 2.94x)")

    banner("C3 — SpinScaleDrop")
    c3 = run_c3_scaledrop(fast=False, seed=0)
    print(f"  accuracy scale/spin: {c3.accuracy_scaledrop * 100:.2f}% / "
          f"{c3.accuracy_spindrop * 100:.2f}%")
    print(f"  RNG modules {c3.rng_modules_scaledrop} vs "
          f"{c3.rng_modules_spindrop}; dropout-energy saving "
          f"{c3.dropout_energy_saving:.0f}x (paper >100x)")
    print(f"  device-fitted p: mu={c3.stochastic_p_mu:.3f} "
          f"sigma={c3.stochastic_p_sigma:.3f}")

    banner("C4 — Inverted normalization + Affine Dropout")
    c4 = run_c4_affine(fast=False, seed=0)
    print(f"  clean affine/baseline: {c4.clean_affine * 100:.2f}% / "
          f"{c4.clean_baseline * 100:.2f}%")
    print(f"  faulty affine/baseline: {c4.faulty_affine * 100:.2f}% / "
          f"{c4.faulty_baseline * 100:.2f}% "
          f"(recovery {c4.fault_recovery * 100:+.2f}%; paper up to +55.62%)")
    print(f"  OOD detection noise/rotation: "
          f"{c4.ood_detection_noise * 100:.1f}% / "
          f"{c4.ood_detection_rotation * 100:.1f}% "
          f"(paper 55.03% / 78.95%)")
    print(f"  RMSE affine/baseline: {c4.rmse_affine:.4f} / "
          f"{c4.rmse_baseline:.4f} "
          f"(reduction {c4.rmse_reduction * 100:+.1f}%; paper up to 46.7%)")

    banner("C5 — Bayesian sub-set parameter inference")
    c5 = run_c5_subset_vi(fast=False, seed=0)
    print(f"  accuracy {c5.accuracy * 100:.2f}%  NLL id/shift "
          f"{c5.nll_in_distribution:.3f} / {c5.nll_shifted:.3f}")
    print(f"  memory ratio {c5.memory_ratio:.1f}x (paper 158.7x)  "
          f"power ratio {c5.power_ratio:.1f}x (paper 70x)  "
          f"bayes fraction {c5.bayesian_fraction * 100:.2f}%")

    banner("C6 — SpinBayes")
    c6 = run_c6_spinbayes(fast=False, seed=0)
    print(f"  teacher/spinbayes accuracy: "
          f"{c6.teacher_accuracy * 100:.2f}% / "
          f"{c6.spinbayes_accuracy * 100:.2f}% "
          f"(delta {c6.accuracy_delta * 100:+.2f}%)")
    print(f"  OOD detection letters/noise: "
          f"{c6.ood_detection_letters * 100:.1f}% / "
          f"{c6.ood_detection_noise * 100:.1f}%  "
          f"uncertainty ratio {c6.uncertainty_ratio:.2f}")

    banner("A1 — Ablations")
    scaling = rng_scaling()
    print("  RNG scaling:", {k: v for k, v in scaling.items()})
    print("  STE clip:", ste_clip_ablation(epochs=8))
    print("  scalar vs vector masks:",
          scalar_vs_vector_masks(fast=False, seed=0))
    for p in defect_robustness(fast=False, seed=0):
        print(f"  defect {p.method:14s} rate={p.fault_rate:.2f} "
              f"acc={p.accuracy * 100:.1f}%")

    banner("S1/S2/L1 — Extended scopes (segmentation, 100-class, "
           "latency/area)")
    from repro.experiments.extended import (
        latency_area_table,
        run_100class_experiment,
        run_seg_experiment,
    )

    seg = run_seg_experiment(fast=False, seed=0)
    print(f"  segmentation: mIoU {seg.miou:.3f} "
          f"pixel acc {seg.pixel_accuracy * 100:.1f}% "
          f"object acc id/ood {seg.object_accuracy_id * 100:.1f}%/"
          f"{seg.object_accuracy_ood * 100:.1f}% "
          f"object entropy id/ood {seg.object_entropy_id:.3f}/"
          f"{seg.object_entropy_ood:.3f}")
    hundred = run_100class_experiment(fast=False, seed=0)
    print(f"  100-class: teacher {hundred.teacher_accuracy * 100:.2f}% "
          f"spinbayes {hundred.spinbayes_accuracy * 100:.2f}% "
          f"top-5 {hundred.top5_accuracy * 100:.2f}%")
    for row in latency_area_table():
        print(f"  {row['method']:16s} {row['latency_us']:8.1f} µs/img "
              f"{row['area_mm2']:.3f} mm²")

    banner("R1 — Reliability extensions")
    from repro.experiments.ablations import (
        calibration_comparison,
        retention_aging,
    )

    for row in retention_aging(fast=False, seed=0):
        print(f"  retention {row['age_years']:4.0f} y: "
              f"flips {row['flipped_fraction'] * 100:.2f}% "
              f"acc {row['accuracy'] * 100:.1f}%")
    for name, metrics in calibration_comparison(fast=False, seed=0).items():
        print(f"  calibration {name:14s} acc "
              f"{metrics['accuracy'] * 100:.1f}% "
              f"ECE {metrics['ece']:.3f} NLL {metrics['nll']:.3f}")

    banner("S3 — Scenario sweeps (smoke matrix via the sweep engine)")
    from repro.experiments.report import format_metrics_report, \
        summaries_from_metrics
    from repro.experiments.sweeps import run_sweep

    records = run_sweep("smoke", progress=lambda line: print(f"  {line}"),
                        cache_dir=cache_dir)
    print(format_metrics_report(summaries_from_metrics(
        {r["scenario"]["name"]: r["metrics"] for r in records}),
        title="Scenario sweep (smoke matrix)"))

    print(f"\ntotal wall time: {(time.time() - t0) / 60:.1f} min")
