"""Synthetic image datasets (the MNIST/Fashion substitute).

The paper evaluates on standard image classification; offline we
generate procedural data that exercises the identical code paths:

* **SynthDigits** — 16×16 grayscale seven-segment-style digits with
  per-sample jitter (translation, stroke intensity, thickness bleed,
  pixel noise).  Ten classes, visually separable but not trivially so
  once jitter and noise are applied; binary MLPs land in the low-90 %
  accuracy band, matching the Table-I regime.
* **SynthLetters** — the same renderer on ten letter glyphs whose
  segment patterns don't occur among digits; the "different dataset"
  OOD source.
* **blob_dataset** — Gaussian-blob images whose class is the blob's
  quadrant/scale pattern; a second, easier family used by quickstart
  examples and tests.
* **texture_dataset** — oriented stripe patterns (class = orientation
  bin); exercises conv layers' spatial selectivity.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

# Seven-segment layout:      0
#                          5   1
#                            6
#                          4   2
#                            3
_DIGIT_SEGMENTS = {
    0: (0, 1, 2, 3, 4, 5),
    1: (1, 2),
    2: (0, 1, 6, 4, 3),
    3: (0, 1, 6, 2, 3),
    4: (5, 6, 1, 2),
    5: (0, 5, 6, 2, 3),
    6: (0, 5, 6, 4, 2, 3),
    7: (0, 1, 2),
    8: (0, 1, 2, 3, 4, 5, 6),
    9: (0, 1, 2, 3, 5, 6),
}

# Letter glyphs on the same segments (A, C, E, F, H, J, L, P, U, y) —
# segment sets chosen to be distinct from every digit above.
_LETTER_SEGMENTS = {
    0: (0, 1, 2, 4, 5, 6),       # A
    1: (0, 3, 4, 5),             # C
    2: (0, 3, 4, 5, 6),         # E
    3: (0, 4, 5, 6),             # F
    4: (1, 2, 4, 5, 6),          # H
    5: (1, 2, 3, 4),             # J
    6: (3, 4, 5),                # L
    7: (0, 1, 4, 5, 6),          # P
    8: (1, 2, 3, 4, 5),          # U
    9: (1, 2, 3, 5, 6),          # y
}


def _segment_coords(size: int) -> list:
    """Pixel spans of the seven segments on a size×size canvas."""
    m = size // 8                  # margin
    w = size - 2 * m               # glyph width
    h = size - 2 * m               # glyph height
    x0, x1 = m, m + w - 1
    y0, ymid, y1 = m, m + h // 2, m + h - 1
    t = max(size // 10, 1)         # stroke thickness
    return [
        ("h", y0, x0, x1, t),      # 0 top
        ("v", x1, y0, ymid, t),    # 1 top-right
        ("v", x1, ymid, y1, t),    # 2 bottom-right
        ("h", y1, x0, x1, t),      # 3 bottom
        ("v", x0, ymid, y1, t),    # 4 bottom-left
        ("v", x0, y0, ymid, t),    # 5 top-left
        ("h", ymid, x0, x1, t),    # 6 middle
    ]


def _render_glyph(segments: tuple, size: int, rng: np.random.Generator,
                  jitter: float) -> np.ndarray:
    """Render one glyph with stochastic nuisance parameters."""
    canvas = np.zeros((size, size))
    coords = _segment_coords(size)
    span = int(round(2 * jitter))   # translation amplitude scales with jitter
    dx = int(rng.integers(-span, span + 1)) if span > 0 else 0
    dy = int(rng.integers(-span, span + 1)) if span > 0 else 0
    for seg in segments:
        kind, a, b0, b1, t = coords[seg]
        intensity = 1.0 - jitter * rng.uniform(0.0, 0.4)
        if kind == "h":
            y = np.clip(a + dy, 0, size - 1)
            ys = slice(max(y - t // 2, 0), min(y + (t + 1) // 2, size))
            xs = slice(max(b0 + dx, 0), min(b1 + dx + 1, size))
            canvas[ys, xs] = np.maximum(canvas[ys, xs], intensity)
        else:
            x = np.clip(a + dx, 0, size - 1)
            xs = slice(max(x - t // 2, 0), min(x + (t + 1) // 2, size))
            ys = slice(max(b0 + dy, 0), min(b1 + dy + 1, size))
            canvas[ys, xs] = np.maximum(canvas[ys, xs], intensity)
    if jitter > 0:
        canvas += rng.normal(0.0, 0.1 * jitter, size=canvas.shape)
        # Stroke bleed: one box-blur pass with random strength.
        if rng.random() < 0.5:
            padded = np.pad(canvas, 1)
            canvas = (padded[:-2, 1:-1] + padded[2:, 1:-1]
                      + padded[1:-1, :-2] + padded[1:-1, 2:]
                      + padded[1:-1, 1:-1]) / 5.0
    return np.clip(canvas, 0.0, 1.0)


def _glyph_dataset(segment_table: dict, n_samples: int, size: int,
                   jitter: float, seed: Optional[int],
                   flat: bool) -> Tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, len(segment_table), size=n_samples)
    images = np.stack([
        _render_glyph(segment_table[int(label)], size, rng, jitter)
        for label in labels
    ])
    # Center to [-1, 1]: binary networks binarize inputs around zero.
    images = images * 2.0 - 1.0
    if flat:
        images = images.reshape(n_samples, -1)
    else:
        images = images[:, None, :, :]
    return images, labels.astype(np.int64)


def synth_digits(n_samples: int = 2000, size: int = 16,
                 jitter: float = 1.0, seed: Optional[int] = None,
                 flat: bool = True) -> Tuple[np.ndarray, np.ndarray]:
    """SynthDigits classification set.

    Returns ``(X, y)`` with ``X`` in [−1, 1]: flat (N, size²) or NCHW
    (N, 1, size, size).
    """
    return _glyph_dataset(_DIGIT_SEGMENTS, n_samples, size, jitter, seed, flat)


def synth_letters(n_samples: int = 2000, size: int = 16,
                  jitter: float = 1.0, seed: Optional[int] = None,
                  flat: bool = True) -> Tuple[np.ndarray, np.ndarray]:
    """SynthLetters — the OOD glyph family (same renderer, new shapes)."""
    return _glyph_dataset(_LETTER_SEGMENTS, n_samples, size, jitter, seed, flat)


def blob_dataset(n_samples: int = 2000, size: int = 16, n_classes: int = 4,
                 seed: Optional[int] = None,
                 flat: bool = True) -> Tuple[np.ndarray, np.ndarray]:
    """Gaussian-blob images; class = quadrant hosting the blob."""
    if n_classes not in (2, 4):
        raise ValueError("blob_dataset supports 2 or 4 classes")
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, n_classes, size=n_samples)
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float64)
    centers = [(size * 0.3, size * 0.3), (size * 0.3, size * 0.7),
               (size * 0.7, size * 0.3), (size * 0.7, size * 0.7)][:n_classes]
    images = np.empty((n_samples, size, size))
    for i, label in enumerate(labels):
        cy, cx = centers[int(label)]
        cy += rng.normal(0, 1.0)
        cx += rng.normal(0, 1.0)
        sigma = rng.uniform(1.5, 2.5)
        blob = np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * sigma ** 2))
        images[i] = blob + rng.normal(0, 0.05, size=(size, size))
    images = np.clip(images, 0, 1) * 2.0 - 1.0
    if flat:
        return images.reshape(n_samples, -1), labels.astype(np.int64)
    return images[:, None], labels.astype(np.int64)


def texture_dataset(n_samples: int = 2000, size: int = 16, n_classes: int = 4,
                    seed: Optional[int] = None,
                    flat: bool = False) -> Tuple[np.ndarray, np.ndarray]:
    """Oriented stripe textures; class = orientation bin.

    Defaults to NCHW because the texture task exists to exercise conv
    layers (Spatial-SpinDrop experiments).
    """
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, n_classes, size=n_samples)
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float64)
    images = np.empty((n_samples, size, size))
    for i, label in enumerate(labels):
        angle = np.pi * label / n_classes + rng.normal(0, 0.08)
        freq = rng.uniform(0.8, 1.2)
        phase = rng.uniform(0, 2 * np.pi)
        wave = np.sin(freq * (np.cos(angle) * xx + np.sin(angle) * yy) + phase)
        images[i] = wave + rng.normal(0, 0.15, size=(size, size))
    images = np.tanh(images)
    if flat:
        return images.reshape(n_samples, -1), labels.astype(np.int64)
    return images[:, None], labels.astype(np.int64)
