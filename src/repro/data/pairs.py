"""100-class paired-glyph dataset.

The paper evaluates SpinBayes on "classification tasks with up to 100
classes" (§III-B.2).  We synthesize a 100-class task from the digit
renderer: each sample is two seven-segment digits rendered side by
side on a 16×32 canvas, and the class is the two-digit number 00–99.
Same nuisance model as SynthDigits (jitter, stroke noise, bleed).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.data.synthetic import _DIGIT_SEGMENTS, _render_glyph


def synth_pairs(n_samples: int = 5000, size: int = 16,
                jitter: float = 0.5, seed: Optional[int] = None,
                flat: bool = True) -> Tuple[np.ndarray, np.ndarray]:
    """Generate the 100-class set.

    Returns ``(X, y)`` with ``X`` in [−1, 1], flat (N, 2·size²) or
    NCHW (N, 1, size, 2·size); ``y`` in 0..99 (tens digit × 10 + ones
    digit).
    """
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 100, size=n_samples)
    images = np.empty((n_samples, size, 2 * size))
    for i, label in enumerate(labels):
        tens, ones = divmod(int(label), 10)
        left = _render_glyph(_DIGIT_SEGMENTS[tens], size, rng, jitter)
        right = _render_glyph(_DIGIT_SEGMENTS[ones], size, rng, jitter)
        images[i, :, :size] = left
        images[i, :, size:] = right
    images = images * 2.0 - 1.0
    if flat:
        return images.reshape(n_samples, -1), labels.astype(np.int64)
    return images[:, None, :, :], labels.astype(np.int64)
