"""Dataset utilities: splits and minibatch iteration."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np


def train_test_split(x: np.ndarray, y: np.ndarray, test_frac: float = 0.2,
                     seed: Optional[int] = None):
    """Shuffled split into (x_train, y_train), (x_test, y_test)."""
    if len(x) != len(y):
        raise ValueError("x and y length mismatch")
    if not 0.0 < test_frac < 1.0:
        raise ValueError("test_frac must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(x))
    cut = int(len(x) * (1.0 - test_frac))
    train_idx, test_idx = order[:cut], order[cut:]
    return (x[train_idx], y[train_idx]), (x[test_idx], y[test_idx])


def batches(x: np.ndarray, y: np.ndarray, batch_size: int = 64,
            shuffle: bool = True, seed: Optional[int] = None,
            drop_last: bool = False
            ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield minibatches; reshuffles each call when ``shuffle``."""
    n = len(x)
    order = np.arange(n)
    if shuffle:
        np.random.default_rng(seed).shuffle(order)
    for start in range(0, n, batch_size):
        idx = order[start:start + batch_size]
        if drop_last and len(idx) < batch_size:
            return
        yield x[idx], y[idx]
