"""Synthetic datasets, corruptions, OOD sources and loaders."""

from repro.data.synthetic import (
    blob_dataset,
    synth_digits,
    synth_letters,
    texture_dataset,
)
from repro.data.corruptions import CORRUPTIONS, corrupt
from repro.data import ood
from repro.data.timeseries import (
    forecast_dataset,
    multisine_series,
    windowed_forecast,
)
from repro.data.segmentation import (
    N_SEG_CLASSES,
    class_frequencies,
    segmentation_scenes,
)
from repro.data.pairs import synth_pairs
from repro.data.loaders import batches, train_test_split

__all__ = [
    "synth_digits",
    "synth_letters",
    "blob_dataset",
    "texture_dataset",
    "CORRUPTIONS",
    "corrupt",
    "ood",
    "multisine_series",
    "windowed_forecast",
    "forecast_dataset",
    "batches",
    "segmentation_scenes",
    "class_frequencies",
    "N_SEG_CLASSES",
    "synth_pairs",
    "train_test_split",
]
