"""Out-of-distribution (OOD) data sources.

The paper's OOD protocol (Sec. III-A.1, III-A.4, III-B.2): feed the
model inputs it was never trained on and check whether predictive
uncertainty flags them.  Sources mirror the paper's experiments:

* ``uniform_noise`` — pure U(−1, 1) pixels (the "uniform noise"
  experiment of Sec. III-A.4, 55.03 % detection headline).
* ``random_rotation`` — in-distribution images rotated by large random
  angles (the "random rotation" experiment, 78.95 % headline).
* ``letters`` — the SynthLetters glyph family: same renderer,
  never-seen shapes (the "several out-of-distribution datasets" of
  SpinBayes, 100 % headline).
* ``amplitude_shift`` — in-distribution images scaled/offset outside
  the training range (dataset-shift NLL experiment of Sec. III-B.1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import ndimage

from repro.data.synthetic import synth_letters


def uniform_noise(n_samples: int, n_features: int,
                  seed: Optional[int] = None,
                  flat: bool = True) -> np.ndarray:
    """U(−1, 1) noise images."""
    rng = np.random.default_rng(seed)
    if flat:
        return rng.uniform(-1.0, 1.0, size=(n_samples, n_features))
    side = int(round(np.sqrt(n_features)))
    return rng.uniform(-1.0, 1.0, size=(n_samples, 1, side, side))


def random_rotation(x: np.ndarray, min_deg: float = 60.0,
                    max_deg: float = 120.0,
                    seed: Optional[int] = None) -> np.ndarray:
    """Rotate in-distribution images by large random angles.

    Angles are far outside the jitter the renderer applies, so the
    rotated digits are OOD while keeping pixel statistics similar —
    the harder detection problem of the two noise experiments (and the
    paper indeed reports a higher detection rate for rotation than for
    uniform noise is *not* the case; rotation detects better, 78.95 %
    vs 55.03 % — our benchmark C4 checks that ordering).
    """
    rng = np.random.default_rng(seed)
    flat = x.ndim == 2
    if flat:
        n, d = x.shape
        side = int(round(np.sqrt(d)))
        images = x.reshape(n, 1, side, side)
    else:
        images = x
    out = np.empty_like(images)
    for i in range(images.shape[0]):
        angle = float(rng.uniform(min_deg, max_deg))
        if rng.random() < 0.5:
            angle = -angle
        out[i] = ndimage.rotate(images[i], angle, axes=(1, 2),
                                reshape=False, order=1, mode="nearest",
                                cval=-1.0)
    out = np.clip(out, -1.0, 1.0)
    return out.reshape(x.shape) if flat else out


def letters(n_samples: int, size: int = 16, seed: Optional[int] = None,
            flat: bool = True) -> np.ndarray:
    """SynthLetters images (labels discarded — they are all OOD)."""
    images, _ = synth_letters(n_samples, size=size, seed=seed, flat=flat)
    return images


def amplitude_shift(x: np.ndarray, scale: float = 0.4,
                    offset: float = -0.5) -> np.ndarray:
    """Compress and shift pixel amplitudes outside the training range."""
    return np.clip(x * scale + offset, -1.0, 1.0)
