"""Synthetic semantic-segmentation dataset (the scene-understanding
substitute).

The paper evaluates SpinBayes "in classification tasks with up to 100
classes and semantic segmentation tasks on two safety-critical tasks:
medical image diagnosis and automotive scene understanding"
(§III-B.2).  Offline we synthesize a scene-like task: each image
contains a horizon-split background plus 1–3 objects of two classes —
"disc" (round obstacle) and "bar" (lane-like stripe) — and the label
is a per-pixel class map:

    0 = background, 1 = disc, 2 = bar

Objects vary in position, size, orientation and intensity; Gaussian
pixel noise is added.  The generator also provides an OOD variant
("triangle" objects never seen in training) for per-pixel uncertainty
experiments.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

N_SEG_CLASSES = 3


def _disc(canvas, mask, rng, size):
    cy, cx = rng.uniform(size * 0.2, size * 0.8, 2)
    radius = rng.uniform(size * 0.1, size * 0.2)
    yy, xx = np.mgrid[0:size, 0:size]
    inside = (yy - cy) ** 2 + (xx - cx) ** 2 <= radius ** 2
    canvas[inside] = rng.uniform(0.6, 1.0)
    mask[inside] = 1


def _bar(canvas, mask, rng, size):
    angle = rng.uniform(0, np.pi)
    offset = rng.uniform(-size * 0.25, size * 0.25)
    width = rng.uniform(1.0, 2.5)
    yy, xx = np.mgrid[0:size, 0:size]
    distance = ((yy - size / 2) * np.cos(angle)
                - (xx - size / 2) * np.sin(angle) - offset)
    inside = np.abs(distance) <= width
    canvas[inside] = rng.uniform(0.5, 0.9)
    mask[inside] = 2


def _triangle(canvas, mask, rng, size):
    """OOD object class (never in the training label set)."""
    cy, cx = rng.uniform(size * 0.3, size * 0.7, 2)
    half = rng.uniform(size * 0.12, size * 0.22)
    yy, xx = np.mgrid[0:size, 0:size]
    inside = ((yy >= cy - half) & (yy <= cy + half)
              & (np.abs(xx - cx) <= (yy - (cy - half)) / 2))
    canvas[inside] = rng.uniform(0.6, 1.0)
    mask[inside] = 1  # labelled as disc so accuracy drops measurably


def segmentation_scenes(n_samples: int = 500, size: int = 16,
                        seed: Optional[int] = None,
                        ood_objects: bool = False,
                        noise: float = 0.05
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """Generate (images, masks).

    Returns images (N, 1, size, size) in [−1, 1] and integer masks
    (N, size, size) in {0, 1, 2}.  With ``ood_objects`` the scenes
    contain triangles (unknown object class) instead of discs.
    """
    rng = np.random.default_rng(seed)
    images = np.empty((n_samples, 1, size, size))
    masks = np.zeros((n_samples, size, size), dtype=np.int64)
    for i in range(n_samples):
        canvas = np.zeros((size, size))
        mask = np.zeros((size, size), dtype=np.int64)
        # Horizon-split background (scene-like intensity gradient).
        horizon = int(rng.uniform(size * 0.3, size * 0.7))
        canvas[:horizon] = rng.uniform(0.05, 0.2)
        canvas[horizon:] = rng.uniform(0.25, 0.4)
        n_objects = int(rng.integers(1, 4))
        for _ in range(n_objects):
            if ood_objects:
                _triangle(canvas, mask, rng, size)
            elif rng.random() < 0.5:
                _disc(canvas, mask, rng, size)
            else:
                _bar(canvas, mask, rng, size)
        canvas = canvas + rng.normal(0, noise, canvas.shape)
        images[i, 0] = np.clip(canvas, 0.0, 1.0) * 2.0 - 1.0
        masks[i] = mask
    return images, masks


def class_frequencies(masks: np.ndarray) -> np.ndarray:
    """Pixel share of each class (for loss weighting / sanity checks)."""
    counts = np.bincount(masks.reshape(-1), minlength=N_SEG_CLASSES)
    return counts / counts.sum()
