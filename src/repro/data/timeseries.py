"""Synthetic time series for the affine-dropout RMSE experiment (C4).

A multi-sine process with trend and noise, windowed into
(history → next value) forecasting pairs — the stand-in for the
paper's LSTM-based time-series prediction task (Sec. III-A.4,
"the root mean square error (RMSE) score is reduced by up to 46.7%").
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def multisine_series(n_points: int = 2000, seed: Optional[int] = None,
                     noise: float = 0.05) -> np.ndarray:
    """One realization of the multi-sine + trend process, scaled to ~[−1, 1]."""
    rng = np.random.default_rng(seed)
    t = np.arange(n_points, dtype=np.float64)
    series = (np.sin(2 * np.pi * t / 47.0)
              + 0.5 * np.sin(2 * np.pi * t / 13.0 + 0.7)
              + 0.25 * np.sin(2 * np.pi * t / 5.0 + 1.9)
              + 0.0004 * t)
    series += rng.normal(0.0, noise, size=n_points)
    return series / np.abs(series).max()


def windowed_forecast(series: np.ndarray, history: int = 24
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Slice a series into (N, history, 1) inputs and (N, 1) targets."""
    n = len(series) - history
    if n <= 0:
        raise ValueError("series shorter than history window")
    x = np.stack([series[i:i + history] for i in range(n)])[:, :, None]
    y = series[history:][:, None]
    return x, y


def forecast_dataset(n_points: int = 2000, history: int = 24,
                     train_frac: float = 0.8, seed: Optional[int] = None,
                     noise: float = 0.05):
    """Train/test forecasting split (chronological, no leakage)."""
    series = multisine_series(n_points, seed=seed, noise=noise)
    x, y = windowed_forecast(series, history=history)
    cut = int(len(x) * train_frac)
    return (x[:cut], y[:cut]), (x[cut:], y[cut:])
