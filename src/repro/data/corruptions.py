"""Test-time corruption suite (the "corrupted data" experiments).

Key takeaway #2 of the paper: Bayesian methods bring "Improvement in
Inference Accuracy for Corrupted Data".  The C1 benchmark compares a
deterministic binary net against SpinDrop across this corruption suite
at five severities, mirroring the MNIST-C / CIFAR-C protocol on our
synthetic images.

All corruptions accept flat (N, D) or NCHW (N, C, H, W) inputs with
pixel values in [−1, 1] and preserve shape and range.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np
from scipy import ndimage


def _as_images(x: np.ndarray) -> tuple[np.ndarray, bool, tuple]:
    """Normalize input to (N, C, H, W); remember original layout."""
    if x.ndim == 2:
        n, d = x.shape
        side = int(round(np.sqrt(d)))
        if side * side != d:
            raise ValueError("flat inputs must be square images")
        return x.reshape(n, 1, side, side), True, x.shape
    if x.ndim == 4:
        return x, False, x.shape
    raise ValueError("expected (N, D) or (N, C, H, W)")


def _restore(images: np.ndarray, was_flat: bool, shape: tuple) -> np.ndarray:
    out = np.clip(images, -1.0, 1.0)
    return out.reshape(shape) if was_flat else out


def gaussian_noise(x: np.ndarray, severity: int = 3,
                   rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Additive white noise; sigma grows with severity."""
    rng = rng or np.random.default_rng()
    images, flat, shape = _as_images(x)
    sigma = (0.1, 0.2, 0.35, 0.5, 0.7)[severity - 1]
    return _restore(images + rng.normal(0, sigma, images.shape), flat, shape)


def salt_and_pepper(x: np.ndarray, severity: int = 3,
                    rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Random pixels forced to the extremes."""
    rng = rng or np.random.default_rng()
    images, flat, shape = _as_images(x)
    rate = (0.02, 0.05, 0.1, 0.18, 0.3)[severity - 1]
    out = images.copy()
    u = rng.random(images.shape)
    out[u < rate / 2] = -1.0
    out[(u >= rate / 2) & (u < rate)] = 1.0
    return _restore(out, flat, shape)


def box_blur(x: np.ndarray, severity: int = 3,
             rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Uniform box filter; kernel grows with severity."""
    images, flat, shape = _as_images(x)
    k = (2, 3, 3, 4, 5)[severity - 1]
    out = ndimage.uniform_filter(images, size=(1, 1, k, k), mode="nearest")
    return _restore(out, flat, shape)


def contrast(x: np.ndarray, severity: int = 3,
             rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Contrast compression toward the per-image mean."""
    images, flat, shape = _as_images(x)
    factor = (0.75, 0.6, 0.45, 0.3, 0.2)[severity - 1]
    mean = images.mean(axis=(2, 3), keepdims=True)
    return _restore(mean + (images - mean) * factor, flat, shape)


def occlusion(x: np.ndarray, severity: int = 3,
              rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """A random square patch set to background."""
    rng = rng or np.random.default_rng()
    images, flat, shape = _as_images(x)
    n, _, h, w = images.shape
    frac = (0.15, 0.25, 0.35, 0.45, 0.55)[severity - 1]
    ph, pw = max(int(h * frac), 1), max(int(w * frac), 1)
    out = images.copy()
    for i in range(n):
        y = int(rng.integers(0, h - ph + 1))
        xx = int(rng.integers(0, w - pw + 1))
        out[i, :, y:y + ph, xx:xx + pw] = -1.0
    return _restore(out, flat, shape)


def rotation(x: np.ndarray, severity: int = 3,
             rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Small random rotations (grows to ±40° at severity 5)."""
    rng = rng or np.random.default_rng()
    images, flat, shape = _as_images(x)
    max_deg = (8, 15, 22, 30, 40)[severity - 1]
    out = np.empty_like(images)
    for i in range(images.shape[0]):
        angle = float(rng.uniform(-max_deg, max_deg))
        out[i] = ndimage.rotate(images[i], angle, axes=(1, 2),
                                reshape=False, order=1, mode="nearest",
                                cval=-1.0)
    return _restore(out, flat, shape)


CORRUPTIONS: Dict[str, Callable] = {
    "gaussian_noise": gaussian_noise,
    "salt_and_pepper": salt_and_pepper,
    "box_blur": box_blur,
    "contrast": contrast,
    "occlusion": occlusion,
    "rotation": rotation,
}


def corrupt(x: np.ndarray, name: str, severity: int = 3,
            rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Apply a named corruption at a given severity (1–5)."""
    if name not in CORRUPTIONS:
        raise KeyError(f"unknown corruption {name!r}; "
                       f"choose from {sorted(CORRUPTIONS)}")
    if not 1 <= severity <= 5:
        raise ValueError("severity must be in 1..5")
    return CORRUPTIONS[name](x, severity=severity, rng=rng)
